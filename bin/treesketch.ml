(* The `treesketch` command-line tool.

     treesketch datagen  --dataset xmark --scale 2 -o doc.xml
     treesketch build    doc.xml --budget 10KB -o doc.ts
     treesketch query    doc.ts "//item[//mail]{//incategory?}"
     treesketch query    doc.ts QUERY --exact doc.xml
     treesketch serve    --catalog synopses/ [--socket /tmp/ts.sock]
     treesketch verify   synopses/*.ts
     treesketch esd      a.xml b.xml
     treesketch stats    doc.xml *)

open Cmdliner

(* Every loader failure exits through here: the structured fault is
   rendered to stderr and mapped to its own exit code (parse error 1,
   corrupt synopsis 2, limit exceeded 3, deadline 4, I/O error 5). *)
let die fault =
  prerr_endline (Xmldoc.Fault.to_string fault);
  exit (Xmldoc.Fault.exit_code fault)

let read_doc path =
  match Xmldoc.Parser.of_file_res path with Ok t -> t | Error f -> die f

let read_synopsis path =
  match Sketch.Serialize.load_res path with Ok s -> s | Error f -> die f

let parse_budget s =
  Result.map_error (fun msg -> `Msg msg) (Xmldoc.Limits.parse_bytes s)

let budget_conv = Arg.conv (parse_budget, fun ppf b -> Format.fprintf ppf "%dB" b)

(* ------------------------------- datagen ------------------------------ *)

let datagen_cmd =
  let dataset =
    let parse s =
      match Datagen.Datasets.of_name s with
      | Some ds -> Ok ds
      | None -> Error (`Msg (Printf.sprintf "unknown dataset %S" s))
    in
    let print ppf ds = Format.pp_print_string ppf (Datagen.Datasets.name ds) in
    Arg.(
      required
      & opt (some (conv (parse, print))) None
      & info [ "d"; "dataset" ] ~docv:"NAME"
          ~doc:"Dataset profile: imdb, xmark, sprot, dblp.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Size multiplier.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run ds scale seed out =
    let doc = Datagen.Datasets.generate ~seed ~scale ds in
    (match out with
    | Some path -> Xmldoc.Printer.to_file path doc
    | None -> print_endline (Xmldoc.Printer.to_string ~indent:1 doc));
    let stats = Xmldoc.Stats.compute doc in
    Printf.eprintf "generated %s: %d elements, %d bytes serialized\n"
      (Datagen.Datasets.name ds) stats.elements stats.serialized_bytes
  in
  Cmd.v
    (Cmd.info "datagen" ~doc:"Generate a synthetic XML dataset.")
    Term.(const run $ dataset $ scale $ seed $ out)

(* -------------------------------- build ------------------------------- *)

let build_cmd =
  let input =
    (* optional because --resume continues from a checkpoint instead of
       a document *)
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DOC.xml")
  in
  let budget =
    Arg.(
      value
      & opt budget_conv (10 * 1024)
      & info [ "b"; "budget" ] ~docv:"SIZE" ~doc:"Space budget, e.g. 10KB.")
  in
  let out =
    Arg.(
      value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output synopsis.")
  in
  let stable_only =
    Arg.(
      value & flag
      & info [ "stable" ] ~doc:"Emit the lossless count-stable summary instead.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Construction deadline.  On expiry the best-so-far synopsis is \
             emitted (flagged degraded on stderr) instead of failing.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal the in-progress build to $(docv) (atomic, \
             checksummed) so an interrupted run can continue with \
             $(b,--resume).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt int Sketch.Build.default_checkpoint_every
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Merges between checkpoint writes (default 256).")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Continue an interrupted build from its checkpoint journal; \
             $(i,DOC.xml), $(b,--budget) and $(b,--stable) are ignored \
             (the checkpoint carries the budget).")
  in
  let ladder =
    Arg.(
      value & opt int 0
      & info [ "ladder" ] ~docv:"N"
          ~doc:
            "Materialize an $(docv)-tier degradation ladder in one \
             compression pass: the full $(b,--budget) synopsis plus \
             halved-budget rungs (budget/2, budget/4, ...), saved as a \
             single version-4 snapshot a brownout server \
             ($(b,treesketch serve --brownout)) degrades across under \
             overload.  0 (the default) builds a plain single-tier \
             snapshot.")
  in
  let run input budget out stable_only timeout checkpoint checkpoint_every resume
      ladder =
    let limits =
      match timeout with
      | None -> Xmldoc.Limits.unlimited
      | Some s -> Xmldoc.Limits.with_timeout s Xmldoc.Limits.unlimited
    in
    if checkpoint_every < 1 then begin
      prerr_endline "treesketch: --checkpoint-every must be >= 1";
      exit Cmd.Exit.cli_error
    end;
    if ladder < 0 then begin
      prerr_endline "treesketch: --ladder must be >= 0";
      exit Cmd.Exit.cli_error
    end;
    if ladder > 0 && (stable_only || resume <> None || checkpoint <> None) then begin
      prerr_endline
        "treesketch: --ladder is incompatible with --stable, --resume and \
         --checkpoint";
      exit Cmd.Exit.cli_error
    end;
    if ladder > 0 then begin
      (* ladder build: one compression pass, several snapshots out *)
      let doc =
        match input with
        | Some path -> read_doc path
        | None ->
          prerr_endline "treesketch: build needs DOC.xml";
          exit Cmd.Exit.cli_error
      in
      let stable = Sketch.Stable.build doc in
      (match Sketch.Build.build_ladder_res ~limits stable ~budget ~tiers:ladder with
      | Error f -> die f
      | Ok { ladder = tiers; ladder_degraded } ->
        (match out with
        | Some path -> (
          match Sketch.Serialize.save_ladder_atomic path tiers with
          | Ok () -> ()
          | Error f -> die f)
        | None -> print_string (Sketch.Serialize.to_ladder_string tiers));
        if ladder_degraded then
          prerr_endline
            "warning: a limit tripped mid-construction; some ladder tiers \
             hold the best-so-far (over-budget) synopsis";
        let n = List.length tiers in
        List.iteri
          (fun i (b, s) ->
            Printf.eprintf "tier %d/%d: budget=%d -> %d classes, %d bytes\n" i n
              b
              (Sketch.Synopsis.num_nodes s)
              (Sketch.Synopsis.size_bytes s))
          tiers);
      exit 0
    end;
    let synopsis, degraded, stable =
      match resume with
      | Some ckpt -> (
        match Sketch.Build.resume_res ~limits ~checkpoint_every ckpt with
        | Ok { synopsis; degraded } -> (synopsis, degraded, None)
        | Error f -> die f)
      | None ->
        let doc =
          match input with
          | Some path -> read_doc path
          | None ->
            prerr_endline "treesketch: build needs DOC.xml (or --resume=FILE)";
            exit Cmd.Exit.cli_error
        in
        let stable = Sketch.Stable.build doc in
        if stable_only then (stable, false, Some stable)
        else begin
          let result =
            match checkpoint with
            | Some path ->
              Sketch.Build.build_checkpointed_res ~limits ~checkpoint_every
                ~checkpoint:path stable ~budget
            | None -> Sketch.Build.build_res ~limits stable ~budget
          in
          match result with
          | Ok { synopsis; degraded } -> (synopsis, degraded, Some stable)
          | Error f -> die f
        end
    in
    (match out with
    | Some path -> (
      (* temp-file + atomic rename + checksum trailer: a crash mid-write
         can never leave a torn snapshot where a catalog would find it *)
      match Sketch.Serialize.save_atomic path synopsis with
      | Ok () -> ()
      | Error f -> die f)
    | None -> print_string (Sketch.Serialize.to_snapshot_string synopsis));
    if degraded then
      prerr_endline
        "warning: a limit tripped mid-construction; emitting the best-so-far \
         (over-budget) synopsis";
    (match stable with
    | Some stable ->
      Printf.eprintf "%s: %d classes, %d bytes (stable summary: %d bytes)\n"
        (if stable_only then "count-stable summary" else "treesketch")
        (Sketch.Synopsis.num_nodes synopsis)
        (Sketch.Synopsis.size_bytes synopsis)
        (Sketch.Synopsis.size_bytes stable)
    | None ->
      Printf.eprintf "treesketch (resumed): %d classes, %d bytes\n"
        (Sketch.Synopsis.num_nodes synopsis)
        (Sketch.Synopsis.size_bytes synopsis))
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a TREESKETCH synopsis from an XML document.")
    Term.(
      const run $ input $ budget $ out $ stable_only $ timeout $ checkpoint
      $ checkpoint_every $ resume $ ladder)

(* -------------------------------- query ------------------------------- *)

let query_arg =
  let parse s =
    match Twig.Parse.query s with
    | q -> Ok q
    | exception e -> (
      match Twig.Parse.error_to_string e with
      | Some msg -> Error (`Msg msg)
      | None -> raise e)
  in
  Arg.conv (parse, fun ppf q -> Twig.Syntax.pp ppf q)

let query_cmd =
  let synopsis =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SYNOPSIS.ts")
  in
  let query =
    Arg.(required & pos 1 (some query_arg) None & info [] ~docv:"QUERY")
  in
  let exact =
    Arg.(
      value
      & opt (some file) None
      & info [ "exact" ] ~docv:"DOC.xml"
          ~doc:"Also evaluate exactly over the document and report the error.")
  in
  let show_answer =
    Arg.(value & flag & info [ "answer" ] ~doc:"Print the approximate nesting tree.")
  in
  let run synopsis query exact show_answer =
    let ts = read_synopsis synopsis in
    let answer = Sketch.Eval.eval ts query in
    let estimate = Sketch.Selectivity.of_answer query answer in
    if answer.empty then print_endline "answer: (empty)"
    else begin
      Printf.printf "estimated binding tuples: %g\n" estimate;
      Printf.printf "answer synopsis: %d classes\n"
        (Sketch.Synopsis.num_nodes answer.synopsis);
      if show_answer then
        match Sketch.Eval.to_nesting_tree answer with
        | Some tree -> Format.printf "answer: %a@." Xmldoc.Tree.pp tree
        | None -> print_endline "answer too large to expand"
    end;
    match exact with
    | None -> ()
    | Some path ->
      let doc = Twig.Doc.of_tree (read_doc path) in
      let result = Twig.Eval.run doc query in
      Printf.printf "exact binding tuples:     %g\n" result.selectivity;
      (match (result.nesting, Sketch.Eval.to_nesting_tree answer) with
      | Some t, Some a ->
        Printf.printf "ESD(exact, approximate):  %g\n" (Metric.Esd.between_trees t a)
      | _ -> ())
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer a twig query approximately from a synopsis.")
    Term.(const run $ synopsis $ query $ exact $ show_answer)

(* -------------------------------- serve ------------------------------- *)

let serve_cmd =
  let catalog =
    Arg.(
      required
      & opt (some dir) None
      & info [ "c"; "catalog" ] ~docv:"DIR"
          ~doc:"Directory of $(b,name.ts) snapshots to serve.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of serving \
             stdin/stdout.")
  in
  let deadline =
    Arg.(
      value & opt float 5.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Default per-request deadline; on expiry the partial \
             approximate answer is returned flagged degraded.  0 \
             disables.")
  in
  let max_answer_nodes =
    Arg.(
      value
      & opt int Serve.Server.default_config.max_answer_nodes
      & info [ "max-answer-nodes" ] ~docv:"N"
          ~doc:"Cap on answer/tree nodes per request.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Serve.Server.default_config.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Socket connections served concurrently before shedding \
             load with $(b,error overloaded).")
  in
  let no_auto_reload =
    Arg.(
      value & flag
      & info [ "no-auto-reload" ]
          ~doc:
            "Only pick up snapshot changes on an explicit RELOAD \
             request.")
  in
  let drain_deadline =
    Arg.(
      value
      & opt float Serve.Server.default_config.drain_deadline
      & info [ "drain-deadline" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM/SIGINT, seconds to wait for in-flight requests \
             to finish before severing them and exiting.")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Evaluate QUERY/ANSWER in $(docv) prefork worker processes: \
             a crashing or runaway query costs one request ($(b,error \
             worker-crash), exit code 6 at the client) instead of the \
             server.  0 (the default) evaluates in-process.")
  in
  let watchdog_grace =
    Arg.(
      value
      & opt float Serve.Pool.default_config.watchdog_grace
      & info [ "watchdog-grace" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--workers): how far past its cooperative deadline \
             a query worker may run before being killed outright.")
  in
  let poison_threshold =
    Arg.(
      value
      & opt int Serve.Pool.default_config.poison_threshold
      & info [ "poison-threshold" ] ~docv:"K"
          ~doc:
            "With $(b,--workers): after killing $(docv) workers, a \
             (synopsis, query) pair is quarantined and answered \
             $(b,error poisoned) without evaluation.")
  in
  let brownout =
    Arg.(
      value & flag
      & info [ "brownout" ]
          ~doc:
            "Degrade under overload instead of queueing: when latency or \
             queue depth crosses the target, answer QUERY/ANSWER from a \
             coarser tier of any ladder snapshot ($(b,treesketch build \
             --ladder)) in the catalog, tagging responses \
             $(b,tier=<k>/<n> budget=<bytes>).  Admission becomes \
             deadline-aware: only requests that cannot be met even at \
             the coarsest tier are refused.")
  in
  let target_latency =
    Arg.(
      value
      & opt float Serve.Overload.default_config.target_latency
      & info [ "target-latency" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--brownout): per-request latency a healthy server \
             should deliver; the degradation controller steps up when \
             the latency EWMA crosses it.")
  in
  let brownout_levels =
    Arg.(
      value
      & opt int Serve.Overload.default_config.max_level
      & info [ "brownout-levels" ] ~docv:"N"
          ~doc:
            "With $(b,--brownout): coarsest degradation level the \
             controller may reach (clamped to each snapshot's ladder \
             depth at serving time).")
  in
  let scrub_interval =
    Arg.(
      value
      & opt float Serve.Server.default_config.scrub_interval
      & info [ "scrub-interval" ] ~docv:"SECONDS"
          ~doc:
            "Background integrity scrubbing: every $(docv) seconds a \
             supervised worker re-reads and re-verifies every snapshot \
             on disk; in-place corruption is quarantined \
             ($(b,reason=scrub-corrupt)) while the resident copy keeps \
             serving, orphaned temp files are swept, and — with \
             $(b,--peer) — a repair pull follows.  0 (the default) \
             disables the scrubber; the SCRUB verb stays available on \
             demand.")
  in
  let peers =
    Arg.(
      value
      & opt_all string []
      & info [ "peer" ] ~docv:"PATH"
          ~doc:
            "Socket of a replica peer serving the same catalog, used as \
             a repair source: a quarantined snapshot is re-fetched from \
             the healthiest peer holding a clean copy (verified \
             end-to-end, installed atomically).  Repeatable.  Without \
             peers, REPAIR answers $(b,error bad-request).")
  in
  let tmp_sweep_age =
    Arg.(
      value
      & opt float Serve.Server.default_config.tmp_sweep_age
      & info
          [ "tmp-sweep-age"; "sweep-age" ]
          ~docv:"SECONDS"
          ~doc:
            "Minimum age before an orphaned staging ($(b,.tmp)) file or \
             unreferenced ingestion level in the catalog is swept — must \
             exceed the longest plausible atomic-write window, since \
             live build workers and flushes stage under the same \
             naming.  The active value is echoed in the reload log line \
             ($(b,sweep_age=)).")
  in
  let repair_timeout =
    Arg.(
      value
      & opt float Serve.Server.default_config.repair_timeout
      & info [ "repair-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-peer-connection budget of a repair pull.")
  in
  let flush_every =
    Arg.(
      value
      & opt int Serve.Server.default_config.flush_records
      & info [ "flush-every" ] ~docv:"N"
          ~doc:
            "Live ingestion: acknowledged INGEST records are summarized \
             into a delta-TreeSketch level once $(docv) accumulate in \
             the write-ahead log (a flush also runs opportunistically \
             at startup replay and drain).  Smaller values bound \
             staleness tighter; larger ones amortize summarization.")
  in
  let level_budget =
    Arg.(
      value
      & opt int Serve.Server.default_config.level_budget
      & info [ "level-budget" ] ~docv:"NODES"
          ~doc:
            "Live ingestion: node budget each delta level (and each \
             compacted level) is compressed to.")
  in
  let compact_levels =
    Arg.(
      value
      & opt int Serve.Server.default_config.compact_levels
      & info [ "compact-levels" ] ~docv:"K"
          ~doc:
            "Live ingestion: once a synopsis accumulates $(docv) delta \
             levels, a supervised background job compacts them into \
             one (crash-safe: resumable from checkpoints, installed by \
             atomic manifest swap).  0 disables compaction.")
  in
  let disk_watermark =
    Arg.(
      value & opt int 0
      & info [ "disk-watermark" ] ~docv:"BYTES"
          ~doc:
            "Refuse all mutations (INGEST/DELETE/UPDATE answer \
             $(b,error readonly)) once the catalog filesystem's free \
             space falls under $(docv) bytes; reads, scrub and repair \
             keep serving, and repair's preflight learns the same \
             floor.  Write-pressure pacing and shedding engage earlier, \
             from twice the watermark down.  0 (the default) disables \
             the disk guardrail; WAL/memtable backpressure stays \
             active regardless.")
  in
  let run catalog socket deadline max_answer_nodes max_inflight no_auto_reload
      drain_deadline workers watchdog_grace poison_threshold brownout
      target_latency brownout_levels scrub_interval peers tmp_sweep_age
      repair_timeout flush_every level_budget compact_levels disk_watermark =
    let config =
      {
        Serve.Server.default_config with
        deadline = (if deadline <= 0.0 then None else Some deadline);
        max_answer_nodes;
        max_inflight;
        auto_reload = not no_auto_reload;
        drain_deadline;
        scrub_interval = Float.max 0.0 scrub_interval;
        peers;
        tmp_sweep_age = Float.max 0.0 tmp_sweep_age;
        repair_timeout;
        flush_records = max 1 flush_every;
        level_budget = max 1 level_budget;
        compact_levels = max 0 compact_levels;
        write_pressure =
          (let w = max 0 disk_watermark in
           {
             Serve.Write_pressure.default_config with
             disk_hard = w;
             disk_soft = 2 * w;
           });
        brownout =
          (if not brownout then None
           else
             Some
               {
                 Serve.Overload.default_config with
                 target_latency;
                 max_level = max 0 brownout_levels;
               });
        pool =
          {
            Serve.Pool.default_config with
            workers = max 0 workers;
            watchdog_grace;
            poison_threshold = max 1 poison_threshold;
          };
      }
    in
    let server = Serve.Server.create ~config catalog in
    (* SIGTERM/SIGINT request a graceful drain: the serve loop returns
       once in-flight requests are answered, and we exit 0 — the
       contract a rolling restart scripts against. *)
    Serve.Server.install_drain_signals server;
    (match socket with
    | Some path -> Serve.Server.serve_socket server ~path
    | None -> Serve.Server.serve_channels server stdin stdout);
    exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve twig queries from a resident synopsis catalog (line \
          protocol on stdin/stdout or a Unix socket).  The INGEST verb \
          appends XML fragments durably (write-ahead logged, fsync'd, \
          acknowledged with a sequence number) and folds them into \
          queryable delta levels; a crash replays the log, so every \
          acknowledged record survives.  SIGTERM or SIGINT drains \
          gracefully: in-flight requests are answered, build workers \
          reaped, and the process exits 0.")
    Term.(
      const run $ catalog $ socket $ deadline $ max_answer_nodes $ max_inflight
      $ no_auto_reload $ drain_deadline $ workers $ watchdog_grace
      $ poison_threshold $ brownout $ target_latency $ brownout_levels
      $ scrub_interval $ peers $ tmp_sweep_age $ repair_timeout $ flush_every
      $ level_budget $ compact_levels $ disk_watermark)

(* ----------------------------- coordinate ----------------------------- *)

let coordinate_cmd =
  let replicas =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "r"; "replica" ] ~docv:"PATH"
          ~doc:
            "Socket of one replica serving the same catalog.  \
             Repeatable; give every member of the group.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of serving \
             stdin/stdout.")
  in
  let hedge_after =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.hedge_after
      & info [ "hedge-after" ] ~docv:"SECONDS"
          ~doc:
            "How long a QUERY/ANSWER may sit unanswered before the same \
             request races a second replica.  First well-formed \
             response wins; the loser is cancelled.")
  in
  let timeout =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.request_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Overall per-request ceiling.  A request's own \
             $(b,-deadline) may tighten it, never widen it.")
  in
  let connect_timeout =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.connect_timeout
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-replica connect + send budget.")
  in
  let attempts =
    Arg.(
      value
      & opt int Serve.Coordinator.default_config.max_attempts
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Replicas tried per request, counting the primary, hedges \
             and retries.")
  in
  let retry_ratio =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.retry_ratio
      & info [ "retry-ratio" ] ~docv:"R"
          ~doc:
            "Retry-budget refill: hedges + retries are capped at \
             $(docv) per primary request over the long run, so a sick \
             group degrades instead of amplifying into a connect \
             storm.")
  in
  let retry_burst =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.retry_burst
      & info [ "retry-burst" ] ~docv:"N"
          ~doc:
            "Retry-budget bucket cap (and starting level, so cold-start \
             failover is never refused).")
  in
  let probe_interval =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.probe_interval
      & info [ "probe-interval" ] ~docv:"SECONDS"
          ~doc:
            "How often the background prober HEALTHs every replica to \
             feed ejection and re-admission.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Serve.Coordinator.default_config.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Socket connections served concurrently before shedding \
             load with $(b,error overloaded).")
  in
  let drain_deadline =
    Arg.(
      value
      & opt float Serve.Coordinator.default_config.drain_deadline
      & info [ "drain-deadline" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM/SIGINT, seconds to wait for in-flight scatters \
             before severing them and exiting.")
  in
  let eject_threshold =
    Arg.(
      value
      & opt int Serve.Replica.default_config.eject_threshold
      & info [ "eject-threshold" ] ~docv:"K"
          ~doc:
            "Consecutive failures before a replica is ejected from \
             routing for a jittered cooldown.")
  in
  let eject_cooldown =
    Arg.(
      value
      & opt float Serve.Replica.default_config.eject_cooldown
      & info [ "eject-cooldown" ] ~docv:"SECONDS"
          ~doc:
            "How long an ejected replica sits out before a probational \
             re-admission (one more failure re-ejects).")
  in
  let seed =
    Arg.(
      value
      & opt int Serve.Replica.default_config.seed
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for re-admission jitter.")
  in
  let run replicas socket hedge_after timeout connect_timeout attempts
      retry_ratio retry_burst probe_interval max_inflight drain_deadline
      eject_threshold eject_cooldown seed =
    let config =
      {
        Serve.Coordinator.default_config with
        hedge_after;
        request_timeout = timeout;
        connect_timeout;
        max_attempts = max 1 attempts;
        retry_ratio;
        retry_burst;
        probe_interval;
        max_inflight;
        drain_deadline;
        replica =
          {
            Serve.Replica.default_config with
            eject_threshold = max 1 eject_threshold;
            eject_cooldown;
            seed;
          };
      }
    in
    let coord = Serve.Coordinator.create ~config replicas in
    Serve.Coordinator.install_drain_signals coord;
    (match socket with
    | Some path -> Serve.Coordinator.serve_socket coord ~path
    | None -> Serve.Coordinator.serve_channels coord stdin stdout);
    exit 0
  in
  Cmd.v
    (Cmd.info "coordinate"
       ~doc:
         "Front a group of identical $(b,treesketch serve) replicas \
          with a hedged scatter-gather coordinator: QUERY/ANSWER go to \
          the healthiest replica and race a second one after \
          $(b,--hedge-after); hedges and retries are capped by a \
          per-group retry budget; unhealthy replicas are ejected and \
          re-admitted on probation.  Single-target verbs (BUILD, \
          RELOAD, CANCEL, JOBS) are refused — address one replica \
          directly with $(b,treesketch client --target).  SIGTERM or \
          SIGINT drains gracefully and exits 0.")
    Term.(
      const run $ replicas $ socket $ hedge_after $ timeout
      $ connect_timeout $ attempts $ retry_ratio $ retry_burst
      $ probe_interval $ max_inflight $ drain_deadline $ eject_threshold
      $ eject_cooldown $ seed)

(* ------------------------------- client ------------------------------- *)

let client_cmd =
  let sockets =
    Arg.(
      value
      & opt_all string []
      & info [ "s"; "socket" ] ~docv:"PATH"
          ~doc:
            "Server socket to talk to.  Repeatable: the client fails \
             over to the next socket when one stops answering — give \
             both halves of a rolling restart.")
  in
  let replicas =
    Arg.(
      value
      & opt_all string []
      & info [ "r"; "replica" ] ~docv:"PATH"
          ~doc:
            "Member of a replica group all serving the same catalog \
             (repeatable; mutually exclusive with $(b,--socket)).  \
             Reads fail over across the group, but single-target verbs \
             (BUILD, RELOAD, CANCEL, JOBS, QUIT) are refused unless \
             $(b,--target) names the replica they are for.")
  in
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"PATH"
          ~doc:
            "With $(b,--replica): the one socket single-target verbs \
             (BUILD, RELOAD, CANCEL, JOBS, QUIT) are sent to.")
  in
  let timeout =
    Arg.(
      value
      & opt float Serve.Client.default_config.request_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt request deadline (send + receive).")
  in
  let connect_timeout =
    Arg.(
      value
      & opt float Serve.Client.default_config.connect_timeout
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"How long a connect may take before failing over.")
  in
  let attempts =
    Arg.(
      value
      & opt int Serve.Client.default_config.attempts
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Total tries per request across the sockets.")
  in
  let retry_unsafe =
    Arg.(
      value & flag
      & info [ "retry-unsafe" ]
          ~doc:
            "Also retry non-idempotent verbs (BUILD, CANCEL) after a \
             mid-flight failure.  Off by default: a retried BUILD can \
             restart a finished build.")
  in
  let seed =
    Arg.(
      value
      & opt int Serve.Client.default_config.jitter_seed
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for retry-backoff jitter.")
  in
  let breaker_threshold =
    Arg.(
      value
      & opt int Serve.Client.default_config.breaker_threshold
      & info [ "breaker-threshold" ] ~docv:"M"
          ~doc:
            "Consecutive worker-crash/deadline failures on one synopsis \
             before its circuit breaker opens and requests for it fail \
             fast locally.  0 disables the breaker.")
  in
  let breaker_cooldown =
    Arg.(
      value
      & opt float Serve.Client.default_config.breaker_cooldown
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:
            "How long an open breaker fails fast before letting one \
             half-open probe through.")
  in
  let words =
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST")
  in
  let run sockets replicas target timeout connect_timeout attempts
      retry_unsafe seed breaker_threshold breaker_cooldown words =
    (match (sockets, replicas) with
    | [], [] ->
      Printf.eprintf
        "treesketch client: give --socket PATH or --replica PATH\n%!";
      exit Cmdliner.Cmd.Exit.cli_error
    | _ :: _, _ :: _ ->
      Printf.eprintf
        "treesketch client: --socket and --replica are mutually \
         exclusive\n\
         %!";
      exit Cmdliner.Cmd.Exit.cli_error
    | _ -> ());
    let config =
      {
        Serve.Client.default_config with
        request_timeout = timeout;
        connect_timeout;
        attempts;
        retry_unsafe;
        jitter_seed = seed;
        breaker_threshold;
        breaker_cooldown;
      }
    in
    let replica_mode = replicas <> [] in
    let client =
      Serve.Client.create ~config (if replica_mode then replicas else sockets)
    in
    let target_client =
      match target with
      | Some path -> Some (Serve.Client.create ~config [ path ])
      | None -> None
    in
    (* Any delivered response — including the server's own `error ...`
       lines — exits 0: the round-trip succeeded and the caller reads
       the verdict from stdout.  Only client-side faults (deadline,
       dead transport) exit non-zero, through the fault taxonomy. *)
    let send c line =
      match Serve.Client.request c line with
      | Ok response ->
        print_endline response;
        true
      | Error e ->
        Printf.eprintf "treesketch client: %s\n%!"
          (Serve.Client.error_to_string e);
        exit (Xmldoc.Fault.exit_code (Serve.Client.error_to_fault e))
    in
    let one line =
      (* In replica mode a side-effecting verb must name its target
         explicitly — a group cannot pick one implicitly (the same rule
         the coordinator enforces). *)
      if replica_mode && Serve.Protocol.single_target line then
        match target_client with
        | Some c -> send c line
        | None ->
          let verb =
            match String.index_opt (String.trim line) ' ' with
            | None -> String.uppercase_ascii (String.trim line)
            | Some i -> String.uppercase_ascii (String.sub (String.trim line) 0 i)
          in
          print_endline
            (Serve.Protocol.error_line ~cls:"bad-request"
               (verb
              ^ " is single-target: give --target PATH to address one \
                 replica"));
          true
      else send client line
    in
    (match words with
    | _ :: _ -> ignore (one (String.concat " " words))
    | [] ->
      (* REPL over stdin: one request per line until EOF *)
      let rec loop () =
        match input_line stdin with
        | exception End_of_file -> ()
        | line ->
          let trimmed = String.trim line in
          if trimmed = "" then loop ()
          else if one trimmed then loop ()
      in
      loop ());
    Serve.Client.close client;
    match target_client with
    | Some c -> Serve.Client.close c
    | None -> ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send line-protocol requests to one or more $(b,treesketch \
          serve) sockets with timeouts, retries and failover — or, \
          with $(b,--replica), to a whole replica group (reads fail \
          over; single-target verbs need $(b,--target)).  With a \
          REQUEST on the command line, sends it and prints the \
          response; without, reads requests from stdin.")
    Term.(
      const run $ sockets $ replicas $ target $ timeout $ connect_timeout
      $ attempts $ retry_unsafe $ seed $ breaker_threshold
      $ breaker_cooldown $ words)

(* -------------------------------- verify ------------------------------ *)

let verify_cmd =
  let paths =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SNAPSHOT.ts")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Report only corrupt files on stderr.")
  in
  let run paths quiet =
    (* the same verification cores the serving side runs — snapshot
       scrub (CRC trailer(s), full parse, Synopsis.validate, every
       ladder tier), WAL replay scanning, and the manifest/delta load
       path — so an offline `verify` and an online SCRUB or a restart's
       recovery can never disagree about what counts as corrupt *)
    let bad = ref 0 in
    let corrupt path fault =
      incr bad;
      Printf.eprintf "corrupt %s: %s\n" path (Xmldoc.Fault.to_string fault)
    in
    let verify_one path =
      let dir = Filename.dirname path in
      let base = Filename.basename path in
      match Serve.Wal.wal_name base with
      | Some _ -> (
        (* exactly what startup recovery sees: the intact prefix must
           scan frame-by-frame; a torn tail is a normal crash artifact
           replay truncates, so it is reported but passes *)
        match Serve.Wal.scan path with
        | Ok (records, torn) ->
          if not quiet then
            Printf.printf "ok %s records=%d torn=%b\n" path
              (List.length records) torn
        | Error fault -> corrupt path fault)
      | None -> (
        match Serve.Ingest.manifest_name base with
        | Some name -> (
          (* manifest CRC trailer and grammar, then every delta it
             lists against its per-level crc — the files a restart
             would load *)
          match Serve.Ingest.read_manifest ~dir ~name () with
          | Error fault -> corrupt path fault
          | Ok m ->
            let rotten = ref false in
            List.iter
              (fun (e : Serve.Ingest.level_info) ->
                match Serve.Ingest.load_level ~dir e with
                | Ok _ -> ()
                | Error fault ->
                  rotten := true;
                  corrupt (Filename.concat dir e.file) fault)
              m.entries;
            if not !rotten && not quiet then
              Printf.printf "ok %s flushed=%d levels=%d tombs=%d\n" path
                m.flushed (List.length m.entries)
                (List.fold_left
                   (fun n (e : Serve.Ingest.level_info) ->
                     n + List.length e.tombs)
                   0 m.entries))
        | None -> (
          match Serve.Ingest.level_name base with
          | Some (name, gen) -> (
            match Serve.Ingest.read_manifest ~dir ~name () with
            | Error fault -> corrupt path fault
            | Ok m -> (
              match
                List.find_opt
                  (fun (e : Serve.Ingest.level_info) -> e.gen = gen)
                  m.entries
              with
              | Some e -> (
                (* referenced: bytes must match the manifest's crc *)
                match Serve.Ingest.load_level ~dir e with
                | Ok _ ->
                  if not quiet then
                    Printf.printf "ok %s gen=%d records=%d bytes=%d\n" path
                      gen e.records e.bytes
                | Error fault -> corrupt path fault)
              | None -> (
                (* unreferenced: a crash orphan the sweeper will
                   collect — replay ignores it, but it must still be a
                   well-formed snapshot to pass an fsck *)
                match Serve.Scrub.verify_file path with
                | Ok (info : Serve.Scrub.info) ->
                  if not quiet then
                    Printf.printf "ok %s orphan=true bytes=%d crc=%s\n" path
                      info.v_bytes info.v_crc
                | Error fault -> corrupt path fault)))
          | None -> (
            match Serve.Scrub.verify_file path with
            | Ok (info : Serve.Scrub.info) ->
              if not quiet then
                Printf.printf "ok %s bytes=%d crc=%s fp=%s tiers=%d\n" path
                  info.v_bytes info.v_crc info.v_fp info.v_tiers
            | Error fault -> corrupt path fault)))
    in
    List.iter verify_one paths;
    if !bad > 0 then begin
      Printf.eprintf "verify: %d of %d file(s) corrupt\n" !bad
        (List.length paths);
      (* fsck convention: corruption found is exit 3, distinct from the
         cli-error and fault-taxonomy codes of the other subcommands *)
      exit 3
    end
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "$(b,0) every snapshot verified clean; $(b,3) at least one \
         snapshot failed verification (fsck convention — note this \
         differs from the fault-taxonomy codes of the other \
         subcommands); $(b,124) usage error.";
    ]
  in
  Cmd.v
    (Cmd.info "verify" ~man
       ~doc:
         "Offline integrity check (fsck) of snapshot files and live \
          ingestion state: re-read each one and verify checksum \
          trailers, structural parse, synopsis invariants and — for \
          ladder snapshots — every tier.  Level manifests \
          ($(b,.name.levels)) are checked together with every delta \
          they list, delta files ($(b,.name.l<gen>.delta)) against \
          their manifest's crc, and WALs ($(b,.name.wal)) frame by \
          frame exactly as startup recovery replays them (a torn tail \
          passes — replay truncates it).  The same verification the \
          serving scrubber applies, without a server.")
    Term.(const run $ paths $ quiet)

(* --------------------------------- esd -------------------------------- *)

let esd_cmd =
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.xml") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.xml") in
  let metric =
    Arg.(
      value
      & opt (enum [ ("mac", Metric.Esd.Mac); ("mac-linear", Mac_linear); ("emd", Emd) ])
          Metric.Esd.Mac
      & info [ "metric" ] ~doc:"Set distance: mac (default), mac-linear, emd.")
  in
  let run a b metric =
    let ta = read_doc a and tb = read_doc b in
    Printf.printf "ESD = %g\n" (Metric.Esd.between_trees ~metric ta tb);
    Printf.printf "tree-edit distance = %d\n" (Metric.Tree_edit.distance ta tb)
  in
  Cmd.v
    (Cmd.info "esd" ~doc:"Element Simulation Distance between two XML documents.")
    Term.(const run $ a $ b $ metric)

(* -------------------------------- stats ------------------------------- *)

let stats_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let run input =
    let doc = read_doc input in
    Format.printf "%a@." Xmldoc.Stats.pp (Xmldoc.Stats.compute doc);
    let stable = Sketch.Stable.build doc in
    Format.printf "count-stable summary: %d classes, %d bytes@."
      (Sketch.Synopsis.num_nodes stable)
      (Sketch.Synopsis.size_bytes stable)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Structural statistics of an XML document.")
    Term.(const run $ input)

let () =
  let doc = "Approximate XML query answering with TREESKETCH synopses." in
  (* The exit-code documentation is *rendered from* the same table the
     code exits through ([Xmldoc.Fault.exit_code_table]) — it cannot
     drift from behaviour, and a test pins the table to
     [Fault.exit_code] itself. *)
  let man =
    [
      `S Manpage.s_exit_status;
      `P "Every failure maps to a documented exit code:";
    ]
    @ List.concat_map
        (fun (code, cls, what) ->
          [ `I (Printf.sprintf "$(b,%d) (%s)" code cls, what) ])
        Xmldoc.Fault.exit_code_table
  in
  let info = Cmd.info "treesketch" ~version:"1.0.0" ~doc ~man in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            datagen_cmd;
            build_cmd;
            query_cmd;
            serve_cmd;
            verify_cmd;
            coordinate_cmd;
            client_cmd;
            esd_cmd;
            stats_cmd;
          ]))
