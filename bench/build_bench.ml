(* Synopsis construction bench: build throughput and snapshot load.

   The numbers ROADMAP item 1 still owed a committed baseline:

   - stable:   BUILD_STABLE over a generated XMark document
               (stable_build_s, and the headline nodes_per_sec =
               document elements / build seconds);
   - compress: the bottom-up TREESKETCH compression of that summary to
               a byte budget (compress_s);
   - save/load: atomic snapshot serialization and the cold load a
               serving process pays per catalog entry (save_s, load_s,
               snapshot_bytes).

   Results go to BENCH_build.json; --assert additionally fails the run
   unless the compression met its budget un-degraded and the loaded
   snapshot round-trips.  Absolute times are machine-bound, so the
   regression gate compares nodes_per_sec against a committed baseline
   as a FLOOR: fresh throughput must not fall below
   [baseline / (1 + tolerance)] (default tolerance 1.0, i.e. half the
   baseline — CI boxes are noisy).

   Usage: build_bench [--out PATH] [--scale S] [--budget BYTES]
                      [--assert] [--baseline FILE [--tolerance R]]
   Seeded via CHAOS_SEED (default pinned). *)

module Datasets = Datagen.Datasets

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x1A6E
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let usage () =
  prerr_endline
    "usage: build_bench [--out PATH] [--scale S] [--budget BYTES]\n\
    \                   [--assert] [--baseline FILE [--tolerance R]]";
  exit 2

let out_path = ref "BENCH_build.json"
let scale = ref 1.0
let budget = ref 8192
let assert_mode = ref false
let baseline_path = ref None
let tolerance = ref 1.0

let () =
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | "--scale" :: s :: rest -> (
      match float_of_string_opt s with
      | Some s when s > 0.0 ->
        scale := s;
        parse rest
      | _ -> usage ())
    | "--budget" :: b :: rest -> (
      match int_of_string_opt b with
      | Some b when b > 0 ->
        budget := b;
        parse rest
      | _ -> usage ())
    | "--assert" :: rest ->
      assert_mode := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      parse rest
    | "--tolerance" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r >= 0.0 ->
        tolerance := r;
        parse rest
      | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Baseline comparison (same scraping idiom as repair_bench)           *)
(* ------------------------------------------------------------------ *)

let scrape_floats text key =
  let needle = Printf.sprintf "\"%s\": " key in
  let out = ref [] in
  let len = String.length text and nlen = String.length needle in
  for i = 0 to len - nlen - 1 do
    if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < len
        && (match text.[!j] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr j
      done;
      match
        float_of_string_opt (String.sub text (i + nlen) (!j - i - nlen))
      with
      | Some f -> out := f :: !out
      | None -> ()
    end
  done;
  List.rev !out

let throughput text what =
  match scrape_floats text "nodes_per_sec" with
  | r :: _ -> r
  | [] -> failwith (Printf.sprintf "%s: cannot scrape nodes_per_sec" what)

let check_baseline ~current path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let baseline = really_input_string ic n in
  close_in ic;
  let base = throughput baseline ("baseline " ^ path) in
  let cur = throughput current "current run" in
  let floor = base /. (1.0 +. !tolerance) in
  Printf.printf
    "build bench baseline: nodes_per_sec %.0f vs baseline %.0f (floor %.0f, \
     tolerance %.0f%%)\n"
    cur base floor (!tolerance *. 100.0);
  if cur < floor then begin
    Printf.eprintf
      "FAIL: build throughput %.0f nodes/s fell below baseline %.0f / \
       (1 + %.0f%%) (%s)\n"
      cur base (!tolerance *. 100.0) path;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsbuildb" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let unwrap what = function
  | Ok v -> v
  | Error f -> failwith (what ^ ": " ^ Xmldoc.Fault.to_string f)

let () =
  with_temp_dir @@ fun dir ->
  let tree = Datasets.generate ~seed ~scale:!scale Datasets.Xmark in
  let tree_nodes = Xmldoc.Tree.size tree in
  (* stable summary: the linear pass whose throughput is the headline *)
  let t = Unix.gettimeofday () in
  let stable = Sketch.Stable.build tree in
  let stable_build_s = Unix.gettimeofday () -. t in
  let nodes_per_sec =
    if stable_build_s > 0.0 then float_of_int tree_nodes /. stable_build_s
    else 0.0
  in
  let stable_nodes = Sketch.Synopsis.num_nodes stable in
  (* compression to the byte budget *)
  let t = Unix.gettimeofday () in
  let outcome =
    unwrap "compress" (Sketch.Build.build_res stable ~budget:!budget)
  in
  let compress_s = Unix.gettimeofday () -. t in
  let sketch_nodes = Sketch.Synopsis.num_nodes outcome.Sketch.Build.synopsis in
  (* snapshot save + cold load *)
  let path = Filename.concat dir "bench.ts" in
  let t = Unix.gettimeofday () in
  unwrap "save"
    (Sketch.Serialize.save_atomic path outcome.Sketch.Build.synopsis);
  let save_s = Unix.gettimeofday () -. t in
  let snapshot_bytes = (Unix.stat path).Unix.st_size in
  let t = Unix.gettimeofday () in
  let loaded = unwrap "load" (Sketch.Serialize.load_res path) in
  let load_s = Unix.gettimeofday () -. t in
  let round_trips = Sketch.Synopsis.num_nodes loaded = sketch_nodes in
  let json =
    Printf.sprintf
      {|{
  "bench": "build",
  "seed": %d,
  "scale": %g,
  "budget_bytes": %d,
  "tree_nodes": %d,
  "stable_nodes": %d,
  "sketch_nodes": %d,
  "stable_build_s": %.4f,
  "nodes_per_sec": %.1f,
  "compress_s": %.4f,
  "compress_degraded": %b,
  "save_s": %.5f,
  "load_s": %.5f,
  "snapshot_bytes": %d,
  "load_round_trips": %b
}
|}
      seed !scale !budget tree_nodes stable_nodes sketch_nodes stable_build_s
      nodes_per_sec compress_s outcome.Sketch.Build.degraded save_s load_s
      snapshot_bytes round_trips
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Printf.printf
    "build bench: %d elements -> stable %d nodes in %.3fs (%.0f nodes/s), \
     compress %.3fs to %d nodes, save %.4fs load %.4fs (%d bytes) -> %s\n"
    tree_nodes stable_nodes stable_build_s nodes_per_sec compress_s
    sketch_nodes save_s load_s snapshot_bytes !out_path;
  if !assert_mode && (outcome.Sketch.Build.degraded || not round_trips)
  then begin
    Printf.eprintf "FAIL: degraded=%b round_trips=%b\n"
      outcome.Sketch.Build.degraded round_trips;
    exit 1
  end;
  match !baseline_path with
  | Some path -> check_baseline ~current:json path
  | None -> ()
