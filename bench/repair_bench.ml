(* Anti-entropy repair bench: time-to-detect and time-to-converge.

   Spins up a 3-replica group on Unix sockets, all serving the same
   snapshot byte for byte.  One member runs the background scrubber
   (scrub_interval = 0.25 s) with the other two configured as repair
   peers.  Each round corrupts that member's snapshot IN PLACE —
   size, inode and mtime preserved, so only a scrub re-read can see
   the rot — and measures, from the moment of corruption:

   - detect_s:   until the scrubber quarantines the snapshot
                 (the [event=scrub-quarantine] log line);
   - converge_s: until the on-disk bytes are restored exactly and the
                 quarantine is cleared (STAT answers [quarantined=no])
                 — i.e. the member pulled the clean copy from a peer
                 over FETCH and re-admitted it.

   Results go to BENCH_repair.json; --assert fails the run unless
   every round converged.  Raw seconds are machine-bound, so the
   regression gate compares mean detect/converge as MULTIPLES of the
   scrub interval — what the anti-entropy loop actually promises
   (detection within ~one period, convergence shortly after).

   --baseline FILE compares the fresh run against a committed
   BENCH_repair.json: the mean_converge_over_interval ratio must not
   regress past --tolerance (default 1.0, i.e. +100% — wall-clock
   ratios on a loaded CI box are noisy), and the baseline must itself
   have converged every round.

   Usage: repair_bench [--out PATH] [--rounds N] [--assert]
                       [--baseline FILE [--tolerance R]]
   Seeded via CHAOS_SEED (default pinned). *)

module Server = Serve.Server

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x9E4A
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let scrub_interval = 0.25
let round_deadline = 20.0

let usage () =
  prerr_endline
    "usage: repair_bench [--out PATH] [--rounds N] [--assert]\n\
    \                    [--baseline FILE [--tolerance R]]";
  exit 2

let out_path = ref "BENCH_repair.json"
let rounds = ref 5
let assert_mode = ref false
let baseline_path = ref None
let tolerance = ref 1.0

let () =
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | "--rounds" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        rounds := n;
        parse rest
      | _ -> usage ())
    | "--assert" :: rest ->
      assert_mode := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      parse rest
    | "--tolerance" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r >= 0.0 ->
        tolerance := r;
        parse rest
      | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Baseline comparison (same scraping idiom as serve_bench)            *)
(* ------------------------------------------------------------------ *)

let scrape_floats text key =
  let needle = Printf.sprintf "\"%s\": " key in
  let out = ref [] in
  let len = String.length text and nlen = String.length needle in
  for i = 0 to len - nlen - 1 do
    if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < len
        && (match text.[!j] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr j
      done;
      match
        float_of_string_opt (String.sub text (i + nlen) (!j - i - nlen))
      with
      | Some f -> out := f :: !out
      | None -> ()
    end
  done;
  List.rev !out

let converge_ratio text what =
  match scrape_floats text "mean_converge_over_interval" with
  | r :: _ -> r
  | [] ->
    failwith (Printf.sprintf "%s: cannot scrape mean_converge_over_interval" what)

let check_baseline ~current path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let baseline = really_input_string ic n in
  close_in ic;
  let base_ratio = converge_ratio baseline ("baseline " ^ path) in
  let cur_ratio = converge_ratio current "current run" in
  let ceiling = base_ratio *. (1.0 +. !tolerance) in
  Printf.printf
    "repair bench baseline: converge/interval %.3f vs baseline %.3f \
     (ceiling %.3f, tolerance %.0f%%)\n"
    cur_ratio base_ratio ceiling (!tolerance *. 100.0);
  if cur_ratio > ceiling then begin
    Printf.eprintf
      "FAIL: converge/interval ratio %.3f regressed past baseline %.3f \
       + %.0f%% tolerance (%s)\n"
      cur_ratio base_ratio (!tolerance *. 100.0) path;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsrepair" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let rec await_socket ?(attempts = 200) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Unix.close fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
    when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    await_socket ~attempts:(attempts - 1) path

let ask sock line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc (line ^ "\n");
      flush oc;
      input_line ic)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* A fixed, microsecond-exact mtime so an in-place corruption that
   restores it leaves the catalog fingerprint unchanged — invisible to
   auto-reload, visible only to the scrub's re-read. *)
let t0 = 1_700_000_000.0

let corrupt_in_place path ~at =
  let text = read_file path in
  let n = String.length text in
  let at = min at (n - 1) in
  let b = Bytes.of_string text in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  let rec w off = if off < n then w (off + Unix.write fd b off (n - off)) in
  w 0;
  Unix.close fd;
  Unix.utimes path t0 t0

type round = { detect_s : float; converge_s : float; converged : bool }

let () =
  with_temp_dir @@ fun d0 ->
  with_temp_dir @@ fun d1 ->
  with_temp_dir @@ fun d2 ->
  let doc =
    "<db><movie><actor/><actor/><title/></movie>\
     <movie><actor/><title/></movie><short><title/></short></db>"
  in
  (match
     Sketch.Serialize.save_atomic
       (Filename.concat d0 "db.ts")
       (Sketch.Stable.build (Xmldoc.Parser.of_string doc))
   with
  | Ok () -> ()
  | Error f -> failwith (Xmldoc.Fault.to_string f));
  let clean = read_file (Filename.concat d0 "db.ts") in
  List.iter
    (fun d ->
      match Sketch.Serialize.write_atomic (Filename.concat d "db.ts") clean with
      | Ok () -> ()
      | Error f -> failwith (Xmldoc.Fault.to_string f))
    [ d1; d2 ];
  let path0 = Filename.concat d0 "db.ts" in
  Unix.utimes path0 t0 t0;
  let s0 = Filename.concat d0 "r0.sock" in
  let s1 = Filename.concat d1 "r1.sock" in
  let s2 = Filename.concat d2 "r2.sock" in
  (* timestamped log capture: detection is measured at the instant the
     scrubber's quarantine line is emitted, not at our next poll *)
  let log_lock = Mutex.create () in
  let quarantines = ref [] in
  let log line =
    if contains line "event=scrub-quarantine name=db" then
      Mutex.protect log_lock (fun () ->
          quarantines := Unix.gettimeofday () :: !quarantines)
  in
  let quarantine_count () =
    Mutex.protect log_lock (fun () -> List.length !quarantines)
  in
  let latest_quarantine () =
    Mutex.protect log_lock (fun () -> List.hd !quarantines)
  in
  let config0 =
    {
      Server.default_config with
      scrub_interval;
      peers = [ s1; s2 ];
      repair_timeout = 2.0;
      drain_deadline = 2.0;
    }
  in
  let server0 = Server.create ~log ~config:config0 d0 in
  let peers =
    [ Server.create ~log:(fun _ -> ()) d1; Server.create ~log:(fun _ -> ()) d2 ]
  in
  let all = server0 :: peers in
  let threads =
    List.map2
      (fun server sock ->
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ())
      all [ s0; s1; s2 ]
  in
  List.iter await_socket [ s0; s1; s2 ];
  Fun.protect
    ~finally:(fun () ->
      List.iter Server.request_drain all;
      List.iter Thread.join threads)
  @@ fun () ->
  ignore seed;
  let run_round i =
    (* re-pin the fingerprint: the previous repair installed a fresh
       inode with a real mtime, so normalize and reload BEFORE
       corrupting — otherwise the mtime change itself would tip off
       auto-reload and the round would measure the wrong detector *)
    Unix.utimes path0 t0 t0;
    if not (contains (ask s0 "RELOAD") "ok reload") then
      failwith "reload refused";
    let before = quarantine_count () in
    let t_corrupt = Unix.gettimeofday () in
    corrupt_in_place path0 ~at:(String.length clean / 2);
    let deadline = t_corrupt +. round_deadline in
    let rec await_detect () =
      if quarantine_count () > before then latest_quarantine () -. t_corrupt
      else if Unix.gettimeofday () > deadline then -1.0
      else begin
        Thread.delay 0.01;
        await_detect ()
      end
    in
    let detect_s = await_detect () in
    let converged_now () =
      read_file path0 = clean && contains (ask s0 "STAT db") "quarantined=no"
    in
    let rec await_converge () =
      if converged_now () then Unix.gettimeofday () -. t_corrupt
      else if Unix.gettimeofday () > deadline then -1.0
      else begin
        Thread.delay 0.01;
        await_converge ()
      end
    in
    let converge_s = if detect_s < 0.0 then -1.0 else await_converge () in
    let converged = detect_s >= 0.0 && converge_s >= 0.0 in
    Printf.printf "repair bench: round %d detect=%.3fs converge=%.3fs%s\n%!" i
      detect_s converge_s
      (if converged then "" else " TIMED OUT");
    { detect_s; converge_s; converged }
  in
  let results = List.init !rounds (fun i -> run_round (i + 1)) in
  let ok_rounds = List.filter (fun r -> r.converged) results in
  let all_converged = List.length ok_rounds = List.length results in
  let mean f =
    match ok_rounds with
    | [] -> -1.0
    | l -> List.fold_left (fun a r -> a +. f r) 0.0 l /. float_of_int (List.length l)
  in
  let maxi f =
    List.fold_left (fun a r -> Float.max a (f r)) 0.0 ok_rounds
  in
  let mean_detect = mean (fun r -> r.detect_s) in
  let mean_converge = mean (fun r -> r.converge_s) in
  let round_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "    { \"detect_s\": %.4f, \"converge_s\": %.4f, \
              \"converged\": %b }"
             r.detect_s r.converge_s r.converged)
         results)
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "repair",
  "seed": %d,
  "replicas": 3,
  "scrub_interval_s": %g,
  "rounds": [
%s
  ],
  "mean_detect_s": %.4f,
  "max_detect_s": %.4f,
  "mean_converge_s": %.4f,
  "max_converge_s": %.4f,
  "mean_detect_over_interval": %.3f,
  "mean_converge_over_interval": %.3f,
  "all_rounds_converged": %b
}
|}
      seed scrub_interval round_json mean_detect
      (maxi (fun r -> r.detect_s))
      mean_converge
      (maxi (fun r -> r.converge_s))
      (mean_detect /. scrub_interval)
      (mean_converge /. scrub_interval)
      all_converged
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Printf.printf
    "repair bench: mean detect=%.3fs converge=%.3fs (interval %.2fs) -> %s\n"
    mean_detect mean_converge scrub_interval !out_path;
  if !assert_mode && not all_converged then begin
    Printf.eprintf "FAIL: %d of %d rounds did not converge\n"
      (List.length results - List.length ok_rounds)
      (List.length results);
    exit 1
  end;
  match !baseline_path with
  | Some path -> check_baseline ~current:json path
  | None -> ()
