(* Micro-benchmarks (bechamel): throughput of the core operations —
   parsing, BUILD_STABLE, TSBUILD compression, EVAL_QUERY, selectivity
   estimation, and ESD scoring.  These back the paper's claim that a
   concise synopsis answers queries orders of magnitude faster than
   evaluation over the base data. *)

open Bechamel
open Toolkit

let tests cfg =
  let p = List.hd (Data.tx cfg) in
  let xml = Xmldoc.Printer.to_string p.Data.doc in
  let ts = snd (List.hd (Data.treesketches cfg p)) in
  let query = List.nth p.queries (List.length p.queries / 2) in
  let true_nest =
    match (Twig.Eval.run p.idx query).nesting with
    | Some nt -> Sketch.Stable.build nt
    | None -> p.stable
  in
  let answer = (Sketch.Eval.eval ts query).Sketch.Eval.synopsis in
  [
    Test.make ~name:"parse document"
      (Staged.stage (fun () -> ignore (Xmldoc.Parser.of_string xml)));
    Test.make ~name:"build stable summary"
      (Staged.stage (fun () -> ignore (Sketch.Stable.build p.doc)));
    Test.make ~name:"tsbuild to 10KB"
      (Staged.stage (fun () ->
           ignore (Sketch.Build.build p.stable ~budget:(10 * 1024))));
    (* same compression journaling every 64 merges: the price of
       crash-safe resumability (atomic fsynced checkpoint writes) *)
    Test.make ~name:"tsbuild to 10KB (checkpointed)"
      (Staged.stage
         (let ckpt = Filename.temp_file "tsbench" ".ckpt" in
          at_exit (fun () -> try Sys.remove ckpt with Sys_error _ -> ());
          fun () ->
            ignore
              (Sketch.Build.build_checkpointed_res ~checkpoint_every:64
                 ~checkpoint:ckpt p.stable ~budget:(10 * 1024))));
    Test.make ~name:"exact query eval"
      (Staged.stage (fun () -> ignore (Twig.Eval.selectivity p.idx query)));
    Test.make ~name:"EVAL_QUERY over 10KB sketch"
      (Staged.stage (fun () -> ignore (Sketch.Eval.eval ts query)));
    Test.make ~name:"selectivity estimate"
      (Staged.stage (fun () -> ignore (Sketch.Selectivity.estimate ts query)));
    Test.make ~name:"ESD scoring"
      (Staged.stage (fun () ->
           ignore (Metric.Esd.between_synopses true_nest answer)));
  ]

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

let run cfg =
  Report.header "Micro-benchmarks (bechamel, monotonic clock per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let bench_cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests cfg) in
  let raw = Benchmark.all bench_cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    clock;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-32s %s\n" name (pretty_ns ns))
    (List.sort (fun (_, a) (_, b) -> Stdlib.compare a b) !rows);
  Report.note "(IMDB-TX document; 10KB TreeSketch; one mid-workload twig query.)"
