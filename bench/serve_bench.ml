(* Serve-path latency bench: single replica vs hedged replica group.

   Spins up three in-process replica servers on Unix sockets, arms a
   seeded Io_fault read-delay rule against ONE of them (a "brownout":
   the replica answers, but slowly, [prob] of the time), then measures
   per-request latency two ways over the same request stream:

   - single:  a plain Serve.Client pinned to the slow replica — what
     one-server deployments eat today;
   - hedged:  the Coordinator over all three replicas with a tight
     hedge —  stalled requests are raced against the next-healthiest
     member and the first well-formed answer wins.

   Results go to BENCH_serve.json (p50/p95/p99 ms, req/s, hedge rate)
   so the tail-latency claim has a machine-readable trajectory;
   --assert additionally fails the run unless hedged p99 beats the
   single-replica p99, which is the whole point of the subsystem.

   --baseline FILE compares the fresh run against a committed
   BENCH_serve.json: the hedged/single p99 ratio — machine-independent,
   unlike raw milliseconds — must not regress past --tolerance
   (default 0.5, i.e. +50%), and the baseline's beats-flag must still
   hold.

   Usage: serve_bench [--out PATH] [--requests N] [--assert]
                      [--baseline FILE [--tolerance R]]
   Seeded via CHAOS_SEED (default pinned). *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Client = Serve.Client
module Coordinator = Serve.Coordinator
module Replica = Serve.Replica

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x5EBE
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let delay_s = 0.12
let delay_prob = 0.25
let hedge_after = 0.03
let query = "QUERY db //movie[//actor]"

let usage () =
  prerr_endline
    "usage: serve_bench [--out PATH] [--requests N] [--assert]\n\
    \                   [--baseline FILE [--tolerance R]]";
  exit 2

let out_path = ref "BENCH_serve.json"
let requests = ref 150
let assert_mode = ref false
let baseline_path = ref None
let tolerance = ref 0.5

let () =
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | "--requests" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        requests := n;
        parse rest
      | _ -> usage ())
    | "--assert" :: rest ->
      assert_mode := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      parse rest
    | "--tolerance" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r >= 0.0 ->
        tolerance := r;
        parse rest
      | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)
(* ------------------------------------------------------------------ *)

(* Just enough JSON scraping for our own output format: the [n]th
   ["key": <num>] occurrence in the file.  Raw latencies are machine-
   bound, so the regression gate compares the hedged/single p99 RATIO
   — what the subsystem actually promises — not milliseconds. *)
let scrape_floats text key =
  let needle = Printf.sprintf "\"%s\": " key in
  let out = ref [] in
  let len = String.length text and nlen = String.length needle in
  for i = 0 to len - nlen - 1 do
    if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < len
        && (match text.[!j] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr j
      done;
      match float_of_string_opt (String.sub text (i + nlen) (!j - i - nlen)) with
      | Some f -> out := f :: !out
      | None -> ()
    end
  done;
  List.rev !out

let p99_ratio text what =
  match scrape_floats text "p99_ms" with
  | single :: hedged :: _ when single > 0.0 -> hedged /. single
  | _ -> failwith (Printf.sprintf "%s: cannot scrape p99_ms pair" what)

let check_baseline ~current path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let baseline = really_input_string ic n in
  close_in ic;
  let base_ratio = p99_ratio baseline ("baseline " ^ path) in
  let cur_ratio = p99_ratio current "current run" in
  let ceiling = base_ratio *. (1.0 +. !tolerance) in
  Printf.printf
    "serve bench baseline: p99 ratio %.3f vs baseline %.3f (ceiling %.3f, \
     tolerance %.0f%%)\n"
    cur_ratio base_ratio ceiling (!tolerance *. 100.0);
  if cur_ratio > ceiling then begin
    Printf.eprintf
      "FAIL: hedged/single p99 ratio %.3f regressed past baseline %.3f \
       + %.0f%% tolerance (%s)\n"
      cur_ratio base_ratio (!tolerance *. 100.0) path;
    exit 1
  end

let with_temp_dir f =
  let dir = Filename.temp_file "tsbench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let rec await_socket ?(attempts = 200) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Unix.close fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
    when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    await_socket ~attempts:(attempts - 1) path

(* latencies in seconds -> percentile in ms *)
let percentile_ms samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let idx = min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1) in
  a.(max 0 idx) *. 1000.0

type side = {
  p50 : float;
  p95 : float;
  p99 : float;
  req_per_s : float;
}

let measure f n =
  let lat = ref [] in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    let r0 = Unix.gettimeofday () in
    f i;
    lat := (Unix.gettimeofday () -. r0) :: !lat
  done;
  let wall = Unix.gettimeofday () -. t0 in
  {
    p50 = percentile_ms !lat 0.50;
    p95 = percentile_ms !lat 0.95;
    p99 = percentile_ms !lat 0.99;
    req_per_s = float_of_int n /. wall;
  }

let ok_answer what response =
  if
    not
      (String.length response >= 3
      && String.sub response 0 3 = "ok "
      || String.length response >= 6
         && String.sub response 0 6 = "error ")
  then failwith (Printf.sprintf "%s: malformed reply %S" what response)

let () =
  with_temp_dir @@ fun dir ->
  let doc =
    "<db><movie><actor/><actor/><title/></movie>\
     <movie><actor/><title/></movie><short><title/></short></db>"
  in
  (match
     Sketch.Serialize.save_atomic
       (Filename.concat dir "db.ts")
       (Sketch.Stable.build (Xmldoc.Parser.of_string doc))
   with
  | Ok () -> ()
  | Error f -> failwith (Xmldoc.Fault.to_string f));
  let socks =
    List.init 3 (fun i -> Filename.concat dir (Printf.sprintf "r%d.sock" i))
  in
  let servers =
    List.map (fun _ -> Server.create ~log:(fun _ -> ()) dir) socks
  in
  let threads =
    List.map2
      (fun server sock ->
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ())
      servers socks
  in
  List.iter await_socket socks;
  let slow = List.hd socks in
  Fun.protect
    ~finally:(fun () ->
      F.disarm ();
      List.iter Server.request_drain servers;
      List.iter Thread.join threads)
  @@ fun () ->
  F.arm ~seed
    [ F.rule ~prob:delay_prob ~path:(Filename.basename slow) F.Read
        (F.Delay delay_s) ];
  let n = !requests in
  (* single replica, pinned to the slow one *)
  let client =
    Client.create
      ~config:{ Client.default_config with request_timeout = 5.0 }
      [ slow ]
  in
  let single =
    measure
      (fun i ->
        match Client.request client query with
        | Ok response -> ok_answer (Printf.sprintf "single %d" i) response
        | Error e -> failwith (Client.error_to_string e))
      n
  in
  Client.close client;
  (* hedged group: same stream through the coordinator *)
  let coord =
    Coordinator.create
      ~log:(fun _ -> ())
      ~config:
        {
          Coordinator.default_config with
          hedge_after;
          request_timeout = 5.0;
          retry_ratio = 0.5;
          retry_burst = 20.0;
          probe_interval = 0.25;
        }
      socks
  in
  let hedged =
    measure
      (fun i ->
        let response, _ = Coordinator.handle_line coord query in
        ok_answer (Printf.sprintf "hedged %d" i) response)
      n
  in
  let stats = Coordinator.stats coord in
  let hedge_rate =
    if stats.Coordinator.forwarded = 0 then 0.0
    else
      float_of_int stats.Coordinator.hedges
      /. float_of_int stats.Coordinator.forwarded
  in
  let beats = hedged.p99 < single.p99 in
  let json =
    Printf.sprintf
      {|{
  "bench": "serve",
  "seed": %d,
  "requests": %d,
  "query": %S,
  "slow_replica_fault": { "path": %S, "prob": %g, "delay_s": %g },
  "hedge_after_s": %g,
  "single": { "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "req_per_s": %.1f },
  "hedged": { "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "req_per_s": %.1f,
              "hedge_rate": %.4f, "hedges": %d, "hedges_won": %d,
              "budget_spent": %d, "budget_denied": %d },
  "hedged_p99_beats_single_p99": %b
}
|}
      seed n query (Filename.basename slow) delay_prob delay_s hedge_after
      single.p50 single.p95 single.p99 single.req_per_s hedged.p50 hedged.p95
      hedged.p99 hedged.req_per_s hedge_rate stats.Coordinator.hedges
      stats.Coordinator.hedges_won
      (Replica.Budget.spent (Coordinator.budget coord))
      (Replica.Budget.denied (Coordinator.budget coord))
      beats
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Printf.printf
    "serve bench: single p99=%.1fms hedged p99=%.1fms (hedge rate %.1f%%) -> %s\n"
    single.p99 hedged.p99 (hedge_rate *. 100.0) !out_path;
  if !assert_mode && not beats then begin
    Printf.eprintf
      "FAIL: hedged p99 (%.1fms) did not beat single-replica p99 (%.1fms)\n"
      hedged.p99 single.p99;
    exit 1
  end;
  match !baseline_path with
  | Some path -> check_baseline ~current:json path
  | None -> ()
