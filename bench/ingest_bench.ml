(* Durable ingestion bench: acknowledgement latency, flush cost and
   WAL replay speed.

   Drives the {!Serve.Ingest} engine directly — the same durable path
   the INGEST verb takes (validate, WAL append, fsync, ack) without the
   socket in the way, so the numbers isolate what durability costs:

   - ack:    per-record acknowledgement latency over N ingests into an
             unbounded memtable (mean_ack_ms / max_ack_ms /
             acks_per_sec) — each ack is a validated parse plus a
             CRC-framed fsync'd append;
   - flush:  one flush of the full N-record memtable into an L0 delta
             level (flush_s), manifest swap and WAL trim included;
   - replay: N more acknowledged-but-unflushed records, engine closed,
             then a cold reopen (replay_s / replays_per_sec) — the
             restart cost a crash-recovering server pays before it can
             serve the acked tail;
   - mutate: N/4 DELETE tombstones and N/4 UPDATE records
             (mean_delete_ack_ms / mean_update_ack_ms) — the v2 WAL
             frames ride the same append+fsync path as inserts, so
             their acks should cost the same;
   - shed:   a 2N-insert flood through {!Serve.Write_pressure}
             admission with [depth_high = N] and no flush: the first N
             admit, the rest shed (shed_rate) — the admission control
             itself, measured without a socket.

   Results go to BENCH_ingest.json; --assert additionally fails the
   run unless every ack landed, the replay restored exactly the
   unflushed tail, and the flood actually shed.  Absolute latencies
   are machine-bound, so the regression gate compares mean_ack_ms,
   mean_delete_ack_ms and mean_update_ack_ms against a committed
   baseline as ceilings: fresh means must not exceed
   [baseline * (1 + tolerance)] (default tolerance 1.0, i.e. +100% —
   fsync latency on a loaded CI box is noisy).  shed_rate is gated as
   a ratio in both directions — admission control drifting to shed
   much more or much less than the baseline under the same flood is a
   behavior change, not noise.

   Usage: ingest_bench [--out PATH] [--records N] [--assert]
                       [--baseline FILE [--tolerance R]]
   Seeded via CHAOS_SEED (default pinned). *)

module Ingest = Serve.Ingest

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x1A6E
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let usage () =
  prerr_endline
    "usage: ingest_bench [--out PATH] [--records N] [--assert]\n\
    \                    [--baseline FILE [--tolerance R]]";
  exit 2

let out_path = ref "BENCH_ingest.json"
let records = ref 300
let assert_mode = ref false
let baseline_path = ref None
let tolerance = ref 1.0

let () =
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | "--records" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        records := n;
        parse rest
      | _ -> usage ())
    | "--assert" :: rest ->
      assert_mode := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      parse rest
    | "--tolerance" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r >= 0.0 ->
        tolerance := r;
        parse rest
      | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Baseline comparison (same scraping idiom as repair_bench)           *)
(* ------------------------------------------------------------------ *)

let scrape_floats text key =
  let needle = Printf.sprintf "\"%s\": " key in
  let out = ref [] in
  let len = String.length text and nlen = String.length needle in
  for i = 0 to len - nlen - 1 do
    if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < len
        && (match text.[!j] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr j
      done;
      match
        float_of_string_opt (String.sub text (i + nlen) (!j - i - nlen))
      with
      | Some f -> out := f :: !out
      | None -> ()
    end
  done;
  List.rev !out

let scrape_one text key what =
  match scrape_floats text key with
  | r :: _ -> r
  | [] -> failwith (Printf.sprintf "%s: cannot scrape %s" what key)

let check_baseline ~current path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let baseline = really_input_string ic n in
  close_in ic;
  (* Latency keys gate as ceilings: only a regression (slower) fails. *)
  List.iter
    (fun key ->
      let base = scrape_one baseline key ("baseline " ^ path) in
      let cur = scrape_one current key "current run" in
      let ceiling = base *. (1.0 +. !tolerance) in
      Printf.printf
        "ingest bench baseline: %s %.4f vs baseline %.4f (ceiling %.4f, \
         tolerance %.0f%%)\n"
        key cur base ceiling (!tolerance *. 100.0);
      if cur > ceiling then begin
        Printf.eprintf
          "FAIL: %s %.4f regressed past baseline %.4f + %.0f%% tolerance \
           (%s)\n"
          key cur base (!tolerance *. 100.0) path;
        exit 1
      end)
    [ "mean_ack_ms"; "mean_delete_ack_ms"; "mean_update_ack_ms" ];
  (* The shed rate gates as a two-sided ratio: the same seeded flood
     shedding much more is lost writes, much less is lost protection. *)
  let base = scrape_one baseline "shed_rate" ("baseline " ^ path) in
  let cur = scrape_one current "shed_rate" "current run" in
  let hi = base *. (1.0 +. !tolerance) in
  let lo = base /. (1.0 +. !tolerance) in
  Printf.printf
    "ingest bench baseline: shed_rate %.4f vs baseline %.4f (band \
     [%.4f, %.4f])\n"
    cur base lo hi;
  if base > 0.0 && (cur > hi || cur < lo) then begin
    Printf.eprintf
      "FAIL: shed_rate %.4f left the baseline band [%.4f, %.4f] (%s)\n" cur
      lo hi path;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsingestb" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let unwrap what = function
  | Ok v -> v
  | Error f -> failwith (what ^ ": " ^ Xmldoc.Fault.to_string f)

(* The fragment every record carries: small and fixed, so the bench
   measures the durability machinery, not the parser. *)
let fragment i = Printf.sprintf "<event><kind/><payload n=\"%d\"/></event>" i

let () =
  with_temp_dir @@ fun dir ->
  let n = !records in
  let open_engine () =
    unwrap "engine open"
      (Ingest.open_ ~dir ~name:"bench" ~level_budget:4096
         ~flush_records:(2 * (2 * n)) ())
  in
  let eng = open_engine () in
  (* phase 1: acknowledgement latency *)
  let acks = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let t = Unix.gettimeofday () in
    (match Ingest.ingest eng ~xml:(fragment i) with
    | Ok _ -> ()
    | Error `No_space -> failwith "ENOSPC during bench"
    | Error (`Fault f) -> failwith ("ingest: " ^ Xmldoc.Fault.to_string f));
    acks.(i) <- Unix.gettimeofday () -. t
  done;
  let ack_total = Unix.gettimeofday () -. t0 in
  let mean_ack_ms =
    Array.fold_left ( +. ) 0.0 acks *. 1000.0 /. float_of_int n
  in
  let max_ack_ms = Array.fold_left Float.max 0.0 acks *. 1000.0 in
  let acks_per_sec = float_of_int n /. ack_total in
  (* phase 2: one flush of the full memtable *)
  let t = Unix.gettimeofday () in
  let flushed = unwrap "flush" (Ingest.flush eng) in
  let flush_s = Unix.gettimeofday () -. t in
  if not flushed then failwith "flush published nothing";
  (* phase 2b: delete / update acknowledgement latency — v2 WAL frames
     through the same append+fsync path.  The predicate is constant
     ("event"); after the first delete the rest match nothing, which is
     exactly the point: the ack cost is the durability machinery, not
     the match. *)
  let n_mut = max 1 (n / 4) in
  let time_mutations what op =
    let samples = Array.make n_mut 0.0 in
    for i = 0 to n_mut - 1 do
      let t = Unix.gettimeofday () in
      (match op i with
      | Ok _ -> ()
      | Error `No_space -> failwith ("ENOSPC during " ^ what)
      | Error (`Fault f) -> failwith (what ^ ": " ^ Xmldoc.Fault.to_string f));
      samples.(i) <- Unix.gettimeofday () -. t
    done;
    Array.fold_left ( +. ) 0.0 samples *. 1000.0 /. float_of_int n_mut
  in
  let mean_delete_ack_ms =
    time_mutations "delete" (fun _ -> Ingest.delete eng ~path:"event")
  in
  let mean_update_ack_ms =
    time_mutations "update" (fun i ->
        Ingest.update eng ~path:"event" ~xml:(fragment i))
  in
  (* drain the mutation batch so the replay phase still measures a
     pure n-insert tail *)
  ignore (unwrap "mutation flush" (Ingest.flush eng) : bool);
  (* phase 3: cold replay of an acked-but-unflushed tail *)
  for i = 0 to n - 1 do
    match Ingest.ingest eng ~xml:(fragment (n + i)) with
    | Ok _ -> ()
    | Error _ -> failwith "tail ingest failed"
  done;
  Ingest.close eng;
  let t = Unix.gettimeofday () in
  let eng2 = open_engine () in
  let replay_s = Unix.gettimeofday () -. t in
  let replayed = Ingest.depth eng2 in
  Ingest.close eng2;
  let replays_per_sec =
    if replay_s > 0.0 then float_of_int replayed /. replay_s else 0.0
  in
  let exact_replay = replayed = n in
  (* phase 4: admission-control shed rate.  A 2N flood against a
     pressure controller with depth_high = N and no flushing: the
     first N admit (half of them paced), then pressure pins at 1.0
     and every further insert sheds.  Deterministic by construction —
     the gate is a behavior check on admission, not a latency. *)
  let flood =
    unwrap "flood open"
      (Ingest.open_ ~dir ~name:"flood" ~level_budget:4096
         ~flush_records:(4 * n) ())
  in
  let wp =
    Serve.Write_pressure.create
      ~config:
        {
          Serve.Write_pressure.default_config with
          depth_high = n;
          probe_interval = 0.0;
        }
      ~disk_free:(fun () -> None)
      ~dir ()
  in
  let shed_attempts = 2 * n in
  let shed_count = ref 0 in
  let paced_count = ref 0 in
  for i = 0 to shed_attempts - 1 do
    Serve.Write_pressure.observe wp ~wal_bytes:(Ingest.wal_bytes flood)
      ~depth:(Ingest.depth flood) ~lag:0.0;
    match Serve.Write_pressure.admit wp with
    | `Admit hint -> (
      if hint <> None then incr paced_count;
      match Ingest.ingest flood ~xml:(fragment i) with
      | Ok _ -> ()
      | Error _ -> failwith "flood ingest failed")
    | `Defer _ | `Readonly -> incr shed_count
  done;
  Ingest.close flood;
  let shed_rate = float_of_int !shed_count /. float_of_int shed_attempts in
  let json =
    Printf.sprintf
      {|{
  "bench": "ingest",
  "seed": %d,
  "records": %d,
  "mean_ack_ms": %.4f,
  "max_ack_ms": %.4f,
  "acks_per_sec": %.1f,
  "flush_s": %.4f,
  "replayed_records": %d,
  "replay_s": %.4f,
  "replays_per_sec": %.1f,
  "exact_replay": %b,
  "mutation_records": %d,
  "mean_delete_ack_ms": %.4f,
  "mean_update_ack_ms": %.4f,
  "shed_attempts": %d,
  "shed_count": %d,
  "paced_count": %d,
  "shed_rate": %.4f
}
|}
      seed n mean_ack_ms max_ack_ms acks_per_sec flush_s replayed replay_s
      replays_per_sec exact_replay n_mut mean_delete_ack_ms mean_update_ack_ms
      shed_attempts !shed_count !paced_count shed_rate
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Printf.printf
    "ingest bench: %d records, ack mean=%.3fms max=%.3fms (%.0f/s), \
     flush=%.3fs, replay %d in %.3fs, delete=%.3fms update=%.3fms, shed \
     %d/%d (%.2f) -> %s\n"
    n mean_ack_ms max_ack_ms acks_per_sec flush_s replayed replay_s
    mean_delete_ack_ms mean_update_ack_ms !shed_count shed_attempts shed_rate
    !out_path;
  if !assert_mode && not exact_replay then begin
    Printf.eprintf "FAIL: replay restored %d of %d unflushed records\n"
      replayed n;
    exit 1
  end;
  if !assert_mode && (!shed_count = 0 || !shed_count = shed_attempts) then begin
    Printf.eprintf
      "FAIL: admission flood shed %d of %d — the controller never engaged \
       (or never admitted)\n"
      !shed_count shed_attempts;
    exit 1
  end;
  match !baseline_path with
  | Some path -> check_baseline ~current:json path
  | None -> ()
