(* Brownout bench: p99 latency and answer accuracy vs offered load,
   with and without adaptive degradation.

   One in-process server fronts a 4-tier ladder snapshot (64KB halving
   to 8KB) of a scale-4 XMark document.  Closed-loop client threads
   offer load at two concurrency levels; each cell is run twice — once
   against a plain server (every answer from the finest tier) and once
   with --brownout semantics (the Overload controller steps the served
   tier with pressure).  Latency comes from QUERY requests (pure
   synopsis eval under the server's eval lock — the queueing that IS
   the overload); every 8th request is an ANSWER whose nesting tree is
   compared (ESD) against the finest tier's answer, pricing the
   accuracy the brownout spent to buy its latency back.

   Results go to BENCH_overload.json; --assert fails the run unless
   the browned-out p99 at the highest offered load is strictly below
   the no-brownout p99 at the same load — the tentpole claim.

   Usage: overload_bench [--out PATH] [--requests N] [--assert]
   Seeded via CHAOS_SEED (default pinned; seeds the datagen doc). *)

module Server = Serve.Server
module Client = Serve.Client
module Overload = Serve.Overload

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0xB10F
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let budget = 128 * 1024
let tiers = 4
let query_text = "//item[//mail]{//incategory?}"
let query_line = "QUERY db " ^ query_text
(* Tight node cap: ANSWER requests are the accuracy probe, not the
   latency signal — capping the expansion keeps their eval-lock hold
   time (which no tier can shrink) from dominating every percentile. *)
let answer_line = "ANSWER -max-nodes=1000 db " ^ query_text
let loads = [ 2; 8 ]

(* Engage on either signal: a latency EWMA past 5ms (tier-0 eval alone
   costs ~1ms on this ladder, so a queue of a few requests trips it) or
   a connection backlog past 6 (the high-load cell below runs 8).  The
   short dwell lets the controller reach the coarsest rung within a few
   dozen requests of a load step. *)
let brownout_config =
  {
    Overload.default_config with
    target_latency = 0.005;
    depth_high = 6;
    dwell = 0.05;
  }

let usage () =
  prerr_endline "usage: overload_bench [--out PATH] [--requests N] [--assert]";
  exit 2

let out_path = ref "BENCH_overload.json"
let requests = ref 300
let assert_mode = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | "--requests" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        requests := n;
        parse rest
      | _ -> usage ())
    | "--assert" :: rest ->
      assert_mode := true;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let with_temp_dir f =
  let dir = Filename.temp_file "tsoverload" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let rec await_socket ?(attempts = 200) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Unix.close fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
    when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    await_socket ~attempts:(attempts - 1) path

let percentile_ms samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let idx = min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1) in
  a.(max 0 idx) *. 1000.0

(* [tier=<k>/<n>] from a response line; absent (plain snapshot, plain
   server never tags) reads as tier 0. *)
let tier_of_response line =
  List.fold_left
    (fun acc word ->
      if String.length word > 5 && String.sub word 0 5 = "tier=" then
        match String.index_opt word '/' with
        | Some slash -> (
          match int_of_string_opt (String.sub word 5 (slash - 5)) with
          | Some k -> k
          | None -> acc)
        | None -> acc
      else acc)
    0
    (String.split_on_char ' ' line)

(* Answer-tree labels are synopsis classes ([q0#site]); '#' is not an
   XML name character, so both the served tree and the local reference
   go through the same sanitizer before re-parsing — ESD only needs
   label equality, not the original spelling. *)
let sanitize = String.map (fun c -> if c = '#' then '-' else c)

let tree_of_response line =
  let marker = " tree=" in
  let rec find i =
    if i + String.length marker > String.length line then None
    else if String.sub line i (String.length marker) = marker then
      Some (String.sub line
              (i + String.length marker)
              (String.length line - i - String.length marker))
    else find (i + 1)
  in
  Option.map (fun xml -> Xmldoc.Parser.of_string (sanitize xml)) (find 0)

type cell = {
  p50 : float;
  p95 : float;
  p99 : float;
  req_per_s : float;
  mean_esd : float;
  esd_samples : int;
  tier_hist : int array;  (* requests answered per tier *)
}

(* Unmeasured requests per thread before the clock starts: the
   controller takes [dwell] x max_level of sustained pressure to walk
   down the ladder, and the requests it serves while still ramping see
   fine-tier latencies at full queue depth — a steady-state bench must
   not let the warm-up transient own the tail. *)
let warmup_per_thread = 24

(* One load cell: [load] closed-loop client threads splitting [n]
   requests, every 16th an ANSWER scored against [reference]. *)
let run_cell ~sock ~load ~n ~reference =
  let lock = Mutex.create () in
  let lats = ref [] in
  let esds = ref [] in
  let hist = Array.make tiers 0 in
  let per_thread = max 1 (n / load) in
  let failure = ref None in
  let worker_body _ =
    let client =
      Client.create
        ~config:{ Client.default_config with request_timeout = 30.0 }
        [ sock ]
    in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    for _ = 1 to warmup_per_thread do
      match Client.request client query_line with
      | Ok _ -> ()
      | Error e -> failwith (Client.error_to_string e)
    done;
    for i = 1 to per_thread do
      let want_answer = i mod 16 = 0 in
      let line = if want_answer then answer_line else query_line in
      let t0 = Unix.gettimeofday () in
      match Client.request client line with
      | Error e -> failwith (Client.error_to_string e)
      | Ok response ->
        let dt = Unix.gettimeofday () -. t0 in
        let tier = tier_of_response response in
        let esd =
          if want_answer then
            Option.map
              (fun tree -> Metric.Esd.between_trees reference tree)
              (tree_of_response response)
          else None
        in
        Mutex.protect lock (fun () ->
            (* percentiles over QUERY only: ANSWER latency is dominated
               by tree expansion + transport, which does not shrink
               with the tier — mixing it in would mask the very signal
               the brownout claims to move *)
            if not want_answer then lats := dt :: !lats;
            if tier >= 0 && tier < tiers then hist.(tier) <- hist.(tier) + 1;
            match esd with
            | Some d -> esds := d :: !esds
            | None -> ())
    done
  in
  let worker i =
    try worker_body i
    with e ->
      Mutex.protect lock (fun () ->
          if !failure = None then failure := Some (Printexc.to_string e))
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init load (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  (match !failure with
  | Some msg -> failwith ("overload bench worker: " ^ msg)
  | None -> ());
  let wall = Unix.gettimeofday () -. t0 in
  let count = List.length !lats in
  {
    p50 = percentile_ms !lats 0.50;
    p95 = percentile_ms !lats 0.95;
    p99 = percentile_ms !lats 0.99;
    req_per_s = float_of_int count /. wall;
    mean_esd =
      (match !esds with
      | [] -> 0.0
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    esd_samples = List.length !esds;
    tier_hist = hist;
  }

let cell_json label c =
  Printf.sprintf
    {|      "%s": { "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "req_per_s": %.1f,
              "mean_answer_esd": %.4f, "esd_samples": %d, "tier_hist": [%s] }|}
    label c.p50 c.p95 c.p99 c.req_per_s c.mean_esd c.esd_samples
    (String.concat ", "
       (Array.to_list (Array.map string_of_int c.tier_hist)))

let () =
  with_temp_dir @@ fun dir ->
  let xmark =
    match Datagen.Datasets.of_name "xmark" with
    | Some ds -> ds
    | None -> failwith "xmark dataset missing"
  in
  let doc = Datagen.Datasets.generate ~seed ~scale:8.0 xmark in
  let stable = Sketch.Stable.build doc in
  let ladder =
    match Sketch.Build.build_ladder_res stable ~budget ~tiers with
    | Ok { Sketch.Build.ladder; _ } -> ladder
    | Error f -> failwith (Xmldoc.Fault.to_string f)
  in
  (match
     Sketch.Serialize.save_ladder_atomic (Filename.concat dir "db.ts") ladder
   with
  | Ok () -> ()
  | Error f -> failwith (Xmldoc.Fault.to_string f));
  let with_server ~brownout ~max_inflight f =
    let sock = Filename.concat dir "ts.sock" in
    let config =
      {
        Server.default_config with
        max_inflight;
        brownout = (if brownout then Some brownout_config else None);
      }
    in
    let server = Server.create ~log:(fun _ -> ()) ~config dir in
    let thread =
      Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
    in
    await_socket sock;
    Fun.protect
      ~finally:(fun () ->
        Server.request_drain server;
        Thread.join thread;
        try Sys.remove sock with Sys_error _ -> ())
      (fun () -> f sock)
  in
  (* the accuracy yardstick: the finest tier's answer, fetched from an
     unloaded plain server so truncation and rendering match the
     measured responses byte for byte *)
  let reference =
    with_server ~brownout:false ~max_inflight:4 @@ fun sock ->
    let client = Client.create [ sock ] in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    match Client.request client answer_line with
    | Error e -> failwith (Client.error_to_string e)
    | Ok response -> (
      match tree_of_response response with
      | Some tree -> tree
      | None -> failwith (Printf.sprintf "reference answer %S" response))
  in
  let cells =
    List.map
      (fun load ->
        let run brownout =
          with_server ~brownout ~max_inflight:(load + 4) @@ fun sock ->
          run_cell ~sock ~load ~n:!requests ~reference
        in
        let off = run false in
        let on = run true in
        (load, off, on))
      loads
  in
  let load_json =
    String.concat ",\n"
      (List.map
         (fun (load, off, on) ->
           Printf.sprintf "    { \"load\": %d,\n%s,\n%s\n    }" load
             (cell_json "no_brownout" off)
             (cell_json "brownout" on))
         cells)
  in
  let _, peak_off, peak_on =
    List.nth cells (List.length cells - 1)
  in
  let beats = peak_on.p99 < peak_off.p99 in
  let json =
    Printf.sprintf
      {|{
  "bench": "overload",
  "seed": %d,
  "requests_per_cell": %d,
  "query": %S,
  "ladder": { "budget": %d, "tiers": %d },
  "controller": { "target_latency_s": %g, "depth_high": %d, "dwell_s": %g },
  "cells": [
%s
  ],
  "brownout_p99_beats_no_brownout_p99_at_peak_load": %b
}
|}
      seed !requests query_text budget tiers brownout_config.target_latency
      brownout_config.depth_high brownout_config.dwell load_json beats
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (load, off, on) ->
      Printf.printf
        "overload bench: load=%d off p99=%.1fms on p99=%.1fms esd=%.3f \
         tiers=[%s]\n"
        load off.p99 on.p99 on.mean_esd
        (String.concat ","
           (Array.to_list (Array.map string_of_int on.tier_hist))))
    cells;
  Printf.printf "-> %s\n" !out_path;
  if !assert_mode && not beats then begin
    Printf.eprintf
      "FAIL: browned-out p99 (%.1fms) did not beat no-brownout p99 (%.1fms) \
       at peak load\n"
      peak_on.p99 peak_off.p99;
    exit 1
  end
