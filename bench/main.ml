(* Benchmark harness entry point.

   Every table and figure of the paper's evaluation (§6) has a
   generator here; see DESIGN.md for the experiment index.  Usage:

     dune exec bench/main.exe                  # everything, default scale
     dune exec bench/main.exe -- fig12 fig13   # a subset
     dune exec bench/main.exe -- --quick all   # smoke-test scale
     dune exec bench/main.exe -- --full all    # paper-scale workloads
     dune exec bench/main.exe -- --budgets=10KB,25KB,1MB fig12 *)

let experiments =
  [
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("negative", Negative.run);
    ("treebank", Treebank.run);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let cfg =
    if List.mem "--quick" args then Config.quick
    else if List.mem "--full" args then Config.full
    else Config.default
  in
  let cfg =
    let prefix = "--budgets=" in
    match
      List.find_opt
        (fun a -> String.length a > String.length prefix
                  && String.sub a 0 (String.length prefix) = prefix)
        args
    with
    | None -> cfg
    | Some a -> (
      let spec = String.sub a (String.length prefix)
                   (String.length a - String.length prefix) in
      match Config.parse_budgets_kb spec with
      | Ok budgets_kb -> { cfg with budgets_kb }
      | Error msg ->
        Printf.eprintf "--budgets: %s\n" msg;
        exit 2)
  in
  let requested =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let requested =
    if requested = [] || List.mem "all" requested then List.map fst experiments
    else requested
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "TreeSketch reproduction benchmarks (seed %d, %d-query workloads, budgets %s KB)\n"
    cfg.Config.seed cfg.queries
    (String.concat "," (List.map string_of_int cfg.budgets_kb));
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run cfg
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 2)
    requested;
  Printf.printf "\nTotal wall-clock: %.1fs\n" (Unix.gettimeofday () -. t0)
