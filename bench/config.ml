(* Shared experiment configuration.

   The paper's experiments run 1000-query workloads against real
   multi-megabyte documents; the defaults here are scaled so the whole
   suite finishes in minutes on a laptop while preserving every
   qualitative comparison.  [--full] restores paper-scale workloads. *)

type t = {
  seed : int;
  queries : int;  (** selectivity-workload size (paper: 1000) *)
  esd_queries : int;  (** answer-quality workload size *)
  training : int;  (** twig-XSKETCH training workload size *)
  budgets_kb : int list;  (** synopsis budgets (paper: 10..50 KB) *)
  quick : bool;
}

let default =
  {
    seed = 7;
    queries = 200;
    esd_queries = 60;
    training = 20;
    budgets_kb = [ 10; 20; 30; 40; 50 ];
    quick = false;
  }

let full = { default with queries = 1000; esd_queries = 200 }

let quick =
  {
    default with
    queries = 50;
    esd_queries = 15;
    training = 10;
    budgets_kb = [ 10; 30; 50 ];
    quick = true;
  }

(* dataset scales: chosen so element counts land near the paper's
   Table 1 (TX variants; the large variants are scaled-down stand-ins
   for the 0.5M-2M-element originals, see DESIGN.md) *)

let tx_scales = [ (Datagen.Datasets.Imdb, 3.0); (Xmark, 9.0); (Sprot, 4.0) ]

let large_scales =
  [
    (Datagen.Datasets.Imdb, 7.0);
    (Xmark, 20.0);
    (Sprot, 10.0);
    (Dblp, 10.0);
  ]

let budgets_bytes cfg = List.map (fun kb -> kb * 1024) cfg.budgets_kb

(* "--budgets 10KB,25KB,1MB" — each element goes through the shared
   size parser; sub-kilobyte budgets round up to 1 KB. *)
let parse_budgets_kb spec =
  let parse_one acc item =
    match acc with
    | Error _ as e -> e
    | Ok kbs -> (
      match Xmldoc.Limits.parse_bytes item with
      | Ok bytes -> Ok ((max 1 ((bytes + 1023) / 1024)) :: kbs)
      | Error msg -> Error msg)
  in
  match String.split_on_char ',' spec with
  | [] | [ "" ] -> Error (Printf.sprintf "empty budget list %S" spec)
  | items -> Result.map List.rev (List.fold_left parse_one (Ok []) items)

let extra_scales = [ (Datagen.Datasets.Treebank, 1.0) ]
