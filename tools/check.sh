#!/bin/sh
# Tier-1 gate: everything must build and every test suite must pass.
# Run before every PR; CI runs exactly this script.
#
#   tools/check.sh                 # every stage, with per-stage timing
#   tools/check.sh --quick         # skip the slow chaos tests
#                                  # (ALCOTEST_QUICK_TESTS)
#   tools/check.sh --stage NAME    # run one stage only (repeatable);
#                                  # names: build, test, chaos,
#                                  # pool-chaos, coordinator-chaos,
#                                  # overload-chaos, scrub-chaos,
#                                  # ingest-chaos, write-chaos,
#                                  # serve-bench, overload-bench,
#                                  # repair-bench, ingest-bench,
#                                  # build-bench
#
# The chaos stages are seeded; set CHAOS_SEED=<n> to replay a failure
# with a specific seed.  The seed in use is printed.
set -eu

cd "$(dirname "$0")/.."

QUICK=
STAGES=
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --stage)
      [ $# -ge 2 ] || { echo "--stage needs a name" >&2; exit 2; }
      shift
      STAGES="$STAGES $1"
      ;;
    *)
      echo "usage: tools/check.sh [--quick] [--stage NAME]..." >&2
      exit 2
      ;;
  esac
  shift
done

# stage <name> <fn>: run <fn> under a wall-clock timer, unless --stage
# filters it out.  Timing every stage keeps "which stage got slow" a
# one-glance question in CI logs.
RAN_ANY=
stage() {
  _name=$1
  _fn=$2
  if [ -n "$STAGES" ]; then
    case " $STAGES " in
      *" $_name "*) ;;
      *) return 0 ;;
    esac
  fi
  RAN_ANY=1
  echo "== $_name =="
  _t0=$(date +%s)
  "$_fn"
  _t1=$(date +%s)
  echo "-- $_name: $((_t1 - _t0))s"
}

stage_build() {
  dune build @all
}

stage_test() {
  if [ -n "$QUICK" ]; then
    ALCOTEST_QUICK_TESTS=1 dune runtest --force
  else
    dune runtest --force
  fi
}

# The chaos harness on its own so its seed line and e2e tally are
# visible in the CI log even though dune runtest already exercised it.
# (No pipe: a pipe would mask the exit status under set -e.)
stage_chaos() {
  echo "CHAOS_SEED=${CHAOS_SEED:-default}"
  dune exec test/test_chaos.exe -- -c
}

# Worker-pool acceptance (crash isolation, watchdog, poison quarantine,
# client breaker, 220 hostile requests) under a pinned seed so CI is
# reproducible regardless of the suite's default.
stage_pool_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-721009}" dune exec test/test_pool.exe -- -c
}

# Replica-group acceptance under a pinned seed: 3 forked replicas behind
# the hedged coordinator, one SIGKILLed and one SIGSTOPped mid-run, 500
# client requests — every request must resolve, and the retry-budget
# counter must prove hedge/retry traffic stayed inside the token-bucket
# cap (no retry storm).
stage_coordinator_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-321984}" dune exec test/test_replica.exe -- -c
}

# Brownout acceptance under a pinned seed: an overloaded ladder server
# with --brownout must keep p99 bounded, refuse nothing the coarsest
# tier could still answer, tag every degraded response with tier=, and
# a uniformly browned-out group must suppress coordinator hedges.
stage_overload_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-847211}" dune exec test/test_overload.exe -- -c
}

# Anti-entropy acceptance under a pinned seed: in-place bit-rot on a
# live replica (fingerprint preserved, invisible to reload) must be
# detected by the background scrubber, quarantined without dropping
# the resident copy, and repaired byte-identically from a peer over
# FETCH — including a torn FETCH that must never install a partial
# file and an ENOSPC preflight that defers instead of wedging.
stage_scrub_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-530217}" dune exec test/test_scrub.exe -- -c
}

# Durable-ingestion acceptance under a pinned seed: WAL round-trip,
# torn-tail truncation, exactly-once replay, and the kill-point sweep —
# seeded SIGKILLs across INGEST/flush/compaction on a forked server;
# every restart must replay the WAL and serve 100% of acknowledged
# ingests, zero lost, zero duplicated.
stage_ingest_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-618342}" dune exec test/test_ingest.exe -- -c
}

# Mutation-mix crash acceptance under a pinned seed: seeded SIGKILLs
# across a workload of interleaved INGEST/DELETE/UPDATE with
# backpressure and a hard disk watermark in play; after every restart
# each acknowledged mutation must be applied exactly once, each
# refused mutation must have left no trace, the data directory must
# stay under its byte budget, and the watermark must never be pierced.
stage_write_chaos() {
  CHAOS_SEED="${CHAOS_SEED:-429771}" dune exec test/test_ingest.exe -- \
    test write-chaos
}

# Tail-latency acceptance + regression gate: one replica browns out
# (seeded Io_fault read delay); the hedged group's p99 must beat the
# single-replica p99, and the hedged/single p99 ratio must stay within
# tolerance of the committed BENCH_serve.json baseline.
stage_serve_bench() {
  CHAOS_SEED="${CHAOS_SEED:-24254}" dune exec bench/serve_bench.exe -- \
    --out BENCH_serve.latest.json --assert \
    --baseline BENCH_serve.json --tolerance 0.5
}

# Brownout bench: p99 + answer-ESD vs offered load, with and without
# degradation.  The browned-out p99 at peak load must be strictly
# below the no-brownout p99 at the same load.
stage_overload_bench() {
  CHAOS_SEED="${CHAOS_SEED:-45327}" dune exec bench/overload_bench.exe -- \
    --out BENCH_overload.latest.json --assert
}

# Repair-convergence bench + regression gate: a 3-replica group with a
# 0.25 s scrub period; every round's in-place corruption must be
# detected and repaired, and mean time-to-converge as a multiple of
# the scrub interval must stay within tolerance of the committed
# BENCH_repair.json baseline.
stage_repair_bench() {
  CHAOS_SEED="${CHAOS_SEED:-40522}" dune exec bench/repair_bench.exe -- \
    --out BENCH_repair.latest.json --assert \
    --baseline BENCH_repair.json --tolerance 1.0
}

# Ingest-latency bench + regression gate: per-record durable
# acknowledgement cost (validate + WAL append + fsync), flush cost and
# cold replay speed; mean ack latency must stay within tolerance of
# the committed BENCH_ingest.json baseline.
stage_ingest_bench() {
  CHAOS_SEED="${CHAOS_SEED:-77413}" dune exec bench/ingest_bench.exe -- \
    --out BENCH_ingest.latest.json --assert \
    --baseline BENCH_ingest.json --tolerance 1.0
}

# Build-throughput bench + regression gate: stable-summary build
# nodes/sec over a generated XMark document, compression-to-budget and
# snapshot save/load; throughput must not fall below the committed
# BENCH_build.json baseline's floor.
stage_build_bench() {
  CHAOS_SEED="${CHAOS_SEED:-90125}" dune exec bench/build_bench.exe -- \
    --out BENCH_build.latest.json --assert \
    --baseline BENCH_build.json --tolerance 1.0
}

stage build              stage_build
stage test               stage_test
stage chaos              stage_chaos
stage pool-chaos         stage_pool_chaos
stage coordinator-chaos  stage_coordinator_chaos
stage overload-chaos     stage_overload_chaos
stage scrub-chaos        stage_scrub_chaos
stage ingest-chaos       stage_ingest_chaos
stage write-chaos        stage_write_chaos
stage serve-bench        stage_serve_bench
stage overload-bench     stage_overload_bench
stage repair-bench       stage_repair_bench
stage ingest-bench       stage_ingest_bench
stage build-bench        stage_build_bench

if [ -z "$RAN_ANY" ]; then
  echo "no such stage:$STAGES" >&2
  exit 2
fi

echo "== check.sh: OK =="
