#!/bin/sh
# Tier-1 gate: everything must build and every test suite must pass.
# Run before every PR; CI runs exactly this script.
#
#   tools/check.sh           # build + full test suite (incl. fault/chaos
#                            # harnesses, which use fixed seeds)
#   tools/check.sh --quick   # skip the slow chaos tests (ALCOTEST_QUICK_TESTS)
#
# The chaos stage (test_chaos: fault injection, protocol fuzz, the
# client-vs-server drain run) is seeded; set CHAOS_SEED=<n> to replay a
# failure with a specific seed.  The seed in use is printed.
set -eu

cd "$(dirname "$0")/.."

QUICK=
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: tools/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
if [ -n "$QUICK" ]; then
  ALCOTEST_QUICK_TESTS=1 dune runtest --force
else
  dune runtest --force
fi

echo "== chaos stage (CHAOS_SEED=${CHAOS_SEED:-default}) =="
# Runs the chaos harness on its own so its seed line and e2e tally are
# visible in the CI log even though dune runtest already exercised it.
# (No pipe here: a pipe would mask the exit status under set -e.)
dune exec test/test_chaos.exe -- -c

echo "== pool chaos stage (seed pinned) =="
# The worker-pool acceptance run (crash isolation, watchdog, poison
# quarantine, client breaker, 220 hostile requests) under a pinned seed
# so CI is reproducible regardless of the suite's default; replay any
# failure with the same CHAOS_SEED.
CHAOS_SEED="${CHAOS_SEED:-721009}" dune exec test/test_pool.exe -- -c

echo "== coordinator chaos stage (seed pinned) =="
# Replica-group acceptance under a pinned seed: 3 forked replicas behind
# the hedged coordinator, one SIGKILLed and one SIGSTOPped mid-run, 500
# client requests — every request must resolve, the retry-budget counter
# must prove hedge/retry traffic stayed inside the token-bucket cap (no
# retry storm), and SIGTERM must drain the coordinator to exit 0.
CHAOS_SEED="${CHAOS_SEED:-321984}" dune exec test/test_replica.exe -- -c

echo "== serve bench stage (BENCH_serve.json) =="
# Tail-latency acceptance: one replica browns out (seeded Io_fault read
# delay); the hedged group's p99 must beat the single-replica p99.  The
# percentiles, req/s and hedge rate land in BENCH_serve.json so later
# perf PRs have a trajectory to compare against.
CHAOS_SEED="${CHAOS_SEED:-24254}" dune exec bench/serve_bench.exe -- \
  --out BENCH_serve.json --assert

echo "== check.sh: OK =="
