#!/bin/sh
# Tier-1 gate: everything must build and every test suite must pass.
# Run before every PR; CI runs exactly this script.
#
#   tools/check.sh           # build + full test suite (incl. fault/chaos
#                            # harnesses, which use fixed seeds)
#   tools/check.sh --quick   # skip the slow chaos tests (ALCOTEST_QUICK_TESTS)
set -eu

cd "$(dirname "$0")/.."

QUICK=
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: tools/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
if [ -n "$QUICK" ]; then
  ALCOTEST_QUICK_TESTS=1 dune runtest --force
else
  dune runtest --force
fi

echo "== check.sh: OK =="
