(* Tests for EVAL_QUERY / EVAL_EMBED and selectivity estimation over
   TREESKETCH synopses, including the worked example of Figure 9. *)

open Sketch
module T = Testutil
module Syntax = Twig.Syntax

let fig1 =
  Xmldoc.Parser.of_string
    "<d><a><n/><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><b><t/></b></a>\
     <a><p><y/><t/><k/></p><n/><b><t/></b></a>\
     <a><n/><p><y/><t/><k/></p><b><t/></b></a></d>"

let fig1_doc = Twig.Doc.of_tree fig1

let fig1_stable = Stable.build fig1

(* ---------------- Figure 9: the worked example ---------------- *)

(* The synopsis of Figure 9(b): node letters map to ids below. *)
let fig9 =
  let lbl = Xmldoc.Label.of_string in
  (* ids: 0=r 1=A 2=B 3=E 4=D 5=F(under B) 6=F(under D) 7=G1 8=G2 9=C *)
  Synopsis.make ~root:0
    [|
      { Synopsis.label = lbl "r"; count = 1.; edges = [| (1, 10.) |] };
      { Synopsis.label = lbl "a"; count = 10.; edges = [| (2, 5.); (3, 0.2); (4, 2.) |] };
      { Synopsis.label = lbl "b"; count = 50.; edges = [| (5, 2.) |] };
      { Synopsis.label = lbl "e"; count = 2.; edges = [| (6, 5.) |] };
      { Synopsis.label = lbl "d"; count = 20.; edges = [| (6, 0.5); (7, 0.6); (8, 0.7) |] };
      { Synopsis.label = lbl "f"; count = 100.; edges = [||] };
      { Synopsis.label = lbl "f"; count = 20.; edges = [| (9, 1.5) |] };
      { Synopsis.label = lbl "g"; count = 12.; edges = [||] };
      { Synopsis.label = lbl "g"; count = 14.; edges = [||] };
      { Synopsis.label = lbl "c"; count = 30.; edges = [||] };
    |]

(* The paper's example computes the binding of q3 along d[/g]//f:
   nt = count(A,D) * count(D,F) = 2 * 0.5 = 1, scaled by the branch
   selectivity s = 0.6 + 0.7 - 0.6*0.7 = 0.88. *)
let test_fig9_embed_branch () =
  let path = Twig.Parse.path "/d[/g]//f" in
  match Eval.embeddings fig9 1 path with
  | [ (v, k) ] ->
    Alcotest.(check int) "lands on F under D" 6 v;
    T.check_float "0.88 descendants" 0.88 k
  | other ->
    Alcotest.failf "expected one binding, got %d" (List.length other)

let test_fig9_full_query () =
  (* q0 -//a-> q1 { -b|e...-> } — we exercise the a and d branches *)
  let q = Twig.Parse.query "//a{/d[/g]//f,/b}" in
  let ans = Eval.eval fig9 q in
  Alcotest.(check bool) "non empty" false ans.empty;
  (* root -> 10 a's; per a: 0.88 f's via d, 5 b's *)
  let syn = ans.synopsis in
  let root = syn.Synopsis.root in
  (* one child of var 1 with edge count 10 *)
  let a_edge = Synopsis.edges syn root in
  Alcotest.(check int) "one root edge" 1 (Array.length a_edge);
  T.check_float "10 a bindings" 10. (snd a_edge.(0))

let test_fig9_selectivity () =
  let q = Twig.Parse.query "//a{/d[/g]//f}" in
  (* tuples = 10 a's x 0.88 f's *)
  T.check_float "selectivity" 8.8 (Selectivity.estimate fig9 q)

(* ---------------- exactness over count-stable synopses ---------------- *)

(* EVAL_QUERY over a count-stable synopsis computes the exact nesting
   tree (§4.3), hence exact selectivity too. *)
let check_exact_on query_src =
  let q = Twig.Parse.query query_src in
  let exact = Twig.Eval.selectivity fig1_doc q in
  let est = Selectivity.estimate fig1_stable q in
  T.check_float ("selectivity " ^ query_src) exact est

let test_exact_simple () =
  List.iter check_exact_on
    [ "//a"; "//p"; "//k"; "/a/p"; "//p{/k}"; "//a{//k}"; "//a[//b]{//p{//k?},//n?}" ]

let test_exact_nesting_tree () =
  let q = Twig.Parse.query "//a[//b]{//p{//k?},//n?}" in
  let ans = Eval.eval fig1_stable q in
  let exact = Twig.Eval.run fig1_doc q in
  match (exact.nesting, Eval.to_nesting_tree ans) with
  | Some nt, Some approx ->
    Alcotest.(check bool) "exact nesting recovered" true
      (Xmldoc.Tree.equal_unordered nt approx)
  | _ -> Alcotest.fail "expected non-empty results"

(* The zero-error claims hold under witness-path semantics (see
   {!Twig.Eval.run}); node-set semantics coincide when same-label
   elements do not nest along query paths. *)
let prop_exact_over_stable =
  T.qtest ~count:100 "stable synopsis gives exact selectivity"
    (QCheck.pair (T.arb_tree ()) T.arb_query)
    (fun (t, q) ->
      let d = Twig.Doc.of_tree t in
      let stable = Stable.build t in
      T.feq ~eps:1e-6
        (Twig.Eval.selectivity ~dedup:false d q)
        (Selectivity.estimate stable q))

let prop_exact_nesting_over_stable =
  T.qtest ~count:60 "stable synopsis recovers the exact nesting tree"
    (QCheck.pair (T.arb_tree ()) T.arb_query)
    (fun (t, q) ->
      let d = Twig.Doc.of_tree t in
      let stable = Stable.build t in
      let exact = (Twig.Eval.run ~dedup:false d q).nesting in
      let approx = Eval.to_nesting_tree (Eval.eval stable q) in
      match (exact, approx) with
      | None, None -> true
      | Some nt, Some at -> Xmldoc.Tree.equal_unordered nt at
      | _ -> false)

(* ---------------- compressed synopses ---------------- *)

let test_empty_on_negative () =
  let ts = Build.build fig1_stable ~budget:100 in
  let q = Twig.Parse.query "//zz" in
  let ans = Eval.eval ts q in
  Alcotest.(check bool) "empty flagged" true ans.empty;
  T.check_float "zero selectivity" 0. (Selectivity.of_answer q ans)

let test_optional_missing_not_empty () =
  let ts = Build.build fig1_stable ~budget:100 in
  let q = Twig.Parse.query "//a{//zz?}" in
  let ans = Eval.eval ts q in
  Alcotest.(check bool) "optional missing tolerated" false ans.empty

let prop_compressed_estimates_finite =
  T.qtest ~count:60 "compressed estimates are finite and non-negative"
    (QCheck.pair (T.arb_tree ()) T.arb_query)
    (fun (t, q) ->
      let ts = Build.build (Stable.build t) ~budget:96 in
      let est = Selectivity.estimate ts q in
      Float.is_finite est && est >= 0.)

let prop_answer_var_labels =
  T.qtest ~count:60 "answer labels carry the query variables"
    (QCheck.pair (T.arb_tree ()) T.arb_query)
    (fun (t, q) ->
      let ts = Build.build (Stable.build t) ~budget:96 in
      let ans = Eval.eval ts q in
      Array.for_all
        (fun (n : Synopsis.node) ->
          String.length (Xmldoc.Label.to_string n.label) > 0
          && (Xmldoc.Label.to_string n.label).[0] = 'q')
        ans.synopsis.Synopsis.nodes)

let test_relative_error () =
  T.check_float "overestimate" 0.5
    (Selectivity.relative_error ~actual:100. ~estimate:150. ~sanity:10.);
  T.check_float "sanity bound kicks in" 0.5
    (Selectivity.relative_error ~actual:1. ~estimate:6. ~sanity:10.);
  T.check_float "exact" 0. (Selectivity.relative_error ~actual:5. ~estimate:5. ~sanity:1.)

(* regression: a required edge nested under an optional edge must not
   nullify the answer when it is globally empty *)
let test_required_under_optional () =
  let doc = Xmldoc.Parser.of_string "<r><e><f/></e></r>" in
  let stable = Stable.build doc in
  (* //e is required and non-empty; the optional //f child carries a
     required //zz grandchild that never matches *)
  let q = Twig.Parse.query "//e{//f?{//zz}}" in
  let ans = Eval.eval stable q in
  Alcotest.(check bool) "answer not nullified" false ans.empty;
  T.check_float "exact agreement"
    (Twig.Eval.selectivity (Twig.Doc.of_tree doc) q)
    (Selectivity.of_answer q ans)

(* regression: bindings whose required child edges are empty must be
   pruned from the answer (validity is per-class on a stable synopsis) *)
let test_invalid_class_pruning () =
  (* two kinds of a: with and without a b child; //a{/b} binds only the
     first kind *)
  let doc = Xmldoc.Parser.of_string "<r><a><b/></a><a><b/></a><a><c/></a></r>" in
  let stable = Stable.build doc in
  let q = Twig.Parse.query "//a{/b}" in
  let ans = Eval.eval stable q in
  (match Eval.to_nesting_tree ans with
  | Some t ->
    let a = Twig.Eval.nesting_label 1 (Xmldoc.Label.of_string "a") in
    Alcotest.(check int) "only valid a's" 2 (Xmldoc.Tree.count_label a t)
  | None -> Alcotest.fail "expected an answer");
  T.check_float "selectivity" 2. (Selectivity.of_answer q ans)

(* regression: //-step embeddings must be found on late sibling edges
   even when earlier siblings harbor deep sub-graphs (reachability
   pruning must keep the DFS work budget for useful branches) *)
let test_reachability_pruning () =
  let deep_arm n =
    let rec build i = if i = 0 then Xmldoc.Tree.v "leaf" [] else
        Xmldoc.Tree.v ("mid" ^ string_of_int (i mod 3)) [ build (i - 1); build (i - 1) ] in
    Xmldoc.Tree.v "arm" [ build n ]
  in
  let doc =
    Xmldoc.Tree.v "r"
      [ deep_arm 8; deep_arm 9; deep_arm 10; Xmldoc.Tree.v "target" [] ]
  in
  let stable = Stable.build doc in
  let q = Twig.Parse.query "//target" in
  T.check_float "target found past deep arms" 1. (Selectivity.estimate stable q)

(* cyclic synopsis: evaluation must terminate and stay finite *)
let test_cyclic_eval_terminates () =
  let lbl = Xmldoc.Label.of_string in
  let cyc =
    Synopsis.make ~root:0
      [|
        { Synopsis.label = lbl "r"; count = 1.; edges = [| (1, 3.) |] };
        { Synopsis.label = lbl "p"; count = 9.; edges = [| (2, 2.) |] };
        { Synopsis.label = lbl "l"; count = 18.; edges = [| (1, 0.3) |] };
      |]
  in
  let q = Twig.Parse.query "//p{//l{//l?}}" in
  let est = Selectivity.estimate cyc q in
  Alcotest.(check bool) "finite" true (Float.is_finite est && est >= 0.)

(* ---------------- degraded evaluation under a budget ---------------- *)

(* an already-expired deadline still yields a valid, well-formed answer
   — flagged degraded, never an exception *)
let test_expired_deadline_degrades () =
  let ts = Build.build fig1_stable ~budget:100 in
  let q = Twig.Parse.query "//a[//t]{//p?}" in
  let budget = Xmldoc.Budget.with_timeout (-1.0) in
  let ans = Eval.eval ~budget ts q in
  Alcotest.(check bool) "degraded flagged" true ans.degraded;
  Alcotest.(check bool)
    "stop reason is the deadline" true
    (Xmldoc.Budget.stopped budget = Some Xmldoc.Budget.Deadline);
  (match Synopsis.validate ans.raw with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "degraded raw answer invalid: %s" msg);
  let est = Selectivity.of_answer q ans in
  Alcotest.(check bool) "estimate finite" true (Float.is_finite est && est >= 0.)

(* a node cap of c >= 1 bounds the raw answer by c nodes, root included *)
let test_node_cap_bounds_answer () =
  let q = Twig.Parse.query "//p{//t?,//k?}" in
  List.iter
    (fun cap ->
      let budget = Xmldoc.Budget.create ~max_nodes:cap () in
      let ans = Eval.eval ~budget fig1_stable q in
      let n = Synopsis.num_nodes ans.raw in
      if n > cap then Alcotest.failf "cap %d: raw answer has %d nodes" cap n;
      match Synopsis.validate ans.raw with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "cap %d: invalid answer: %s" cap msg)
    [ 1; 2; 3; 5; 100 ]

let test_uncapped_not_degraded () =
  let q = Twig.Parse.query "//a{//p?}" in
  let budget = Xmldoc.Budget.unlimited () in
  let ans = Eval.eval ~budget fig1_stable q in
  Alcotest.(check bool) "not degraded" false ans.degraded;
  Alcotest.(check bool) "budget never stopped" true
    (Xmldoc.Budget.stopped budget = None)

(* degradation only loses embeddings, so the degraded estimate is a
   lower bound of the full estimate *)
let prop_degraded_selectivity_lower_bound =
  T.qtest ~count:120 "degraded selectivity <= full selectivity"
    (QCheck.triple (T.arb_tree ()) T.arb_query QCheck.(1 -- 12))
    (fun (t, q, cap) ->
      let ts = Build.build (Stable.build t) ~budget:96 in
      let full = Selectivity.of_answer q (Eval.eval ts q) in
      let budget = Xmldoc.Budget.create ~max_nodes:cap ~max_work:200 () in
      let degraded = Selectivity.of_answer q (Eval.eval ~budget ts q) in
      degraded <= full +. 1e-9 *. Float.max 1. full)

(* partial expansion under the same budget machinery: node caps
   truncate, never raise, and the built prefix stays within the cap *)
let test_partial_expansion_truncates () =
  let ts = Build.build fig1_stable ~budget:100 in
  let p = Expand.partial ~max_nodes:4 ts in
  Alcotest.(check bool) "truncated" true p.truncated;
  Alcotest.(check bool) "within cap" true (p.nodes <= 4);
  Alcotest.(check bool) "tree matches count" true (Xmldoc.Tree.size p.tree <= 5);
  let full = Expand.partial ts in
  Alcotest.(check bool) "full not truncated" false full.truncated;
  Alcotest.(check T.tree_iso) "partial agrees with approximate"
    (Expand.approximate ts) full.tree

let () =
  Alcotest.run "eval"
    [
      ( "figure9",
        [
          Alcotest.test_case "branch selectivity 0.88" `Quick test_fig9_embed_branch;
          Alcotest.test_case "full query" `Quick test_fig9_full_query;
          Alcotest.test_case "selectivity" `Quick test_fig9_selectivity;
        ] );
      ( "exact-over-stable",
        [
          Alcotest.test_case "simple queries" `Quick test_exact_simple;
          Alcotest.test_case "nesting tree recovered" `Quick test_exact_nesting_tree;
          prop_exact_over_stable;
          prop_exact_nesting_over_stable;
        ] );
      ( "compressed",
        [
          Alcotest.test_case "negative query empty" `Quick test_empty_on_negative;
          Alcotest.test_case "optional missing ok" `Quick test_optional_missing_not_empty;
          Alcotest.test_case "relative error" `Quick test_relative_error;
          Alcotest.test_case "cyclic synopsis terminates" `Quick test_cyclic_eval_terminates;
          Alcotest.test_case "required under optional" `Quick test_required_under_optional;
          Alcotest.test_case "invalid class pruning" `Quick test_invalid_class_pruning;
          Alcotest.test_case "reachability pruning" `Quick test_reachability_pruning;
          prop_compressed_estimates_finite;
          prop_answer_var_labels;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "expired deadline degrades" `Quick
            test_expired_deadline_degrades;
          Alcotest.test_case "node cap bounds the answer" `Quick
            test_node_cap_bounds_answer;
          Alcotest.test_case "unlimited budget stays clean" `Quick
            test_uncapped_not_degraded;
          Alcotest.test_case "partial expansion truncates" `Quick
            test_partial_expansion_truncates;
          prop_degraded_selectivity_lower_bound;
        ] );
    ]
