(* Chaos harness: client vs server under deterministic I/O fault
   injection.

   Five layers, from unit to acceptance:
   - the {!Xmldoc.Io_fault} shim itself (seeded determinism, short
     reads through the real load path never yielding partial synopses);
   - a 10k-line protocol fuzz (random/oversized/NUL-bearing requests,
     in-process and over a real socket) — no crash, no fd leak, no
     unparseable reply;
   - client deadline shorter than the server's injected latency — a
     typed client-side [Deadline], no dangling sockets, no fd leak
     across 1 000 requests;
   - graceful drain as a unit (serve_socket returns, HEALTH flips);
   - the end-to-end run: 500 seeded client requests against forked
     server processes under fault injection, one SIGTERMed mid-run —
     zero hangs, every request resolves, the drained server exits 0
     with its in-flight response delivered, traffic fails over.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Client = Serve.Client
module Catalog = Serve.Catalog
module Serialize = Sketch.Serialize
module Stable = Sketch.Stable

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0xC4A05
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "chaos seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tschaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let canonical s = Serialize.to_string s

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* connection-thread teardown is asynchronous: give the fd table a
   moment to settle before declaring a leak *)
let check_fds what baseline =
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec wait () =
    if count_fds () <= baseline then ()
    else if Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      wait ()
    end
    else
      Alcotest.failf "%s: fd leak (%d fds, baseline %d)" what (count_fds ())
        baseline
  in
  wait ()

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let error_classes =
  [ "bad-request"; "not-found"; "overloaded"; "internal";
    "parse"; "corrupt"; "limit"; "deadline"; "io"; "busy";
    "worker-crash"; "poisoned" ]

(* every reply the server is allowed to utter: a single line, one of
   the ok shapes or an error with a documented class *)
let well_formed response =
  (not (String.contains response '\n'))
  && (response = "pong" || response = "bye"
     || starts_with "ok " response
     ||
     match String.split_on_char ' ' response with
     | "error" :: cls :: _ -> List.mem cls error_classes
     | _ -> false)

let check_well_formed what response =
  if not (well_formed response) then
    Alcotest.failf "%s: malformed reply %S" what response

(* ------------------------------------------------------------------ *)
(* The shim: determinism and short reads                               *)
(* ------------------------------------------------------------------ *)

let test_shim_determinism () =
  let run () =
    F.arm ~seed
      [ F.rule ~prob:0.3 F.Read F.Eio; F.rule ~prob:0.2 F.Write F.Eintr ];
    Alcotest.(check (option int)) "seed readable" (Some seed) (F.seed ());
    let pat = Buffer.create 300 in
    for i = 0 to 299 do
      let site = if i mod 2 = 0 then F.Read else F.Write in
      match F.tap site ~path:"x" with
      | () -> Buffer.add_char pat '.'
      | exception Unix.Unix_error (Unix.EIO, _, _) -> Buffer.add_char pat 'E'
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> Buffer.add_char pat 'I'
      | exception Unix.Unix_error (e, _, _) ->
        Alcotest.failf "unexpected injected errno %s" (Unix.error_message e)
    done;
    let injected = F.injected () in
    F.disarm ();
    (Buffer.contents pat, injected)
  in
  let p1, n1 = run () in
  let p2, n2 = run () in
  Alcotest.(check string) "same seed, same fault sequence" p1 p2;
  Alcotest.(check int) "same injection count" n1 n2;
  Alcotest.(check bool) "faults actually fired" true (n1 > 0);
  Alcotest.(check bool) "and not on every tap" true
    (String.exists (fun c -> c = '.') p1);
  (* disarmed = transparent *)
  Alcotest.(check bool) "disarmed" false (F.armed ());
  F.tap F.Read ~path:"x";
  Alcotest.(check int) "no counting while disarmed" 0 (F.injected ())

(* a snapshot read short at any sampled offset either loads complete or
   is rejected as corrupt — the injected tear goes through the real
   file I/O path, not a doctored file *)
let test_short_reads_never_partial () =
  with_temp_dir (fun dir ->
      let s = Lazy.force synopsis in
      let full = canonical s in
      let path = Filename.concat dir "a.ts" in
      save path s;
      let len = (Unix.stat path).Unix.st_size in
      Fun.protect ~finally:F.disarm (fun () ->
          let cut = ref 0 in
          while !cut < len do
            F.arm ~seed [ F.rule ~prob:1.0 ~path:"a.ts" F.Read (F.Short_at !cut) ];
            (match Serialize.load_res path with
            | Ok loaded ->
              Alcotest.(check string)
                (Printf.sprintf "cut at %d loaded complete" !cut)
                full (canonical loaded)
            | Error (Xmldoc.Fault.Corrupt_synopsis _) -> ()
            | Error f ->
              Alcotest.failf "cut at %d: unexpected fault %s" !cut
                (Xmldoc.Fault.to_string f));
            cut := !cut + 11
          done);
      match Serialize.load_res path with
      | Ok loaded -> Alcotest.(check string) "intact after disarm" full (canonical loaded)
      | Error f -> Alcotest.failf "intact load failed: %s" (Xmldoc.Fault.to_string f))

(* ------------------------------------------------------------------ *)
(* Protocol fuzz                                                       *)
(* ------------------------------------------------------------------ *)

(* bytes 1-255 except newline (a newline would split the request);
   NULs and control characters very much included *)
let random_garbage rng max_len =
  String.init (Random.State.int rng max_len) (fun _ ->
      let c = Char.chr (Random.State.int rng 256) in
      if c = '\n' then 'x' else c)

let fuzz_line rng =
  let verbs =
    [| "PING"; "HEALTH"; "LIST"; "RELOAD"; "STAT"; "QUERY"; "ANSWER";
       "BUILD"; "JOBS"; "CANCEL" |]
  in
  match Random.State.int rng 6 with
  | 0 -> random_garbage rng 80
  | 1 -> verbs.(Random.State.int rng (Array.length verbs)) ^ " " ^ random_garbage rng 60
  | 2 ->
    (* oversized: kilobytes of one token *)
    String.make (4096 + Random.State.int rng 8192) 'A'
  | 3 ->
    Printf.sprintf "QUERY -deadline=%s db //movie"
      (random_garbage rng 12)
  | 4 -> "STAT " ^ random_garbage rng 40
  | _ ->
    Printf.sprintf "%s %s %s"
      verbs.(Random.State.int rng (Array.length verbs))
      (random_garbage rng 20) (random_garbage rng 20)

(* 10 000 hostile request lines through the total dispatcher: every
   reply single-line and well-formed, zero exceptions, zero fd drift *)
let test_fuzz_handle_line () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server dir in
      let rng = Random.State.make [| seed + 1 |] in
      let fd0 = count_fds () in
      for i = 1 to 10_000 do
        let line = fuzz_line rng in
        match Server.handle_line server line with
        | response, _quit ->
          if not (well_formed response) then
            Alcotest.failf "fuzz %d: %S answered %S" i (String.escaped line)
              response
        | exception e ->
          Alcotest.failf "fuzz %d: %S raised %s" i (String.escaped line)
            (Printexc.to_string e)
      done;
      check_fds "handle_line fuzz" fd0)

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

(* the same hostility over a real socket — the full framing path both
   directions: raw bytes in, exactly one well-formed line back per
   request line *)
let test_fuzz_socket () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let sock = Filename.concat dir "fuzz.sock" in
      let server = quiet_server dir in
      let fd0 = count_fds () in
      let th =
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
      in
      let rng = Random.State.make [| seed + 2 |] in
      let fd = connect sock in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      for i = 1 to 300 do
        let line = fuzz_line rng in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | response -> check_well_formed (Printf.sprintf "socket fuzz %d" i) response
        | exception End_of_file ->
          Alcotest.failf "socket fuzz %d: server hung up on %S" i
            (String.escaped line)
      done;
      Unix.close fd;
      Server.request_drain server;
      Thread.join th;
      Alcotest.(check bool) "listener unlinked" false (Sys.file_exists sock);
      check_fds "socket fuzz" fd0)

(* ------------------------------------------------------------------ *)
(* Client deadline vs server latency; fd hygiene                       *)
(* ------------------------------------------------------------------ *)

let test_client_deadline_beats_server () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let sock = Filename.concat dir "slow.sock" in
      let server = quiet_server dir in
      let th =
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
      in
      ignore (connect sock |> fun fd -> Unix.close fd);
      let fd0 = count_fds () in
      (* the server's request deadline is 5 s; the client gives up after
         5 ms.  Latency is injected server-side only: a Delay rule
         filtered to the server's reads on this socket path. *)
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:"slow.sock" F.Read (F.Delay 0.05) ];
          let client =
            Client.create
              ~config:
                {
                  Client.default_config with
                  request_timeout = 0.005;
                  attempts = 1;
                  jitter_seed = seed;
                }
              [ sock ]
          in
          for i = 1 to 20 do
            (match Client.request client "PING" with
            | Error (Client.Deadline _) -> ()
            | Error e ->
              Alcotest.failf "request %d: wrong error %s" i
                (Client.error_to_string e)
            | Ok r -> Alcotest.failf "request %d: unexpectedly answered %S" i r);
            (* a timed-out request abandons its connection — let the
               delayed server thread notice and release the slot *)
            Thread.delay 0.06
          done;
          Client.close client);
      check_fds "deadline phase" fd0;
      (* fault gone: 1 000 requests over one persistent connection, fd
         table flat from the first request to the last *)
      let client =
        Client.create
          ~config:{ Client.default_config with jitter_seed = seed }
          [ sock ]
      in
      (match Client.request client "PING" with
      | Ok "pong" -> ()
      | Ok r -> Alcotest.failf "expected pong, got %S" r
      | Error e -> Alcotest.failf "warmup failed: %s" (Client.error_to_string e));
      let fd1 = count_fds () in
      for i = 2 to 1_000 do
        match Client.request client "PING" with
        | Ok "pong" -> ()
        | Ok r -> Alcotest.failf "request %d: expected pong, got %S" i r
        | Error e ->
          Alcotest.failf "request %d failed: %s" i (Client.error_to_string e)
      done;
      Alcotest.(check int) "no fd growth across 1k requests" fd1 (count_fds ());
      Client.close client;
      Server.request_drain server;
      Thread.join th;
      check_fds "after drain" fd0)

(* the client maps its errors onto the fault taxonomy the CLI exits
   through: deadline -> 4, transport -> 5 *)
let test_client_error_exit_codes () =
  Alcotest.(check int) "deadline is exit 4" 4
    (Xmldoc.Fault.exit_code (Client.error_to_fault (Client.Deadline "x")));
  Alcotest.(check int) "io is exit 5" 5
    (Xmldoc.Fault.exit_code (Client.error_to_fault (Client.Io "x")));
  Alcotest.(check int) "bad response is exit 5" 5
    (Xmldoc.Fault.exit_code (Client.error_to_fault (Client.Bad_response "x")));
  Alcotest.(check bool) "PING idempotent" true (Client.idempotent "PING");
  Alcotest.(check bool) "query idempotent" true
    (Client.idempotent "query db //a");
  Alcotest.(check bool) "BUILD not idempotent" false
    (Client.idempotent "BUILD db doc.xml 4KB");
  Alcotest.(check bool) "CANCEL not idempotent" false
    (Client.idempotent "CANCEL db");
  Alcotest.(check bool) "QUIT not idempotent" false (Client.idempotent "QUIT")

(* the Connect fault site gates the client's dial: armed, every connect
   to the filtered path fails with the injected errno (a typed Io error
   after the attempts run out, never a hang); disarmed, the same client
   connects fine.  This is the rule-plan the coordinator chaos stage
   leans on to simulate unreachable replicas. *)
let test_connect_fault_site () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let sock = Filename.concat dir "conn.sock" in
      let server = quiet_server dir in
      let th =
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
      in
      ignore (connect sock |> fun fd -> Unix.close fd);
      let config =
        {
          Client.default_config with
          attempts = 2;
          backoff_base = 0.005;
          backoff_cap = 0.02;
          jitter_seed = seed;
        }
      in
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed
            [ F.rule ~prob:1.0 ~path:"conn.sock" F.Connect F.Eio ];
          let before = F.injected () in
          let client = Client.create ~config [ sock ] in
          (match Client.request client "PING" with
          | Error (Client.Io _) -> ()
          | Error e ->
            Alcotest.failf "wrong error under Connect faults: %s"
              (Client.error_to_string e)
          | Ok r -> Alcotest.failf "connected through a Connect fault: %S" r);
          Alcotest.(check bool) "Connect taps fired" true (F.injected () > before);
          Client.close client);
      (* disarmed: the same target answers *)
      let client = Client.create ~config [ sock ] in
      (match Client.request client "PING" with
      | Ok "pong" -> ()
      | Ok r -> Alcotest.failf "expected pong, got %S" r
      | Error e ->
        Alcotest.failf "disarmed connect failed: %s" (Client.error_to_string e));
      Client.close client;
      Server.request_drain server;
      Thread.join th)

(* regression: the client must forward [-deadline] MINUS the time it
   already burned (stalled attempts, backoff), never the caller's
   original budget verbatim.  Endpoint A listens but never accepts —
   the first attempt eats the full per-attempt timeout — so the line
   that reaches B must carry a visibly smaller deadline. *)
let test_deadline_forwarded_minus_elapsed () =
  with_temp_dir (fun dir ->
      let sock_a = Filename.concat dir "stall.sock" in
      let sock_b = Filename.concat dir "echo.sock" in
      (* A: a bound, listening, never-accepting socket.  Connects land
         in the backlog; the request is sent and nothing ever answers. *)
      let stall = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind stall (Unix.ADDR_UNIX sock_a);
      Unix.listen stall 8;
      (* B: a scripted replica recording the line it receives *)
      let received = ref None in
      let bsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind bsock (Unix.ADDR_UNIX sock_b);
      Unix.listen bsock 8;
      let bth =
        Thread.create
          (fun () ->
            match Unix.accept bsock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              (match input_line ic with
              | line ->
                received := Some line;
                output_string oc
                  "ok query degraded=no est=1 classes=1 empty=no\n";
                flush oc
              | exception End_of_file -> ());
              Unix.close fd)
          ()
      in
      let stall_for = 0.2 in
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              request_timeout = stall_for;
              attempts = 2;
              backoff_base = 0.01;
              backoff_cap = 0.02;
              jitter_seed = seed;
            }
          [ sock_a; sock_b ]
      in
      let asked = 5.0 in
      (match
         Client.request client
           (Printf.sprintf "QUERY -deadline=%g db //movie" asked)
       with
      | Ok r -> check_well_formed "forwarded query" r
      | Error e ->
        Alcotest.failf "request failed: %s" (Client.error_to_string e));
      Thread.join bth;
      (match !received with
      | None -> Alcotest.fail "endpoint B never saw the request"
      | Some line -> (
        match Serve.Protocol.request_deadline line with
        | None ->
          Alcotest.failf "forwarded line lost its deadline: %S" line
        | Some d ->
          Alcotest.(check bool)
            (Printf.sprintf
               "forwarded deadline %g reflects the %.2gs stalled on A" d
               stall_for)
            true
            (d > 0.0 && d <= asked -. (stall_for /. 2.))));
      Client.close client;
      Unix.close stall;
      Unix.close bsock)

(* ------------------------------------------------------------------ *)
(* Drain as a unit                                                     *)
(* ------------------------------------------------------------------ *)

let test_drain_unit () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let sock = Filename.concat dir "drain.sock" in
      let config = { Server.default_config with drain_deadline = 1.0 } in
      let server = quiet_server ~config dir in
      let th =
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
      in
      let client =
        Client.create
          ~config:{ Client.default_config with jitter_seed = seed }
          [ sock ]
      in
      (match Client.request client "HEALTH" with
      | Ok h ->
        check_well_formed "health" h;
        Alcotest.(check bool) "ready before drain" true
          (starts_with "ok health live=yes ready=yes" h)
      | Error e -> Alcotest.failf "health failed: %s" (Client.error_to_string e));
      Server.request_drain server;
      (* serve_socket returns: the drain is the loop's exit path *)
      Thread.join th;
      Alcotest.(check bool) "draining flag" true (Server.draining server);
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
      (* the dead listener now refuses connects fast — the client
         surfaces a typed transport error, not a hang *)
      (match
         Client.request
           (Client.create
              ~config:
                { Client.default_config with attempts = 2; jitter_seed = seed }
              [ sock ])
           "PING"
       with
      | Error (Client.Io _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Client.error_to_string e)
      | Ok r -> Alcotest.failf "drained server answered %S" r);
      Client.close client)

(* ------------------------------------------------------------------ *)
(* End-to-end acceptance: forked servers, faults, SIGTERM, failover    *)
(* ------------------------------------------------------------------ *)

(* fault plan for a forked server: EINTR storms on reads (absorbed by
   the retrying taps), rare EIO on snapshot loads (quarantine, typed io
   errors), EINTR at accept (the loop's own retry), and a little
   latency everywhere *)
let server_faults =
  [
    F.rule ~prob:0.05 F.Read F.Eintr;
    F.rule ~prob:0.01 ~path:".ts" F.Read F.Eio;
    F.rule ~prob:0.1 F.Accept F.Eintr;
    F.rule ~prob:0.1 F.Read (F.Delay 0.002);
  ]

let spawn_server ~faults ~dir ~sock =
  match Unix.fork () with
  | 0 ->
    (* the child must never touch the parent's alcotest state or
       buffered channels, and must leave through [_exit] *)
    (try
       if faults <> [] then F.arm ~seed faults;
       let config = { Server.default_config with drain_deadline = 2.0 } in
       let server = quiet_server ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let expect_clean_exit what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "%s exited %d, want 0" what n
  | _, Unix.WSIGNALED s -> Alcotest.failf "%s killed by signal %d" what s
  | _, Unix.WSTOPPED s -> Alcotest.failf "%s stopped by signal %d" what s

let e2e_request rng =
  match Random.State.int rng 12 with
  | 0 -> "PING"
  | 1 -> "HEALTH"
  | 2 -> "LIST"
  | 3 -> "STAT db"
  | 4 -> "STAT ghost"
  | 5 -> "QUERY db //movie[//actor]"
  | 6 -> "ANSWER -max-nodes=3 db //movie"
  | 7 -> "QUERY -deadline=-1 db //short"
  | 8 -> "QUERY ghost //a"
  | 9 -> "RELOAD -force"
  | 10 -> random_garbage rng 40
  | _ -> "QUERY db //short"

(* SIGTERM landing while a BUILD worker is mid-checkpoint: the drain
   must exit 0, keep the journal on disk for the next server's resume,
   and leave no orphan worker — observable as the journal going quiet
   and the snapshot never being published posthumously. *)
let spawn_jobs_server ~dir ~sock =
  match Unix.fork () with
  | 0 ->
    (try
       let config =
         {
           Server.default_config with
           drain_deadline = 2.0;
           jobs = { Serve.Jobs.default_config with checkpoint_every = 2 };
         }
       in
       let server = quiet_server ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let test_drain_during_build_checkpoint () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      (* big enough that TSBUILD is still merging when the SIGTERM
         lands; the tiny budget maximizes the merge count and the tiny
         checkpoint_every puts a journal on disk almost immediately *)
      let xml = Filename.concat dir "big.xml" in
      (match Datagen.Datasets.of_name "xmark" with
      | Some ds ->
        Xmldoc.Printer.to_file xml (Datagen.Datasets.generate ~seed ~scale:2.0 ds)
      | None -> Alcotest.fail "xmark dataset missing");
      let sock = Filename.concat dir "jobs.sock" in
      let pid = spawn_jobs_server ~dir ~sock in
      ignore (connect sock |> fun fd -> Unix.close fd);
      let client =
        Client.create
          ~config:{ Client.default_config with jitter_seed = seed }
          [ sock ]
      in
      (match Client.request client (Printf.sprintf "BUILD big %s 1KB" xml) with
      | Ok r ->
        if not (starts_with "ok build" r) then
          Alcotest.failf "BUILD refused: %S" r
      | Error e -> Alcotest.failf "BUILD: %s" (Client.error_to_string e));
      let ckpt = Filename.concat dir ".big.ckpt" in
      let deadline = Unix.gettimeofday () +. 15.0 in
      while (not (Sys.file_exists ckpt)) && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done;
      Alcotest.(check bool) "checkpoint journal appeared" true
        (Sys.file_exists ckpt);
      Unix.kill pid Sys.sigterm;
      expect_clean_exit "jobs server" pid;
      Alcotest.(check bool) "checkpoint kept across drain" true
        (Sys.file_exists ckpt);
      (* no orphan worker: nobody journals or publishes after the exit *)
      let mtime path =
        try (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> 0.0
      in
      let m0 = mtime ckpt in
      Thread.delay 0.6;
      Alcotest.(check bool) "journal went quiet after drain" true
        (mtime ckpt = m0);
      Alcotest.(check bool) "snapshot not published posthumously" false
        (Sys.file_exists (Filename.concat dir "big.ts"));
      Client.close client)

let test_e2e_chaos () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let sock_a = Filename.concat dir "a.sock" in
      let sock_b = Filename.concat dir "b.sock" in
      let pid_a = spawn_server ~faults:server_faults ~dir ~sock:sock_a in
      (* wait for A to listen *)
      ignore (connect sock_a |> fun fd -> Unix.close fd);
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              attempts = 4;
              backoff_base = 0.02;
              backoff_cap = 0.2;
              jitter_seed = seed;
            }
          [ sock_a; sock_b ]
      in
      let rng = Random.State.make [| seed + 3 |] in
      let oks = ref 0 and server_errors = ref 0 and client_errors = ref 0 in
      let drive i =
        let line = e2e_request rng in
        match Client.request client line with
        | Ok response ->
          check_well_formed (Printf.sprintf "request %d (%S)" i (String.escaped line))
            response;
          if starts_with "error " response then incr server_errors else incr oks
        | Error (Client.Bad_response msg) ->
          Alcotest.failf "request %d: protocol broken: %s" i msg
        | Error _ -> incr client_errors
      in
      for i = 1 to 250 do
        drive i
      done;
      (* the replacement comes up; a rolling restart would now wait for
         its readiness before retiring A *)
      let pid_b = spawn_server ~faults:server_faults ~dir ~sock:sock_b in
      ignore (connect sock_b |> fun fd -> Unix.close fd);
      (match
         Client.request
           (Client.create
              ~config:{ Client.default_config with jitter_seed = seed }
              [ sock_b ])
           "HEALTH"
       with
      | Ok h ->
        Alcotest.(check bool) "B ready" true
          (starts_with "ok health live=yes ready=yes" h)
      | Error e -> Alcotest.failf "B health: %s" (Client.error_to_string e));
      (* retire A mid-run with a request in flight on a raw connection:
         the drain must still deliver that response before the EOF *)
      let raw = connect sock_a in
      let raw_ic = Unix.in_channel_of_descr raw in
      let raw_oc = Unix.out_channel_of_descr raw in
      output_string raw_oc "QUERY db //movie\n";
      flush raw_oc;
      Thread.delay 0.05;
      Unix.kill pid_a Sys.sigterm;
      (match input_line raw_ic with
      | response -> check_well_formed "in-flight response during drain" response
      | exception End_of_file ->
        Alcotest.fail "drain dropped the in-flight response");
      (match input_line raw_ic with
      | line -> Alcotest.failf "unexpected extra line after drain: %S" line
      | exception End_of_file -> () (* clean EOF after the response *));
      Unix.close raw;
      expect_clean_exit "server A" pid_a;
      Alcotest.(check bool) "A's socket unlinked" false (Sys.file_exists sock_a);
      (* the client rides over A's death: the remaining load fails over
         to B without a single unresolved request *)
      for i = 251 to 500 do
        drive i
      done;
      Unix.kill pid_b Sys.sigterm;
      expect_clean_exit "server B" pid_b;
      Client.close client;
      Alcotest.(check int) "every request resolved" 500
        (!oks + !server_errors + !client_errors);
      Alcotest.(check bool) "successes dominate" true (!oks > 250);
      Alcotest.(check bool)
        (Printf.sprintf "client-side failures stay rare (%d)" !client_errors)
        true
        (!client_errors <= 20);
      Printf.eprintf
        "e2e: 500 requests -> %d ok, %d server errors, %d client errors\n%!"
        !oks !server_errors !client_errors)

let () =
  Alcotest.run "chaos"
    [
      ( "shim",
        [
          Alcotest.test_case "seeded determinism" `Quick test_shim_determinism;
          Alcotest.test_case "short reads never partial" `Quick
            test_short_reads_never_partial;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "10k lines through handle_line" `Quick
            test_fuzz_handle_line;
          Alcotest.test_case "raw bytes over the socket" `Quick test_fuzz_socket;
        ] );
      ( "client",
        [
          Alcotest.test_case "client deadline beats server latency" `Quick
            test_client_deadline_beats_server;
          Alcotest.test_case "error taxonomy and idempotency" `Quick
            test_client_error_exit_codes;
          Alcotest.test_case "Connect fault site gates the dial" `Quick
            test_connect_fault_site;
          Alcotest.test_case "deadline forwarded minus elapsed" `Quick
            test_deadline_forwarded_minus_elapsed;
        ] );
      ( "drain",
        [
          Alcotest.test_case "serve_socket returns" `Quick test_drain_unit;
          Alcotest.test_case "SIGTERM mid-build keeps the checkpoint" `Quick
            test_drain_during_build_checkpoint;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "500 requests, faults, SIGTERM, failover" `Quick
            test_e2e_chaos;
        ] );
    ]
