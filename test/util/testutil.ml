(* Shared helpers and QCheck generators for the test suites. *)

module Tree = Xmldoc.Tree

let tree : Tree.t Alcotest.testable =
  Alcotest.testable Tree.pp Tree.equal

let tree_iso : Tree.t Alcotest.testable =
  Alcotest.testable Tree.pp Tree.equal_unordered

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1. (Float.abs a)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Random labeled trees                                                 *)
(* ------------------------------------------------------------------ *)

let default_labels = [| "a"; "b"; "c"; "d"; "e" |]

(* A random tree of at most [size] nodes over a small alphabet; the
   small alphabet maximizes label collisions and thus stresses the
   summarization machinery. *)
let gen_tree_sized ?(labels = default_labels) size =
  let open QCheck.Gen in
  let label = oneofa labels in
  fix
    (fun self budget ->
      if budget <= 1 then label >|= fun l -> Tree.v l []
      else
        label >>= fun l ->
        int_range 0 (min 5 (budget - 1)) >>= fun fanout ->
        if fanout = 0 then return (Tree.v l [])
        else begin
          let child_budget = (budget - 1) / fanout in
          list_repeat fanout (self (max 1 child_budget)) >|= fun children ->
          Tree.v l children
        end)
    size

let gen_tree ?labels () =
  QCheck.Gen.(sized_size (int_range 1 60) (fun n -> gen_tree_sized ?labels (max 1 n)))

let arb_tree ?labels () =
  QCheck.make ~print:(Format.asprintf "%a" Tree.pp) (gen_tree ?labels ())

(* Random twig queries guaranteed positive on the given document are
   provided by the Workload library; here is a generator for arbitrary
   (possibly empty-result) queries over a small alphabet. *)
let gen_step =
  let open QCheck.Gen in
  let* axis = oneofl [ Twig.Syntax.Child; Twig.Syntax.Descendant ] in
  let* label = oneofa default_labels in
  return
    (match axis with
    | Twig.Syntax.Child -> Twig.Syntax.child label
    | Twig.Syntax.Descendant -> Twig.Syntax.desc label)

let gen_path =
  QCheck.Gen.(list_size (int_range 1 3) gen_step)

let gen_query =
  let open QCheck.Gen in
  let gen_edge self depth =
    let* path = gen_path in
    let* optional = bool in
    let* subs =
      if depth >= 2 then return []
      else list_size (int_range 0 2) (self (depth + 1))
    in
    return (Twig.Syntax.edge ~optional path (Twig.Syntax.node subs))
  in
  let rec edge depth = gen_edge edge depth in
  let* top = edge 0 in
  return (Twig.Syntax.query [ { top with optional = false } ])

let arb_query = QCheck.make ~print:Twig.Syntax.to_string gen_query

(* Register a QCheck property over an arbitrary as an alcotest case. *)
let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
