(* Tests for the XML substrate: labels, trees, parser, printer, stats. *)

open Xmldoc
module T = Testutil

(* ---------------- labels ---------------- *)

let test_label_interning () =
  let a = Label.of_string "widget" in
  let b = Label.of_string "widget" in
  let c = Label.of_string "gadget" in
  Alcotest.(check bool) "same string, same label" true (Label.equal a b);
  Alcotest.(check bool) "different strings differ" false (Label.equal a c);
  Alcotest.(check string) "round trip" "widget" (Label.to_string a);
  Alcotest.(check string) "round trip other" "gadget" (Label.to_string c)

let test_label_many () =
  (* interning stays consistent across a large batch (forces growth) *)
  let names = List.init 1000 (fun i -> Printf.sprintf "tag%d" i) in
  let labels = List.map Label.of_string names in
  List.iter2
    (fun name label ->
      Alcotest.(check string) "batch round trip" name (Label.to_string label))
    names labels;
  let again = List.map Label.of_string names in
  List.iter2
    (fun a b -> Alcotest.(check bool) "stable ids" true (Label.equal a b))
    labels again

let test_label_order () =
  let a = Label.of_string "zzz_order_1" in
  let b = Label.of_string "zzz_order_2" in
  Alcotest.(check bool) "interning order" true (Label.compare a b < 0);
  Alcotest.(check int) "self compare" 0 (Label.compare a a)

(* ---------------- trees ---------------- *)

let abc = Tree.v "a" [ Tree.v "b" []; Tree.v "c" [ Tree.v "d" [] ] ]

let test_tree_measures () =
  Alcotest.(check int) "size" 4 (Tree.size abc);
  Alcotest.(check int) "height" 2 (Tree.height abc);
  Alcotest.(check int) "leaf size" 1 (Tree.size (Tree.v "x" []));
  Alcotest.(check int) "leaf height" 0 (Tree.height (Tree.v "x" []))

let test_tree_traversals () =
  let pre = Tree.fold_pre (fun acc n -> Label.to_string (Tree.label n) :: acc) [] abc in
  Alcotest.(check (list string)) "pre-order" [ "a"; "b"; "c"; "d" ] (List.rev pre);
  let post = Tree.fold_post (fun acc n -> Label.to_string (Tree.label n) :: acc) [] abc in
  Alcotest.(check (list string)) "post-order" [ "b"; "d"; "c"; "a" ] (List.rev post)

let test_count_label () =
  let t = Tree.v "a" [ Tree.v "b" []; Tree.v "a" [ Tree.v "b" [] ] ] in
  Alcotest.(check int) "count a" 2 (Tree.count_label (Label.of_string "a") t);
  Alcotest.(check int) "count b" 2 (Tree.count_label (Label.of_string "b") t);
  Alcotest.(check int) "count absent" 0 (Tree.count_label (Label.of_string "zz") t)

let test_distinct_labels () =
  let t = Tree.v "a" [ Tree.v "b" []; Tree.v "a" [ Tree.v "c" [] ] ] in
  let names = List.map Label.to_string (Tree.distinct_labels t) in
  Alcotest.(check (list string)) "discovery order" [ "a"; "b"; "c" ] names

let test_equal_unordered () =
  let t1 = Tree.v "a" [ Tree.v "b" []; Tree.v "c" [] ] in
  let t2 = Tree.v "a" [ Tree.v "c" []; Tree.v "b" [] ] in
  let t3 = Tree.v "a" [ Tree.v "c" []; Tree.v "c" [] ] in
  Alcotest.(check bool) "ordered differ" false (Tree.equal t1 t2);
  Alcotest.(check bool) "iso modulo order" true (Tree.equal_unordered t1 t2);
  Alcotest.(check bool) "different multisets" false (Tree.equal_unordered t1 t3)

(* ---------------- parser ---------------- *)

let parse = Parser.of_string

let test_parse_simple () =
  Alcotest.check T.tree "self closing" (Tree.v "a" []) (parse "<a/>");
  Alcotest.check T.tree "open close" (Tree.v "a" []) (parse "<a></a>");
  Alcotest.check T.tree "nested" abc (parse "<a><b/><c><d/></c></a>")

let test_parse_whitespace_and_text () =
  Alcotest.check T.tree "text dropped"
    (Tree.v "a" [ Tree.v "b" [] ])
    (parse "<a>\n  hello <b/> world\n</a>")

let test_parse_attributes () =
  Alcotest.check T.tree "attributes scanned and dropped"
    (Tree.v "a" [ Tree.v "b" [] ])
    (parse {|<a x="1" y='two words' flag><b z="<not a tag>"/></a>|})

let test_parse_misc_constructs () =
  Alcotest.check T.tree "declaration comment cdata doctype"
    (Tree.v "a" [ Tree.v "b" [] ])
    (parse
       {|<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (b)>]><a><!-- a comment
          with <b/> inside --><![CDATA[<fake/>]]><b/></a>|})

let test_parse_errors () =
  let fails src =
    match parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected a parse error on %S" src
  in
  fails "";
  fails "   \n\t ";
  fails "<a>";
  fails "<a" (* truncated start tag *);
  fails "<a foo" (* truncated mid-attributes *);
  fails "<a></b>" (* mismatched close tag *);
  fails "<a><b></a></b>" (* crossed close tags *);
  fails "<a/><b/>";
  fails "just text";
  fails "<a foo=bar/>";
  fails {|<a foo="never closed /></a>|} (* unterminated attribute value *);
  fails "<a><!-- unterminated </a>" (* unterminated comment *);
  fails "<a><![CDATA[ unterminated </a>" (* unterminated CDATA *);
  fails "<a><?pi unterminated </a>" (* unterminated processing instr. *);
  fails "<a><!DOCTYPE oops [" (* unterminated declaration *)

let test_parse_error_position () =
  match parse "<a>\n<b></c></a>" with
  | exception Parser.Error { line; column = _; message = _ } ->
    Alcotest.(check int) "error line" 2 line
  | _ -> Alcotest.fail "expected mismatched-tag error"

let deep_doc depth =
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  Buffer.contents buf

let test_parse_deep () =
  (* deep nesting does not blow the stack at reasonable depths *)
  let depth = 10_000 in
  let t = parse (deep_doc depth) in
  Alcotest.(check int) "deep size" depth (Tree.size t)

let test_parse_very_deep () =
  (* regression for the explicit-stack parser: recursive descent
     overflowed the OCaml stack well before 100k levels *)
  let depth = 100_000 in
  let t = parse (deep_doc depth) in
  Alcotest.(check int) "very deep size" depth (Tree.size t);
  Alcotest.(check int) "very deep height" (depth - 1) (Tree.height t)

let test_parse_many_comments () =
  (* consecutive misc constructs must not consume stack either *)
  let n = 50_000 in
  let buf = Buffer.create (n * 9) in
  Buffer.add_string buf "<a>";
  for _ = 1 to n do
    Buffer.add_string buf "<!--c-->"
  done;
  Buffer.add_string buf "</a>";
  Alcotest.check T.tree "comments skipped" (Tree.v "a" []) (parse (Buffer.contents buf))

(* ---------------- printer ---------------- *)

let test_print_parse_roundtrip () =
  Alcotest.check T.tree "compact" abc (parse (Printer.to_string abc));
  Alcotest.check T.tree "indented" abc (parse (Printer.to_string ~indent:2 abc))

let test_serialized_size () =
  Alcotest.(check int) "size equals string length"
    (String.length (Printer.to_string abc))
    (Printer.serialized_size abc)

let prop_roundtrip =
  T.qtest "print/parse round trip" (T.arb_tree ())
    (fun t -> Tree.equal t (parse (Printer.to_string t)))

let prop_roundtrip_indented =
  T.qtest "indented print/parse round trip" (T.arb_tree ())
    (fun t -> Tree.equal t (parse (Printer.to_string ~indent:3 t)))

let prop_serialized_size =
  T.qtest "serialized_size = string length" (T.arb_tree ())
    (fun t -> Printer.serialized_size t = String.length (Printer.to_string t))

let prop_canonical_reflexive =
  T.qtest "canonical order reflexive" (T.arb_tree ())
    (fun t -> Tree.compare_canonical t t = 0)

let prop_parser_fuzz =
  (* arbitrary bytes either parse or raise Parser.Error — never crash *)
  T.qtest ~count:300 "parser never crashes on junk"
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun junk ->
      match Parser.of_string junk with
      | (_ : Tree.t) -> true
      | exception Parser.Error _ -> true)

let prop_parser_fuzz_taggy =
  (* junk biased towards tag-like character soup *)
  T.qtest ~count:300 "parser never crashes on tag soup"
    QCheck.(
      string_gen_of_size (Gen.int_range 0 120)
        (Gen.oneofl [ '<'; '>'; '/'; 'a'; 'b'; ' '; '"'; '='; '!'; '-'; '['; ']' ]))
    (fun junk ->
      match Parser.of_string junk with
      | (_ : Tree.t) -> true
      | exception Parser.Error _ -> true)

(* ---------------- stats ---------------- *)

let test_stats () =
  let s = Stats.compute abc in
  Alcotest.(check int) "elements" 4 s.elements;
  Alcotest.(check int) "height" 2 s.height;
  Alcotest.(check int) "distinct labels" 4 s.distinct_labels;
  Alcotest.(check int) "leaves" 2 s.leaves;
  Alcotest.(check int) "max fanout" 2 s.max_fanout;
  T.check_float "avg fanout" 1.5 s.avg_fanout

let test_label_histogram () =
  let t = Tree.v "a" [ Tree.v "b" []; Tree.v "b" []; Tree.v "c" [] ] in
  match Stats.label_histogram t with
  | (top, 2) :: _ -> Alcotest.(check string) "top label" "b" (Label.to_string top)
  | _ -> Alcotest.fail "expected b with count 2 first"

(* ---------------- limits ---------------- *)

let test_parse_bytes () =
  let ok spec expected =
    match Limits.parse_bytes spec with
    | Ok n -> Alcotest.(check int) spec expected n
    | Error msg -> Alcotest.failf "%s rejected: %s" spec msg
  in
  ok "4096" 4096;
  ok "10KB" (10 * 1024);
  ok "10kb" (10 * 1024);
  ok " 2MB " (2 * 1024 * 1024);
  ok "1GB" (1024 * 1024 * 1024);
  ok "512B" 512;
  ok "512b" 512

let test_parse_bytes_rejects () =
  let fails spec =
    match Limits.parse_bytes spec with
    | Ok n -> Alcotest.failf "%S accepted as %d" spec n
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions the input" spec)
        true
        (T.contains msg spec || String.trim spec = "" || T.contains msg (String.trim spec))
  in
  fails "";
  fails "  ";
  fails "KB";
  fails "0";
  fails "-5KB";
  fails "3.5MB";
  fails "10XB";
  fails (Printf.sprintf "%dKB" max_int) (* overflow *)

let prop_stats_consistent =
  T.qtest "stats internally consistent" (T.arb_tree ())
    (fun t ->
      let s = Stats.compute t in
      s.elements = Tree.size t
      && s.height = Tree.height t
      && s.leaves <= s.elements
      && (s.elements = s.leaves || s.avg_fanout >= 1.))

let () =
  Alcotest.run "xmldoc"
    [
      ( "label",
        [
          Alcotest.test_case "interning" `Quick test_label_interning;
          Alcotest.test_case "many labels" `Quick test_label_many;
          Alcotest.test_case "ordering" `Quick test_label_order;
        ] );
      ( "tree",
        [
          Alcotest.test_case "measures" `Quick test_tree_measures;
          Alcotest.test_case "traversals" `Quick test_tree_traversals;
          Alcotest.test_case "count_label" `Quick test_count_label;
          Alcotest.test_case "distinct_labels" `Quick test_distinct_labels;
          Alcotest.test_case "unordered equality" `Quick test_equal_unordered;
          prop_canonical_reflexive;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "text skipped" `Quick test_parse_whitespace_and_text;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "misc constructs" `Quick test_parse_misc_constructs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "deep document" `Quick test_parse_deep;
          Alcotest.test_case "100k-deep document" `Quick test_parse_very_deep;
          Alcotest.test_case "many consecutive comments" `Quick
            test_parse_many_comments;
          prop_parser_fuzz;
          prop_parser_fuzz_taggy;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "serialized size" `Quick test_serialized_size;
          prop_roundtrip;
          prop_roundtrip_indented;
          prop_serialized_size;
        ] );
      ( "stats",
        [
          Alcotest.test_case "compute" `Quick test_stats;
          Alcotest.test_case "label histogram" `Quick test_label_histogram;
          prop_stats_consistent;
        ] );
      ( "limits",
        [
          Alcotest.test_case "parse_bytes accepts" `Quick test_parse_bytes;
          Alcotest.test_case "parse_bytes rejects" `Quick test_parse_bytes_rejects;
        ] );
    ]
