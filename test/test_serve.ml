(* Tests for the serving runtime: catalog crash-safety and hot-reload,
   the request protocol, admission control, an end-to-end smoke of the
   server loop over real channels, and a seeded chaos run that
   interleaves malformed requests, corrupt snapshots, expired deadlines
   and over-cap answers — asserting the server never dies and every
   response is structurally well-formed. *)

module Server = Serve.Server
module Catalog = Serve.Catalog
module Protocol = Serve.Protocol
module Serialize = Sketch.Serialize
module Synopsis = Sketch.Synopsis
module Stable = Sketch.Stable
module T = Testutil

let seed = 0x5e17e

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsserve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let synopsis_a =
  lazy (Stable.build (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let synopsis_b =
  lazy (Stable.build (Xmldoc.Parser.of_string "<lib><book><ref/></book></lib>"))

let canonical s = Serialize.to_string s

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

(* mtime has 1-second granularity on some filesystems; tests that
   rewrite a file in place force the reload instead of sleeping *)
let refresh_force c = Catalog.refresh ~force:true c

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let test_catalog_loads () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "a.ts") (Lazy.force synopsis_a);
      save (Filename.concat dir "b.ts") (Lazy.force synopsis_b);
      write_file (Filename.concat dir "notes.txt") "not a snapshot";
      let c = Catalog.create dir in
      let events = Catalog.refresh c in
      Alcotest.(check int) "two loads" 2
        (List.length
           (List.filter (function Catalog.Loaded _ -> true | _ -> false) events));
      Alcotest.(check (list string)) "names" [ "a"; "b" ] (Catalog.names c);
      (match Catalog.find c "a" with
      | Some e ->
        Alcotest.(check string) "a content" (canonical (Lazy.force synopsis_a))
          (canonical e.synopsis)
      | None -> Alcotest.fail "a not resident");
      Alcotest.(check int) "no quarantine" 0 (List.length (Catalog.quarantined c)))

let test_catalog_quarantines_and_keeps_previous () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      save path (Lazy.force synopsis_a);
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      (* corrupt the file behind the catalog's back *)
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n" (* missing crc *);
      let events = refresh_force c in
      (match events with
      | [ Catalog.Quarantined ("a", Xmldoc.Fault.Corrupt_synopsis _) ] -> ()
      | _ -> Alcotest.failf "expected one quarantine event, got %d" (List.length events));
      (* the previous resident version keeps serving *)
      (match Catalog.find c "a" with
      | Some e ->
        Alcotest.(check string) "stale version served"
          (canonical (Lazy.force synopsis_a))
          (canonical e.synopsis)
      | None -> Alcotest.fail "previous version dropped");
      Alcotest.(check bool) "fault recorded" true (Catalog.fault_for c "a" <> None);
      (* repair in place: picked up without a restart *)
      save path (Lazy.force synopsis_a);
      (match refresh_force c with
      | [ Catalog.Reloaded "a" ] -> ()
      | events -> Alcotest.failf "expected a reload, got %d events" (List.length events));
      Alcotest.(check bool) "quarantine cleared" true (Catalog.fault_for c "a" = None))

(* a persistently corrupt file must not be re-parsed on every refresh:
   the retry is gated on the (mtime, size) fingerprint moving, with
   [~force] as the unconditional escape hatch *)
let test_catalog_quarantine_retry_gated_by_fingerprint () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n" (* missing crc *);
      let c = Catalog.create dir in
      (match Catalog.refresh c with
      | [ Catalog.Quarantined ("a", _) ] -> ()
      | events ->
        Alcotest.failf "expected one quarantine event, got %d" (List.length events));
      (* unchanged fingerprint: the corrupt file is left alone *)
      (match Catalog.refresh c with
      | [] -> ()
      | events ->
        Alcotest.failf "quarantined file retried while unchanged (%d events)"
          (List.length events));
      Alcotest.(check bool) "still quarantined" true (Catalog.fault_for c "a" <> None);
      (* -force retries unconditionally *)
      (match Catalog.refresh ~force:true c with
      | [ Catalog.Quarantined ("a", _) ] -> ()
      | _ -> Alcotest.fail "force did not retry the quarantined file");
      (* an in-place repair moves the fingerprint and is picked up on a
         plain refresh, no force required *)
      save path (Lazy.force synopsis_a);
      (match Catalog.refresh c with
      | [ Catalog.Loaded "a" ] -> ()
      | events -> Alcotest.failf "repair not picked up (%d events)" (List.length events));
      Alcotest.(check bool) "quarantine cleared" true (Catalog.fault_for c "a" = None))

(* catalog-level crash-safety: a snapshot read torn at any sampled
   offset either leaves the previous version serving (quarantine) or —
   if the tear kept the text complete — reloads it identically; never
   partial.  The tear comes from the {!Xmldoc.Io_fault} shim (an
   injected short read of the intact on-disk file), not from rewriting
   the file — the same substrate the chaos suite uses. *)
let test_catalog_torn_writes_never_partial () =
  with_temp_dir (fun dir ->
      let module F = Xmldoc.Io_fault in
      let s = Lazy.force synopsis_a in
      let full = canonical s in
      let snap = Serialize.to_snapshot_string s in
      let path = Filename.concat dir "a.ts" in
      save path s;
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      Fun.protect ~finally:F.disarm (fun () ->
          let cut = ref 0 in
          while !cut < String.length snap do
            F.arm ~seed [ F.rule ~prob:1.0 ~path:"a.ts" F.Read (F.Short_at !cut) ];
            ignore (refresh_force c);
            F.disarm ();
            (match Catalog.find c "a" with
            | Some e ->
              Alcotest.(check string)
                (Printf.sprintf "cut at %d serves a complete synopsis" !cut)
                full (canonical e.synopsis)
            | None -> Alcotest.failf "cut at %d: synopsis vanished" !cut);
            cut := !cut + 7
          done);
      (* with the shim disarmed the intact file loads cleanly again *)
      ignore (refresh_force c);
      Alcotest.(check int) "no quarantine after disarm" 0
        (List.length (Catalog.quarantined c));
      (* a torn staging file must be invisible to the scan *)
      write_file (Filename.concat dir ".treesketch_torn.tmp")
        (String.sub snap 0 (String.length snap / 2));
      ignore (refresh_force c);
      Alcotest.(check (list string)) "staging file invisible" [ "a" ] (Catalog.names c);
      Alcotest.(check int) "no quarantine" 0 (List.length (Catalog.quarantined c)))

(* satellite regression: a same-second, same-size rewrite must still be
   observed by a plain refresh — the inode (atomic publishes rename a
   fresh temp file into place, so the inode always moves) is folded
   into the staleness fingerprint precisely for this window *)
let test_catalog_same_second_same_size_rewrite () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "x.ts" in
      (* two distinct synopses whose snapshots are byte-for-byte the
         same length: same structure, different labels *)
      let s1 = Stable.build (Xmldoc.Parser.of_string "<db><aa/></db>") in
      let s2 = Stable.build (Xmldoc.Parser.of_string "<db><bb/></db>") in
      let snap1 = Serialize.to_snapshot_string s1
      and snap2 = Serialize.to_snapshot_string s2 in
      Alcotest.(check int) "same size" (String.length snap1) (String.length snap2);
      (* pin both publishes to the same whole-second timestamp
         (utimes cannot express sub-second precision portably): the
         fingerprint then matches in (mtime, size) and only the inode
         differs — exactly the same-second same-size window *)
      let t = Float.of_int (int_of_float (Unix.time ()) - 10) in
      save path s1;
      Unix.utimes path t t;
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      let st1 = Unix.stat path in
      save path s2;
      Unix.utimes path t t;
      let st2 = Unix.stat path in
      Alcotest.(check bool) "same mtime" true (st1.Unix.st_mtime = st2.Unix.st_mtime);
      Alcotest.(check bool) "same size" true (st1.Unix.st_size = st2.Unix.st_size);
      (match Catalog.refresh c with
      | [ Catalog.Reloaded "x" ] -> ()
      | events ->
        Alcotest.failf "same-second same-size rewrite missed (%d events)"
          (List.length events));
      match Catalog.find c "x" with
      | Some e -> Alcotest.(check string) "new content served" (canonical s2)
                    (canonical e.synopsis)
      | None -> Alcotest.fail "x not resident")

let test_catalog_removal () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      save path (Lazy.force synopsis_a);
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      Sys.remove path;
      (match Catalog.refresh c with
      | [ Catalog.Removed "a" ] -> ()
      | events -> Alcotest.failf "expected removal, got %d events" (List.length events));
      Alcotest.(check (list string)) "empty" [] (Catalog.names c))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  let ok line expect =
    match Protocol.parse line with
    | Ok req when req = expect -> ()
    | Ok _ -> Alcotest.failf "%S parsed to the wrong request" line
    | Error msg -> Alcotest.failf "%S rejected: %s" line msg
  in
  ok "PING" Protocol.Ping;
  ok "ping" Protocol.Ping;
  ok "HEALTH" Protocol.Health;
  ok "health" Protocol.Health;
  ok "  LIST  " Protocol.List;
  ok "QUIT" Protocol.Quit;
  ok "RELOAD" (Protocol.Reload { force = false });
  ok "RELOAD -force" (Protocol.Reload { force = true });
  ok "STAT db" (Protocol.Stat "db");
  (match Protocol.parse "QUERY -deadline=0.5 -max-nodes=9 db //movie" with
  | Ok (Protocol.Query (opts, "db", _)) ->
    Alcotest.(check (option int)) "max-nodes" (Some 9) opts.max_nodes;
    (match opts.deadline with
    | Some d -> Alcotest.(check bool) "deadline" true (T.feq d 0.5)
    | None -> Alcotest.fail "deadline dropped")
  | Ok _ -> Alcotest.fail "wrong request shape"
  | Error msg -> Alcotest.failf "rejected: %s" msg);
  let fails line =
    match Protocol.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S accepted" line
  in
  fails "";
  fails "   ";
  fails "BOGUS";
  fails "STAT";
  fails "STAT a b";
  fails "PING extra";
  fails "HEALTH extra";
  fails "QUERY db";
  fails "QUERY -deadline=soon db //a";
  fails "QUERY -max-nodes=0 db //a";
  fails "QUERY -frobnicate=1 db //a";
  fails "ANSWER db //a[";
  ok "BUILD db doc.xml 4KB"
    (Protocol.Build { name = "db"; xml = "doc.xml"; budget = 4096 });
  ok "build job-1 /tmp/d.xml 512"
    (Protocol.Build { name = "job-1"; xml = "/tmp/d.xml"; budget = 512 });
  ok "JOBS" Protocol.Jobs;
  ok "CANCEL db" (Protocol.Cancel "db");
  fails "BUILD";
  fails "BUILD db";
  fails "BUILD db doc.xml";
  fails "BUILD db doc.xml nope";
  fails "BUILD db doc.xml 0";
  fails "BUILD ../evil doc.xml 4KB" (* name must not escape the catalog dir *);
  fails "BUILD a/b doc.xml 4KB";
  fails "JOBS extra";
  fails "CANCEL";
  fails "CANCEL a b";
  Alcotest.(check string) "one_line flattens" "a b c" (Protocol.one_line "a\nb\rc")

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission () =
  let a = Server.Admission.create 2 in
  Alcotest.(check int) "capacity" 2 (Server.Admission.capacity a);
  Alcotest.(check bool) "first" true (Server.Admission.try_acquire a);
  Alcotest.(check bool) "second" true (Server.Admission.try_acquire a);
  Alcotest.(check bool) "third shed" false (Server.Admission.try_acquire a);
  Alcotest.(check int) "in flight" 2 (Server.Admission.in_flight a);
  Server.Admission.release a;
  Alcotest.(check bool) "slot freed" true (Server.Admission.try_acquire a);
  Server.Admission.release a;
  Server.Admission.release a;
  Alcotest.(check int) "drained" 0 (Server.Admission.in_flight a)

(* ------------------------------------------------------------------ *)
(* End-to-end over real channels                                       *)
(* ------------------------------------------------------------------ *)

(* run one serve_channels session over temp files, returning the
   response lines *)
let session server requests =
  let req_path = Filename.temp_file "tsreq" ".txt" in
  let resp_path = Filename.temp_file "tsresp" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req_path with Sys_error _ -> ());
      try Sys.remove resp_path with Sys_error _ -> ())
    (fun () ->
      write_file req_path (String.concat "\n" requests ^ "\n");
      let ic = open_in req_path in
      let oc = open_out resp_path in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () -> Server.serve_channels server ic oc);
      let ic = open_in resp_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec read acc =
            match input_line ic with
            | line -> read (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          read []))

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_prefix what prefix line =
  if not (starts_with prefix line) then
    Alcotest.failf "%s: expected %S..., got %S" what prefix line

let test_serve_end_to_end () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis_a);
      let server = quiet_server dir in
      (* session 1: browse and query a healthy catalog *)
      (match
         session server
           [ "PING"; "LIST"; "STAT db"; "QUERY db //movie[//actor]";
             "ANSWER db //short"; "QUERY ghost //a" ]
       with
      | [ pong; list; stat; query; answer; ghost ] ->
        Alcotest.(check string) "pong" "pong" pong;
        check_prefix "list" "ok catalog n=1 names=db quarantined=0" list;
        check_prefix "stat" "ok stat name=db classes=" stat;
        Alcotest.(check bool) "healthy stat" true (T.contains stat "quarantined=no");
        check_prefix "query" "ok query degraded=no est=2 " query;
        check_prefix "answer" "ok answer degraded=no truncated=no" answer;
        check_prefix "missing name" "error not-found" ghost
      | lines -> Alcotest.failf "session 1: %d responses" (List.length lines));
      (* corrupt the snapshot behind the server's back; the resident
         version keeps serving and the quarantine is visible *)
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n";
      (match
         session server [ "RELOAD -force"; "QUERY db //movie"; "LIST"; "STAT db" ]
       with
      | [ reload; query; list; stat ] ->
        check_prefix "reload" "ok reload loaded=0 reloaded=0 quarantined=1" reload;
        check_prefix "stale still serves" "ok query degraded=no" query;
        check_prefix "quarantine visible" "ok catalog n=1 names=db quarantined=1" list;
        (* STAT on a quarantined name is a report, not an error: the
           resident stats plus why the on-disk file is rejected *)
        check_prefix "stat answers despite quarantine" "ok stat name=db classes=" stat;
        Alcotest.(check bool) "stat reports the quarantine" true
          (T.contains stat "quarantined=yes reason=corrupt")
      | lines -> Alcotest.failf "session 2: %d responses" (List.length lines));
      (* repair in place: hot-reloaded, quarantine cleared, QUIT stops
         the loop before later requests *)
      save path (Lazy.force synopsis_a);
      (match
         session server
           [ "RELOAD -force"; "QUERY db //movie"; "QUIT"; "PING" ]
       with
      | [ reload; query; bye ] ->
        check_prefix "repair reloads" "ok reload loaded=0 reloaded=1 quarantined=0" reload;
        check_prefix "healthy again" "ok query degraded=no" query;
        Alcotest.(check string) "bye" "bye" bye
      | lines -> Alcotest.failf "session 3: %d responses" (List.length lines)))

(* HEALTH separates liveness from readiness: a healthy server reports
   ready=yes; once a drain is requested it keeps answering (live) but
   flips ready=no draining=yes — the signal a rolling restart watches *)
let test_health_readiness () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let server = quiet_server dir in
      (match session server [ "HEALTH" ] with
      | [ health ] ->
        check_prefix "healthy" "ok health live=yes ready=yes draining=no" health;
        Alcotest.(check bool) "catalog counted" true (T.contains health "catalog=1")
      | lines -> Alcotest.failf "%d responses" (List.length lines));
      Alcotest.(check bool) "not draining" false (Server.draining server);
      Server.request_drain server;
      Alcotest.(check bool) "draining" true (Server.draining server);
      (* still live — handle_line answers — but no longer ready *)
      (match Server.handle_line server "HEALTH" with
      | health, false ->
        check_prefix "draining health"
          "ok health live=yes ready=no draining=yes" health;
        Alcotest.(check bool) "reason named" true (T.contains health "reason=draining")
      | _, true -> Alcotest.fail "HEALTH quit");
      (* serve_channels refuses new lines once draining *)
      match session server [ "PING" ] with
      | [] -> ()
      | lines -> Alcotest.failf "draining loop served %d lines" (List.length lines))

let test_serve_degradation_over_channel () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let server = quiet_server dir in
      match
        session server
          [
            "QUERY -deadline=-1 db //movie[//actor]";
            "ANSWER -max-nodes=1 db //movie";
          ]
      with
      | [ query; answer ] ->
        check_prefix "expired deadline degrades" "ok query degraded=deadline" query;
        check_prefix "node cap truncates" "ok answer degraded=nodes" answer;
        Alcotest.(check int) "degraded counted" 2 (Server.stats server).degraded
      | lines -> Alcotest.failf "%d responses" (List.length lines))

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

(* a client that disconnects without reading its responses makes the
   server write to a dead peer — EPIPE, and with SIGPIPE at its default
   disposition that would kill the whole process, not just the
   connection.  The accept loop must shrug it off and keep serving. *)
let test_socket_survives_rude_client () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let sock_path = Filename.concat dir "serve.sock" in
      let server = quiet_server dir in
      let _ : Thread.t =
        Thread.create
          (fun () ->
            try Server.serve_socket server ~path:sock_path
            with _ -> () (* the listener dies with the test process *))
          ()
      in
      (* burst enough requests that responses are still being written
         after the close, then vanish without reading any of them *)
      let rude = connect sock_path in
      let burst =
        String.concat "" (List.init 50 (fun _ -> "QUERY db //movie\n"))
      in
      ignore (Unix.write_substring rude burst 0 (String.length burst) : int);
      Unix.close rude;
      (* the server must still be accepting and answering *)
      let polite = connect sock_path in
      Fun.protect
        ~finally:(fun () -> try Unix.close polite with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr polite in
          let oc = Unix.out_channel_of_descr polite in
          output_string oc "PING\n";
          flush oc;
          Alcotest.(check string) "alive after rude client" "pong" (input_line ic);
          output_string oc "QUERY db //movie\n";
          flush oc;
          check_prefix "still serving queries" "ok query" (input_line ic)))

(* HEALTH must keep answering while a socket drain is ACTIVELY in
   progress — live=yes ready=no draining=yes — not just after the
   flag flips.  This is the window a rolling restart (and the replica
   coordinator's prober) watches: a draining member must read as
   alive-but-not-ready, so it is deprioritized rather than ejected,
   and the restart script knows the process is still unwinding. *)
let test_health_during_active_drain () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let sock_path = Filename.concat dir "drainh.sock" in
      let config = { Server.default_config with drain_deadline = 1.0 } in
      let server = quiet_server ~config dir in
      let th =
        Thread.create (fun () -> Server.serve_socket server ~path:sock_path) ()
      in
      let fd = connect sock_path in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      output_string oc "HEALTH\n";
      flush oc;
      check_prefix "ready over the socket"
        "ok health live=yes ready=yes draining=no" (input_line ic);
      (* the drain starts; the accept loop and connection teardown are
         now actively unwinding on the serve thread *)
      Server.request_drain server;
      (match Server.handle_line server "HEALTH" with
      | health, false ->
        check_prefix "live but not ready mid-drain"
          "ok health live=yes ready=no draining=yes" health;
        Alcotest.(check bool) "reason named" true
          (T.contains health "reason=draining")
      | _, true -> Alcotest.fail "HEALTH quit mid-drain");
      (* the connected client is severed cleanly — EOF, not a torn line *)
      (match input_line ic with
      | line -> Alcotest.failf "unexpected line after drain: %S" line
      | exception End_of_file -> ());
      Unix.close fd;
      Thread.join th;
      Alcotest.(check bool) "listener unlinked" false (Sys.file_exists sock_path);
      (* the process is still live after the front end is gone: HEALTH
         answers (a late readiness probe must see live, not a crash) *)
      match Server.handle_line server "HEALTH" with
      | health, false ->
        check_prefix "still live after serve_socket returned"
          "ok health live=yes ready=no draining=yes" health
      | _, true -> Alcotest.fail "HEALTH quit after drain")

(* ------------------------------------------------------------------ *)
(* STAT on quarantined entries                                         *)
(* ------------------------------------------------------------------ *)

(* a name that was NEVER resident (corrupt from the first scan) is
   still STATable: resident=no plus the quarantine reason *)
let test_stat_never_resident_quarantined () =
  with_temp_dir (fun dir ->
      write_file (Filename.concat dir "broken.ts") "treesketch 2\nroot 0\nnode 0 1 zz\n";
      let server = quiet_server dir in
      match session server [ "STAT broken"; "STAT ghost" ] with
      | [ broken; ghost ] ->
        check_prefix "quarantined stat"
          "ok stat name=broken resident=no quarantined=yes reason=corrupt" broken;
        check_prefix "unknown name still errors" "error not-found" ghost
      | lines -> Alcotest.failf "%d responses" (List.length lines))

(* ------------------------------------------------------------------ *)
(* Background builds                                                   *)
(* ------------------------------------------------------------------ *)

module Jobs = Serve.Jobs

let build_doc_xml dir =
  let doc = Datagen.Datasets.generate ~seed:11 ~scale:0.3 Datagen.Datasets.Xmark in
  let path = Filename.concat dir "doc.xml" in
  Xmldoc.Printer.to_file path doc;
  path

(* fast supervision knobs so crash/backoff cycles complete within the
   test's patience; checkpoints stay frequent enough that a killed
   worker resumes mid-compression rather than restarting from scratch *)
let jobs_config =
  {
    Jobs.default_config with
    max_jobs = 4;
    max_restarts = 2;
    backoff_base = 0.01;
    backoff_cap = 0.05;
    checkpoint_every = 16;
  }

let jobs_server dir =
  quiet_server ~config:{ Server.default_config with jobs = jobs_config } dir

(* drive the supervisor until every job settles (no running/backoff
   left), bounded by a wall-clock patience *)
let settle ?(patience = 30.) server =
  let deadline = Unix.gettimeofday () +. patience in
  let unsettled () =
    List.exists
      (fun (j : Jobs.job) ->
        match j.state with Running _ | Backoff _ -> true | Done _ | Failed _ | Cancelled -> false)
      (Jobs.list (Server.jobs server))
  in
  while unsettled () && Unix.gettimeofday () < deadline do
    (* PING advances the supervisor (every request line polls it)
       without triggering a catalog rescan per iteration *)
    ignore (Server.handle_line server "PING");
    Thread.delay 0.005
  done;
  if unsettled () then Alcotest.fail "jobs did not settle in time"

let test_build_job_end_to_end () =
  with_temp_dir (fun dir ->
      let xml = build_doc_xml dir in
      let server = jobs_server dir in
      (match Server.handle_line server (Printf.sprintf "BUILD db %s 2KB" xml) with
      | response, false -> check_prefix "build accepted" "ok build name=db state=running" response
      | _, true -> Alcotest.fail "BUILD quit");
      settle server;
      (* the finished snapshot is published into the catalog and servable *)
      (match session server [ "JOBS"; "STAT db"; "QUERY db //item" ] with
      | [ jobs; stat; query ] ->
        check_prefix "job done" "ok jobs n=1 db=done" jobs;
        check_prefix "snapshot resident" "ok stat name=db classes=" stat;
        check_prefix "servable" "ok query" query
      | lines -> Alcotest.failf "%d responses" (List.length lines));
      (* its checkpoint journal was cleaned up and never entered the catalog *)
      Alcotest.(check bool) "journal removed" false
        (Sys.file_exists (Jobs.checkpoint_path (Server.jobs server) "db"));
      (* a nonexistent document fails fast with the io fault code, no retries *)
      (match Server.handle_line server "BUILD bad /nonexistent.xml 2KB" with
      | response, _ -> check_prefix "accepted" "ok build" response);
      settle server;
      (match Jobs.find (Server.jobs server) "bad" with
      | Some { state = Jobs.Failed _; _ } -> ()
      | Some j -> Alcotest.failf "bad job state %s" (Jobs.state_token j.state)
      | None -> Alcotest.fail "bad job vanished");
      (* CANCEL on an unknown name errors; on a finished job it is a no-op *)
      (match Server.handle_line server "CANCEL ghost" with
      | response, _ -> check_prefix "unknown job" "error not-found" response);
      match Server.handle_line server "CANCEL db" with
      | response, _ -> check_prefix "finished job unchanged" "ok cancel name=db state=done" response)

(* a worker SIGKILLed mid-build is restarted from its last checkpoint
   and still completes; the builds that exhaust their restarts fail
   without taking the server down *)
let test_build_job_survives_kills () =
  with_temp_dir (fun dir ->
      let xml = build_doc_xml dir in
      let server = jobs_server dir in
      (match Server.handle_line server (Printf.sprintf "BUILD db %s 2KB" xml) with
      | response, _ -> check_prefix "accepted" "ok build" response);
      (* kill the first worker as soon as we can see its pid *)
      (match Jobs.find (Server.jobs server) "db" with
      | Some { state = Jobs.Running { pid; _ }; _ } ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | Some _ | None -> () (* already finished: nothing to kill *));
      settle server;
      match Jobs.find (Server.jobs server) "db" with
      | Some { state = Jobs.Done _; _ } -> (
        match Serialize.load_res (Filename.concat dir "db.ts") with
        | Ok _ -> ()
        | Error f ->
          Alcotest.failf "published snapshot unloadable: %s" (Xmldoc.Fault.to_string f))
      | Some { state = Jobs.Failed { reason }; _ } ->
        Alcotest.failf "job failed instead of restarting: %s" reason
      | Some j -> Alcotest.failf "unexpected state %s" (Jobs.state_token j.state)
      | None -> Alcotest.fail "job vanished")

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let error_classes =
  [ "bad-request"; "not-found"; "overloaded"; "internal";
    "parse"; "corrupt"; "limit"; "deadline"; "io"; "busy";
    "worker-crash"; "poisoned" ]

(* >= 500 seeded requests interleaving malformed lines, corrupt and
   vanishing snapshots, expired deadlines and over-cap answers.  The
   server must answer every single one with a well-formed line — a
   full answer, a degraded partial answer, or a structured error with a
   known class — and never exit or raise.  *)
let test_chaos () =
  with_temp_dir (fun dir ->
      let rng = Random.State.make [| seed |] in
      let s = Lazy.force synopsis_a in
      let snap = Serialize.to_snapshot_string s in
      let path = Filename.concat dir "db.ts" in
      save path s;
      let server = quiet_server dir in
      let queries =
        [| "//movie"; "//movie[//actor]"; "//movie{//title?}"; "//short";
           "//nothing"; "/db/movie" |]
      in
      let random_garbage () =
        String.init (Random.State.int rng 30) (fun _ ->
            Char.chr (1 + Random.State.int rng 255))
      in
      let request () =
        match Random.State.int rng 12 with
        | 0 -> "PING"
        | 1 -> "LIST"
        | 2 -> "RELOAD" ^ (if Random.State.bool rng then " -force" else "")
        | 3 -> "STAT " ^ (if Random.State.bool rng then "db" else "ghost")
        | 4 -> random_garbage ()
        | 5 -> "QUERY db " ^ random_garbage ()
        | 6 ->
          Printf.sprintf "QUERY -deadline=%g db %s"
            (Random.State.float rng 0.001 -. 0.0005)
            queries.(Random.State.int rng (Array.length queries))
        | 7 ->
          Printf.sprintf "ANSWER -max-nodes=%d db %s"
            (1 + Random.State.int rng 4)
            queries.(Random.State.int rng (Array.length queries))
        | 8 -> "QUERY ghost //a"
        | _ ->
          Printf.sprintf "%s db %s"
            (if Random.State.bool rng then "QUERY" else "ANSWER")
            queries.(Random.State.int rng (Array.length queries))
      in
      let corrupt_store () =
        match Random.State.int rng 4 with
        | 0 -> write_file path (String.sub snap 0 (Random.State.int rng (String.length snap)))
        | 1 -> write_file path (random_garbage ())
        | 2 -> ( try Sys.remove path with Sys_error _ -> ())
        | _ -> write_file path snap (* repair *)
      in
      let n = 600 in
      let oks = ref 0 and errors = ref 0 and degraded = ref 0 in
      for i = 1 to n do
        if i mod 17 = 0 then corrupt_store ();
        let line = request () in
        let response, quit =
          match Server.handle_line server line with
          | r -> r
          | exception e ->
            Alcotest.failf "request %d %S killed the server: %s" i
              (String.escaped line) (Printexc.to_string e)
        in
        if quit then Alcotest.failf "request %d unexpectedly quit" i;
        if String.contains response '\n' then
          Alcotest.failf "request %d: multi-line response" i;
        if starts_with "ok " response || response = "pong" then begin
          incr oks;
          if T.contains response "degraded=deadline"
             || T.contains response "degraded=nodes"
             || T.contains response "degraded=work"
             || T.contains response "truncated=yes"
          then incr degraded
        end
        else if starts_with "error " response then begin
          incr errors;
          let cls =
            match String.split_on_char ' ' response with
            | "error" :: cls :: _ -> cls
            | _ -> "?"
          in
          if not (List.mem cls error_classes) then
            Alcotest.failf "request %d: unknown error class %S in %S" i cls response;
          if cls = "internal" then
            Alcotest.failf "request %d: internal error leaked: %S" i response
        end
        else Alcotest.failf "request %d: malformed response %S" i response
      done;
      Alcotest.(check int) "every request answered" n ((Server.stats server).served);
      Alcotest.(check int) "tallies add up" n (!oks + !errors);
      Alcotest.(check bool) "saw successes" true (!oks > 0);
      Alcotest.(check bool) "saw structured errors" true (!errors > 0);
      Alcotest.(check bool) "saw degraded answers" true (!degraded > 0))

(* 200 supervised build jobs under hostile conditions: workers
   SIGKILLed mid-build, checkpoint journals corrupted behind their
   backs, jobs cancelled at random.  The server must answer every
   request, never exit, and every snapshot that survives in the
   catalog directory must load completely. *)
let test_job_chaos () =
  with_temp_dir (fun dir ->
      let rng = Random.State.make [| seed + 1 |] in
      let xml = build_doc_xml dir in
      let server = jobs_server dir in
      let jobs = Server.jobs server in
      let well_formed what (response, quit) =
        if quit then Alcotest.failf "%s: unexpected quit" what;
        if String.contains response '\n' then
          Alcotest.failf "%s: multi-line response" what;
        if not (starts_with "ok " response || starts_with "error " response) then
          Alcotest.failf "%s: malformed response %S" what response;
        (match String.split_on_char ' ' response with
        | "error" :: cls :: _ when not (List.mem cls error_classes) ->
          Alcotest.failf "%s: unknown error class %S" what cls
        | _ -> ());
        response
      in
      let drive line = well_formed line (Server.handle_line server line) in
      let kill_running name =
        match Jobs.find jobs name with
        | Some { state = Jobs.Running { pid; _ }; _ } ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        | Some _ | None -> ()
      in
      let corrupt_checkpoint name =
        let path = Jobs.checkpoint_path jobs name in
        if Sys.file_exists path then
          write_file path
            (String.init (Random.State.int rng 60) (fun _ ->
                 Char.chr (1 + Random.State.int rng 255)))
      in
      let n = 200 in
      for i = 0 to n - 1 do
        let name = Printf.sprintf "job%d" i in
        (* at capacity the submission is shed with [error overloaded]:
           drain a slot and retry until accepted *)
        let rec submit attempts =
          if attempts > 2_000 then Alcotest.failf "%s never admitted" name;
          let response = drive (Printf.sprintf "BUILD %s %s 2KB" name xml) in
          if not (starts_with "ok build" response) then begin
            Thread.delay 0.002;
            submit (attempts + 1)
          end
        in
        submit 0;
        (* hostile interleaving against this job and a random earlier one *)
        let victim = Printf.sprintf "job%d" (Random.State.int rng (i + 1)) in
        (match Random.State.int rng 5 with
        | 0 -> kill_running victim
        | 1 -> corrupt_checkpoint victim
        | 2 -> ignore (drive ("CANCEL " ^ victim))
        | 3 -> ignore (drive "JOBS")
        | _ -> ());
        if Random.State.int rng 3 = 0 then Thread.delay 0.001
      done;
      settle ~patience:60. server;
      (* zero server exits: every job reached a terminal state and the
         supervisor answered everything above without raising *)
      let states = Hashtbl.create 8 in
      List.iter
        (fun (j : Jobs.job) ->
          let token = Jobs.state_token j.state in
          Hashtbl.replace states token (1 + Option.value ~default:0 (Hashtbl.find_opt states token));
          match j.state with
          | Jobs.Running _ | Jobs.Backoff _ ->
            Alcotest.failf "job %s still unsettled" j.name
          | Jobs.Done _ | Jobs.Failed _ | Jobs.Cancelled -> ())
        (Jobs.list jobs);
      Alcotest.(check int) "all 200 jobs tracked" n (List.length (Jobs.list jobs));
      Alcotest.(check bool) "some jobs completed" true
        (Hashtbl.mem states "done" || Hashtbl.mem states "done-degraded");
      (* every surviving snapshot in the catalog directory loads
         completely — kills and corrupt journals never publish a torn
         or partial synopsis *)
      let survivors =
        List.filter
          (fun f -> Filename.check_suffix f Catalog.snapshot_extension)
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check bool) "some snapshots survived" true (survivors <> []);
      List.iter
        (fun f ->
          match Serialize.load_res (Filename.concat dir f) with
          | Ok _ -> ()
          | Error fault ->
            Alcotest.failf "surviving snapshot %s unloadable: %s" f
              (Xmldoc.Fault.to_string fault))
        survivors;
      (* and the server still serves *)
      match Server.handle_line server "PING" with
      | "pong", false -> ()
      | response, _ -> Alcotest.failf "server unhealthy after chaos: %S" response)

let () =
  Alcotest.run "serve"
    [
      ( "catalog",
        [
          Alcotest.test_case "loads a directory" `Quick test_catalog_loads;
          Alcotest.test_case "quarantine keeps previous version" `Quick
            test_catalog_quarantines_and_keeps_previous;
          Alcotest.test_case "quarantine retry gated by fingerprint" `Quick
            test_catalog_quarantine_retry_gated_by_fingerprint;
          Alcotest.test_case "torn writes never load partially" `Quick
            test_catalog_torn_writes_never_partial;
          Alcotest.test_case "same-second same-size rewrite observed" `Quick
            test_catalog_same_second_same_size_rewrite;
          Alcotest.test_case "removal" `Quick test_catalog_removal;
        ] );
      ( "protocol",
        [ Alcotest.test_case "parse" `Quick test_protocol_parse ] );
      ( "admission",
        [ Alcotest.test_case "bounded in-flight" `Quick test_admission ] );
      ( "end-to-end",
        [
          Alcotest.test_case "catalog, corruption, hot reload" `Quick
            test_serve_end_to_end;
          Alcotest.test_case "health readiness and drain" `Quick
            test_health_readiness;
          Alcotest.test_case "degradation over the wire" `Quick
            test_serve_degradation_over_channel;
        ] );
      ( "socket",
        [
          Alcotest.test_case "survives a client disconnecting mid-response"
            `Quick test_socket_survives_rude_client;
          Alcotest.test_case "HEALTH answers during an active drain" `Quick
            test_health_during_active_drain;
        ] );
      ( "stat",
        [
          Alcotest.test_case "quarantined names are reportable" `Quick
            test_stat_never_resident_quarantined;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "build job end to end" `Quick test_build_job_end_to_end;
          Alcotest.test_case "survives worker kills" `Quick
            test_build_job_survives_kills;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "600 mixed requests" `Quick test_chaos;
          Alcotest.test_case "200 build jobs under fire" `Slow test_job_chaos;
        ] );
    ]
