(* Tests for the serving runtime: catalog crash-safety and hot-reload,
   the request protocol, admission control, an end-to-end smoke of the
   server loop over real channels, and a seeded chaos run that
   interleaves malformed requests, corrupt snapshots, expired deadlines
   and over-cap answers — asserting the server never dies and every
   response is structurally well-formed. *)

module Server = Serve.Server
module Catalog = Serve.Catalog
module Protocol = Serve.Protocol
module Serialize = Sketch.Serialize
module Synopsis = Sketch.Synopsis
module Stable = Sketch.Stable
module T = Testutil

let seed = 0x5e17e

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsserve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let synopsis_a =
  lazy (Stable.build (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let synopsis_b =
  lazy (Stable.build (Xmldoc.Parser.of_string "<lib><book><ref/></book></lib>"))

let canonical s = Serialize.to_string s

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

(* mtime has 1-second granularity on some filesystems; tests that
   rewrite a file in place force the reload instead of sleeping *)
let refresh_force c = Catalog.refresh ~force:true c

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let test_catalog_loads () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "a.ts") (Lazy.force synopsis_a);
      save (Filename.concat dir "b.ts") (Lazy.force synopsis_b);
      write_file (Filename.concat dir "notes.txt") "not a snapshot";
      let c = Catalog.create dir in
      let events = Catalog.refresh c in
      Alcotest.(check int) "two loads" 2
        (List.length
           (List.filter (function Catalog.Loaded _ -> true | _ -> false) events));
      Alcotest.(check (list string)) "names" [ "a"; "b" ] (Catalog.names c);
      (match Catalog.find c "a" with
      | Some e ->
        Alcotest.(check string) "a content" (canonical (Lazy.force synopsis_a))
          (canonical e.synopsis)
      | None -> Alcotest.fail "a not resident");
      Alcotest.(check int) "no quarantine" 0 (List.length (Catalog.quarantined c)))

let test_catalog_quarantines_and_keeps_previous () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      save path (Lazy.force synopsis_a);
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      (* corrupt the file behind the catalog's back *)
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n" (* missing crc *);
      let events = refresh_force c in
      (match events with
      | [ Catalog.Quarantined ("a", Xmldoc.Fault.Corrupt_synopsis _) ] -> ()
      | _ -> Alcotest.failf "expected one quarantine event, got %d" (List.length events));
      (* the previous resident version keeps serving *)
      (match Catalog.find c "a" with
      | Some e ->
        Alcotest.(check string) "stale version served"
          (canonical (Lazy.force synopsis_a))
          (canonical e.synopsis)
      | None -> Alcotest.fail "previous version dropped");
      Alcotest.(check bool) "fault recorded" true (Catalog.fault_for c "a" <> None);
      (* repair in place: picked up without a restart *)
      save path (Lazy.force synopsis_a);
      (match refresh_force c with
      | [ Catalog.Reloaded "a" ] -> ()
      | events -> Alcotest.failf "expected a reload, got %d events" (List.length events));
      Alcotest.(check bool) "quarantine cleared" true (Catalog.fault_for c "a" = None))

(* a persistently corrupt file must not be re-parsed on every refresh:
   the retry is gated on the (mtime, size) fingerprint moving, with
   [~force] as the unconditional escape hatch *)
let test_catalog_quarantine_retry_gated_by_fingerprint () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n" (* missing crc *);
      let c = Catalog.create dir in
      (match Catalog.refresh c with
      | [ Catalog.Quarantined ("a", _) ] -> ()
      | events ->
        Alcotest.failf "expected one quarantine event, got %d" (List.length events));
      (* unchanged fingerprint: the corrupt file is left alone *)
      (match Catalog.refresh c with
      | [] -> ()
      | events ->
        Alcotest.failf "quarantined file retried while unchanged (%d events)"
          (List.length events));
      Alcotest.(check bool) "still quarantined" true (Catalog.fault_for c "a" <> None);
      (* -force retries unconditionally *)
      (match Catalog.refresh ~force:true c with
      | [ Catalog.Quarantined ("a", _) ] -> ()
      | _ -> Alcotest.fail "force did not retry the quarantined file");
      (* an in-place repair moves the fingerprint and is picked up on a
         plain refresh, no force required *)
      save path (Lazy.force synopsis_a);
      (match Catalog.refresh c with
      | [ Catalog.Loaded "a" ] -> ()
      | events -> Alcotest.failf "repair not picked up (%d events)" (List.length events));
      Alcotest.(check bool) "quarantine cleared" true (Catalog.fault_for c "a" = None))

(* catalog-level crash-safety: a snapshot torn at any sampled offset
   either leaves the previous version serving (quarantine) or — if the
   tear kept the file complete — reloads it identically; never partial *)
let test_catalog_torn_writes_never_partial () =
  with_temp_dir (fun dir ->
      let s = Lazy.force synopsis_a in
      let full = canonical s in
      let snap = Serialize.to_snapshot_string s in
      let path = Filename.concat dir "a.ts" in
      save path s;
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      let cut = ref 0 in
      while !cut < String.length snap do
        write_file path (String.sub snap 0 !cut);
        ignore (refresh_force c);
        (match Catalog.find c "a" with
        | Some e ->
          Alcotest.(check string)
            (Printf.sprintf "cut at %d serves a complete synopsis" !cut)
            full (canonical e.synopsis)
        | None -> Alcotest.failf "cut at %d: synopsis vanished" !cut);
        cut := !cut + 7
      done;
      (* a torn staging file must be invisible to the scan *)
      write_file (Filename.concat dir ".treesketch_torn.tmp")
        (String.sub snap 0 (String.length snap / 2));
      write_file path snap;
      ignore (refresh_force c);
      Alcotest.(check (list string)) "staging file invisible" [ "a" ] (Catalog.names c);
      Alcotest.(check int) "no quarantine" 0 (List.length (Catalog.quarantined c)))

let test_catalog_removal () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ts" in
      save path (Lazy.force synopsis_a);
      let c = Catalog.create dir in
      ignore (Catalog.refresh c);
      Sys.remove path;
      (match Catalog.refresh c with
      | [ Catalog.Removed "a" ] -> ()
      | events -> Alcotest.failf "expected removal, got %d events" (List.length events));
      Alcotest.(check (list string)) "empty" [] (Catalog.names c))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  let ok line expect =
    match Protocol.parse line with
    | Ok req when req = expect -> ()
    | Ok _ -> Alcotest.failf "%S parsed to the wrong request" line
    | Error msg -> Alcotest.failf "%S rejected: %s" line msg
  in
  ok "PING" Protocol.Ping;
  ok "ping" Protocol.Ping;
  ok "  LIST  " Protocol.List;
  ok "QUIT" Protocol.Quit;
  ok "RELOAD" (Protocol.Reload { force = false });
  ok "RELOAD -force" (Protocol.Reload { force = true });
  ok "STAT db" (Protocol.Stat "db");
  (match Protocol.parse "QUERY -deadline=0.5 -max-nodes=9 db //movie" with
  | Ok (Protocol.Query (opts, "db", _)) ->
    Alcotest.(check (option int)) "max-nodes" (Some 9) opts.max_nodes;
    (match opts.deadline with
    | Some d -> Alcotest.(check bool) "deadline" true (T.feq d 0.5)
    | None -> Alcotest.fail "deadline dropped")
  | Ok _ -> Alcotest.fail "wrong request shape"
  | Error msg -> Alcotest.failf "rejected: %s" msg);
  let fails line =
    match Protocol.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S accepted" line
  in
  fails "";
  fails "   ";
  fails "BOGUS";
  fails "STAT";
  fails "STAT a b";
  fails "PING extra";
  fails "QUERY db";
  fails "QUERY -deadline=soon db //a";
  fails "QUERY -max-nodes=0 db //a";
  fails "QUERY -frobnicate=1 db //a";
  fails "ANSWER db //a[";
  Alcotest.(check string) "one_line flattens" "a b c" (Protocol.one_line "a\nb\rc")

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission () =
  let a = Server.Admission.create 2 in
  Alcotest.(check int) "capacity" 2 (Server.Admission.capacity a);
  Alcotest.(check bool) "first" true (Server.Admission.try_acquire a);
  Alcotest.(check bool) "second" true (Server.Admission.try_acquire a);
  Alcotest.(check bool) "third shed" false (Server.Admission.try_acquire a);
  Alcotest.(check int) "in flight" 2 (Server.Admission.in_flight a);
  Server.Admission.release a;
  Alcotest.(check bool) "slot freed" true (Server.Admission.try_acquire a);
  Server.Admission.release a;
  Server.Admission.release a;
  Alcotest.(check int) "drained" 0 (Server.Admission.in_flight a)

(* ------------------------------------------------------------------ *)
(* End-to-end over real channels                                       *)
(* ------------------------------------------------------------------ *)

(* run one serve_channels session over temp files, returning the
   response lines *)
let session server requests =
  let req_path = Filename.temp_file "tsreq" ".txt" in
  let resp_path = Filename.temp_file "tsresp" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req_path with Sys_error _ -> ());
      try Sys.remove resp_path with Sys_error _ -> ())
    (fun () ->
      write_file req_path (String.concat "\n" requests ^ "\n");
      let ic = open_in req_path in
      let oc = open_out resp_path in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () -> Server.serve_channels server ic oc);
      let ic = open_in resp_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec read acc =
            match input_line ic with
            | line -> read (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          read []))

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_prefix what prefix line =
  if not (starts_with prefix line) then
    Alcotest.failf "%s: expected %S..., got %S" what prefix line

let test_serve_end_to_end () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis_a);
      let server = quiet_server dir in
      (* session 1: browse and query a healthy catalog *)
      (match
         session server
           [ "PING"; "LIST"; "STAT db"; "QUERY db //movie[//actor]";
             "ANSWER db //short"; "QUERY ghost //a" ]
       with
      | [ pong; list; stat; query; answer; ghost ] ->
        Alcotest.(check string) "pong" "pong" pong;
        check_prefix "list" "ok catalog n=1 names=db quarantined=0" list;
        check_prefix "stat" "ok stat name=db classes=" stat;
        check_prefix "query" "ok query degraded=no est=2 " query;
        check_prefix "answer" "ok answer degraded=no truncated=no" answer;
        check_prefix "missing name" "error not-found" ghost
      | lines -> Alcotest.failf "session 1: %d responses" (List.length lines));
      (* corrupt the snapshot behind the server's back; the resident
         version keeps serving and the quarantine is visible *)
      write_file path "treesketch 2\nroot 0\nnode 0 1 zz\n";
      (match session server [ "RELOAD -force"; "QUERY db //movie"; "LIST" ] with
      | [ reload; query; list ] ->
        check_prefix "reload" "ok reload loaded=0 reloaded=0 quarantined=1" reload;
        check_prefix "stale still serves" "ok query degraded=no" query;
        check_prefix "quarantine visible" "ok catalog n=1 names=db quarantined=1" list
      | lines -> Alcotest.failf "session 2: %d responses" (List.length lines));
      (* repair in place: hot-reloaded, quarantine cleared, QUIT stops
         the loop before later requests *)
      save path (Lazy.force synopsis_a);
      (match
         session server
           [ "RELOAD -force"; "QUERY db //movie"; "QUIT"; "PING" ]
       with
      | [ reload; query; bye ] ->
        check_prefix "repair reloads" "ok reload loaded=0 reloaded=1 quarantined=0" reload;
        check_prefix "healthy again" "ok query degraded=no" query;
        Alcotest.(check string) "bye" "bye" bye
      | lines -> Alcotest.failf "session 3: %d responses" (List.length lines)))

let test_serve_degradation_over_channel () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let server = quiet_server dir in
      match
        session server
          [
            "QUERY -deadline=-1 db //movie[//actor]";
            "ANSWER -max-nodes=1 db //movie";
          ]
      with
      | [ query; answer ] ->
        check_prefix "expired deadline degrades" "ok query degraded=deadline" query;
        check_prefix "node cap truncates" "ok answer degraded=nodes" answer;
        Alcotest.(check int) "degraded counted" 2 (Server.stats server).degraded
      | lines -> Alcotest.failf "%d responses" (List.length lines))

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

(* a client that disconnects without reading its responses makes the
   server write to a dead peer — EPIPE, and with SIGPIPE at its default
   disposition that would kill the whole process, not just the
   connection.  The accept loop must shrug it off and keep serving. *)
let test_socket_survives_rude_client () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis_a);
      let sock_path = Filename.concat dir "serve.sock" in
      let server = quiet_server dir in
      let _ : Thread.t =
        Thread.create
          (fun () ->
            try Server.serve_socket server ~path:sock_path
            with _ -> () (* the listener dies with the test process *))
          ()
      in
      (* burst enough requests that responses are still being written
         after the close, then vanish without reading any of them *)
      let rude = connect sock_path in
      let burst =
        String.concat "" (List.init 50 (fun _ -> "QUERY db //movie\n"))
      in
      ignore (Unix.write_substring rude burst 0 (String.length burst) : int);
      Unix.close rude;
      (* the server must still be accepting and answering *)
      let polite = connect sock_path in
      Fun.protect
        ~finally:(fun () -> try Unix.close polite with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr polite in
          let oc = Unix.out_channel_of_descr polite in
          output_string oc "PING\n";
          flush oc;
          Alcotest.(check string) "alive after rude client" "pong" (input_line ic);
          output_string oc "QUERY db //movie\n";
          flush oc;
          check_prefix "still serving queries" "ok query" (input_line ic)))

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let error_classes =
  [ "bad-request"; "not-found"; "overloaded"; "internal";
    "parse"; "corrupt"; "limit"; "deadline"; "io" ]

(* >= 500 seeded requests interleaving malformed lines, corrupt and
   vanishing snapshots, expired deadlines and over-cap answers.  The
   server must answer every single one with a well-formed line — a
   full answer, a degraded partial answer, or a structured error with a
   known class — and never exit or raise.  *)
let test_chaos () =
  with_temp_dir (fun dir ->
      let rng = Random.State.make [| seed |] in
      let s = Lazy.force synopsis_a in
      let snap = Serialize.to_snapshot_string s in
      let path = Filename.concat dir "db.ts" in
      save path s;
      let server = quiet_server dir in
      let queries =
        [| "//movie"; "//movie[//actor]"; "//movie{//title?}"; "//short";
           "//nothing"; "/db/movie" |]
      in
      let random_garbage () =
        String.init (Random.State.int rng 30) (fun _ ->
            Char.chr (1 + Random.State.int rng 255))
      in
      let request () =
        match Random.State.int rng 12 with
        | 0 -> "PING"
        | 1 -> "LIST"
        | 2 -> "RELOAD" ^ (if Random.State.bool rng then " -force" else "")
        | 3 -> "STAT " ^ (if Random.State.bool rng then "db" else "ghost")
        | 4 -> random_garbage ()
        | 5 -> "QUERY db " ^ random_garbage ()
        | 6 ->
          Printf.sprintf "QUERY -deadline=%g db %s"
            (Random.State.float rng 0.001 -. 0.0005)
            queries.(Random.State.int rng (Array.length queries))
        | 7 ->
          Printf.sprintf "ANSWER -max-nodes=%d db %s"
            (1 + Random.State.int rng 4)
            queries.(Random.State.int rng (Array.length queries))
        | 8 -> "QUERY ghost //a"
        | _ ->
          Printf.sprintf "%s db %s"
            (if Random.State.bool rng then "QUERY" else "ANSWER")
            queries.(Random.State.int rng (Array.length queries))
      in
      let corrupt_store () =
        match Random.State.int rng 4 with
        | 0 -> write_file path (String.sub snap 0 (Random.State.int rng (String.length snap)))
        | 1 -> write_file path (random_garbage ())
        | 2 -> ( try Sys.remove path with Sys_error _ -> ())
        | _ -> write_file path snap (* repair *)
      in
      let n = 600 in
      let oks = ref 0 and errors = ref 0 and degraded = ref 0 in
      for i = 1 to n do
        if i mod 17 = 0 then corrupt_store ();
        let line = request () in
        let response, quit =
          match Server.handle_line server line with
          | r -> r
          | exception e ->
            Alcotest.failf "request %d %S killed the server: %s" i
              (String.escaped line) (Printexc.to_string e)
        in
        if quit then Alcotest.failf "request %d unexpectedly quit" i;
        if String.contains response '\n' then
          Alcotest.failf "request %d: multi-line response" i;
        if starts_with "ok " response || response = "pong" then begin
          incr oks;
          if T.contains response "degraded=deadline"
             || T.contains response "degraded=nodes"
             || T.contains response "degraded=work"
             || T.contains response "truncated=yes"
          then incr degraded
        end
        else if starts_with "error " response then begin
          incr errors;
          let cls =
            match String.split_on_char ' ' response with
            | "error" :: cls :: _ -> cls
            | _ -> "?"
          in
          if not (List.mem cls error_classes) then
            Alcotest.failf "request %d: unknown error class %S in %S" i cls response;
          if cls = "internal" then
            Alcotest.failf "request %d: internal error leaked: %S" i response
        end
        else Alcotest.failf "request %d: malformed response %S" i response
      done;
      Alcotest.(check int) "every request answered" n ((Server.stats server).served);
      Alcotest.(check int) "tallies add up" n (!oks + !errors);
      Alcotest.(check bool) "saw successes" true (!oks > 0);
      Alcotest.(check bool) "saw structured errors" true (!errors > 0);
      Alcotest.(check bool) "saw degraded answers" true (!degraded > 0))

let () =
  Alcotest.run "serve"
    [
      ( "catalog",
        [
          Alcotest.test_case "loads a directory" `Quick test_catalog_loads;
          Alcotest.test_case "quarantine keeps previous version" `Quick
            test_catalog_quarantines_and_keeps_previous;
          Alcotest.test_case "quarantine retry gated by fingerprint" `Quick
            test_catalog_quarantine_retry_gated_by_fingerprint;
          Alcotest.test_case "torn writes never load partially" `Quick
            test_catalog_torn_writes_never_partial;
          Alcotest.test_case "removal" `Quick test_catalog_removal;
        ] );
      ( "protocol",
        [ Alcotest.test_case "parse" `Quick test_protocol_parse ] );
      ( "admission",
        [ Alcotest.test_case "bounded in-flight" `Quick test_admission ] );
      ( "end-to-end",
        [
          Alcotest.test_case "catalog, corruption, hot reload" `Quick
            test_serve_end_to_end;
          Alcotest.test_case "degradation over the wire" `Quick
            test_serve_degradation_over_channel;
        ] );
      ( "socket",
        [
          Alcotest.test_case "survives a client disconnecting mid-response"
            `Quick test_socket_survives_rude_client;
        ] );
      ( "chaos", [ Alcotest.test_case "600 mixed requests" `Quick test_chaos ] );
    ]
