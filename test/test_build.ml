(* Tests for the clustering engine (sufficient statistics, merge
   bookkeeping) and TSBUILD. *)

open Sketch
module T = Testutil
module Tree = Xmldoc.Tree

let small_doc =
  Xmldoc.Parser.of_string
    "<d><a><n/><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><b><t/></b></a>\
     <a><p><y/><t/><k/></p><n/><b><t/></b></a>\
     <a><n/><p><y/><t/><k/></p><b><t/></b></a></d>"

(* a slightly larger deterministic document for merge stress *)
let bigger_doc = Datagen.Datasets.generate ~seed:7 ~scale:0.1 Datagen.Datasets.Imdb

(* ---------------- cluster bookkeeping ---------------- *)

let test_cluster_initial () =
  let stable = Stable.build small_doc in
  let cl = Cluster.of_stable stable in
  Alcotest.(check int) "alive = classes" (Synopsis.num_nodes stable) (Cluster.num_alive cl);
  T.check_float "initial sq error" 0. (Cluster.sq_error cl);
  Alcotest.(check int) "initial size" (Synopsis.size_bytes stable) (Cluster.size_bytes cl)

let test_cluster_merge_p_classes () =
  let stable = Stable.build small_doc in
  let cl = Cluster.of_stable stable in
  (* find the two p classes *)
  let p = Xmldoc.Label.of_string "p" in
  let ps =
    List.filter (fun r -> Xmldoc.Label.equal (Cluster.label cl r) p) (Cluster.alive_ids cl)
  in
  match ps with
  | [ p1; p2 ] ->
    let d = Option.get (Cluster.delta cl p1 p2) in
    (* merging p(y,t,k) x3 with p(y,t,k,k) x1: only the k dimension has
       variance: counts 1,1,1,2 -> mean 1.25, sq = 3*(0.25)^2 + (0.75)^2 *)
    T.check_float "errd" ((3. *. 0.0625) +. 0.5625) d.errd;
    let before_sq = Cluster.sq_error cl in
    let before_size = Cluster.size_bytes cl in
    let rep = Cluster.merge cl p1 p2 in
    Alcotest.(check bool) "rep is one of the two" true (rep = p1 || rep = p2);
    T.check_float "sq after merge" (before_sq +. d.errd) (Cluster.sq_error cl);
    Alcotest.(check int) "size after merge" (before_size - d.sized) (Cluster.size_bytes cl);
    T.check_float "incremental = direct" (Cluster.sq_error_direct cl) (Cluster.sq_error cl)
  | _ -> Alcotest.fail "expected exactly two p classes"

let test_cluster_merge_rejects () =
  let stable = Stable.build small_doc in
  let cl = Cluster.of_stable stable in
  let ids = Cluster.alive_ids cl in
  let a = List.hd ids in
  Alcotest.(check bool) "self merge rejected" true (Cluster.delta cl a a = None);
  let diff_label =
    List.find
      (fun b -> not (Xmldoc.Label.equal (Cluster.label cl a) (Cluster.label cl b)))
      ids
  in
  Alcotest.(check bool) "label mismatch rejected" true (Cluster.delta cl a diff_label = None)

(* exhaustively merge random same-label pairs and verify the
   incremental statistics against recomputation from scratch *)
let merge_randomly ~seed ~steps stable =
  let cl = Cluster.of_stable stable in
  let rng = Random.State.make [| seed |] in
  let steps = ref steps in
  let continue_ = ref true in
  while !continue_ && !steps > 0 do
    let ids = Array.of_list (Cluster.alive_ids cl) in
    (* all same-label pairs *)
    let pairs = ref [] in
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if u < v && Xmldoc.Label.equal (Cluster.label cl u) (Cluster.label cl v)
            then pairs := (u, v) :: !pairs)
          ids)
      ids;
    match !pairs with
    | [] -> continue_ := false
    | pairs ->
      let arr = Array.of_list pairs in
      let u, v = arr.(Random.State.int rng (Array.length arr)) in
      ignore (Cluster.merge cl u v);
      decr steps
  done;
  cl

let test_random_merges_consistency () =
  List.iter
    (fun seed ->
      let stable = Stable.build bigger_doc in
      let cl = merge_randomly ~seed ~steps:60 stable in
      T.check_float ~eps:1e-6 "incremental sq = direct sq"
        (Cluster.sq_error_direct cl) (Cluster.sq_error cl);
      (* size bookkeeping equals the exported synopsis *)
      let syn = Cluster.to_synopsis cl in
      Alcotest.(check int) "size bookkeeping" (Synopsis.size_bytes syn)
        (Cluster.size_bytes cl);
      (* exported synopsis preserves total elements *)
      T.check_float "elements preserved"
        (float_of_int (Tree.size bigger_doc))
        (Synopsis.total_elements syn))
    [ 1; 2; 3; 4; 5 ]

let test_delta_matches_merge () =
  (* the delta promised before the merge equals the observed change *)
  let stable = Stable.build bigger_doc in
  let cl = Cluster.of_stable stable in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 40 do
    let ids = Array.of_list (Cluster.alive_ids cl) in
    let pairs = ref [] in
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if u < v && Xmldoc.Label.equal (Cluster.label cl u) (Cluster.label cl v)
            then pairs := (u, v) :: !pairs)
          ids)
      ids;
    match !pairs with
    | [] -> ()
    | pairs ->
      let arr = Array.of_list pairs in
      let u, v = arr.(Random.State.int rng (Array.length arr)) in
      let d = Option.get (Cluster.delta cl u v) in
      let sq0 = Cluster.sq_error cl and sz0 = Cluster.size_bytes cl in
      ignore (Cluster.merge cl u v);
      T.check_float ~eps:1e-6 "errd applied" (sq0 +. d.errd) (Cluster.sq_error cl);
      Alcotest.(check int) "sized applied" (sz0 - d.sized) (Cluster.size_bytes cl)
  done

(* ---------------- TSBUILD ---------------- *)

let test_build_respects_budget () =
  let stable = Stable.build bigger_doc in
  let full = Synopsis.size_bytes stable in
  List.iter
    (fun budget ->
      let ts = Build.build stable ~budget in
      Alcotest.(check bool)
        (Printf.sprintf "fits %d" budget)
        true
        (Synopsis.size_bytes ts <= budget);
      T.check_float "elements preserved"
        (float_of_int (Tree.size bigger_doc))
        (Synopsis.total_elements ts))
    [ full / 2; full / 4; full / 10 ]

let test_build_label_split_floor () =
  let stable = Stable.build small_doc in
  let ts = Build.build stable ~budget:1 in
  (* cannot go below one node per label *)
  let labels = List.length (Tree.distinct_labels small_doc) in
  Alcotest.(check int) "label split floor" labels (Synopsis.num_nodes ts)

let test_build_zero_error_when_room () =
  (* a budget >= the stable size should not merge anything *)
  let stable = Stable.build small_doc in
  let ts = Build.build stable ~budget:(Synopsis.size_bytes stable) in
  Alcotest.(check int) "unchanged" (Synopsis.num_nodes stable) (Synopsis.num_nodes ts);
  Alcotest.(check bool) "still stable" true (Synopsis.is_count_stable ts)

let test_build_with_checkpoints () =
  let stable = Stable.build bigger_doc in
  let full = Synopsis.size_bytes stable in
  let budgets = [ full / 2; full / 4; full / 8 ] in
  let sweep = Build.build_with_checkpoints stable ~budgets in
  Alcotest.(check int) "all budgets served" (List.length budgets) (List.length sweep);
  List.iter2
    (fun budget (b, syn) ->
      Alcotest.(check int) "budget echoed" budget b;
      Alcotest.(check bool) "fits" true (Synopsis.size_bytes syn <= budget))
    budgets sweep;
  (* checkpoints must match independent builds in size class *)
  List.iter
    (fun (b, syn) ->
      let indep = Build.build stable ~budget:b in
      Alcotest.(check bool) "same ballpark as independent build" true
        (abs (Synopsis.size_bytes indep - Synopsis.size_bytes syn) <= b / 4))
    sweep

(* ---------------- budget-sweep edge cases ---------------- *)

let test_sweep_budget_lists () =
  let stable = Stable.build bigger_doc in
  let full = Synopsis.size_bytes stable in
  (* unsorted with a duplicate and an over-large budget: pairs come
     back in input order, duplicate budgets share one snapshot (each
     distinct budget is compressed exactly once), and a budget with
     room for the whole stable summary returns it unmerged *)
  let budgets = [ full / 4; 2 * full; full / 4; full / 2 ] in
  let sweep = Build.build_with_checkpoints stable ~budgets in
  Alcotest.(check (list int)) "input order preserved" budgets (List.map fst sweep);
  List.iter
    (fun (b, syn) ->
      Alcotest.(check bool) "fits its budget" true (Synopsis.size_bytes syn <= b))
    sweep;
  match sweep with
  | [ (_, s1); (_, s_big); (_, s2); (_, s_half) ] ->
    Alcotest.(check bool) "duplicates share one compression" true (s1 == s2);
    Alcotest.(check int) "over-large budget = stable summary"
      (Synopsis.num_nodes stable) (Synopsis.num_nodes s_big);
    Alcotest.(check bool) "over-large still count-stable" true
      (Synopsis.is_count_stable s_big);
    Alcotest.(check bool) "snapshots are monotone in budget" true
      (Synopsis.num_nodes s_half >= Synopsis.num_nodes s1)
  | _ -> Alcotest.fail "expected four pairs back"

(* ---------------- degradation latency ---------------- *)

(* The merge loop consults its control budget every [poll_period]
   candidate pops, so the number of merges applied after a limit trips
   is strictly smaller than one pool regeneration (which takes at
   least [heap_max - heap_min] pops from a full pool). *)
let test_poll_period_bounds () =
  List.iter
    (fun (heap_max, heap_min) ->
      let params = { Build.default_params with heap_max; heap_min } in
      let p = Build.poll_period params in
      Alcotest.(check bool) "positive" true (p >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "under one regeneration (heap_max=%d)" heap_max)
        true
        (p <= max 1 (heap_max - heap_min)))
    [ (10_000, 100); (200, 100); (101, 100); (2, 1); (1_000_000, 10) ]

let test_degrades_before_first_merge () =
  (* a control budget that is already expired must stop the loop before
     any merge is applied: zero degradation latency at the boundary *)
  let stable = Stable.build bigger_doc in
  let cl = Cluster.of_stable stable in
  let ctl = Xmldoc.Budget.create ~deadline:(Xmldoc.Limits.now () -. 1.) () in
  let merges = ref 0 in
  let fitted =
    Build.compress_ctl cl ~budget:64 ~ctl ~on_merge:(fun () -> incr merges)
  in
  Alcotest.(check int) "no merges under an expired deadline" 0 !merges;
  Alcotest.(check bool) "reported as not fitted" false fitted;
  Alcotest.(check bool) "stop is the deadline" true
    (Xmldoc.Budget.stopped ctl = Some Xmldoc.Budget.Deadline)

let test_heap_governor_degrades () =
  (* an absurdly low heap ceiling trips at the first poll: the build
     degrades to best-so-far instead of OOMing *)
  let stable = Stable.build bigger_doc in
  match Build.build_res ~max_heap_words:1 stable ~budget:64 with
  | Error f -> Alcotest.failf "heap-capped build failed: %s" (Xmldoc.Fault.to_string f)
  | Ok { synopsis; degraded } ->
    Alcotest.(check bool) "degraded" true degraded;
    (match Synopsis.validate synopsis with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "degraded synopsis invalid: %s" msg);
    Alcotest.(check int) "nothing merged under heap pressure"
      (Synopsis.num_nodes stable) (Synopsis.num_nodes synopsis)

(* ---------------- checkpointed construction and resume ---------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsbuild" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc text;
  close_out oc

let ok_or_fail what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" what (Xmldoc.Fault.to_string f)

(* The crash-resume property: resuming from ANY checkpoint of an
   interrupted build yields a valid synopsis meeting the same budget,
   with approximation error in the same ballpark as the uninterrupted
   build's. *)
let test_resume_from_every_checkpoint () =
  with_temp_dir (fun dir ->
      let stable = Stable.build bigger_doc in
      let budget = Synopsis.size_bytes stable / 4 in
      let straight =
        (ok_or_fail "straight build" (Build.build_res stable ~budget)).synopsis
      in
      let esd_straight = Metric.Esd.between_synopses stable straight in
      let ckpt = Filename.concat dir "build.ckpt" in
      let archives = ref [] in
      let archive n =
        let dst = Filename.concat dir (Printf.sprintf "ckpt-%06d" n) in
        copy_file ckpt dst;
        archives := dst :: !archives
      in
      ignore
        (ok_or_fail "checkpointed build"
           (Build.build_checkpointed_res ~checkpoint_every:1 ~on_checkpoint:archive
              ~checkpoint:ckpt stable ~budget));
      let archives = List.rev !archives in
      Alcotest.(check bool) "journal written at every merge" true
        (List.length archives > 10);
      (* every checkpoint is a legal kill point; sample evenly to keep
         the quadratic resume cost in check *)
      let n = List.length archives in
      let sampled =
        List.filteri (fun i _ -> i mod max 1 (n / 20) = 0 || i = n - 1) archives
      in
      List.iter
        (fun path ->
          let { Build.synopsis; _ } =
            ok_or_fail ("resume from " ^ path) (Build.resume_res path)
          in
          (match Synopsis.validate synopsis with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "resumed synopsis invalid: %s" msg);
          Alcotest.(check bool) "meets the original budget" true
            (Synopsis.size_bytes synopsis <= budget);
          T.check_float "elements preserved"
            (float_of_int (Tree.size bigger_doc))
            (Synopsis.total_elements synopsis);
          (* ESD sanity bound: a resumed build may pick different merges
             but its approximation error stays in the same ballpark as
             the uninterrupted build's (both relative to the lossless
             stable summary) *)
          let esd_resumed = Metric.Esd.between_synopses stable synopsis in
          Alcotest.(check bool)
            (Printf.sprintf "ESD sane (resumed %g vs straight %g)" esd_resumed
               esd_straight)
            true
            (esd_resumed <= (3. *. esd_straight) +. 1e-6))
        sampled)

let test_checkpoint_meta_roundtrip () =
  with_temp_dir (fun dir ->
      let stable = Stable.build small_doc in
      let budget = Synopsis.size_bytes stable / 2 in
      let ckpt = Filename.concat dir "meta.ckpt" in
      ignore
        (ok_or_fail "build"
           (Build.build_checkpointed_res ~checkpoint_every:1 ~checkpoint:ckpt stable
              ~budget));
      let { Build.Checkpoint.meta; synopsis } =
        ok_or_fail "load" (Build.Checkpoint.load_res ckpt)
      in
      Alcotest.(check string) "source fingerprint" (Build.Checkpoint.fingerprint stable)
        meta.source;
      Alcotest.(check int) "budget" budget meta.budget;
      Alcotest.(check string) "params hash"
        (Build.Checkpoint.hash_params Build.default_params)
        meta.params_hash;
      Alcotest.(check bool) "merges counted" true (meta.merges > 0);
      match Synopsis.validate synopsis with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "checkpoint synopsis invalid: %s" msg)

let test_resume_rejects_params_mismatch () =
  with_temp_dir (fun dir ->
      let stable = Stable.build bigger_doc in
      let budget = Synopsis.size_bytes stable / 4 in
      let ckpt = Filename.concat dir "params.ckpt" in
      ignore
        (ok_or_fail "build"
           (Build.build_checkpointed_res ~checkpoint_every:1 ~checkpoint:ckpt stable
              ~budget));
      let other = { Build.default_params with heap_max = 777 } in
      match Build.resume_res ~params:other ckpt with
      | Error (Xmldoc.Fault.Corrupt_synopsis _) -> ()
      | Error f -> Alcotest.failf "wrong fault: %s" (Xmldoc.Fault.to_string f)
      | Ok _ -> Alcotest.fail "resume with mismatched params must be rejected")

let prop_build_always_fits =
  T.qtest ~count:40 "TSBUILD fits budget or hits the floor" (T.arb_tree ())
    (fun t ->
      let stable = Stable.build t in
      let budget = max 64 (Synopsis.size_bytes stable / 3) in
      let ts = Build.build stable ~budget in
      let floor_nodes = List.length (Tree.distinct_labels t) in
      Synopsis.size_bytes ts <= budget || Synopsis.num_nodes ts = floor_nodes)

let prop_build_preserves_elements =
  T.qtest ~count:40 "TSBUILD preserves element counts per label" (T.arb_tree ())
    (fun t ->
      let ts = Build.build (Stable.build t) ~budget:128 in
      List.for_all
        (fun l ->
          let total =
            Array.fold_left
              (fun acc (n : Synopsis.node) ->
                if Xmldoc.Label.equal n.label l then acc +. n.count else acc)
              0. ts.Synopsis.nodes
          in
          T.feq total (float_of_int (Tree.count_label l t)))
        (Tree.distinct_labels t))

let prop_sq_error_monotone_in_budget =
  T.qtest ~count:25 "smaller budgets give larger squared error" (T.arb_tree ())
    (fun t ->
      let stable = Stable.build t in
      let full = Synopsis.size_bytes stable in
      let cl1 = Cluster.of_stable stable in
      Build.compress cl1 ~budget:(full / 2);
      let cl2 = Cluster.of_stable stable in
      Build.compress cl2 ~budget:(full / 4);
      Cluster.sq_error cl2 >= Cluster.sq_error cl1 -. 1e-9)

(* ---------------- budget ladders (brownout tiers) ---------------- *)

let build_ladder ?(tiers = 4) doc =
  let stable = Stable.build doc in
  let budget = Synopsis.size_bytes stable / 2 in
  let outcome =
    match Build.build_ladder_res stable ~budget ~tiers with
    | Ok o -> o
    | Error f -> Alcotest.failf "ladder build: %s" (Xmldoc.Fault.to_string f)
  in
  (stable, budget, outcome.Build.ladder)

let test_ladder_milestones () =
  let ms = Build.ladder_milestones ~budget:4096 ~tiers:4 in
  Alcotest.(check (list int)) "halving milestones, finest first"
    [ 4096; 2048; 1024; 512 ] ms;
  Alcotest.(check (list int)) "one tier = the budget itself" [ 4096 ]
    (Build.ladder_milestones ~budget:4096 ~tiers:1)

let test_ladder_tiers_fit_and_validate () =
  let _, budget, ladder = build_ladder bigger_doc in
  Alcotest.(check int) "asked tiers delivered" 4 (List.length ladder);
  Alcotest.(check int) "finest tier carries the full budget" budget
    (fst (List.hd ladder));
  let rec strictly_decreasing = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "budgets strictly decreasing" true
    (strictly_decreasing ladder);
  List.iter
    (fun (b, syn) ->
      Alcotest.(check bool)
        (Printf.sprintf "tier %d fits" b)
        true
        (Synopsis.size_bytes syn <= b);
      match Synopsis.validate syn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "tier %d invalid: %s" b msg)
    ladder

(* The ladder's whole value proposition: walking down the tiers trades
   accuracy for size monotonically — a coarser tier is never a better
   summary of the reference document than a finer one. *)
let test_ladder_esd_monotone () =
  let stable, _, ladder = build_ladder bigger_doc in
  let esds =
    List.map (fun (b, syn) -> (b, Metric.Esd.between_synopses stable syn)) ladder
  in
  let rec non_decreasing = function
    | (bf, ef) :: (((bc, ec) :: _) as rest) ->
      if ef > ec +. 1e-9 then
        Alcotest.failf
          "coarser tier beat a finer one: budget %d has ESD %g, budget %d \
           has ESD %g"
          bf ef bc ec;
      non_decreasing rest
    | _ -> ()
  in
  non_decreasing esds

let test_ladder_tiers_roundtrip_independently () =
  with_temp_dir (fun dir ->
      let _, _, ladder = build_ladder bigger_doc in
      let path = Filename.concat dir "ladder.ts" in
      (match Serialize.save_ladder_atomic path ladder with
      | Ok () -> ()
      | Error f -> Alcotest.failf "save: %s" (Xmldoc.Fault.to_string f));
      let reloaded =
        match Serialize.load_ladder_res path with
        | Ok tiers -> tiers
        | Error f -> Alcotest.failf "load: %s" (Xmldoc.Fault.to_string f)
      in
      Alcotest.(check int) "tier count survives" (List.length ladder)
        (Array.length reloaded);
      List.iteri
        (fun i (b, syn) ->
          let b', syn' = reloaded.(i) in
          Alcotest.(check int) "budget survives" b b';
          Alcotest.(check int) "size survives" (Synopsis.size_bytes syn)
            (Synopsis.size_bytes syn');
          (* each tier is a complete snapshot in its own right: zero
             drift against its pre-serialization self *)
          T.check_float "tier identical after reload" 0.
            (Metric.Esd.between_synopses syn syn');
          match Synopsis.validate syn' with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "reloaded tier %d invalid: %s" b msg)
        ladder)

let test_ladder_rejects_bad_tier_lists () =
  let _, _, ladder = build_ladder small_doc in
  (match Serialize.to_ladder_string [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ladder accepted");
  let tier = List.hd ladder in
  match Serialize.to_ladder_string [ tier; tier ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-decreasing budgets accepted"

let expect_corrupt what = function
  | Error (Xmldoc.Fault.Corrupt_synopsis _) -> ()
  | Error f ->
    Alcotest.failf "%s: wrong fault %s" what (Xmldoc.Fault.to_string f)
  | Ok _ -> Alcotest.failf "%s: corruption went unnoticed" what

let test_ladder_corruption_detected () =
  let _, _, ladder = build_ladder bigger_doc in
  let text = Serialize.to_ladder_string ladder in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  (* manifest: flip a byte inside a tier line's crc=... hex *)
  let manifest_crc =
    match String.index_opt text 'c' with
    | Some _ ->
      let rec find from =
        let i = String.index_from text from 'c' in
        if String.length text - i > 4 && String.sub text i 4 = "crc=" then
          i + 4
        else find (i + 1)
      in
      find 0
    | None -> Alcotest.fail "no crc in ladder text"
  in
  expect_corrupt "manifest flip"
    (Serialize.of_ladder_string_res (flip text manifest_crc));
  (* payload: flip a byte well past the manifest *)
  expect_corrupt "payload flip"
    (Serialize.of_ladder_string_res (flip text (String.length text - 40)));
  (* tear: drop the tail of the last payload *)
  expect_corrupt "truncated payloads"
    (Serialize.of_ladder_string_res
       (String.sub text 0 (String.length text - 64)));
  (* trailing garbage after the declared payloads *)
  expect_corrupt "trailing garbage"
    (Serialize.of_ladder_string_res (text ^ "spurious bytes\n"));
  (* the single-snapshot loader must not half-read a ladder *)
  match Serialize.of_string_res text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v2 loader swallowed a v4 ladder"

let test_load_any_discriminates () =
  with_temp_dir (fun dir ->
      let stable, _, ladder = build_ladder bigger_doc in
      let single_path = Filename.concat dir "single.ts" in
      let ladder_path = Filename.concat dir "ladder.ts" in
      (match Serialize.save_atomic single_path stable with
      | Ok () -> ()
      | Error f -> Alcotest.failf "save single: %s" (Xmldoc.Fault.to_string f));
      (match Serialize.save_ladder_atomic ladder_path ladder with
      | Ok () -> ()
      | Error f -> Alcotest.failf "save ladder: %s" (Xmldoc.Fault.to_string f));
      (match Serialize.load_any_res single_path with
      | Ok (Serialize.Single _) -> ()
      | Ok (Serialize.Ladder _) -> Alcotest.fail "snapshot read as ladder"
      | Error f -> Alcotest.failf "load single: %s" (Xmldoc.Fault.to_string f));
      match Serialize.load_any_res ladder_path with
      | Ok (Serialize.Ladder tiers) ->
        Alcotest.(check int) "all tiers via load_any" (List.length ladder)
          (Array.length tiers)
      | Ok (Serialize.Single _) -> Alcotest.fail "ladder read as snapshot"
      | Error f -> Alcotest.failf "load ladder: %s" (Xmldoc.Fault.to_string f))

let prop_ladder_tiers_fit_and_roundtrip =
  T.qtest ~count:20 "every ladder tier fits, validates, and round-trips"
    (T.arb_tree ()) (fun t ->
      let stable = Stable.build t in
      let budget = max 256 (Synopsis.size_bytes stable / 2) in
      match Build.build_ladder_res stable ~budget ~tiers:3 with
      | Error _ -> false
      | Ok { Build.ladder; _ } -> (
        match Serialize.of_ladder_string_res (Serialize.to_ladder_string ladder)
        with
        | Error _ -> false
        | Ok tiers ->
          Array.for_all
            (fun (b, syn) ->
              Synopsis.validate syn = Ok ()
              && (Synopsis.size_bytes syn <= b
                 || Synopsis.num_nodes syn
                    = List.length (Tree.distinct_labels t)))
            tiers))

(* ---------------- top-down construction ---------------- *)

let test_topdown_basics () =
  let stable = Stable.build bigger_doc in
  let budget = Synopsis.size_bytes stable / 4 in
  let td, sq = Topdown.build stable ~budget in
  Alcotest.(check bool) "near budget" true
    (Synopsis.size_bytes td <= budget + 512);
  Alcotest.(check bool) "positive error under compression" true (sq >= 0.);
  T.check_float "elements preserved"
    (float_of_int (Tree.size bigger_doc))
    (Synopsis.total_elements td)

let test_topdown_full_budget () =
  (* with room for the whole stable summary, splitting drives the
     squared error to (near) zero *)
  let stable = Stable.build small_doc in
  let _, sq = Topdown.build stable ~budget:(4 * Synopsis.size_bytes stable) in
  T.check_float "zero error at full budget" 0. sq

let test_topdown_label_floor () =
  let stable = Stable.build small_doc in
  let td, _ = Topdown.build stable ~budget:1 in
  Alcotest.(check int) "label-split floor"
    (List.length (Tree.distinct_labels small_doc))
    (Synopsis.num_nodes td)

let () =
  Alcotest.run "build"
    [
      ( "cluster",
        [
          Alcotest.test_case "initial state" `Quick test_cluster_initial;
          Alcotest.test_case "merge p classes" `Quick test_cluster_merge_p_classes;
          Alcotest.test_case "merge rejections" `Quick test_cluster_merge_rejects;
          Alcotest.test_case "random merges consistent" `Slow test_random_merges_consistency;
          Alcotest.test_case "delta matches merge" `Slow test_delta_matches_merge;
        ] );
      ( "tsbuild",
        [
          Alcotest.test_case "respects budget" `Quick test_build_respects_budget;
          Alcotest.test_case "label-split floor" `Quick test_build_label_split_floor;
          Alcotest.test_case "no merge when room" `Quick test_build_zero_error_when_room;
          Alcotest.test_case "checkpoints" `Slow test_build_with_checkpoints;
          Alcotest.test_case "sweep budget lists" `Quick test_sweep_budget_lists;
          prop_build_always_fits;
          prop_build_preserves_elements;
          prop_sq_error_monotone_in_budget;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "poll period bounds" `Quick test_poll_period_bounds;
          Alcotest.test_case "expired deadline: zero merges" `Quick
            test_degrades_before_first_merge;
          Alcotest.test_case "heap governor" `Quick test_heap_governor_degrades;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume from every checkpoint" `Slow
            test_resume_from_every_checkpoint;
          Alcotest.test_case "meta roundtrip" `Quick test_checkpoint_meta_roundtrip;
          Alcotest.test_case "params mismatch rejected" `Quick
            test_resume_rejects_params_mismatch;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "milestones" `Quick test_ladder_milestones;
          Alcotest.test_case "tiers fit and validate" `Quick
            test_ladder_tiers_fit_and_validate;
          Alcotest.test_case "ESD monotone down the ladder" `Quick
            test_ladder_esd_monotone;
          Alcotest.test_case "tiers round-trip independently" `Quick
            test_ladder_tiers_roundtrip_independently;
          Alcotest.test_case "bad tier lists rejected" `Quick
            test_ladder_rejects_bad_tier_lists;
          Alcotest.test_case "corruption detected" `Quick
            test_ladder_corruption_detected;
          Alcotest.test_case "load_any discriminates" `Quick
            test_load_any_discriminates;
          prop_ladder_tiers_fit_and_roundtrip;
        ] );
      ( "topdown",
        [
          Alcotest.test_case "basics" `Quick test_topdown_basics;
          Alcotest.test_case "full budget" `Quick test_topdown_full_budget;
          Alcotest.test_case "label floor" `Quick test_topdown_label_floor;
        ] );
    ]
