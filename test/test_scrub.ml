(* Anti-entropy: background integrity scrubbing + peer snapshot repair.

   - the scrub core: verify/scan/report round-trips, the tmp-orphan
     sweep's age gate;
   - catalog content identity (per-snapshot hash + params fingerprint)
     and scrub quarantine semantics (resident copy keeps serving, an
     atomic-rename repair clears the quarantine without --force);
   - the SCRUB / FETCH / REPAIR protocol verbs, including a torn FETCH
     stream (injected short write) that must never install a partial
     file, and an ENOSPC preflight that defers instead of wedging;
   - the repair planner's quorum rules (one peer's word never overrules
     a locally-clean copy; deletions are never propagated);
   - replica divergence detection (modal catalog hash, stale members
     read as Suspect) at the registry and through a probing
     coordinator;
   - end to end: a v4 ladder rotted in one tier is quarantined whole
     and repaired byte-identically, and a live 3-replica group with a
     background scrubber detects in-place corruption, pulls the clean
     copy from a peer, and converges — with zero lost client requests.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Client = Serve.Client
module Protocol = Serve.Protocol
module Replica = Serve.Replica
module Coordinator = Serve.Coordinator
module Catalog = Serve.Catalog
module Scrub = Serve.Scrub
module Repair = Serve.Repair
module Serialize = Sketch.Serialize
module Stable = Sketch.Stable

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x5C4B
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "scrub seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsscrub" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let other_synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><title/></movie><book><title/></book></db>"))

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_raw path text =
  match Serialize.write_atomic path text with
  | Ok () -> ()
  | Error f -> Alcotest.failf "write %s: %s" path (Xmldoc.Fault.to_string f)

let crc_hex s = Sketch.Crc32.to_hex (Sketch.Crc32.string s)

(* A fixed, microsecond-exact mtime: [Unix.utimes] and [Unix.stat]
   round-trip it precisely, so an in-place corruption that restores it
   leaves the catalog's (mtime, size, inode) fingerprint unchanged —
   exactly the rot only a scrub can see. *)
let t0 = 1_700_000_000.0

let normalize_mtime path = Unix.utimes path t0 t0

(* Flip one byte in place, keeping size, inode and mtime — bit-rot as
   the filesystem would present it. *)
let corrupt_in_place path ~at =
  let text = read_file path in
  let n = String.length text in
  let at = min at (n - 1) in
  let b = Bytes.of_string text in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  let rec w off = if off < n then w (off + Unix.write fd b off (n - off)) in
  w 0;
  Unix.close fd;
  normalize_mtime path

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0
    ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

(* One raw request / single-line response against a served socket. *)
let ask sock line =
  let fd = connect sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc (line ^ "\n");
      flush oc;
      input_line ic)

let starts_with prefix s = String.starts_with ~prefix s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let token_with prefix line =
  List.find_opt (starts_with prefix) (String.split_on_char ' ' line)

(* Serve [server] on [sock] in a thread; always drained and joined. *)
let with_served server sock f =
  let thread =
    Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
  in
  Unix.close (connect sock);
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Thread.join thread)
    (fun () -> f ())

(* ------------------------------------------------------------------ *)
(* Scrub core                                                          *)
(* ------------------------------------------------------------------ *)

let test_verify_detects_rot () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      let text = read_file path in
      (match Scrub.verify_file path with
      | Error f -> Alcotest.failf "clean file rejected: %s" (Xmldoc.Fault.to_string f)
      | Ok info ->
        Alcotest.(check int) "bytes" (String.length text) info.Scrub.v_bytes;
        Alcotest.(check string) "content hash is the raw-bytes crc"
          (crc_hex text) info.Scrub.v_crc;
        Alcotest.(check int) "plain = one tier" 1 info.Scrub.v_tiers);
      corrupt_in_place path ~at:(String.length text / 2);
      match Scrub.verify_file path with
      | Ok _ -> Alcotest.fail "flipped byte not detected"
      | Error f ->
        Alcotest.(check string) "classed as corruption" "corrupt"
          (Xmldoc.Fault.class_name f))

let test_fingerprint_sees_build_shape () =
  with_temp_dir (fun dir ->
      let plain = Filename.concat dir "p.ts" in
      save plain (Lazy.force synopsis);
      let ladder = Filename.concat dir "l.ts" in
      (match
         Sketch.Build.build_ladder_res ~limits:Xmldoc.Limits.unlimited
           (Lazy.force synopsis) ~budget:2048 ~tiers:3
       with
      | Error f -> Alcotest.failf "ladder build: %s" (Xmldoc.Fault.to_string f)
      | Ok { ladder = tiers; _ } -> (
        match Serialize.save_ladder_atomic ladder tiers with
        | Ok () -> ()
        | Error f -> Alcotest.failf "ladder save: %s" (Xmldoc.Fault.to_string f)));
      match (Scrub.verify_file plain, Scrub.verify_file ladder) with
      | Ok p, Ok l ->
        Alcotest.(check int) "ladder tiers" 3 l.Scrub.v_tiers;
        (* same logical content, different build parameters: the params
           fingerprint must split them, or two members that built the
           same name differently would read as converged *)
        Alcotest.(check bool) "plain and ladder fingerprints differ" true
          (p.Scrub.v_fp <> l.Scrub.v_fp)
      | Error f, _ | _, Error f ->
        Alcotest.failf "verify: %s" (Xmldoc.Fault.to_string f))

let test_scan_classifies_directory () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "good.ts") (Lazy.force synopsis);
      let bad = Filename.concat dir "bad.ts" in
      save bad (Lazy.force other_synopsis);
      corrupt_in_place bad ~at:30;
      (* non-snapshot files are invisible to the scrub, like the catalog *)
      Out_channel.with_open_bin (Filename.concat dir "notes.txt")
        (fun oc -> Out_channel.output_string oc "not a snapshot");
      Out_channel.with_open_bin (Filename.concat dir ".treesketch-x.tmp")
        (fun oc -> Out_channel.output_string oc "staging");
      match Scrub.scan dir with
      | Error f -> Alcotest.failf "scan: %s" (Xmldoc.Fault.to_string f)
      | Ok reports ->
        Alcotest.(check (list string)) "only snapshots, name order"
          [ "bad"; "good" ]
          (List.map (fun r -> r.Scrub.f_name) reports);
        let verdict name =
          let r = List.find (fun r -> r.Scrub.f_name = name) reports in
          Result.is_ok r.Scrub.f_result
        in
        Alcotest.(check bool) "good passes" true (verdict "good");
        Alcotest.(check bool) "bad fails" false (verdict "bad"))

let test_report_round_trip () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let reports =
        match Scrub.scan dir with
        | Ok r -> r
        | Error f -> Alcotest.failf "scan: %s" (Xmldoc.Fault.to_string f)
      in
      let fabricated =
        {
          Scrub.f_name = "rotten";
          f_path = Filename.concat dir "rotten.ts";
          f_result =
            Error
              (Xmldoc.Fault.Corrupt_synopsis
                 { line = 3; content = ""; message = "checksum mismatch" });
        }
      in
      (match Scrub.write_report dir (fabricated :: reports) with
      | Ok () -> ()
      | Error f -> Alcotest.failf "write_report: %s" (Xmldoc.Fault.to_string f));
      (* the report is dot-prefixed: never mistaken for a snapshot *)
      Alcotest.(check bool) "report hidden from scan" true
        (match Scrub.scan dir with
        | Ok rs -> List.for_all (fun r -> r.Scrub.f_name <> ".scrub") rs
        | Error _ -> false);
      (match Scrub.read_report dir with
      | None -> Alcotest.fail "report unreadable"
      | Some lines ->
        (match List.assoc_opt "db" lines with
        | Some (Scrub.Report_ok info) ->
          Alcotest.(check int) "tiers round-trip" 1 info.Scrub.v_tiers
        | _ -> Alcotest.fail "db missing or misclassified");
        match List.assoc_opt "rotten" lines with
        | Some (Scrub.Report_corrupt { r_class; _ }) ->
          Alcotest.(check string) "fault class round-trips" "corrupt" r_class
        | _ -> Alcotest.fail "rotten missing or misclassified");
      Scrub.remove_report dir;
      Alcotest.(check bool) "consumed reports do not linger" true
        (Scrub.read_report dir = None))

let test_tmp_sweep_age_gate () =
  with_temp_dir (fun dir ->
      Alcotest.(check bool) "orphan pattern" true
        (Scrub.is_tmp_orphan ".treesketch-db.123.tmp");
      Alcotest.(check bool) "snapshots are not orphans" false
        (Scrub.is_tmp_orphan "db.ts");
      let old_orphan = Filename.concat dir ".treesketch-old.tmp" in
      let fresh = Filename.concat dir ".treesketch-fresh.tmp" in
      Out_channel.with_open_bin old_orphan (fun oc ->
          Out_channel.output_string oc "torn write from a dead server");
      Out_channel.with_open_bin fresh (fun oc ->
          Out_channel.output_string oc "live writer mid-publish");
      let old_t = Unix.gettimeofday () -. 600.0 in
      Unix.utimes old_orphan old_t old_t;
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let swept = Scrub.sweep_tmp ~max_age:60.0 dir in
      Alcotest.(check (list string)) "only the stale orphan swept"
        [ ".treesketch-old.tmp" ] swept;
      Alcotest.(check bool) "stale orphan gone" false (Sys.file_exists old_orphan);
      (* the age gate is what protects a live atomic write in flight *)
      Alcotest.(check bool) "fresh staging file survives" true
        (Sys.file_exists fresh);
      Alcotest.(check bool) "real snapshot untouched" true
        (Sys.file_exists (Filename.concat dir "db.ts")))

(* A background scrub racing a flush's manifest swap: in the window
   where the new delta level is already on disk but the manifest
   rename that references it is still in flight, the scanner must read
   the old committed manifest as clean (never quarantine a mid-swap
   manifest) and the orphan sweeper must leave the fresh unreferenced
   delta alone (the age gate, same as for tmp staging files).  The
   swap window is held open with an injected [Delay] on the manifest's
   publishing rename. *)
let test_scrub_never_disturbs_mid_swap_flush () =
  with_temp_dir (fun dir ->
      let engine =
        match
          Serve.Ingest.open_ ~dir ~name:"db" ~level_budget:64 ~flush_records:64
            ()
        with
        | Ok t -> t
        | Error f -> Alcotest.failf "open_: %s" (Xmldoc.Fault.to_string f)
      in
      let add xml =
        match Serve.Ingest.ingest engine ~xml with
        | Ok _ -> ()
        | Error `No_space -> Alcotest.fail "ingest: no space"
        | Error (`Fault f) ->
          Alcotest.failf "ingest: %s" (Xmldoc.Fault.to_string f)
      in
      let flush () =
        match Serve.Ingest.flush engine with
        | Ok landed -> landed
        | Error f -> Alcotest.failf "flush: %s" (Xmldoc.Fault.to_string f)
      in
      let corrupt_entries () =
        match Scrub.scan dir with
        | Error f -> Alcotest.failf "scan: %s" (Xmldoc.Fault.to_string f)
        | Ok reports ->
          List.filter_map
            (fun r ->
              match r.Scrub.f_result with
              | Ok _ -> None
              | Error f ->
                Some (r.Scrub.f_path ^ ": " ^ Xmldoc.Fault.to_string f))
            reports
      in
      add "movie <movie><title/></movie>";
      Alcotest.(check bool) "first flush lands" true (flush ());
      Alcotest.(check (list string)) "clean after first flush" []
        (corrupt_entries ());
      add "short <short><title/></short>";
      Fun.protect ~finally:F.disarm (fun () ->
          (* Hold the swap open: the delta file for gen 2 is written
             and fsynced, then the manifest rename sleeps. *)
          F.arm ~seed
            [ F.rule ~prob:1.0 ~limit:1 ~path:".levels" F.Rename (F.Delay 0.5) ];
          let flusher = Thread.create (fun () -> ignore (flush () : bool)) () in
          Thread.delay 0.15;
          (* Mid-swap: the committed manifest still references only gen
             1; gen 2's delta exists, unreferenced and seconds old. *)
          Alcotest.(check (list string)) "mid-swap scan quarantines nothing" []
            (corrupt_entries ());
          Alcotest.(check (list string)) "live delta is never swept as orphan"
            [] (Scrub.sweep_levels dir);
          Thread.join flusher);
      (* After the swap lands the picture is whole: both levels
         referenced and verifiable, still nothing to sweep. *)
      Alcotest.(check int) "both levels live" 2
        (Serve.Ingest.level_count engine);
      Alcotest.(check (list string)) "clean after the swap" []
        (corrupt_entries ());
      Alcotest.(check (list string)) "nothing to sweep after the swap" []
        (Scrub.sweep_levels dir);
      Serve.Ingest.close engine)

(* ------------------------------------------------------------------ *)
(* Catalog: content identity + scrub quarantine                        *)
(* ------------------------------------------------------------------ *)

let test_catalog_hashes () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      let cat = Catalog.create dir in
      ignore (Catalog.refresh cat);
      let text = read_file path in
      (match Catalog.hashes cat with
      | [ (name, crc, fp) ] ->
        Alcotest.(check string) "name" "db" name;
        Alcotest.(check string) "content hash = raw file crc" (crc_hex text) crc;
        Alcotest.(check bool) "fingerprint present" true (String.length fp > 0)
      | hs -> Alcotest.failf "expected one hash, got %d" (List.length hs));
      let h1 = Catalog.combined_hash cat in
      (* replacing the content moves the combined hash; restoring the
         exact bytes restores it exactly — the convergence criterion a
         byte-identical repair is held to *)
      save path (Lazy.force other_synopsis);
      ignore (Catalog.refresh cat);
      let h2 = Catalog.combined_hash cat in
      Alcotest.(check bool) "different content, different hash" true (h1 <> h2);
      write_raw path text;
      ignore (Catalog.refresh cat);
      Alcotest.(check string) "byte-identical restore converges the hash" h1
        (Catalog.combined_hash cat))

let test_scrub_quarantine_keeps_serving_and_heals () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      normalize_mtime path;
      let clean = read_file path in
      let cat = Catalog.create dir in
      ignore (Catalog.refresh cat);
      corrupt_in_place path ~at:(String.length clean / 2);
      (* the fingerprint did not move: a plain refresh cannot see the
         rot — that blindness is the scrubber's whole reason to exist *)
      ignore (Catalog.refresh cat);
      Alcotest.(check (list string)) "refresh is blind to in-place rot" []
        (List.map (fun q -> q.Catalog.q_name) (Catalog.quarantined cat));
      let fault =
        match Scrub.verify_file path with
        | Error f -> f
        | Ok _ -> Alcotest.fail "scrub missed the rot"
      in
      Catalog.quarantine_scrub cat "db" fault;
      (match Catalog.quarantine_for cat "db" with
      | None -> Alcotest.fail "not quarantined"
      | Some q ->
        Alcotest.(check string) "reason distinguishes bit-rot from bad publish"
          "scrub-corrupt"
          (Catalog.quarantine_reason q));
      (* the resident entry was loaded from bytes that verified clean:
         it KEEPS serving *)
      Alcotest.(check bool) "resident copy keeps serving" true
        (Catalog.find cat "db" <> None);
      (* repair by atomic rename (new inode): the next PLAIN refresh
         picks it up and clears the quarantine — no restart, no --force *)
      write_raw path clean;
      ignore (Catalog.refresh cat);
      Alcotest.(check bool) "rename repair clears the quarantine" true
        (Catalog.quarantine_for cat "db" = None);
      Alcotest.(check string) "hash restored exactly" (crc_hex clean)
        (match Catalog.hashes cat with [ (_, crc, _) ] -> crc | _ -> ""))

(* ------------------------------------------------------------------ *)
(* Protocol verbs: SCRUB, FETCH, REPAIR                                *)
(* ------------------------------------------------------------------ *)

let test_scrub_verb_detects_in_place_rot () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      normalize_mtime path;
      let server = quiet_server dir in
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check string) "clean scrub"
        "ok scrub checked=1 corrupt=0 swept=0" (askl "SCRUB");
      corrupt_in_place path ~at:(String.length (read_file path) / 2);
      (* auto-reload STAT sees nothing: fingerprint unchanged *)
      Alcotest.(check bool) "stat blind to the rot" true
        (contains (askl "STAT db") "quarantined=no");
      Alcotest.(check string) "scrub finds it"
        "ok scrub checked=1 corrupt=1 swept=0" (askl "SCRUB");
      Alcotest.(check bool) "stat reports scrub-corrupt" true
        (contains (askl "STAT db") "quarantined=yes reason=scrub-corrupt");
      (* degraded, not down: the resident synopsis still answers *)
      Alcotest.(check bool) "queries still served" true
        (starts_with "ok query" (askl "QUERY db //movie"));
      (* operand validation *)
      Alcotest.(check bool) "SCRUB takes no operands" true
        (starts_with "error bad-request" (askl "SCRUB now"));
      Alcotest.(check bool) "FETCH validates the name" true
        (starts_with "error bad-request" (askl "FETCH ../etc/passwd"));
      Alcotest.(check bool) "REPAIR without peers is refused" true
        (starts_with "error bad-request" (askl "REPAIR")))

let test_fetch_round_trip_and_refusals () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      let clean = read_file path in
      let sock = Filename.concat dir "src.sock" in
      let server = quiet_server dir in
      with_served server sock (fun () ->
          (match Repair.fetch ~timeout:2.0 sock "db" with
          | Error e -> Alcotest.failf "fetch: %s" e
          | Ok text ->
            Alcotest.(check string) "fetched bytes are byte-identical" clean text);
          (match Repair.fetch ~timeout:2.0 sock "ghost" with
          | Ok _ -> Alcotest.fail "fetched a snapshot that does not exist"
          | Error e ->
            Alcotest.(check bool) "unknown name refused" true
              (contains e "not-found"));
          (* a repair source must never stream rot: corrupt the file in
             place and FETCH again — refused, not forwarded *)
          corrupt_in_place path ~at:(String.length clean / 2);
          match Repair.fetch ~timeout:2.0 sock "db" with
          | Ok _ -> Alcotest.fail "server streamed a corrupt snapshot"
          | Error e ->
            Alcotest.(check bool) "corrupt source refused" true
              (contains e "corrupt")))

let test_torn_fetch_never_installs () =
  with_temp_dir (fun src ->
      with_temp_dir (fun dst ->
          save (Filename.concat src "torn.ts") (Lazy.force synopsis);
          let clean = read_file (Filename.concat src "torn.ts") in
          let sock = Filename.concat src "src.sock" in
          let server = quiet_server src in
          with_served server sock (fun () ->
              Fun.protect ~finally:F.disarm (fun () ->
                  (* cut the chunk armour short on the serving side:
                     the puller's per-chunk CRC must reject the tear *)
                  F.arm ~seed
                    [ F.rule ~prob:1.0 ~path:"torn.ts" F.Write (F.Short_at 64) ];
                  (match
                     Repair.repair_one ~timeout:2.0 ~dir:dst "torn" [ sock ]
                   with
                  | Repair.Failed _ -> ()
                  | o ->
                    Alcotest.failf "torn fetch yielded %s"
                      (Repair.outcome_name o));
                  Alcotest.(check bool) "no partial file installed" false
                    (Sys.file_exists (Filename.concat dst "torn.ts")));
              (* same pull with the fault gone: proves the tear was the
                 only obstacle *)
              match Repair.repair_one ~timeout:2.0 ~dir:dst "torn" [ sock ] with
              | Repair.Repaired { crc; _ } ->
                Alcotest.(check string) "repair is byte-identical"
                  (crc_hex clean)
                  crc;
                Alcotest.(check string) "installed bytes match" clean
                  (read_file (Filename.concat dst "torn.ts"))
              | o -> Alcotest.failf "clean fetch yielded %s" (Repair.outcome_name o))))

let test_enospc_defers_repair () =
  with_temp_dir (fun src ->
      with_temp_dir (fun dst ->
          save (Filename.concat src "db.ts") (Lazy.force synopsis);
          let src_sock = Filename.concat src "a.sock" in
          let server = quiet_server src in
          with_served server src_sock (fun () ->
              Fun.protect ~finally:F.disarm (fun () ->
                  F.arm ~seed
                    [ F.rule ~prob:1.0 ~path:".treesketch-preflight" F.Write
                        F.Enospc ];
                  (match Repair.preflight dst ~bytes:4096 with
                  | Error `No_space -> ()
                  | Error (`Io m) -> Alcotest.failf "preflight io: %s" m
                  | Ok () -> Alcotest.fail "full disk not detected");
                  match Repair.repair_one ~timeout:2.0 ~dir:dst "db" [ src_sock ] with
                  | Repair.Deferred _ ->
                    Alcotest.(check bool) "nothing installed on a full disk"
                      false
                      (Sys.file_exists (Filename.concat dst "db.ts"))
                  | o -> Alcotest.failf "full disk yielded %s" (Repair.outcome_name o));
              (* space freed: the same pull now lands *)
              match Repair.repair_one ~timeout:2.0 ~dir:dst "db" [ src_sock ] with
              | Repair.Repaired _ -> ()
              | o -> Alcotest.failf "retry yielded %s" (Repair.outcome_name o))))

let test_repair_verb_pulls_quorum () =
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          with_temp_dir (fun local ->
              save (Filename.concat d1 "db.ts") (Lazy.force synopsis);
              let text = read_file (Filename.concat d1 "db.ts") in
              write_raw (Filename.concat d2 "db.ts") text;
              let s1 = Filename.concat d1 "p1.sock" in
              let s2 = Filename.concat d2 "p2.sock" in
              let p1 = quiet_server d1 and p2 = quiet_server d2 in
              with_served p1 s1 (fun () ->
                  with_served p2 s2 (fun () ->
                      let config =
                        { Server.default_config with peers = [ s1; s2 ] }
                      in
                      let server = quiet_server ~config local in
                      let askl line = fst (Server.handle_line server line) in
                      (* two peers agree on an identity the local catalog
                         lacks: quorum reached, REPAIR pulls it in *)
                      Alcotest.(check string) "repair pulls the missing name"
                        "ok repair attempted=1 repaired=1 deferred=0 failed=0"
                        (askl "REPAIR");
                      Alcotest.(check string) "repair is byte-identical" text
                        (read_file (Filename.concat local "db.ts"));
                      Alcotest.(check bool) "now resident" true
                        (contains (askl "LIST") "names=db");
                      (* converged: a second pass has nothing to do *)
                      Alcotest.(check string) "repair is idempotent"
                        "ok repair attempted=0 repaired=0 deferred=0 failed=0"
                        (askl "REPAIR"))))))

let test_tmp_orphan_never_shadows_snapshot () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      save path (Lazy.force synopsis);
      let orphan = Filename.concat dir ".treesketch-db.999.tmp" in
      Out_channel.with_open_bin orphan (fun oc ->
          Out_channel.output_string oc "torn write from a crashed publisher");
      let old_t = Unix.gettimeofday () -. 600.0 in
      Unix.utimes orphan old_t old_t;
      (* startup fsck: the orphan is swept, the real snapshot loads —
         the orphan never shadowed it and does not outlive it *)
      let server = quiet_server dir in
      Alcotest.(check bool) "startup sweep removed the orphan" false
        (Sys.file_exists orphan);
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check bool) "real snapshot serves" true
        (starts_with "ok query" (askl "QUERY db //movie"));
      (* a later orphan is swept by RELOAD once it ages out *)
      Out_channel.with_open_bin orphan (fun oc ->
          Out_channel.output_string oc "another tear");
      Unix.utimes orphan old_t old_t;
      let reload = askl "RELOAD" in
      Alcotest.(check bool)
        (Printf.sprintf "reload sweeps and reports (%s)" reload)
        true
        (contains reload "swept=1");
      Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
      Alcotest.(check bool) "snapshot outlives every orphan" true
        (Sys.file_exists path))

let test_single_target_verbs () =
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " is single-target") true
        (Protocol.single_target l))
    [ "SCRUB"; "FETCH db"; "REPAIR" ]

(* ------------------------------------------------------------------ *)
(* The repair planner's quorum rules                                   *)
(* ------------------------------------------------------------------ *)

let test_plan_quorum_rules () =
  (* quarantined: our copy is known-bad — any holder is a candidate,
     majority identity first (fetch-side verification is the guard) *)
  let plan1 =
    Repair.plan
      ~local_hashes:[ ("db", "aaaa", "ff") ]
      ~quarantined:[ "db" ]
      ~peer_census:
        [
          ("p1", [ ("db", ("cccc", "ff")) ]);
          ("p2", [ ("db", ("bbbb", "ff")) ]);
          ("p3", [ ("db", ("bbbb", "ff")) ]);
        ]
  in
  (match plan1 with
  | [ ("db", candidates) ] ->
    Alcotest.(check (list string)) "majority identity first"
      [ "p2"; "p3"; "p1" ] candidates
  | _ -> Alcotest.fail "quarantined name not planned");
  (* divergence needs TWO peers agreeing: one peer's word never
     overrules a locally-clean copy *)
  Alcotest.(check bool) "single peer cannot overrule" true
    (Repair.plan
       ~local_hashes:[ ("db", "aaaa", "ff") ]
       ~quarantined:[]
       ~peer_census:[ ("p1", [ ("db", ("bbbb", "ff")) ]) ]
    = []);
  (match
     Repair.plan
       ~local_hashes:[ ("db", "aaaa", "ff") ]
       ~quarantined:[]
       ~peer_census:
         [
           ("p1", [ ("db", ("bbbb", "ff")) ]);
           ("p2", [ ("db", ("bbbb", "ff")) ]);
         ]
   with
  | [ ("db", [ "p1"; "p2" ]) ] -> ()
  | _ -> Alcotest.fail "two agreeing peers should out-vote a local copy");
  (* agreement WITH the local copy plans nothing *)
  Alcotest.(check bool) "matching modal hash needs no repair" true
    (Repair.plan
       ~local_hashes:[ ("db", "bbbb", "ff") ]
       ~quarantined:[]
       ~peer_census:
         [
           ("p1", [ ("db", ("bbbb", "ff")) ]);
           ("p2", [ ("db", ("bbbb", "ff")) ]);
         ]
    = []);
  (* deletions are never propagated: a name only we hold is left alone *)
  Alcotest.(check bool) "deletions not propagated" true
    (Repair.plan
       ~local_hashes:[ ("onlyus", "aaaa", "ff") ]
       ~quarantined:[]
       ~peer_census:[ ("p1", []); ("p2", []) ]
    = [])

(* ------------------------------------------------------------------ *)
(* Replica divergence: stale members read as Suspect                   *)
(* ------------------------------------------------------------------ *)

let test_replica_divergence_quorum () =
  let g = Replica.create [ "a"; "b"; "c" ] in
  let m i = List.nth (Replica.members g) i in
  Replica.note_probe ~catalog_hash:"h1" g (m 0) `Ready;
  Replica.note_probe ~catalog_hash:"h1" g (m 1) `Ready;
  Replica.note_probe ~catalog_hash:"h2" g (m 2) `Ready;
  Replica.mark_divergent g;
  Alcotest.(check int) "one stale member" 1 (Replica.stale_count g);
  Alcotest.(check bool) "minority hash is stale" true (Replica.stale (m 2));
  Alcotest.(check bool) "stale reads as Suspect" true
    (Replica.state g (m 2) = Replica.Suspect);
  (* deprioritized, not ejected: it still appears in the ranking *)
  let ranked = List.map Replica.path (Replica.rank g) in
  Alcotest.(check int) "rank keeps everyone" 3 (List.length ranked);
  Alcotest.(check string) "stale ranks last" "c" (List.nth ranked 2);
  Alcotest.(check bool) "describe shows it" true
    (List.exists (fun d -> contains d "stale=yes") (Replica.describe g));
  (* repair converges the hash: the next sweep clears the flag *)
  Replica.note_probe ~catalog_hash:"h1" g (m 2) `Ready;
  Replica.mark_divergent g;
  Alcotest.(check int) "healed" 0 (Replica.stale_count g);
  (* a 1:1 split has no majority: nobody is condemned *)
  let g2 = Replica.create [ "a"; "b" ] in
  let n i = List.nth (Replica.members g2) i in
  Replica.note_probe ~catalog_hash:"x" g2 (n 0) `Ready;
  Replica.note_probe ~catalog_hash:"y" g2 (n 1) `Ready;
  Replica.mark_divergent g2;
  Alcotest.(check int) "no quorum, no verdict" 0 (Replica.stale_count g2);
  (* unknown hashes are absence of evidence, not divergence *)
  let g3 = Replica.create [ "a"; "b"; "c" ] in
  let p i = List.nth (Replica.members g3) i in
  Replica.note_probe ~catalog_hash:"x" g3 (p 0) `Ready;
  Replica.note_probe ~catalog_hash:"x" g3 (p 1) `Ready;
  Replica.note_probe g3 (p 2) `Ready;
  Replica.mark_divergent g3;
  Alcotest.(check int) "unprobed member not condemned" 0 (Replica.stale_count g3)

let test_coordinator_marks_divergent_member () =
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          with_temp_dir (fun d3 ->
              save (Filename.concat d1 "db.ts") (Lazy.force synopsis);
              let text = read_file (Filename.concat d1 "db.ts") in
              write_raw (Filename.concat d2 "db.ts") text;
              (* the third member built something else under the same name *)
              save (Filename.concat d3 "db.ts") (Lazy.force other_synopsis);
              let socks =
                [
                  Filename.concat d1 "r0.sock";
                  Filename.concat d2 "r1.sock";
                  Filename.concat d3 "r2.sock";
                ]
              in
              let servers = List.map quiet_server [ d1; d2; d3 ] in
              let threads =
                List.map2
                  (fun server sock ->
                    Thread.create
                      (fun () -> Server.serve_socket server ~path:sock)
                      ())
                  servers socks
              in
              List.iter (fun s -> Unix.close (connect s)) socks;
              let coord_sock = Filename.concat d1 "coord.sock" in
              let config =
                {
                  Coordinator.default_config with
                  probe_interval = 0.1;
                  probe_timeout = 0.5;
                  drain_deadline = 2.0;
                  replica = { Replica.default_config with seed };
                }
              in
              let coord = Coordinator.create ~log:(fun _ -> ()) ~config socks in
              let coord_thread =
                Thread.create
                  (fun () -> Coordinator.serve_socket coord ~path:coord_sock)
                  ()
              in
              Unix.close (connect coord_sock);
              Fun.protect
                ~finally:(fun () ->
                  Coordinator.request_drain coord;
                  Thread.join coord_thread;
                  List.iter Server.request_drain servers;
                  List.iter Thread.join threads)
                (fun () ->
                  let stale_field () =
                    match token_with "stale=" (ask coord_sock "HEALTH") with
                    | Some tok ->
                      int_of_string_opt
                        (String.sub tok 6 (String.length tok - 6))
                    | None -> None
                  in
                  let rec await what want deadline =
                    if Unix.gettimeofday () > deadline then
                      Alcotest.failf "%s: timed out" what
                    else if stale_field () <> Some want then begin
                      Thread.delay 0.05;
                      await what want deadline
                    end
                  in
                  (* two members agree, the third diverges: the prober's
                     hash comparison must flag exactly one *)
                  await "divergence detected" 1 (Unix.gettimeofday () +. 5.0);
                  (* converge the oddball (byte-identical copy + reload):
                     the next sweeps clear the verdict *)
                  write_raw (Filename.concat d3 "db.ts") text;
                  Alcotest.(check bool) "member reloaded" true
                    (starts_with "ok reload" (ask (List.nth socks 2) "RELOAD"));
                  await "divergence healed" 0 (Unix.gettimeofday () +. 5.0)))))

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)
(* ------------------------------------------------------------------ *)

(* A v4 ladder rotted in ONE tier: the scrub quarantines the whole
   ladder (tiers ship as one snapshot; a ladder with one rotten rung
   has no trustworthy rung boundary), and the peer repair restores
   every tier byte-identically in one pull. *)
let test_ladder_scrub_and_repair () =
  with_temp_dir (fun da ->
      with_temp_dir (fun db ->
          let tiers =
            match
              Sketch.Build.build_ladder_res ~limits:Xmldoc.Limits.unlimited
                (Lazy.force synopsis) ~budget:2048 ~tiers:3
            with
            | Ok { ladder; _ } -> ladder
            | Error f -> Alcotest.failf "ladder: %s" (Xmldoc.Fault.to_string f)
          in
          (match Serialize.save_ladder_atomic (Filename.concat db "lad.ts") tiers with
          | Ok () -> ()
          | Error f -> Alcotest.failf "save: %s" (Xmldoc.Fault.to_string f));
          let clean = read_file (Filename.concat db "lad.ts") in
          let path_a = Filename.concat da "lad.ts" in
          write_raw path_a clean;
          normalize_mtime path_a;
          let peer_sock = Filename.concat db "peer.sock" in
          let peer = quiet_server db in
          with_served peer peer_sock (fun () ->
              let config =
                { Server.default_config with peers = [ peer_sock ] }
              in
              let server = quiet_server ~config da in
              let askl line = fst (Server.handle_line server line) in
              (match Catalog.find (Server.catalog server) "lad" with
              | Some entry ->
                Alcotest.(check int) "three tiers resident" 3
                  (Array.length entry.Catalog.tiers)
              | None -> Alcotest.fail "ladder not resident");
              (* rot one byte inside the LAST tier's payload *)
              corrupt_in_place path_a ~at:(String.length clean - 12);
              Alcotest.(check string) "one rotten tier condemns the ladder"
                "ok scrub checked=1 corrupt=1 swept=0" (askl "SCRUB");
              Alcotest.(check bool) "quarantined as scrub-corrupt" true
                (contains (askl "STAT lad") "quarantined=yes reason=scrub-corrupt");
              Alcotest.(check bool) "resident ladder keeps answering" true
                (starts_with "ok query" (askl "QUERY lad //movie"));
              Alcotest.(check string) "peer repair in one pull"
                "ok repair attempted=1 repaired=1 deferred=0 failed=0"
                (askl "REPAIR");
              (* byte-identical file = every tier byte-identical *)
              Alcotest.(check string) "all tiers restored exactly" clean
                (read_file path_a);
              Alcotest.(check bool) "quarantine cleared" true
                (contains (askl "STAT lad") "quarantined=no");
              match Catalog.find (Server.catalog server) "lad" with
              | Some entry ->
                Alcotest.(check int) "three tiers again" 3
                  (Array.length entry.Catalog.tiers);
                Alcotest.(check string) "content hash converged"
                  (crc_hex clean) entry.Catalog.content_crc
              | None -> Alcotest.fail "ladder dropped after repair")))

(* The acceptance scenario: a 3-replica group, one member's snapshot
   rotted in place while it serves live traffic.  The background
   scrubber must detect the rot within a period, quarantine it (the
   resident copy keeps answering), pull the clean bytes from a peer
   over FETCH, and converge to identical content hashes — with zero
   server exits and zero lost client requests. *)
let test_e2e_scrub_repair_convergence () =
  with_temp_dir (fun d0 ->
      with_temp_dir (fun d1 ->
          with_temp_dir (fun d2 ->
              save (Filename.concat d0 "db.ts") (Lazy.force synopsis);
              let clean = read_file (Filename.concat d0 "db.ts") in
              List.iter
                (fun d -> write_raw (Filename.concat d "db.ts") clean)
                [ d1; d2 ];
              let path0 = Filename.concat d0 "db.ts" in
              normalize_mtime path0;
              let s0 = Filename.concat d0 "e0.sock" in
              let s1 = Filename.concat d1 "e1.sock" in
              let s2 = Filename.concat d2 "e2.sock" in
              let log_lock = Mutex.create () in
              let logs = ref [] in
              let log line =
                Mutex.protect log_lock (fun () -> logs := line :: !logs)
              in
              let logged needle =
                Mutex.protect log_lock (fun () ->
                    List.exists (fun l -> contains l needle) !logs)
              in
              let config0 =
                {
                  Server.default_config with
                  scrub_interval = 0.25;
                  peers = [ s1; s2 ];
                  repair_timeout = 2.0;
                  drain_deadline = 2.0;
                }
              in
              let server0 = Server.create ~log ~config:config0 d0 in
              let peers = [ quiet_server d1; quiet_server d2 ] in
              let all = server0 :: peers in
              let threads =
                List.map2
                  (fun server sock ->
                    Thread.create
                      (fun () -> Server.serve_socket server ~path:sock)
                      ())
                  all [ s0; s1; s2 ]
              in
              List.iter (fun s -> Unix.close (connect s)) [ s0; s1; s2 ];
              Fun.protect
                ~finally:(fun () ->
                  List.iter Server.request_drain all;
                  List.iter Thread.join threads)
                (fun () ->
                  let client =
                    Client.create
                      ~config:
                        {
                          Client.default_config with
                          attempts = 4;
                          request_timeout = 4.0;
                          jitter_seed = seed;
                        }
                      [ s0 ]
                  in
                  let lost = ref 0 and served = ref 0 in
                  let drive () =
                    match Client.request client "QUERY db //movie[//actor]" with
                    | Ok response ->
                      if starts_with "ok query" response then incr served
                      else
                        Alcotest.failf "query answered %S during repair"
                          response
                    | Error _ -> incr lost
                  in
                  for _ = 1 to 25 do
                    drive ()
                  done;
                  (* live, in-place bit-rot: size, inode and mtime all
                     preserved — only a scrub re-read can see it *)
                  corrupt_in_place path0 ~at:(String.length clean / 2);
                  let deadline = Unix.gettimeofday () +. 20.0 in
                  let converged () =
                    read_file path0 = clean
                    && contains (ask s0 "STAT db") "quarantined=no"
                  in
                  while (not (converged ())) && Unix.gettimeofday () < deadline
                  do
                    drive ();
                    Thread.delay 0.05
                  done;
                  Alcotest.(check bool) "repaired within the window" true
                    (converged ());
                  (* the detection and repair both went through the
                     anti-entropy machinery, not a lucky reload *)
                  Alcotest.(check bool) "scrub detected the rot" true
                    (logged "event=scrub-quarantine name=db");
                  Alcotest.(check bool) "repair pulled from a peer" true
                    (logged "event=repair name=db");
                  (* all three members now advertise identical hashes *)
                  let hashes sock =
                    match token_with "hashes=" (ask sock "LIST") with
                    | Some tok -> tok
                    | None -> Alcotest.failf "no hashes token from %s" sock
                  in
                  let h0 = hashes s0 in
                  Alcotest.(check string) "converged with peer 1" h0 (hashes s1);
                  Alcotest.(check string) "converged with peer 2" h0 (hashes s2);
                  Alcotest.(check bool) "hash is the clean content" true
                    (contains h0 (crc_hex clean));
                  (* the scrub job is supervisor housekeeping, invisible
                     to clients *)
                  Alcotest.(check bool) "scrub job hidden from JOBS" false
                    (contains (ask s0 "JOBS") "scrub");
                  for _ = 1 to 25 do
                    drive ()
                  done;
                  Printf.eprintf
                    "scrub e2e: served=%d lost=%d (corruption at byte %d)\n%!"
                    !served !lost
                    (String.length clean / 2);
                  Alcotest.(check int) "zero lost client requests" 0 !lost;
                  Client.close client))))

let () =
  Alcotest.run "scrub"
    [
      ( "scrub core",
        [
          Alcotest.test_case "verify detects in-place rot" `Quick
            test_verify_detects_rot;
          Alcotest.test_case "fingerprint sees build shape" `Quick
            test_fingerprint_sees_build_shape;
          Alcotest.test_case "scan classifies a directory" `Quick
            test_scan_classifies_directory;
          Alcotest.test_case "report file round-trips" `Quick
            test_report_round_trip;
          Alcotest.test_case "tmp sweep is age-gated" `Quick
            test_tmp_sweep_age_gate;
          Alcotest.test_case "scrub never disturbs a mid-swap flush" `Quick
            test_scrub_never_disturbs_mid_swap_flush;
        ] );
      ( "catalog identity",
        [
          Alcotest.test_case "content hashes" `Quick test_catalog_hashes;
          Alcotest.test_case "scrub quarantine keeps serving, rename heals"
            `Quick test_scrub_quarantine_keeps_serving_and_heals;
        ] );
      ( "verbs",
        [
          Alcotest.test_case "SCRUB detects what reload cannot" `Quick
            test_scrub_verb_detects_in_place_rot;
          Alcotest.test_case "FETCH round-trips and refuses rot" `Quick
            test_fetch_round_trip_and_refusals;
          Alcotest.test_case "torn FETCH never installs a partial file" `Quick
            test_torn_fetch_never_installs;
          Alcotest.test_case "ENOSPC defers repair" `Quick
            test_enospc_defers_repair;
          Alcotest.test_case "REPAIR pulls on peer quorum" `Quick
            test_repair_verb_pulls_quorum;
          Alcotest.test_case "tmp orphan never shadows a snapshot" `Quick
            test_tmp_orphan_never_shadows_snapshot;
          Alcotest.test_case "anti-entropy verbs are single-target" `Quick
            test_single_target_verbs;
        ] );
      ( "repair plan",
        [ Alcotest.test_case "quorum rules" `Quick test_plan_quorum_rules ] );
      ( "divergence",
        [
          Alcotest.test_case "registry quorum semantics" `Quick
            test_replica_divergence_quorum;
          Alcotest.test_case "coordinator flags and heals a stale member"
            `Quick test_coordinator_marks_divergent_member;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "ladder rot: quarantined whole, repaired whole"
            `Quick test_ladder_scrub_and_repair;
          Alcotest.test_case
            "live replica rots, scrubber detects, peers repair, group converges"
            `Quick test_e2e_scrub_repair_convergence;
        ] );
    ]
