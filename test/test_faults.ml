(* Fault-injection harness for the ingestion layer.

   A seeded byte-level corruptor (truncate, bit-flip, splice,
   duplicate-line, drop-line, deep-nest generators) feeds hundreds of
   mutated XML documents and synopsis files through every loader and
   asserts the only outcomes are [Ok] or a structured [Error] — never
   an uncaught exception, stack overflow, or hang.  Everything is
   deterministic: one fixed seed, no wall-clock dependence in the
   mutations themselves. *)

open Xmldoc
module Synopsis = Sketch.Synopsis
module Serialize = Sketch.Serialize
module Stable = Sketch.Stable
module Build = Sketch.Build

let seed = 0x7ee5

(* Per-loader hang guard: a mutation that sent a loader into a loop
   would otherwise stall the suite, not fail it. *)
let guarded_limits () = Limits.with_timeout 10. Limits.default

let truncate_excerpt s =
  if String.length s <= 60 then s else String.sub s 0 60 ^ "..."

(* ------------------------------------------------------------------ *)
(* Corruptors                                                          *)
(* ------------------------------------------------------------------ *)

let truncate rng s =
  if s = "" then s else String.sub s 0 (Random.State.int rng (String.length s))

let bit_flip rng s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Random.State.int rng (Bytes.length b) in
    let bit = 1 lsl Random.State.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
    Bytes.to_string b
  end

(* Insert a random slice of the input (or raw bytes) at a random spot. *)
let splice rng s =
  let n = String.length s in
  let at = if n = 0 then 0 else Random.State.int rng n in
  let graft =
    if n > 0 && Random.State.bool rng then begin
      let from = Random.State.int rng n in
      String.sub s from (Random.State.int rng (n - from))
    end
    else
      String.init
        (Random.State.int rng 24)
        (fun _ -> Char.chr (Random.State.int rng 256))
  in
  String.sub s 0 at ^ graft ^ String.sub s at (n - at)

let on_lines f rng s =
  let lines = String.split_on_char '\n' s in
  String.concat "\n" (f rng lines)

let duplicate_line =
  on_lines (fun rng lines ->
      match lines with
      | [] -> []
      | _ ->
        let i = Random.State.int rng (List.length lines) in
        List.concat_map
          (fun (j, l) -> if i = j then [ l; l ] else [ l ])
          (List.mapi (fun j l -> (j, l)) lines))

let drop_line =
  on_lines (fun rng lines ->
      match lines with
      | [] -> []
      | _ ->
        let i = Random.State.int rng (List.length lines) in
        List.filteri (fun j _ -> j <> i) lines)

let corruptors =
  [| truncate; bit_flip; splice; duplicate_line; drop_line |]

let mutate rng s =
  (* compose one to three corruptions *)
  let rounds = 1 + Random.State.int rng 3 in
  let m = ref s in
  for _ = 1 to rounds do
    m := corruptors.(Random.State.int rng (Array.length corruptors)) rng !m
  done;
  !m

(* Deeply nested documents, balanced or truncated mid-nest. *)
let deep_nest rng =
  let depth = 1 + Random.State.int rng 50_000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  let close = Random.State.int rng 3 in
  if close > 0 then
    for _ = 1 to if close = 1 then depth else Random.State.int rng depth do
      Buffer.add_string buf "</d>"
    done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Corpora                                                             *)
(* ------------------------------------------------------------------ *)

let sample_doc ds = Datagen.Datasets.generate ~seed:1 ~scale:0.05 ds

let xml_corpus =
  [
    Printer.to_string (sample_doc Datagen.Datasets.Xmark);
    Printer.to_string ~indent:1 (sample_doc Datagen.Datasets.Imdb);
    Printer.to_string ~indent:2 (sample_doc Datagen.Datasets.Treebank);
    {|<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r (a)>]><r>
        <!-- comment --> <![CDATA[<fake/>]]> <a href="x" quoted='y z'/> text </r>|};
    "<a><b/><c><d/></c></a>";
  ]

let synopsis_corpus =
  List.map
    (fun ds -> Serialize.to_string (Stable.build (sample_doc ds)))
    [ Datagen.Datasets.Xmark; Datagen.Datasets.Dblp ]
  @ [ "treesketch 1\nroot 0\nnode 0 1 a\nnode 1 3 b\nedge 0 1 3\n" ]

(* ------------------------------------------------------------------ *)
(* The harness proper                                                  *)
(* ------------------------------------------------------------------ *)

(* Feed one mutant through both the result-returning and the raising
   XML entry points; anything but a structured outcome fails. *)
let drive_xml mutant =
  (match Parser.of_string_res ~limits:(guarded_limits ()) mutant with
  | Ok _ | Error _ -> ()
  | exception e ->
    Alcotest.failf "of_string_res leaked %s on %S" (Printexc.to_string e)
      (truncate_excerpt mutant));
  match Parser.of_string ~limits:(guarded_limits ()) mutant with
  | (_ : Tree.t) -> ()
  | exception Parser.Error _ -> ()
  | exception Fault.Fault _ -> ()
  | exception e ->
    Alcotest.failf "of_string leaked %s on %S" (Printexc.to_string e)
      (truncate_excerpt mutant)

let drive_synopsis mutant =
  (match Serialize.of_string_res ~limits:(guarded_limits ()) mutant with
  | Ok s -> (
    (* whatever decodes successfully must satisfy the invariants *)
    match Synopsis.validate s with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "loader accepted an invalid synopsis: %s" msg)
  | Error _ -> ()
  | exception e ->
    Alcotest.failf "Serialize.of_string_res leaked %s on %S" (Printexc.to_string e)
      (truncate_excerpt mutant));
  match Serialize.of_string ~limits:(guarded_limits ()) mutant with
  | (_ : Synopsis.t) -> ()
  | exception Failure _ -> ()
  | exception e ->
    Alcotest.failf "Serialize.of_string leaked %s on %S" (Printexc.to_string e)
      (truncate_excerpt mutant)

let mutants_per_base = 80

let test_xml_mutations () =
  let rng = Random.State.make [| seed |] in
  let driven = ref 0 in
  List.iter
    (fun base ->
      for _ = 1 to mutants_per_base do
        drive_xml (mutate rng base);
        incr driven
      done)
    xml_corpus;
  for _ = 1 to 25 do
    drive_xml (deep_nest rng);
    incr driven
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough XML mutants (%d)" !driven)
    true (!driven >= 400)

let test_synopsis_mutations () =
  let rng = Random.State.make [| seed + 1 |] in
  let driven = ref 0 in
  List.iter
    (fun base ->
      for _ = 1 to mutants_per_base do
        drive_synopsis (mutate rng base);
        incr driven
      done)
    synopsis_corpus;
  Alcotest.(check bool)
    (Printf.sprintf "enough synopsis mutants (%d)" !driven)
    true (!driven >= 200)

(* ------------------------------------------------------------------ *)
(* Resource guards                                                     *)
(* ------------------------------------------------------------------ *)

let deep_doc depth =
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  Buffer.contents buf

(* Regression for the explicit-stack parser: 100k nesting levels used
   to overflow the OCaml stack under recursive descent. *)
let test_100k_deep () =
  let depth = 100_000 in
  match Parser.of_string_res (deep_doc depth) with
  | Ok t -> Alcotest.(check int) "size" depth (Tree.size t)
  | Error f -> Alcotest.failf "expected Ok, got %s" (Fault.to_string f)

let check_limit what = function
  | Error (Fault.Limit_exceeded l) ->
    Alcotest.(check string) "which limit" what l.what
  | Ok _ -> Alcotest.failf "expected %s limit error, got Ok" what
  | Error f -> Alcotest.failf "expected %s limit error, got %s" what (Fault.to_string f)

let test_parser_limits () =
  let doc = deep_doc 1_000 in
  check_limit "depth"
    (Parser.of_string_res ~limits:{ Limits.default with max_depth = 100 } doc);
  check_limit "bytes"
    (Parser.of_string_res ~limits:{ Limits.default with max_bytes = 64 } doc);
  check_limit "elements"
    (Parser.of_string_res ~limits:{ Limits.default with max_elements = 100 } doc);
  match
    Parser.of_string_res
      ~limits:(Limits.with_timeout (-1.) Limits.default)
      (deep_doc 10_000)
  with
  | Error (Fault.Deadline _) -> ()
  | Ok _ -> Alcotest.fail "expected deadline error, got Ok"
  | Error f -> Alcotest.failf "expected deadline error, got %s" (Fault.to_string f)

let test_serialize_limits () =
  let text = List.nth synopsis_corpus 0 in
  check_limit "bytes"
    (Serialize.of_string_res ~limits:{ Limits.default with max_bytes = 16 } text);
  check_limit "nodes"
    (Serialize.of_string_res ~limits:{ Limits.default with max_elements = 2 } text)

(* Structured synopsis corruption: the error names the offending line. *)
let test_corrupt_synopsis_context () =
  let text = "treesketch 1\nroot 0\nnode 0 1 a\nnode x 2 b\n" in
  (match Serialize.of_string_res text with
  | Error (Fault.Corrupt_synopsis { line; content; _ }) ->
    Alcotest.(check int) "line number" 4 line;
    Alcotest.(check string) "content" "node x 2 b" content
  | Ok _ -> Alcotest.fail "expected corrupt-synopsis error"
  | Error f -> Alcotest.failf "wrong fault %s" (Fault.to_string f));
  match Serialize.of_string text with
  | (_ : Synopsis.t) -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S names the line" msg)
      true (contains msg "line 4")

let test_corrupt_synopsis_cases () =
  let corrupt text =
    match Serialize.of_string_res text with
    | Error (Fault.Corrupt_synopsis _) -> ()
    | Ok _ -> Alcotest.failf "expected corrupt-synopsis error on %S" text
    | Error f -> Alcotest.failf "wrong fault %s on %S" (Fault.to_string f) text
  in
  corrupt "";
  corrupt "root 0";
  corrupt "treesketch 2\nroot 0\nnode 0 1 a\n";
  corrupt "treesketch 1\nroot 5\nnode 0 1 a\n";
  corrupt "treesketch 1\nroot 0\nnode 0 1 a\nnode 0 2 b\n" (* duplicate id *);
  corrupt "treesketch 1\nroot 0\nnode 0 1 a\nedge 0 7 2\n" (* target range *);
  corrupt "treesketch 1\nroot 0\nnode 0 nan a\n" (* non-finite count *);
  corrupt "treesketch 1\nroot 0\nnode 0 1 a\nedge 9 0 2\n" (* source range *)

(* ------------------------------------------------------------------ *)
(* Store crashes                                                       *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsstore" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let store_synopsis =
  lazy (Stable.build (Parser.of_string "<r><a><b/><c/></a><a><b/></a><d/></r>"))

let canonical s = Serialize.to_string s

(* A write torn at ANY byte offset must load as the complete synopsis
   or fail as [Corrupt_synopsis] — never as a partial synopsis. *)
let test_truncation_every_offset () =
  let s = Lazy.force store_synopsis in
  let snap = Serialize.to_snapshot_string s in
  let full = canonical s in
  let complete = ref 0 in
  for cut = 0 to String.length snap - 1 do
    match Serialize.of_string_res (String.sub snap 0 cut) with
    | Error (Fault.Corrupt_synopsis _) -> ()
    | Ok loaded ->
      Alcotest.(check string)
        (Printf.sprintf "cut at byte %d loads complete" cut)
        full (canonical loaded);
      incr complete
    | Error f ->
      Alcotest.failf "cut at byte %d: unexpected fault %s" cut (Fault.to_string f)
  done;
  (* only losing the final newline leaves a verifiable snapshot *)
  Alcotest.(check bool) "at most one complete prefix" true (!complete <= 1)

(* Anything after a well-formed snapshot (a torn second write, a
   concatenation) is rejected, in both format versions. *)
let test_trailing_garbage_rejected () =
  let s = Lazy.force store_synopsis in
  let reject text =
    match Serialize.of_string_res text with
    | Error (Fault.Corrupt_synopsis _) -> ()
    | Ok _ -> Alcotest.failf "accepted %S" (truncate_excerpt text)
    | Error f ->
      Alcotest.failf "wrong fault %s on %S" (Fault.to_string f) (truncate_excerpt text)
  in
  let snap = Serialize.to_snapshot_string s in
  reject (snap ^ "node 0 1 zz\n");
  reject (snap ^ "x");
  reject (snap ^ snap);
  let v1 = canonical s in
  reject (v1 ^ "garbage\n");
  reject (v1 ^ v1)

(* Every loader fault names the offending file. *)
let test_fault_names_path () =
  with_temp_dir (fun dir ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
        nn = 0 || scan 0
      in
      let expect_path path = function
        | Ok (_ : Synopsis.t) -> Alcotest.failf "expected a fault for %s" path
        | Error f ->
          Alcotest.(check bool)
            (Printf.sprintf "fault %S names %s" (Fault.to_string f) path)
            true
            (contains (Fault.to_string f) path)
      in
      let bad = Filename.concat dir "bad.ts" in
      write_file bad "treesketch 1\nroot 0\nnode x 1 a\n";
      expect_path bad (Serialize.load_res bad);
      let torn = Filename.concat dir "torn.ts" in
      let snap = Serialize.to_snapshot_string (Lazy.force store_synopsis) in
      write_file torn (String.sub snap 0 (String.length snap / 2));
      expect_path torn (Serialize.load_res torn);
      let absent = Filename.concat dir "absent.ts" in
      expect_path absent (Serialize.load_res absent))

(* save_atomic: the snapshot round-trips, leaves no staging litter, and
   atomically replaces an existing file. *)
let test_save_atomic_roundtrip () =
  with_temp_dir (fun dir ->
      let s = Lazy.force store_synopsis in
      let path = Filename.concat dir "snap.ts" in
      (match Serialize.save_atomic path s with
      | Ok () -> ()
      | Error f -> Alcotest.failf "save failed: %s" (Fault.to_string f));
      (match Serialize.load_res path with
      | Ok loaded -> Alcotest.(check string) "round trip" (canonical s) (canonical loaded)
      | Error f -> Alcotest.failf "load failed: %s" (Fault.to_string f));
      (* overwrite in place: still exactly one file, still loadable *)
      (match Serialize.save_atomic path s with
      | Ok () -> ()
      | Error f -> Alcotest.failf "re-save failed: %s" (Fault.to_string f));
      let files = Sys.readdir dir in
      Array.sort String.compare files;
      Alcotest.(check (array string)) "no staging litter" [| "snap.ts" |] files)

(* A build checkpoint torn at ANY byte offset must either load (and
   resume) completely or be rejected as [Corrupt_synopsis] — a resume
   never continues from a partial clustering.  The tear is an injected
   short read ({!Xmldoc.Io_fault.Short_at}) of the intact journal: the
   same truncation coverage, through the real I/O path. *)
let test_checkpoint_truncation_every_offset () =
  with_temp_dir (fun dir ->
      let module F = Xmldoc.Io_fault in
      let stable = Lazy.force store_synopsis in
      let budget = Synopsis.size_bytes stable / 2 in
      let ckpt = Filename.concat dir "build.ckpt" in
      (match
         Build.build_checkpointed_res ~checkpoint_every:1 ~checkpoint:ckpt stable
           ~budget
       with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "checkpointed build failed: %s" (Fault.to_string f));
      let full =
        let ic = open_in_bin ckpt in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        text
      in
      let torn = Filename.concat dir "torn.ckpt" in
      (* the budget may sit below the label-split floor; the straight
         build's size is then the best any resume can do *)
      let floor_bytes = Synopsis.size_bytes (Build.build stable ~budget) in
      let complete = ref 0 in
      Fun.protect ~finally:F.disarm @@ fun () ->
      for cut = 0 to String.length full - 1 do
        (* a successful resume rewrites its journal: restore the intact
           copy, then tear every *read* of it at [cut] *)
        write_file torn full;
        F.arm [ F.rule ~prob:1.0 ~path:"torn.ckpt" F.Read (F.Short_at cut) ];
        (match Build.Checkpoint.load_res torn with
        | Error (Fault.Corrupt_synopsis _) -> ()
        | Ok loaded -> (
          incr complete;
          match Synopsis.validate loaded.synopsis with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "cut at %d loaded invalid: %s" cut msg)
        | Error f ->
          Alcotest.failf "cut at byte %d: unexpected fault %s" cut (Fault.to_string f));
        match Build.resume_res torn with
        | Error (Fault.Corrupt_synopsis _) -> ()
        | Ok { synopsis; _ } -> (
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d resumes within budget (or the floor)" cut)
            true
            (Synopsis.size_bytes synopsis <= max budget floor_bytes);
          match Synopsis.validate synopsis with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "cut at %d resumed invalid: %s" cut msg)
        | Error f ->
          Alcotest.failf "cut at byte %d: resume fault %s" cut (Fault.to_string f)
      done;
      (* only losing the final newline leaves a verifiable checkpoint *)
      Alcotest.(check bool) "at most one complete prefix" true (!complete <= 1))

(* ------------------------------------------------------------------ *)
(* Deadline degradation in TSBUILD                                     *)
(* ------------------------------------------------------------------ *)

let test_build_degrades () =
  let stable = Stable.build (sample_doc Datagen.Datasets.Xmark) in
  let budget = Synopsis.size_bytes stable / 8 in
  (* already-expired deadline: zero merges happen, yet we still get a
     valid best-so-far synopsis flagged as degraded *)
  (match
     Build.build_res ~limits:(Limits.with_timeout (-1.) Limits.unlimited) stable ~budget
   with
  | Ok { synopsis; degraded } ->
    Alcotest.(check bool) "degraded" true degraded;
    Alcotest.(check bool) "over budget" true (Synopsis.size_bytes synopsis > budget);
    (match Synopsis.validate synopsis with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "degraded synopsis invalid: %s" msg)
  | Error f -> Alcotest.failf "expected degraded Ok, got %s" (Fault.to_string f));
  (* no deadline: compression runs to its natural end, not flagged *)
  match Build.build_res stable ~budget with
  | Ok { synopsis; degraded } ->
    Alcotest.(check bool) "not degraded" false degraded;
    (match Synopsis.validate synopsis with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "built synopsis invalid: %s" msg)
  | Error f -> Alcotest.failf "expected Ok, got %s" (Fault.to_string f)

(* The documented exit-code table ([Fault.exit_code_table] — what the
   CLI man page renders) must agree with what the code actually exits
   with: one representative fault per class maps through [exit_code]
   to the table's row for that class. *)
let test_exit_code_table_consistent () =
  let representatives =
    [
      Fault.Parse_error { line = 1; column = 1; message = "x" };
      Fault.Corrupt_synopsis { line = 1; content = ""; message = "x" };
      Fault.Limit_exceeded { what = "depth"; actual = 1; limit = 0 };
      Fault.Deadline { stage = "parse"; elapsed = 1. };
      Fault.Io_error { path = "p"; message = "x" };
      Fault.Worker_crash { reason = "x" };
    ]
  in
  List.iter
    (fun f ->
      let cls = Fault.class_name f in
      match
        List.find_opt (fun (_, c, _) -> c = cls) Fault.exit_code_table
      with
      | Some (code, _, _) ->
        Alcotest.(check int)
          (Printf.sprintf "table code for %s" cls)
          (Fault.exit_code f) code
      | None -> Alcotest.failf "class %s missing from exit_code_table" cls)
    representatives;
  (match
     List.find_opt (fun (code, _, _) -> code = 0) Fault.exit_code_table
   with
  | Some (_, "ok", _) -> ()
  | _ -> Alcotest.fail "exit code 0 missing or misclassed");
  (match
     List.find_opt
       (fun (code, _, _) -> code = Fault.degraded_exit_code)
       Fault.exit_code_table
   with
  | Some (_, "degraded", _) -> ()
  | _ -> Alcotest.fail "degraded exit code missing from the table");
  (* every documented code is distinct — no two rows can collide *)
  let codes = List.map (fun (code, _, _) -> code) Fault.exit_code_table in
  Alcotest.(check int) "codes distinct"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

let test_build_rejects_invalid () =
  let bad =
    {
      Synopsis.nodes =
        [|
          { Synopsis.label = Label.of_string "a"; count = Float.nan; edges = [||] };
        |];
      root = 0;
    }
  in
  match Build.build_res bad ~budget:64 with
  | Error (Fault.Corrupt_synopsis _) -> ()
  | Ok _ -> Alcotest.fail "expected rejection of a NaN-count synopsis"
  | Error f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)

let () =
  Alcotest.run "faults"
    [
      ( "fault injection",
        [
          Alcotest.test_case "xml mutations" `Quick test_xml_mutations;
          Alcotest.test_case "synopsis mutations" `Quick test_synopsis_mutations;
        ] );
      ( "resource guards",
        [
          Alcotest.test_case "100k-deep document" `Quick test_100k_deep;
          Alcotest.test_case "parser limits" `Quick test_parser_limits;
          Alcotest.test_case "serialize limits" `Quick test_serialize_limits;
        ] );
      ( "corrupt synopsis",
        [
          Alcotest.test_case "line context" `Quick test_corrupt_synopsis_context;
          Alcotest.test_case "corruption cases" `Quick test_corrupt_synopsis_cases;
        ] );
      ( "store crashes",
        [
          Alcotest.test_case "truncation at every offset" `Quick
            test_truncation_every_offset;
          Alcotest.test_case "trailing garbage rejected" `Quick
            test_trailing_garbage_rejected;
          Alcotest.test_case "faults name the path" `Quick test_fault_names_path;
          Alcotest.test_case "save_atomic round trip" `Quick
            test_save_atomic_roundtrip;
          Alcotest.test_case "checkpoint truncation at every offset" `Quick
            test_checkpoint_truncation_every_offset;
        ] );
      ( "deadline degradation",
        [
          Alcotest.test_case "build degrades" `Quick test_build_degrades;
          Alcotest.test_case "build rejects invalid input" `Quick
            test_build_rejects_invalid;
        ] );
      ( "exit codes",
        [
          Alcotest.test_case "documented table matches the code" `Quick
            test_exit_code_table_consistent;
        ] );
    ]
