(* Replica-group serving: the registry's ejection state machine, the
   retry-budget token bucket, the protocol's deadline-propagation
   helpers, the coordinator's hedged scatter-gather as a unit, and a
   500-request end-to-end chaos run — three forked replicas behind a
   forked coordinator, one SIGKILLed and one SIGSTOPped mid-run —
   asserting zero lost requests, a bounded retry budget (no retry
   storm), and a clean exit-0 SIGTERM drain.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Client = Serve.Client
module Protocol = Serve.Protocol
module Replica = Serve.Replica
module Coordinator = Serve.Coordinator
module Serialize = Sketch.Serialize
module Stable = Sketch.Stable

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x4E9C0
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "replica seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsrepl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0
    ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let error_classes =
  [ "bad-request"; "not-found"; "overloaded"; "internal";
    "parse"; "corrupt"; "limit"; "deadline"; "io"; "busy";
    "worker-crash"; "poisoned" ]

let well_formed response =
  (not (String.contains response '\n'))
  && (response = "pong" || response = "bye"
     || starts_with "ok " response
     ||
     match String.split_on_char ' ' response with
     | "error" :: cls :: _ -> List.mem cls error_classes
     | _ -> false)

let check_well_formed what response =
  if not (well_formed response) then
    Alcotest.failf "%s: malformed reply %S" what response

(* pull [key=<int>] out of a health/stats line *)
let int_field line key =
  let prefix = key ^ "=" in
  let tok =
    List.find_opt
      (fun t -> starts_with prefix t)
      (String.split_on_char ' ' line)
  in
  match tok with
  | None -> Alcotest.failf "no %s= field in %S" key line
  | Some t -> (
    let v = String.sub t (String.length prefix)
              (String.length t - String.length prefix) in
    match int_of_string_opt v with
    | Some n -> n
    | None -> Alcotest.failf "%s= field is not an integer in %S" key line)

(* ------------------------------------------------------------------ *)
(* Registry: ranking, ejection, probation                              *)
(* ------------------------------------------------------------------ *)

let reg_config =
  {
    Replica.eject_threshold = 2;
    eject_cooldown = 0.1;
    readmit_jitter = 0.0 (* deterministic timing for the unit tests *);
    seed;
  }

let nth_member g i = List.nth (Replica.members g) i

let rank_paths g = List.map Replica.path (Replica.rank g)

let test_rank_rotates_and_fails_open () =
  let g = Replica.create ~config:reg_config [ "a"; "b"; "c" ] in
  Alcotest.(check int) "size" 3 (Replica.size g);
  Alcotest.(check int) "all ready" 3 (Replica.ready_count g);
  (* the Ready tier rotates: over a few ranks every member leads *)
  let heads =
    List.init 6 (fun _ -> List.hd (rank_paths g))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "every member takes the lead"
    [ "a"; "b"; "c" ] heads;
  (* strikes deprioritize, ejection sinks to the bottom — but the list
     never shrinks *)
  let b = nth_member g 1 in
  Replica.note_failure g b;
  Alcotest.(check bool) "one strike = suspect" true
    (Replica.state g b = Replica.Suspect);
  let r = rank_paths g in
  Alcotest.(check int) "rank keeps everyone" 3 (List.length r);
  Alcotest.(check string) "suspect ranks last" "b" (List.nth r 2);
  Replica.note_failure g b;
  Alcotest.(check bool) "threshold ejects" true
    (Replica.state g b = Replica.Ejected);
  Alcotest.(check int) "ejected not ready" 2 (Replica.ready_count g);
  Alcotest.(check int) "ejected counted" 1 (Replica.ejected_count g);
  (* eject the whole group: rank must FAIL OPEN, never empty *)
  List.iter
    (fun m ->
      Replica.note_failure g m;
      Replica.note_failure g m)
    (Replica.members g);
  Alcotest.(check int) "all ejected" 3 (Replica.ejected_count g);
  Alcotest.(check int) "rank fails open" 3 (List.length (rank_paths g))

let test_probation_one_strike () =
  let g = Replica.create ~config:reg_config [ "a"; "b" ] in
  let a = nth_member g 0 in
  Replica.note_failure g a;
  Replica.note_failure g a;
  Alcotest.(check bool) "ejected" true (Replica.state g a = Replica.Ejected);
  (* cooldown (0.1 s, zero jitter) elapses: probation, routable again *)
  Thread.delay 0.15;
  Alcotest.(check bool) "probation after cooldown" true
    (Replica.state g a = Replica.Probation);
  Alcotest.(check int) "probation counts as ready" 2 (Replica.ready_count g);
  (* one strike on probation re-ejects immediately — no second chance
     at full price *)
  Replica.note_failure g a;
  Alcotest.(check bool) "probation strike re-ejects" true
    (Replica.state g a = Replica.Ejected);
  Thread.delay 0.15;
  Replica.note_success g a;
  Alcotest.(check bool) "success fully heals" true
    (Replica.state g a = Replica.Ready)

let test_probe_outcomes () =
  let g = Replica.create ~config:reg_config [ "a"; "b" ] in
  let a = nth_member g 0 in
  (* ready=no is DRAINING: alive, deprioritized, never ejected — it
     answered the probe *)
  Replica.note_probe g a `Not_ready;
  Alcotest.(check bool) "not_ready = draining" true
    (Replica.state g a = Replica.Draining);
  Alcotest.(check int) "draining not ready" 1 (Replica.ready_count g);
  Alcotest.(check string) "draining ranks after ready" "a"
    (List.nth (rank_paths g) 1);
  (* a failed probe is a strike like live traffic *)
  Replica.note_probe g a `Failed;
  Replica.note_probe g a `Failed;
  Alcotest.(check bool) "failed probes eject" true
    (Replica.state g a = Replica.Ejected);
  (* ready=yes heals everything, including the draining flag *)
  Replica.note_probe g a `Ready;
  Alcotest.(check bool) "ready probe heals" true
    (Replica.state g a = Replica.Ready)

let test_budget_bucket () =
  let b = Replica.Budget.create ~ratio:0.2 ~burst:3.0 in
  (* starts full: cold-start failover is never refused *)
  Alcotest.(check bool) "take 1" true (Replica.Budget.try_take b);
  Alcotest.(check bool) "take 2" true (Replica.Budget.try_take b);
  Alcotest.(check bool) "take 3" true (Replica.Budget.try_take b);
  Alcotest.(check bool) "dry" false (Replica.Budget.try_take b);
  Alcotest.(check int) "spent" 3 (Replica.Budget.spent b);
  Alcotest.(check int) "denied" 1 (Replica.Budget.denied b);
  (* five primary requests deposit 5 x 0.2 = one token *)
  for _ = 1 to 5 do
    Replica.Budget.note_request b
  done;
  Alcotest.(check bool) "refilled by traffic" true (Replica.Budget.try_take b);
  Alcotest.(check bool) "and only by ratio" false (Replica.Budget.try_take b);
  (* deposits cap at burst *)
  for _ = 1 to 100 do
    Replica.Budget.note_request b
  done;
  Alcotest.(check bool) "bucket capped" true
    (Replica.Budget.tokens b <= Replica.Budget.burst b +. 1e-9);
  Alcotest.(check (float 1e-9)) "at exactly burst" 3.0 (Replica.Budget.tokens b)

(* ------------------------------------------------------------------ *)
(* Protocol: deadline propagation and single-target verbs              *)
(* ------------------------------------------------------------------ *)

let test_deadline_helpers () =
  Alcotest.(check (option (float 1e-9))) "read back" (Some 2.5)
    (Protocol.request_deadline "QUERY -deadline=2.5 db //movie");
  Alcotest.(check (option (float 1e-9))) "absent" None
    (Protocol.request_deadline "QUERY db //movie");
  (* the rewrite subtracts elapsed, only in the option zone *)
  let line = "QUERY -deadline=2 -max-nodes=5 db //movie" in
  let fwd = Protocol.with_remaining_deadline line ~elapsed:0.5 in
  Alcotest.(check (option (float 1e-6))) "minus elapsed" (Some 1.5)
    (Protocol.request_deadline fwd);
  Alcotest.(check bool) "other options survive" true
    (List.mem "-max-nodes=5" (String.split_on_char ' ' fwd));
  (* zero elapsed or no deadline: byte-identical passthrough *)
  Alcotest.(check string) "elapsed=0 untouched" line
    (Protocol.with_remaining_deadline line ~elapsed:0.0);
  Alcotest.(check string) "no deadline untouched" "QUERY db //movie"
    (Protocol.with_remaining_deadline "QUERY db //movie" ~elapsed:9.0);
  (* operand text that LOOKS like the option is never rewritten *)
  let tricky = "QUERY -deadline=4 db //a[-deadline=4]" in
  let fwd = Protocol.with_remaining_deadline tricky ~elapsed:1.0 in
  Alcotest.(check (option (float 1e-6))) "option rewritten" (Some 3.0)
    (Protocol.request_deadline fwd);
  Alcotest.(check bool) "operand untouched" true
    (List.mem "//a[-deadline=4]" (String.split_on_char ' ' fwd));
  (* an already-overdrawn budget clamps at zero: the relay grants the
     downstream nothing, but never {e manufactures} a negative deadline
     (whose meaning belongs to the original caller) *)
  (match
     Protocol.request_deadline
       (Protocol.with_remaining_deadline "QUERY -deadline=0.1 db //a"
          ~elapsed:0.4)
   with
  | Some d -> Alcotest.(check (float 1e-9)) "overdrawn clamps to zero" 0.0 d
  | None -> Alcotest.fail "deadline dropped");
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " is single-target") true
        (Protocol.single_target l))
    [ "BUILD db doc.xml 4KB"; "reload -force"; "CANCEL db"; "JOBS"; "QUIT" ];
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " is group-safe") false
        (Protocol.single_target l))
    [ "PING"; "HEALTH"; "LIST"; "STAT db"; "QUERY db //a"; "ANSWER db //a" ]

(* ------------------------------------------------------------------ *)
(* Coordinator as a unit (in-process replicas)                         *)
(* ------------------------------------------------------------------ *)

let coord_config =
  {
    Coordinator.default_config with
    hedge_after = 0.02;
    request_timeout = 2.0;
    connect_timeout = 0.5;
    probe_interval = 0.1;
    probe_timeout = 0.3;
    replica =
      { Replica.default_config with eject_cooldown = 0.3; seed };
  }

let quiet_coordinator ?(config = coord_config) paths =
  Coordinator.create ~log:(fun _ -> ()) ~config paths

let with_replica_servers dir n f =
  let socks =
    List.init n (fun i -> Filename.concat dir (Printf.sprintf "r%d.sock" i))
  in
  let servers = List.map (fun _ -> quiet_server dir) socks in
  let threads =
    List.map2
      (fun server sock ->
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ())
      servers socks
  in
  List.iter (fun sock -> ignore (connect sock |> fun fd -> Unix.close fd)) socks;
  Fun.protect
    ~finally:(fun () ->
      List.iter Server.request_drain servers;
      List.iter Thread.join threads)
    (fun () -> f socks)

let test_coordinator_routes_and_refuses () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      with_replica_servers dir 2 (fun socks ->
          let coord = quiet_coordinator socks in
          let ask line =
            let response, quit = Coordinator.handle_line coord line in
            check_well_formed line response;
            Alcotest.(check bool) (line ^ " does not quit") false quit;
            response
          in
          Alcotest.(check string) "ping is local" "pong" (ask "PING");
          Alcotest.(check bool) "query forwarded" true
            (starts_with "ok query" (ask "QUERY db //movie"));
          Alcotest.(check bool) "answer forwarded" true
            (starts_with "ok answer" (ask "ANSWER -max-nodes=3 db //movie"));
          Alcotest.(check bool) "list forwarded" true
            (starts_with "ok catalog" (ask "LIST"));
          Alcotest.(check bool) "stat forwarded" true
            (starts_with "ok stat" (ask "STAT db"));
          Alcotest.(check bool) "replica errors pass through" true
            (starts_with "error not-found" (ask "QUERY ghost //a"));
          Alcotest.(check bool) "malformed refused locally" true
            (starts_with "error bad-request" (ask "NONSENSE !!"));
          (* single-target verbs never pick a replica implicitly *)
          List.iter
            (fun l ->
              Alcotest.(check bool) (l ^ " refused") true
                (starts_with "error bad-request" (ask l)))
            [ "BUILD db doc.xml 4KB"; "RELOAD"; "CANCEL db"; "JOBS" ];
          let health = ask "HEALTH" in
          Alcotest.(check bool) "aggregate health" true
            (starts_with "ok health live=yes ready=yes" health);
          Alcotest.(check bool) "both replicas counted" true
            (List.mem "replicas=2/2" (String.split_on_char ' ' health));
          Alcotest.(check bool) "forwards counted" true
            (int_field health "forwarded" >= 5);
          Alcotest.(check int) "refusals counted" 4
            ((Coordinator.stats coord).Coordinator.refused);
          let quit_resp, quit = Coordinator.handle_line coord "QUIT" in
          Alcotest.(check string) "quit is local" "bye" quit_resp;
          Alcotest.(check bool) "quit closes" true quit))

let test_coordinator_hedges_past_slow_replica () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      with_replica_servers dir 2 (fun socks ->
          (* replica 0 answers ~80 ms late (server-side read delay);
             replica 1 is fast.  With a 20 ms hedge, every request that
             picks r0 as primary is rescued by a hedge to r1. *)
          Fun.protect ~finally:F.disarm (fun () ->
              F.arm ~seed
                [ F.rule ~prob:1.0 ~path:"r0.sock" F.Read (F.Delay 0.08) ];
              let coord = quiet_coordinator socks in
              let t0 = Unix.gettimeofday () in
              for i = 1 to 10 do
                let response, _ =
                  Coordinator.handle_line coord "QUERY db //movie"
                in
                check_well_formed (Printf.sprintf "hedged query %d" i) response;
                if not (starts_with "ok query" response) then
                  Alcotest.failf "hedged query %d answered %S" i response
              done;
              let elapsed = Unix.gettimeofday () -. t0 in
              let s = Coordinator.stats coord in
              Alcotest.(check bool)
                (Printf.sprintf "hedges fired (%d)" s.Coordinator.hedges)
                true
                (s.Coordinator.hedges > 0);
              Alcotest.(check bool)
                (Printf.sprintf "hedges won (%d)" s.Coordinator.hedges_won)
                true
                (s.Coordinator.hedges_won > 0);
              (* 10 requests, half with an 80 ms primary: unhedged would
                 cost >= 400 ms; hedged must come in well under that *)
              Alcotest.(check bool)
                (Printf.sprintf "hedging beat the slow replica (%.0f ms)"
                   (elapsed *. 1000.))
                true (elapsed < 0.4))))

let test_coordinator_budget_bounds_retries () =
  with_temp_dir (fun dir ->
      (* A dead group (connect refused) is FREE to fail over: the
         primary launch burns through the order without touching the
         budget, and answers fast from the local error path. *)
      let dead =
        [ Filename.concat dir "dead0.sock"; Filename.concat dir "dead1.sock" ]
      in
      let config =
        {
          coord_config with
          connect_timeout = 0.2;
          request_timeout = 0.5;
          retry_ratio = 0.0;
          retry_burst = 2.0;
        }
      in
      let coord = quiet_coordinator ~config dead in
      let t0 = Unix.gettimeofday () in
      for i = 1 to 10 do
        let response, _ = Coordinator.handle_line coord "QUERY db //movie" in
        check_well_formed (Printf.sprintf "dead-group query %d" i) response;
        if not (starts_with "error " response) then
          Alcotest.failf "dead group answered %S" response
      done;
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check int) "refused connects are free failover" 0
        (Replica.Budget.spent (Coordinator.budget coord));
      Alcotest.(check bool)
        (Printf.sprintf "dead group fails fast (%.0f ms)" (elapsed *. 1000.))
        true (elapsed < 2.0);
      (* A STALLED group — connects land in the backlog, nothing ever
         answers — is the expensive case: every extra flight is a hedge
         and must be paid for.  With ratio 0 and burst 2 the bucket
         admits exactly two hedges EVER; after that every hedge attempt
         is denied and counted, and requests still resolve (as deadline
         errors) instead of storming. *)
      let stalled =
        List.map
          (fun name ->
            let path = Filename.concat dir name in
            let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.bind sock (Unix.ADDR_UNIX path);
            Unix.listen sock 64;
            (path, sock))
          [ "stall0.sock"; "stall1.sock" ]
      in
      Fun.protect
        ~finally:(fun () -> List.iter (fun (_, s) -> Unix.close s) stalled)
        (fun () ->
          let config = { config with request_timeout = 0.15 } in
          let coord = quiet_coordinator ~config (List.map fst stalled) in
          for i = 1 to 6 do
            let response, _ =
              Coordinator.handle_line coord "QUERY db //movie"
            in
            check_well_formed (Printf.sprintf "stalled query %d" i) response;
            if not (starts_with "error deadline" response) then
              Alcotest.failf "stalled group answered %S" response
          done;
          let b = Coordinator.budget coord in
          Alcotest.(check int) "hedge spend capped at burst" 2
            (Replica.Budget.spent b);
          Alcotest.(check bool)
            (Printf.sprintf "denials counted (%d)" (Replica.Budget.denied b))
            true
            (Replica.Budget.denied b > 0)))

(* ------------------------------------------------------------------ *)
(* End-to-end chaos: forked replicas, SIGKILL + SIGSTOP, drain         *)
(* ------------------------------------------------------------------ *)

let spawn_replica ~dir ~sock =
  match Unix.fork () with
  | 0 ->
    (try
       let config = { Server.default_config with drain_deadline = 2.0 } in
       let server = quiet_server ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let spawn_coordinator ~socks ~sock =
  match Unix.fork () with
  | 0 ->
    (try
       let config =
         {
           Coordinator.default_config with
           hedge_after = 0.02;
           request_timeout = 2.0;
           connect_timeout = 0.3;
           retry_ratio = 0.2;
           retry_burst = 10.0;
           probe_interval = 0.1;
           probe_timeout = 0.3;
           drain_deadline = 2.0;
           replica =
             { Replica.default_config with eject_cooldown = 0.3; seed };
         }
       in
       let coord = Coordinator.create ~log:(fun _ -> ()) ~config socks in
       Coordinator.install_drain_signals coord;
       Coordinator.serve_socket coord ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let expect_clean_exit what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "%s exited %d, want 0" what n
  | _, Unix.WSIGNALED s -> Alcotest.failf "%s killed by signal %d" what s
  | _, Unix.WSTOPPED s -> Alcotest.failf "%s stopped by signal %d" what s

let e2e_request rng =
  match Random.State.int rng 10 with
  | 0 -> "PING"
  | 1 -> "HEALTH"
  | 2 -> "LIST"
  | 3 -> "STAT db"
  | 4 -> "QUERY db //movie[//actor]"
  | 5 -> "ANSWER -max-nodes=3 db //movie"
  | 6 -> "QUERY -deadline=1.5 db //movie"
  | 7 -> "QUERY ghost //a"
  | 8 -> "RELOAD" (* refused by the coordinator: still a resolution *)
  | _ -> "QUERY db //short"

let test_e2e_coordinator_chaos () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let socks =
        List.init 3 (fun i -> Filename.concat dir (Printf.sprintf "e%d.sock" i))
      in
      let pids = List.map (fun sock -> spawn_replica ~dir ~sock) socks in
      List.iter
        (fun sock -> ignore (connect sock |> fun fd -> Unix.close fd))
        socks;
      let coord_sock = Filename.concat dir "coord.sock" in
      let coord_pid = spawn_coordinator ~socks ~sock:coord_sock in
      ignore (connect coord_sock |> fun fd -> Unix.close fd);
      (* On any failure below, reap every fork: a leaked child would
         outlive the test run holding its inherited stdout/stderr pipe
         open, wedging whatever CI command is reading it. *)
      let reap_leftovers () =
        List.iter
          (fun pid ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
          (coord_pid :: pids)
      in
      let finished = ref false in
      Fun.protect
        ~finally:(fun () -> if not !finished then reap_leftovers ())
      @@ fun () ->
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              attempts = 4;
              request_timeout = 4.0;
              backoff_base = 0.02;
              backoff_cap = 0.2;
              jitter_seed = seed;
            }
          [ coord_sock ]
      in
      let rng = Random.State.make [| seed + 7 |] in
      let oks = ref 0 and server_errors = ref 0 and client_errors = ref 0 in
      let drive i =
        let line = e2e_request rng in
        match Client.request client line with
        | Ok response ->
          check_well_formed
            (Printf.sprintf "request %d (%S)" i (String.escaped line))
            response;
          if starts_with "error " response then incr server_errors
          else incr oks
        | Error (Client.Bad_response msg) ->
          Alcotest.failf "request %d: protocol broken: %s" i msg
        | Error _ -> incr client_errors
      in
      let pid_of i = List.nth pids i in
      (* phase 1: healthy group *)
      for i = 1 to 150 do
        drive i
      done;
      (* phase 2: replica 0 dies without a goodbye.  Connects start
         failing; the coordinator must fail over and eject it — every
         in-flight and subsequent request still resolves. *)
      Unix.kill (pid_of 0) Sys.sigkill;
      for i = 151 to 275 do
        drive i
      done;
      (* phase 3: replica 1 freezes — the nastier failure: connects
         still land in its backlog and requests go unanswered.  The
         hedge is what keeps these requests out of timeout territory. *)
      Unix.kill (pid_of 1) Sys.sigstop;
      for i = 276 to 425 do
        drive i
      done;
      Unix.kill (pid_of 1) Sys.sigcont;
      (* phase 4: thawed group (replica 1 recovers, 0 stays dead) *)
      for i = 426 to 500 do
        drive i
      done;
      (* the acceptance criteria: every request resolved, and the
         hedge/retry traffic stayed inside the token-bucket cap *)
      Alcotest.(check int) "every request resolved" 500
        (!oks + !server_errors + !client_errors);
      Alcotest.(check bool)
        (Printf.sprintf "client-side failures stay rare (%d)" !client_errors)
        true
        (!client_errors <= 20);
      Alcotest.(check bool) "successes dominate" true (!oks > 250);
      (match Client.request client "HEALTH" with
      | Ok health ->
        check_well_formed "final health" health;
        let forwarded = int_field health "forwarded" in
        let spent = int_field health "budget_spent" in
        let denied = int_field health "budget_denied" in
        let hedges = int_field health "hedges" in
        Printf.eprintf
          "coordinator chaos: forwarded=%d hedges=%d budget_spent=%d \
           budget_denied=%d\n\
           %!"
          forwarded hedges spent denied;
        (* the retry-storm bound: spend <= ratio x forwarded + burst *)
        let cap =
          int_of_float (0.2 *. float_of_int forwarded) + 10 + 2 (* slack *)
        in
        Alcotest.(check bool)
          (Printf.sprintf "budget bounded (%d <= %d)" spent cap)
          true (spent <= cap);
        Alcotest.(check bool) "hedging actually happened" true (hedges > 0)
      | Error e ->
        Alcotest.failf "final health: %s" (Client.error_to_string e));
      Client.close client;
      (* SIGTERM drains the coordinator: exit 0, socket unlinked *)
      Unix.kill coord_pid Sys.sigterm;
      expect_clean_exit "coordinator" coord_pid;
      Alcotest.(check bool) "coordinator socket unlinked" false
        (Sys.file_exists coord_sock);
      (* surviving replicas drain clean; the SIGKILLed one died by 9 *)
      Unix.kill (pid_of 1) Sys.sigterm;
      Unix.kill (pid_of 2) Sys.sigterm;
      expect_clean_exit "replica 1" (pid_of 1);
      expect_clean_exit "replica 2" (pid_of 2);
      (match Unix.waitpid [] (pid_of 0) with
      | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | _, status ->
        Alcotest.failf "replica 0: unexpected status %s"
          (match status with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      finished := true)

let () =
  Alcotest.run "replica"
    [
      ( "registry",
        [
          Alcotest.test_case "rank rotates and fails open" `Quick
            test_rank_rotates_and_fails_open;
          Alcotest.test_case "probation is one-strike" `Quick
            test_probation_one_strike;
          Alcotest.test_case "probe outcomes" `Quick test_probe_outcomes;
          Alcotest.test_case "retry budget bucket" `Quick test_budget_bucket;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "deadline propagation helpers" `Quick
            test_deadline_helpers;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "routes, aggregates, refuses" `Quick
            test_coordinator_routes_and_refuses;
          Alcotest.test_case "hedges past a slow replica" `Quick
            test_coordinator_hedges_past_slow_replica;
          Alcotest.test_case "budget bounds a dead group" `Quick
            test_coordinator_budget_bounds_retries;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case
            "500 requests, SIGKILL + SIGSTOP replicas, drained coordinator"
            `Quick test_e2e_coordinator_chaos;
        ] );
    ]
