(* Durable live ingestion: WAL-backed INGEST with crash-safe LSM
   compaction of delta TreeSketches.

   - the WAL: append/replay round-trip, torn-tail truncation, sequence
     regression treated as a tear, ENOSPC rollback (nothing partial
     ever acked);
   - the exact disjoint union ([Build.merge_disjoint]) that compaction
     is built on;
   - the engine: ack/replay, flush-publish-trim, exactly-once across a
     crash between manifest swap and WAL trim, flushes pausing while a
     compaction is in flight, multi-level compaction;
   - the INGEST verb end to end: ack format, inline flush, query
     answers tagged [levels=/staleness=], byte-identical responses for
     names without levels, ENOSPC answered [error ingest-deferred],
     STAT/HEALTH visibility;
   - satellite regressions: [with_remaining_deadline] clamping at and
     past exhaustion, a FETCH source deleted mid-stream answering
     [error fetch-gone] (Io_fault Delay opens the window), replica
     ranking preferring fresher (lower staleness) members;
   - the kill-point acceptance: seeded SIGKILLs sprayed across
     ingest/flush/compaction on a forked server — every restart must
     replay the WAL and serve 100% of acknowledged ingests, zero lost,
     zero duplicated.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Protocol = Serve.Protocol
module Replica = Serve.Replica
module Repair = Serve.Repair
module Ingest = Serve.Ingest
module Wal = Serve.Wal
module Stable = Sketch.Stable
module Serialize = Sketch.Serialize

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x1A6E
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "ingest seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsingest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let starts_with prefix s = String.starts_with ~prefix s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let token_with prefix line =
  List.find_opt (starts_with prefix) (String.split_on_char ' ' line)

let float_token prefix line =
  match token_with prefix line with
  | Some tok ->
    float_of_string_opt
      (String.sub tok (String.length prefix)
         (String.length tok - String.length prefix))
  | None -> None

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0
    ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

let ask sock line =
  let fd = connect sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc (line ^ "\n");
      flush oc;
      input_line ic)

let unwrap what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" what (Xmldoc.Fault.to_string f)

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let record seq payload = { Wal.seq; ts = 1000.0 +. float_of_int seq; payload }

let test_wal_roundtrip () =
  with_temp_dir (fun dir ->
      let wal, replayed, torn =
        unwrap "open" (Wal.open_ ~dir ~name:"db" ())
      in
      Alcotest.(check int) "fresh log is empty" 0 (List.length replayed);
      Alcotest.(check bool) "fresh log is not torn" false torn;
      List.iter
        (fun r ->
          match Wal.append wal r with
          | Ok () -> ()
          | Error `No_space -> Alcotest.fail "spurious ENOSPC"
          | Error (`Fault f) ->
            Alcotest.failf "append: %s" (Xmldoc.Fault.to_string f))
        [ record 1 "<a/>"; record 2 "<b><c/></b>"; record 3 "<d/>" ];
      Wal.close wal;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "clean reopen" false torn;
      Alcotest.(check (list int)) "sequences replay in order" [ 1; 2; 3 ]
        (List.map (fun r -> r.Wal.seq) replayed);
      Alcotest.(check (list string)) "payloads replay intact"
        [ "<a/>"; "<b><c/></b>"; "<d/>" ]
        (List.map (fun r -> r.Wal.payload) replayed);
      (* naming: how the server discovers engines at restart *)
      Alcotest.(check (option string)) "wal_name round-trips" (Some "db")
        (Wal.wal_name ".db.wal");
      Alcotest.(check (option string)) "snapshots are not WALs" None
        (Wal.wal_name "db.ts"))

let test_wal_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 1 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "append");
      Wal.close wal;
      let path = Wal.path ~dir ~name:"db" in
      (* a crash mid-append: header promises more payload than exists *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "rec 2 1002.000000 400 deadbeef\n<torn";
      close_out oc;
      let torn_len = (Unix.stat path).Unix.st_size in
      let wal2, replayed, torn =
        unwrap "reopen torn" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "tear detected" true torn;
      Alcotest.(check (list int)) "intact prefix survives" [ 1 ]
        (List.map (fun r -> r.Wal.seq) replayed);
      Alcotest.(check bool) "tail physically truncated" true
        ((Unix.stat path).Unix.st_size < torn_len);
      (* the truncation repaired the file: a third open is clean *)
      let wal3, replayed, torn =
        unwrap "reopen repaired" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal3;
      Alcotest.(check bool) "repaired log is clean" false torn;
      Alcotest.(check int) "record count stable" 1 (List.length replayed))

let test_wal_seq_regression_is_a_tear () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 5 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "append");
      Wal.close wal;
      (* a structurally valid frame whose sequence regresses: corruption
         must never replay stale records past the intact prefix *)
      let payload = "<stale/>" in
      let frame =
        Printf.sprintf "rec 3 1003.000000 %d %s\n%s\n" (String.length payload)
          (Sketch.Crc32.to_hex (Sketch.Crc32.string payload))
          payload
      in
      let path = Wal.path ~dir ~name:"db" in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc frame;
      close_out oc;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "regression reads as a tear" true torn;
      Alcotest.(check (list int)) "only the monotone prefix replays" [ 5 ]
        (List.map (fun r -> r.Wal.seq) replayed))

let test_wal_enospc_rolls_back () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 1 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first append");
      let len_before = (Unix.stat (Wal.wal_path wal)).Unix.st_size in
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:".db.wal" F.Write F.Enospc ];
          match Wal.append wal (record 2 "<b/>") with
          | Error `No_space -> ()
          | Ok () -> Alcotest.fail "append succeeded on a full disk"
          | Error (`Fault f) ->
            Alcotest.failf "wrong error: %s" (Xmldoc.Fault.to_string f));
      Alcotest.(check int) "file rolled back to pre-append length" len_before
        (Unix.stat (Wal.wal_path wal)).Unix.st_size;
      (* space freed: the same record appends cleanly, nothing partial
         was left behind to confuse the framing *)
      (match Wal.append wal (record 2 "<b/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "retry after ENOSPC");
      Wal.close wal;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "no tear" false torn;
      Alcotest.(check (list int)) "both records durable" [ 1; 2 ]
        (List.map (fun r -> r.Wal.seq) replayed))

(* ------------------------------------------------------------------ *)
(* merge_disjoint                                                      *)
(* ------------------------------------------------------------------ *)

let test_merge_disjoint () =
  let a = Stable.build (Xmldoc.Parser.of_string "<db><movie><actor/></movie></db>") in
  let b = Stable.build (Xmldoc.Parser.of_string "<db><book><title/></book></db>") in
  (match Sketch.Build.merge_disjoint [ a; b ] with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok m ->
    (match Sketch.Synopsis.validate m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merged synopsis invalid: %s" e);
    (* one fresh shared root replaces the two input roots *)
    Alcotest.(check int) "node count is the disjoint union"
      (Sketch.Synopsis.num_nodes a + Sketch.Synopsis.num_nodes b - 1)
      (Sketch.Synopsis.num_nodes m));
  (match Sketch.Build.merge_disjoint [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge should refuse");
  let c = Stable.build (Xmldoc.Parser.of_string "<other><x/></other>") in
  match Sketch.Build.merge_disjoint [ a; c ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched root labels should refuse"

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let open_engine ?(flush_records = 100) ?(level_budget = 4096) dir =
  unwrap "engine open"
    (Ingest.open_ ~dir ~name:"db" ~level_budget ~flush_records ())

let do_ingest eng xml =
  match Ingest.ingest eng ~xml with
  | Ok r -> r
  | Error `No_space -> Alcotest.fail "spurious ENOSPC"
  | Error (`Fault f) -> Alcotest.failf "ingest: %s" (Xmldoc.Fault.to_string f)

let do_flush eng =
  match Ingest.flush eng with
  | Ok b -> b
  | Error f -> Alcotest.failf "flush: %s" (Xmldoc.Fault.to_string f)

let test_engine_ack_and_replay () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      Alcotest.(check (pair int int)) "first ack" (1, 1) (do_ingest eng "<a/>");
      Alcotest.(check (pair int int)) "second ack" (2, 2) (do_ingest eng "<b/>");
      Alcotest.(check bool) "staleness counts from the oldest record" true
        (Ingest.staleness ~now:(Unix.gettimeofday () +. 3.0) eng >= 3.0);
      (* validation happens BEFORE the append: a malformed fragment
         costs nothing durable *)
      (match Ingest.ingest eng ~xml:"<unclosed" with
      | Error (`Fault _) -> ()
      | Ok _ -> Alcotest.fail "malformed fragment acked"
      | Error `No_space -> Alcotest.fail "wrong error class");
      Alcotest.(check int) "depth unchanged by the rejection" 2
        (Ingest.depth eng);
      Ingest.close eng;
      (* a restart replays the WAL: both acks are still pending, and
         sequence numbering continues where it stopped *)
      let eng2 = open_engine dir in
      Alcotest.(check int) "memtable replayed" 2 (Ingest.depth eng2);
      Alcotest.(check bool) "no torn tail on a clean close" false
        (Ingest.replayed_torn eng2);
      Alcotest.(check (pair int int)) "sequences continue" (3, 3)
        (do_ingest eng2 "<c/>");
      Ingest.close eng2)

let test_engine_flush_publishes_and_trims () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      ignore (do_ingest eng "<c/>");
      Alcotest.(check bool) "flush publishes" true (do_flush eng);
      Alcotest.(check int) "memtable drained" 0 (Ingest.depth eng);
      Alcotest.(check int) "one level" 1 (Ingest.level_count eng);
      Alcotest.(check int) "level covers all records" 3
        (Ingest.level_records eng);
      Alcotest.(check int) "flushed watermark" 3 (Ingest.flushed_seq eng);
      Alcotest.(check (float 0.001)) "empty memtable = fresh" 0.0
        (Ingest.staleness eng);
      (* the trim is real: the WAL on disk is empty *)
      let records, torn =
        unwrap "scan" (Wal.scan (Wal.path ~dir ~name:"db"))
      in
      Alcotest.(check int) "WAL trimmed after flush" 0 (List.length records);
      Alcotest.(check bool) "no tear" false torn;
      (* the manifest is the commit point and round-trips *)
      let m = unwrap "manifest" (Ingest.read_manifest ~dir ~name:"db" ()) in
      Alcotest.(check int) "manifest flushed" 3 m.Ingest.flushed;
      (match m.Ingest.entries with
      | [ e ] ->
        Alcotest.(check int) "records in the entry" 3 e.Ingest.records;
        Alcotest.(check bool) "level file exists" true
          (Sys.file_exists (Filename.concat dir e.Ingest.file))
      | es -> Alcotest.failf "expected one level, got %d" (List.length es));
      Alcotest.(check bool) "nothing to flush twice" false (do_flush eng);
      Ingest.close eng;
      (* restart: the level stack reloads, nothing replays twice *)
      let eng2 = open_engine dir in
      Alcotest.(check int) "no replayed memtable" 0 (Ingest.depth eng2);
      Alcotest.(check int) "level survives restart" 1 (Ingest.level_count eng2);
      Ingest.close eng2)

let test_exactly_once_when_trim_is_lost () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      Alcotest.(check bool) "flushed" true (do_flush eng);
      Ingest.close eng;
      (* simulate a kill between the manifest swap and the WAL trim:
         put the already-covered records back into the log *)
      let wal, _, _ = unwrap "wal" (Wal.open_ ~dir ~name:"db" ()) in
      List.iter
        (fun r ->
          match Wal.append wal r with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "re-append")
        [ record 1 "<a/>"; record 2 "<b/>"; record 3 "<fresh/>" ];
      Wal.close wal;
      let eng2 = open_engine dir in
      (* seqs 1-2 are at or below the manifest's flushed watermark:
         dropped on replay.  seq 3 is genuinely new: restored. *)
      Alcotest.(check int) "covered records not replayed" 1 (Ingest.depth eng2);
      Alcotest.(check int) "level still holds them once" 2
        (Ingest.level_records eng2);
      Alcotest.(check (pair int int)) "numbering resumes past the log" (4, 2)
        (do_ingest eng2 "<c/>");
      Ingest.close eng2)

let test_flush_pauses_while_compacting () =
  with_temp_dir (fun dir ->
      let eng = open_engine ~flush_records:2 dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      Alcotest.(check bool) "at threshold" true (Ingest.should_flush eng);
      Ingest.set_compacting eng true;
      Alcotest.(check bool) "threshold gated by compaction" false
        (Ingest.should_flush eng);
      Alcotest.(check bool) "flush refuses while compacting" false
        (do_flush eng);
      Alcotest.(check int) "memtable kept growing" 2 (Ingest.depth eng);
      Ingest.set_compacting eng false;
      Alcotest.(check bool) "resumes after the reap" true (do_flush eng);
      Ingest.close eng)

let test_compaction_merges_levels () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      List.iter
        (fun xml ->
          ignore (do_ingest eng xml);
          Alcotest.(check bool) "flushed" true (do_flush eng))
        [ "<a/>"; "<b/>"; "<c/>" ];
      Alcotest.(check int) "three levels" 3 (Ingest.level_count eng);
      let ckpt = Filename.concat dir ".compact-db.ckpt" in
      (match
         Ingest.compact ~dir ~name:"db" ~level_budget:4096 ~checkpoint:ckpt ()
       with
      | Ok degraded ->
        Alcotest.(check bool) "tiny merge not degraded" false degraded
      | Error f -> Alcotest.failf "compact: %s" (Xmldoc.Fault.to_string f));
      unwrap "refresh" (Ingest.refresh eng);
      Alcotest.(check int) "levels collapsed to one" 1 (Ingest.level_count eng);
      Alcotest.(check int) "no record lost or duplicated" 3
        (Ingest.level_records eng);
      (* consumed inputs are deleted; only the merged generation remains *)
      let level_files =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Ingest.level_name f <> None)
      in
      Alcotest.(check int) "consumed level files deleted" 1
        (List.length level_files);
      Alcotest.(check bool) "checkpoint consumed" false (Sys.file_exists ckpt);
      (* a single remaining level is a no-op, not an error *)
      (match
         Ingest.compact ~dir ~name:"db" ~level_budget:4096 ~checkpoint:ckpt ()
       with
      | Ok degraded -> Alcotest.(check bool) "no-op" false degraded
      | Error f -> Alcotest.failf "no-op compact: %s" (Xmldoc.Fault.to_string f));
      Ingest.close eng)

(* ------------------------------------------------------------------ *)
(* The INGEST verb end to end                                          *)
(* ------------------------------------------------------------------ *)

let ingest_config =
  {
    Server.default_config with
    flush_records = 2;
    compact_levels = 0;
    drain_deadline = 2.0;
  }

let test_ingest_verb_end_to_end () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server ~config:ingest_config dir in
      let askl line = fst (Server.handle_line server line) in
      (* no ingestion state yet: responses are byte-identical to the
         pre-ingest protocol *)
      let q0 = askl "QUERY db //movie" in
      Alcotest.(check bool) "no levels tag before ingestion" false
        (contains q0 "levels=");
      Alcotest.(check bool) "no wal suffix before ingestion" false
        (contains (askl "STAT db") "wal=");
      Alcotest.(check bool) "no health ingest field before ingestion" false
        (contains (askl "HEALTH") "wal=");
      (* ack carries the durable sequence number and WAL depth *)
      Alcotest.(check string) "first ack" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <concert><title/></concert>");
      Alcotest.(check bool) "health exposes the pending record" true
        (contains (askl "HEALTH") "wal=1 staleness=");
      Alcotest.(check bool) "stat exposes the pending record" true
        (contains (askl "STAT db") "wal=1");
      (* the second ingest crosses flush_records: inline flush *)
      Alcotest.(check string) "second ack" "ok ingest name=db seq=2 wal=2"
        (askl "INGEST db <concert><venue/></concert>");
      let stat = askl "STAT db" in
      Alcotest.(check bool)
        (Printf.sprintf "flush published a level (%s)" stat)
        true
        (contains stat "levels=1 level_records=2 flushed=2 wal=0");
      (* queries now evaluate over base + levels and say so *)
      let q = askl "QUERY db //concert" in
      Alcotest.(check bool)
        (Printf.sprintf "answer tagged with the stack (%s)" q)
        true
        (contains q "levels=1 staleness=");
      Alcotest.(check (option (float 0.01))) "both fragments counted"
        (Some 2.0) (float_token "est=" q);
      (* the base content still answers identically under the stack *)
      Alcotest.(check (option (float 0.01))) "base content preserved"
        (Some 2.0)
        (float_token "est=" (askl "QUERY db //movie"));
      (* malformed requests are refused before anything durable *)
      Alcotest.(check bool) "INGEST needs a fragment" true
        (starts_with "error bad-request" (askl "INGEST db"));
      Alcotest.(check bool) "INGEST validates the name" true
        (starts_with "error bad-request" (askl "INGEST ../evil <a/>"));
      Alcotest.(check bool) "malformed fragment refused" true
        (starts_with "error parse" (askl "INGEST db <unclosed"));
      Alcotest.(check bool) "INGEST is single-target" true
        (Protocol.single_target "INGEST db <a/>"))

let test_ingest_enospc_defers () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server ~config:ingest_config dir in
      let askl line = fst (Server.handle_line server line) in
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:".db.wal" F.Write F.Enospc ];
          Alcotest.(check bool) "full disk defers, never acks" true
            (starts_with "error ingest-deferred" (askl "INGEST db <a/>")));
      (* space freed: the explicit retry is the FIRST durable copy *)
      Alcotest.(check string) "retry lands with seq 1"
        "ok ingest name=db seq=1 wal=1" (askl "INGEST db <a/>"))

let test_ingest_replay_serves_acked_records () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let config = { ingest_config with flush_records = 100 } in
      let server = quiet_server ~config dir in
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check string) "acked" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <gala/>");
      (* the record is acked but unflushed: a cold restart must make it
         serveable immediately (startup replay + flush), not after
         flush_records more arrivals *)
      let server2 = quiet_server ~config dir in
      let askl2 line = fst (Server.handle_line server2 line) in
      let q = askl2 "QUERY db //gala" in
      Alcotest.(check (option (float 0.01)))
        (Printf.sprintf "replayed record serves (%s)" q)
        (Some 1.0) (float_token "est=" q);
      Alcotest.(check bool) "exactly once: level holds it, WAL empty" true
        (contains (askl2 "STAT db") "levels=1 level_records=1 flushed=1 wal=0");
      ignore askl)

(* ------------------------------------------------------------------ *)
(* Satellites: deadline clamping, fetch-gone, replica freshness        *)
(* ------------------------------------------------------------------ *)

let test_deadline_clamps_nonnegative () =
  (* elapsed past the deadline: the forwarded budget clamps to zero —
     never negative (whose meaning is the receiver's) — and the flag
     itself is always preserved *)
  Alcotest.(check string) "exhausted budget clamps to zero"
    "QUERY -deadline=0 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=1.5 db //a"
       ~elapsed:2.0);
  Alcotest.(check string) "exactly spent clamps to zero"
    "QUERY -deadline=0 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=1.5 db //a"
       ~elapsed:1.5);
  Alcotest.(check string) "remaining budget is the difference"
    "QUERY -deadline=1.5 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=2 db //a" ~elapsed:0.5);
  Alcotest.(check string) "other options untouched"
    "ANSWER -max-nodes=9 -deadline=0 db //a"
    (Protocol.with_remaining_deadline "ANSWER -max-nodes=9 -deadline=4 db //a"
       ~elapsed:99.0);
  Alcotest.(check string) "nothing elapsed, nothing rewritten"
    "QUERY -deadline=2 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=2 db //a" ~elapsed:0.0);
  (* only the leading option zone is rewritten: a deadline-shaped
     operand is payload, not budget *)
  Alcotest.(check string) "operand zone never mangled"
    "QUERY db -deadline=5"
    (Protocol.with_remaining_deadline "QUERY db -deadline=5" ~elapsed:2.0)

let test_fetch_gone_mid_stream () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      (* two chunks' worth of payload so there is a re-stat between
         them; render_fetch takes the bytes it already verified *)
      let text = String.init 70_000 (fun i -> Char.chr (33 + (i mod 90))) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      (* a source that vanished before the stream starts *)
      let missing =
        Repair.render_fetch ~path:(Filename.concat dir "ghost.ts")
          ~name:"ghost" text
      in
      Alcotest.(check bool) "missing source refused up front" true
        (starts_with "error fetch-gone" missing);
      (* deleted mid-stream: the per-chunk Delay opens a window between
         the initial stat and the next chunk's re-stat *)
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:"db.ts" F.Write (F.Delay 0.25) ];
          let deleter =
            Thread.create
              (fun () ->
                Thread.delay 0.1;
                Sys.remove path)
              ()
          in
          let response = Repair.render_fetch ~path ~name:"db" text in
          Thread.join deleter;
          Alcotest.(check bool)
            (Printf.sprintf "mid-stream deletion aborts cleanly (%s)"
               (String.sub response 0 (min 60 (String.length response))))
            true
            (starts_with "error fetch-gone" response);
          Alcotest.(check bool) "no stale frames leak" false
            (contains response "end fetch"));
      (* restored source: the same render streams end to end *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      let clean = Repair.render_fetch ~path ~name:"db" text in
      Alcotest.(check bool) "intact source streams to the end" true
        (contains clean "end fetch"))

let test_replica_rank_prefers_fresh () =
  let g = Replica.create [ "lagging"; "fresh" ] in
  let m i = List.nth (Replica.members g) i in
  Replica.note_probe ~staleness:7.5 g (m 0) `Ready;
  Replica.note_probe ~staleness:0.0 g (m 1) `Ready;
  Alcotest.(check (float 0.001)) "staleness recorded" 7.5
    (Replica.staleness (m 0));
  (* same tier, same load: freshness decides, regardless of rotation *)
  for _ = 1 to 4 do
    Alcotest.(check string) "fresh member ranks first" "fresh"
      (Replica.path (List.hd (Replica.rank g)))
  done;
  (* state still dominates freshness: a draining-but-fresh member never
     outranks a ready-but-lagging one *)
  Replica.note_probe ~staleness:0.0 g (m 1) `Not_ready;
  Alcotest.(check string) "tier beats freshness" "lagging"
    (Replica.path (List.hd (Replica.rank g)));
  (* a flush catching up clears the penalty *)
  Replica.note_probe ~staleness:0.0 g (m 0) `Ready;
  Replica.note_probe ~staleness:0.0 g (m 1) `Ready;
  Alcotest.(check (float 0.001)) "caught up" 0.0 (Replica.staleness (m 0))

(* ------------------------------------------------------------------ *)
(* Kill-point acceptance                                               *)
(* ------------------------------------------------------------------ *)

(* Widen the crash windows inside the child so seeded kills land inside
   flush writes, manifest swaps and WAL fsyncs, not only between
   requests. *)
let crash_window_faults =
  [
    F.rule ~prob:0.4 ~path:".wal" F.Fsync (F.Delay 0.004);
    F.rule ~prob:0.4 ~path:".delta" F.Write (F.Delay 0.004);
    F.rule ~prob:0.4 ~path:".levels" F.Rename (F.Delay 0.004);
  ]

let spawn_ingest_server ?(faults = []) ~round ~dir ~sock () =
  match Unix.fork () with
  | 0 ->
    (try
       if faults <> [] then F.arm ~seed:(seed + round) faults;
       let config =
         {
           Server.default_config with
           flush_records = 2;
           compact_levels = 2;
           drain_deadline = 2.0;
         }
       in
       let server = quiet_server ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let test_kill_points_lose_nothing () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let rng = Random.State.make [| seed |] in
      let rounds = 8 in
      let acked = ref [] and attempted = ref [] in
      let verify round =
        (* a clean restart replays the WAL and flushes: every
           acknowledged ingest must be serveable, exactly once *)
        let sock = Filename.concat dir (Printf.sprintf "v%d.sock" round) in
        let pid = spawn_ingest_server ~round ~dir ~sock () in
        Unix.close (connect sock);
        Fun.protect
          ~finally:(fun () ->
            Unix.kill pid Sys.sigterm;
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _, status ->
              Alcotest.failf "verify server round %d did not drain clean (%s)"
                round
                (match status with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s))
          (fun () ->
            List.iter
              (fun label ->
                let q = ask sock (Printf.sprintf "QUERY db //%s" label) in
                let est = float_token "est=" q in
                let want = if List.mem label !acked then Some 1.0 else None in
                match (want, est) with
                | Some w, Some e when Float.abs (e -. w) < 0.01 -> ()
                | Some _, _ ->
                  Alcotest.failf
                    "round %d: acked ingest %s lost or duplicated (%s)" round
                    label q
                | None, Some e when e > 1.01 ->
                  Alcotest.failf "round %d: unacked ingest %s duplicated (%s)"
                    round label q
                | None, _ -> ())
              !attempted)
      in
      for round = 1 to rounds do
        let sock = Filename.concat dir (Printf.sprintf "c%d.sock" round) in
        let pid =
          spawn_ingest_server ~faults:crash_window_faults ~round ~dir ~sock ()
        in
        Unix.close (connect sock);
        (* the killer sprays SIGKILL across a seeded offset while the
           driver below is mid-ingest: early offsets crash the WAL
           append/fsync, later ones crash flush publishes and the
           compaction machinery the driver's volume triggers *)
        let kill_after = 0.002 +. Random.State.float rng 0.12 in
        let killer =
          Thread.create
            (fun () ->
              Thread.delay kill_after;
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            ()
        in
        let budget = 3 + Random.State.int rng 4 in
        (try
           for i = 1 to budget do
             let label = Printf.sprintf "k%dx%d" round i in
             attempted := label :: !attempted;
             let response = ask sock (Printf.sprintf "INGEST db <%s/>" label) in
             if starts_with "ok ingest" response then acked := label :: !acked
           done
         with
        | End_of_file | Sys_error _
        | Unix.Unix_error _ ->
          (* the kill landed mid-request: the in-flight record may or
             may not be durable — it is simply not counted as acked *)
          ());
        Thread.join killer;
        (match Unix.waitpid [] pid with
        | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
        | _, Unix.WEXITED 0 ->
          (* the kill raced the round's last request and landed after a
             clean exit path was already underway; still a valid crash
             point for replay *)
          ()
        | _, status ->
          Alcotest.failf "round %d: unexpected child status (%s)" round
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
        verify round
      done;
      Printf.eprintf
        "ingest kill-points: %d rounds, %d attempted, %d acked — all \
         served, none duplicated\n%!"
        rounds
        (List.length !attempted)
        (List.length !acked);
      Alcotest.(check bool) "the run actually acknowledged ingests" true
        (List.length !acked > 0))

let () =
  Alcotest.run "ingest"
    [
      ( "wal",
        [
          Alcotest.test_case "append/replay round-trip" `Quick
            test_wal_roundtrip;
          Alcotest.test_case "torn tail truncated to the intact prefix" `Quick
            test_wal_torn_tail_truncated;
          Alcotest.test_case "sequence regression reads as a tear" `Quick
            test_wal_seq_regression_is_a_tear;
          Alcotest.test_case "ENOSPC rolls back, nothing partial" `Quick
            test_wal_enospc_rolls_back;
        ] );
      ( "merge",
        [ Alcotest.test_case "disjoint union is exact" `Quick test_merge_disjoint ] );
      ( "engine",
        [
          Alcotest.test_case "ack, validate-first, replay" `Quick
            test_engine_ack_and_replay;
          Alcotest.test_case "flush publishes a level and trims the WAL"
            `Quick test_engine_flush_publishes_and_trims;
          Alcotest.test_case "exactly-once when the trim is lost" `Quick
            test_exactly_once_when_trim_is_lost;
          Alcotest.test_case "flushes pause while compacting" `Quick
            test_flush_pauses_while_compacting;
          Alcotest.test_case "compaction merges the level stack" `Quick
            test_compaction_merges_levels;
        ] );
      ( "verb",
        [
          Alcotest.test_case "INGEST end to end" `Quick
            test_ingest_verb_end_to_end;
          Alcotest.test_case "ENOSPC answers ingest-deferred" `Quick
            test_ingest_enospc_defers;
          Alcotest.test_case "restart replay serves acked records" `Quick
            test_ingest_replay_serves_acked_records;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "relay deadline clamps non-negative" `Quick
            test_deadline_clamps_nonnegative;
          Alcotest.test_case "FETCH source deleted mid-stream" `Quick
            test_fetch_gone_mid_stream;
          Alcotest.test_case "rank prefers fresher members" `Quick
            test_replica_rank_prefers_fresh;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "seeded kill points lose nothing" `Quick
            test_kill_points_lose_nothing;
        ] );
    ]
