(* Durable live ingestion: WAL-backed INGEST with crash-safe LSM
   compaction of delta TreeSketches.

   - the WAL: append/replay round-trip, torn-tail truncation, sequence
     regression treated as a tear, ENOSPC rollback (nothing partial
     ever acked);
   - the exact disjoint union ([Build.merge_disjoint]) that compaction
     is built on;
   - the engine: ack/replay, flush-publish-trim, exactly-once across a
     crash between manifest swap and WAL trim, flushes pausing while a
     compaction is in flight, multi-level compaction;
   - the INGEST verb end to end: ack format, inline flush, query
     answers tagged [levels=/staleness=], byte-identical responses for
     names without levels, ENOSPC answered [error ingest-deferred],
     STAT/HEALTH visibility;
   - satellite regressions: [with_remaining_deadline] clamping at and
     past exhaustion, a FETCH source deleted mid-stream answering
     [error fetch-gone] (Io_fault Delay opens the window), replica
     ranking preferring fresher (lower staleness) members;
   - the kill-point acceptance: seeded SIGKILLs sprayed across
     ingest/flush/compaction on a forked server — every restart must
     replay the WAL and serve 100% of acknowledged ingests, zero lost,
     zero duplicated.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module F = Xmldoc.Io_fault
module Server = Serve.Server
module Protocol = Serve.Protocol
module Replica = Serve.Replica
module Repair = Serve.Repair
module Ingest = Serve.Ingest
module Wal = Serve.Wal
module Stable = Sketch.Stable
module Serialize = Sketch.Serialize

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0x1A6E
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "ingest seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsingest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let starts_with prefix s = String.starts_with ~prefix s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let token_with prefix line =
  List.find_opt (starts_with prefix) (String.split_on_char ' ' line)

let float_token prefix line =
  match token_with prefix line with
  | Some tok ->
    float_of_string_opt
      (String.sub tok (String.length prefix)
         (String.length tok - String.length prefix))
  | None -> None

let rec connect ?(attempts = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when attempts > 0
    ->
    Unix.close fd;
    Thread.delay 0.02;
    connect ~attempts:(attempts - 1) path

let ask sock line =
  let fd = connect sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc (line ^ "\n");
      flush oc;
      input_line ic)

let unwrap what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" what (Xmldoc.Fault.to_string f)

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let record ?(op = Wal.Insert) seq payload =
  { Wal.seq; ts = 1000.0 +. float_of_int seq; op; payload }

let test_wal_roundtrip () =
  with_temp_dir (fun dir ->
      let wal, replayed, torn =
        unwrap "open" (Wal.open_ ~dir ~name:"db" ())
      in
      Alcotest.(check int) "fresh log is empty" 0 (List.length replayed);
      Alcotest.(check bool) "fresh log is not torn" false torn;
      List.iter
        (fun r ->
          match Wal.append wal r with
          | Ok () -> ()
          | Error `No_space -> Alcotest.fail "spurious ENOSPC"
          | Error (`Fault f) ->
            Alcotest.failf "append: %s" (Xmldoc.Fault.to_string f))
        [ record 1 "<a/>"; record 2 "<b><c/></b>"; record 3 "<d/>" ];
      Wal.close wal;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "clean reopen" false torn;
      Alcotest.(check (list int)) "sequences replay in order" [ 1; 2; 3 ]
        (List.map (fun r -> r.Wal.seq) replayed);
      Alcotest.(check (list string)) "payloads replay intact"
        [ "<a/>"; "<b><c/></b>"; "<d/>" ]
        (List.map (fun r -> r.Wal.payload) replayed);
      (* naming: how the server discovers engines at restart *)
      Alcotest.(check (option string)) "wal_name round-trips" (Some "db")
        (Wal.wal_name ".db.wal");
      Alcotest.(check (option string)) "snapshots are not WALs" None
        (Wal.wal_name "db.ts"))

let test_wal_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 1 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "append");
      Wal.close wal;
      let path = Wal.path ~dir ~name:"db" in
      (* a crash mid-append: header promises more payload than exists *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "rec 2 1002.000000 400 deadbeef\n<torn";
      close_out oc;
      let torn_len = (Unix.stat path).Unix.st_size in
      let wal2, replayed, torn =
        unwrap "reopen torn" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "tear detected" true torn;
      Alcotest.(check (list int)) "intact prefix survives" [ 1 ]
        (List.map (fun r -> r.Wal.seq) replayed);
      Alcotest.(check bool) "tail physically truncated" true
        ((Unix.stat path).Unix.st_size < torn_len);
      (* the truncation repaired the file: a third open is clean *)
      let wal3, replayed, torn =
        unwrap "reopen repaired" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal3;
      Alcotest.(check bool) "repaired log is clean" false torn;
      Alcotest.(check int) "record count stable" 1 (List.length replayed))

let test_wal_seq_regression_is_a_tear () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 5 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "append");
      Wal.close wal;
      (* a structurally valid frame whose sequence regresses: corruption
         must never replay stale records past the intact prefix *)
      let payload = "<stale/>" in
      let frame =
        Printf.sprintf "rec 3 1003.000000 %d %s\n%s\n" (String.length payload)
          (Sketch.Crc32.to_hex (Sketch.Crc32.string payload))
          payload
      in
      let path = Wal.path ~dir ~name:"db" in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc frame;
      close_out oc;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "regression reads as a tear" true torn;
      Alcotest.(check (list int)) "only the monotone prefix replays" [ 5 ]
        (List.map (fun r -> r.Wal.seq) replayed))

let test_wal_enospc_rolls_back () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal (record 1 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first append");
      let len_before = (Unix.stat (Wal.wal_path wal)).Unix.st_size in
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:".db.wal" F.Write F.Enospc ];
          match Wal.append wal (record 2 "<b/>") with
          | Error `No_space -> ()
          | Ok () -> Alcotest.fail "append succeeded on a full disk"
          | Error (`Fault f) ->
            Alcotest.failf "wrong error: %s" (Xmldoc.Fault.to_string f));
      Alcotest.(check int) "file rolled back to pre-append length" len_before
        (Unix.stat (Wal.wal_path wal)).Unix.st_size;
      (* space freed: the same record appends cleanly, nothing partial
         was left behind to confuse the framing *)
      (match Wal.append wal (record 2 "<b/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "retry after ENOSPC");
      Wal.close wal;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "no tear" false torn;
      Alcotest.(check (list int)) "both records durable" [ 1; 2 ]
        (List.map (fun r -> r.Wal.seq) replayed))

let test_wal_mixed_ops_roundtrip () =
  with_temp_dir (fun dir ->
      let wal, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      List.iter
        (fun r ->
          match Wal.append wal r with
          | Ok () -> ()
          | Error `No_space -> Alcotest.fail "spurious ENOSPC"
          | Error (`Fault f) ->
            Alcotest.failf "append: %s" (Xmldoc.Fault.to_string f))
        [
          record 1 "<a/>";
          record ~op:Wal.Delete 2 "movie/remake";
          record ~op:Wal.Update 3 "short <clip><title/></clip>";
        ];
      Wal.close wal;
      let wal2, replayed, torn =
        unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
      in
      Wal.close wal2;
      Alcotest.(check bool) "clean reopen" false torn;
      (match replayed with
      | [ r1; r2; r3 ] ->
        Alcotest.(check bool) "insert op survives" true (r1.Wal.op = Wal.Insert);
        Alcotest.(check bool) "delete op survives" true (r2.Wal.op = Wal.Delete);
        Alcotest.(check string) "delete payload is the path predicate"
          "movie/remake" r2.Wal.payload;
        Alcotest.(check bool) "update op survives" true (r3.Wal.op = Wal.Update);
        Alcotest.(check string) "update payload carries both halves"
          "short <clip><title/></clip>" r3.Wal.payload
      | rs -> Alcotest.failf "expected 3 records, got %d" (List.length rs));
      (* format compatibility: inserts still use the original v1 frame
         byte-for-byte (an insert-only log is what an older server
         wrote), mutations the sibling [mut] frame *)
      let raw =
        In_channel.with_open_bin (Wal.path ~dir ~name:"db")
          In_channel.input_all
      in
      Alcotest.(check bool) "insert framing is v1" true
        (starts_with "rec 1 " raw);
      Alcotest.(check bool) "mutations use the mut frame" true
        (contains raw "\nmut 2 "))

(* Satellite: a failed append must roll back cleanly and never consume
   the sequence number — at EVERY byte offset a short write can tear
   the frame, not just the offsets one lucky seed happens to draw. *)
let test_wal_append_failure_at_every_offset () =
  with_temp_dir (fun dir ->
      let next = record ~op:Wal.Update 2 "movie <remake><title/></remake>" in
      (* learn the exact frame length with a clean probe append *)
      let frame_len =
        let wal, _, _ = unwrap "probe open" (Wal.open_ ~dir ~name:"probe" ()) in
        (match Wal.append wal next with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "probe append");
        let n = Wal.bytes wal in
        Wal.close wal;
        n
      in
      let wal0, _, _ = unwrap "open" (Wal.open_ ~dir ~name:"db" ()) in
      (match Wal.append wal0 (record 1 "<a/>") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "seed append");
      let base_len = Wal.bytes wal0 in
      Wal.close wal0;
      let path = Wal.path ~dir ~name:"db" in
      for off = 0 to frame_len - 1 do
        let wal, replayed, torn =
          unwrap "reopen" (Wal.open_ ~dir ~name:"db" ())
        in
        Alcotest.(check bool)
          (Printf.sprintf "offset %d: clean open" off)
          false torn;
        Alcotest.(check int)
          (Printf.sprintf "offset %d: prefix intact" off)
          1 (List.length replayed);
        Fun.protect ~finally:F.disarm (fun () ->
            F.arm ~seed
              [
                F.rule ~prob:1.0 ~limit:1 ~path:".db.wal" F.Write
                  (F.Short_at off);
              ];
            match Wal.append wal next with
            | Error `No_space -> ()
            | Ok () -> Alcotest.failf "offset %d: torn append acked" off
            | Error (`Fault f) ->
              Alcotest.failf "offset %d: wrong error %s" off
                (Xmldoc.Fault.to_string f));
        Alcotest.(check int)
          (Printf.sprintf "offset %d: rolled back to pre-append length" off)
          base_len
          (Unix.stat path).Unix.st_size;
        (* the rolled-back seq is reused: the retry is the FIRST durable
           copy, and replay sees no gap and no duplicate *)
        (match Wal.append wal next with
        | Ok () -> ()
        | Error _ -> Alcotest.failf "offset %d: retry failed" off);
        Wal.close wal;
        let wal2, replayed, torn =
          unwrap "verify" (Wal.open_ ~dir ~name:"db" ())
        in
        Wal.close wal2;
        Alcotest.(check bool)
          (Printf.sprintf "offset %d: no tear after retry" off)
          false torn;
        Alcotest.(check (list int))
          (Printf.sprintf "offset %d: exactly once" off)
          [ 1; 2 ]
          (List.map (fun r -> r.Wal.seq) replayed);
        (* reset for the next offset *)
        Unix.truncate path base_len
      done)

(* ------------------------------------------------------------------ *)
(* merge_disjoint                                                      *)
(* ------------------------------------------------------------------ *)

let test_merge_disjoint () =
  let a = Stable.build (Xmldoc.Parser.of_string "<db><movie><actor/></movie></db>") in
  let b = Stable.build (Xmldoc.Parser.of_string "<db><book><title/></book></db>") in
  (match Sketch.Build.merge_disjoint [ a; b ] with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok m ->
    (match Sketch.Synopsis.validate m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merged synopsis invalid: %s" e);
    (* one fresh shared root replaces the two input roots *)
    Alcotest.(check int) "node count is the disjoint union"
      (Sketch.Synopsis.num_nodes a + Sketch.Synopsis.num_nodes b - 1)
      (Sketch.Synopsis.num_nodes m));
  (match Sketch.Build.merge_disjoint [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge should refuse");
  let c = Stable.build (Xmldoc.Parser.of_string "<other><x/></other>") in
  match Sketch.Build.merge_disjoint [ a; c ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched root labels should refuse"

let label l = Xmldoc.Label.of_string l

let test_merge_tombstoned () =
  (* ascending age order: older levels first.  The newer level's
     tombstone must prune [movie] out of the older level before its
     content joins, so the merged output owes no tombstones. *)
  let older =
    Stable.build
      (Xmldoc.Parser.of_string "<db><movie><actor/></movie><short/></db>")
  in
  let newer = Stable.build (Xmldoc.Parser.of_string "<db><gala/></db>") in
  (match
     Sketch.Build.merge_tombstoned [ (older, []); (newer, [ [ label "movie" ] ]) ]
   with
  | Error e -> Alcotest.failf "merge_tombstoned: %s" e
  | Ok m ->
    (match Sketch.Synopsis.validate m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merged synopsis invalid: %s" e);
    (* root + short + gala: movie and its actor physically gone *)
    Alcotest.(check int) "deleted subtree reclaimed" 3
      (Sketch.Synopsis.num_nodes m));
  (* a tombstone masks strictly OLDER levels only: the newer level's
     own matching content (inserted after the delete) survives *)
  let replay =
    Stable.build (Xmldoc.Parser.of_string "<db><movie><title/></movie></db>")
  in
  match
    Sketch.Build.merge_tombstoned [ (older, []); (replay, [ [ label "movie" ] ]) ]
  with
  | Error e -> Alcotest.failf "replay merge: %s" e
  | Ok m ->
    (* root + short + movie + title: only the OLD movie/actor pruned *)
    Alcotest.(check int) "own content survives own tombstone" 4
      (Sketch.Synopsis.num_nodes m)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let open_engine ?(flush_records = 100) ?(level_budget = 4096) dir =
  unwrap "engine open"
    (Ingest.open_ ~dir ~name:"db" ~level_budget ~flush_records ())

let do_ingest eng xml =
  match Ingest.ingest eng ~xml with
  | Ok r -> r
  | Error `No_space -> Alcotest.fail "spurious ENOSPC"
  | Error (`Fault f) -> Alcotest.failf "ingest: %s" (Xmldoc.Fault.to_string f)

let do_flush eng =
  match Ingest.flush eng with
  | Ok b -> b
  | Error f -> Alcotest.failf "flush: %s" (Xmldoc.Fault.to_string f)

let test_engine_ack_and_replay () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      Alcotest.(check (pair int int)) "first ack" (1, 1) (do_ingest eng "<a/>");
      Alcotest.(check (pair int int)) "second ack" (2, 2) (do_ingest eng "<b/>");
      Alcotest.(check bool) "staleness counts from the oldest record" true
        (Ingest.staleness ~now:(Unix.gettimeofday () +. 3.0) eng >= 3.0);
      (* validation happens BEFORE the append: a malformed fragment
         costs nothing durable *)
      (match Ingest.ingest eng ~xml:"<unclosed" with
      | Error (`Fault _) -> ()
      | Ok _ -> Alcotest.fail "malformed fragment acked"
      | Error `No_space -> Alcotest.fail "wrong error class");
      Alcotest.(check int) "depth unchanged by the rejection" 2
        (Ingest.depth eng);
      Ingest.close eng;
      (* a restart replays the WAL: both acks are still pending, and
         sequence numbering continues where it stopped *)
      let eng2 = open_engine dir in
      Alcotest.(check int) "memtable replayed" 2 (Ingest.depth eng2);
      Alcotest.(check bool) "no torn tail on a clean close" false
        (Ingest.replayed_torn eng2);
      Alcotest.(check (pair int int)) "sequences continue" (3, 3)
        (do_ingest eng2 "<c/>");
      Ingest.close eng2)

let test_engine_flush_publishes_and_trims () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      ignore (do_ingest eng "<c/>");
      Alcotest.(check bool) "flush publishes" true (do_flush eng);
      Alcotest.(check int) "memtable drained" 0 (Ingest.depth eng);
      Alcotest.(check int) "one level" 1 (Ingest.level_count eng);
      Alcotest.(check int) "level covers all records" 3
        (Ingest.level_records eng);
      Alcotest.(check int) "flushed watermark" 3 (Ingest.flushed_seq eng);
      Alcotest.(check (float 0.001)) "empty memtable = fresh" 0.0
        (Ingest.staleness eng);
      (* the trim is real: the WAL on disk is empty *)
      let records, torn =
        unwrap "scan" (Wal.scan (Wal.path ~dir ~name:"db"))
      in
      Alcotest.(check int) "WAL trimmed after flush" 0 (List.length records);
      Alcotest.(check bool) "no tear" false torn;
      (* the manifest is the commit point and round-trips *)
      let m = unwrap "manifest" (Ingest.read_manifest ~dir ~name:"db" ()) in
      Alcotest.(check int) "manifest flushed" 3 m.Ingest.flushed;
      (match m.Ingest.entries with
      | [ e ] ->
        Alcotest.(check int) "records in the entry" 3 e.Ingest.records;
        Alcotest.(check bool) "level file exists" true
          (Sys.file_exists (Filename.concat dir e.Ingest.file))
      | es -> Alcotest.failf "expected one level, got %d" (List.length es));
      Alcotest.(check bool) "nothing to flush twice" false (do_flush eng);
      Ingest.close eng;
      (* restart: the level stack reloads, nothing replays twice *)
      let eng2 = open_engine dir in
      Alcotest.(check int) "no replayed memtable" 0 (Ingest.depth eng2);
      Alcotest.(check int) "level survives restart" 1 (Ingest.level_count eng2);
      Ingest.close eng2)

let test_exactly_once_when_trim_is_lost () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      Alcotest.(check bool) "flushed" true (do_flush eng);
      Ingest.close eng;
      (* simulate a kill between the manifest swap and the WAL trim:
         put the already-covered records back into the log *)
      let wal, _, _ = unwrap "wal" (Wal.open_ ~dir ~name:"db" ()) in
      List.iter
        (fun r ->
          match Wal.append wal r with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "re-append")
        [ record 1 "<a/>"; record 2 "<b/>"; record 3 "<fresh/>" ];
      Wal.close wal;
      let eng2 = open_engine dir in
      (* seqs 1-2 are at or below the manifest's flushed watermark:
         dropped on replay.  seq 3 is genuinely new: restored. *)
      Alcotest.(check int) "covered records not replayed" 1 (Ingest.depth eng2);
      Alcotest.(check int) "level still holds them once" 2
        (Ingest.level_records eng2);
      Alcotest.(check (pair int int)) "numbering resumes past the log" (4, 2)
        (do_ingest eng2 "<c/>");
      Ingest.close eng2)

let test_flush_pauses_while_compacting () =
  with_temp_dir (fun dir ->
      let eng = open_engine ~flush_records:2 dir in
      ignore (do_ingest eng "<a/>");
      ignore (do_ingest eng "<b/>");
      Alcotest.(check bool) "at threshold" true (Ingest.should_flush eng);
      Ingest.set_compacting eng true;
      Alcotest.(check bool) "threshold gated by compaction" false
        (Ingest.should_flush eng);
      Alcotest.(check bool) "flush refuses while compacting" false
        (do_flush eng);
      Alcotest.(check int) "memtable kept growing" 2 (Ingest.depth eng);
      Ingest.set_compacting eng false;
      Alcotest.(check bool) "resumes after the reap" true (do_flush eng);
      Ingest.close eng)

let test_compaction_merges_levels () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      List.iter
        (fun xml ->
          ignore (do_ingest eng xml);
          Alcotest.(check bool) "flushed" true (do_flush eng))
        [ "<a/>"; "<b/>"; "<c/>" ];
      Alcotest.(check int) "three levels" 3 (Ingest.level_count eng);
      let ckpt = Filename.concat dir ".compact-db.ckpt" in
      (match
         Ingest.compact ~dir ~name:"db" ~level_budget:4096 ~checkpoint:ckpt ()
       with
      | Ok degraded ->
        Alcotest.(check bool) "tiny merge not degraded" false degraded
      | Error f -> Alcotest.failf "compact: %s" (Xmldoc.Fault.to_string f));
      unwrap "refresh" (Ingest.refresh eng);
      Alcotest.(check int) "levels collapsed to one" 1 (Ingest.level_count eng);
      Alcotest.(check int) "no record lost or duplicated" 3
        (Ingest.level_records eng);
      (* consumed inputs are deleted; only the merged generation remains *)
      let level_files =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Ingest.level_name f <> None)
      in
      Alcotest.(check int) "consumed level files deleted" 1
        (List.length level_files);
      Alcotest.(check bool) "checkpoint consumed" false (Sys.file_exists ckpt);
      (* a single remaining level is a no-op, not an error *)
      (match
         Ingest.compact ~dir ~name:"db" ~level_budget:4096 ~checkpoint:ckpt ()
       with
      | Ok degraded -> Alcotest.(check bool) "no-op" false degraded
      | Error f -> Alcotest.failf "no-op compact: %s" (Xmldoc.Fault.to_string f));
      Ingest.close eng)

let do_delete eng path =
  match Ingest.delete eng ~path with
  | Ok r -> r
  | Error `No_space -> Alcotest.fail "spurious ENOSPC"
  | Error (`Fault f) -> Alcotest.failf "delete: %s" (Xmldoc.Fault.to_string f)

let do_update eng path xml =
  match Ingest.update eng ~path ~xml with
  | Ok r -> r
  | Error `No_space -> Alcotest.fail "spurious ENOSPC"
  | Error (`Fault f) -> Alcotest.failf "update: %s" (Xmldoc.Fault.to_string f)

let test_engine_tombstones_flush_and_replay () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<movie><remake/></movie>");
      Alcotest.(check bool) "first flush" true (do_flush eng);
      ignore (do_ingest eng "<gala/>");
      Alcotest.(check (pair int int)) "delete acks with seq and depth" (3, 2)
        (do_delete eng "movie");
      (* the path predicate is validated at the door, nothing durable *)
      (match Ingest.delete eng ~path:"bad path" with
      | Error (`Fault _) -> ()
      | Ok _ -> Alcotest.fail "invalid path acked"
      | Error `No_space -> Alcotest.fail "wrong error class");
      Alcotest.(check int) "depth unchanged by the rejection" 2
        (Ingest.depth eng);
      Alcotest.(check bool) "second flush" true (do_flush eng);
      (* the tombstone rides the manifest and the loaded stack *)
      let m = unwrap "manifest" (Ingest.read_manifest ~dir ~name:"db" ()) in
      (match m.Ingest.entries with
      | [ e1; e2 ] ->
        Alcotest.(check (list string)) "old level owes no tombstones" []
          e1.Ingest.tombs;
        Alcotest.(check (list string)) "delete became a tombstone"
          [ "movie" ] e2.Ingest.tombs
      | es -> Alcotest.failf "expected two levels, got %d" (List.length es));
      let stack = Ingest.level_stack eng in
      Alcotest.(check int) "stack loaded" 2 (Array.length stack);
      Alcotest.(check int) "tombs parsed into the stack" 1
        (List.length (snd stack.(1)));
      Ingest.close eng;
      (* a restart reloads both levels with their tombstones intact *)
      let eng2 = open_engine dir in
      Alcotest.(check int) "stack survives restart" 2
        (Array.length (Ingest.level_stack eng2));
      Alcotest.(check int) "tombstones survive restart" 1
        (List.length (snd (Ingest.level_stack eng2).(1)));
      Ingest.close eng2)

let test_engine_in_batch_pruning () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      (* insert, delete, re-insert — all in ONE batch: the delete prunes
         the strictly older in-batch fragment, the later insert
         survives (the level's content is net of its own tombstones) *)
      ignore (do_ingest eng "<movie><sequel/></movie>");
      ignore (do_delete eng "movie");
      ignore (do_ingest eng "<movie><reboot/></movie>");
      Alcotest.(check bool) "flushed" true (do_flush eng);
      let stack = Ingest.level_stack eng in
      Alcotest.(check int) "one level" 1 (Array.length stack);
      let s, tombs = stack.(0) in
      Alcotest.(check int) "tombstone published" 1 (List.length tombs);
      (* root + movie + reboot: the pre-delete movie/sequel is gone *)
      Alcotest.(check int) "level content net of its own tombstones" 3
        (Sketch.Synopsis.num_nodes s);
      Ingest.close eng)

let test_engine_update_is_atomic () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<gala><title/></gala>");
      Alcotest.(check bool) "flush 1" true (do_flush eng);
      Alcotest.(check (pair int int)) "update acks like an insert" (2, 1)
        (do_update eng "gala" "<opera><title/></opera>");
      Alcotest.(check bool) "flush 2" true (do_flush eng);
      let stack = Ingest.level_stack eng in
      Alcotest.(check int) "two levels" 2 (Array.length stack);
      let s, tombs = stack.(1) in
      Alcotest.(check int) "one tombstone from the update" 1
        (List.length tombs);
      (* root + opera + title: the replacement is in the SAME level *)
      Alcotest.(check int) "replacement rides the update's level" 3
        (Sketch.Synopsis.num_nodes s);
      (* malformed replacement: refused before anything durable *)
      (match Ingest.update eng ~path:"opera" ~xml:"<unclosed" with
      | Error (`Fault _) -> ()
      | Ok _ -> Alcotest.fail "malformed replacement acked"
      | Error `No_space -> Alcotest.fail "wrong error class");
      Alcotest.(check int) "nothing pending after the rejection" 0
        (Ingest.depth eng);
      Ingest.close eng)

let test_compaction_reclaims_tombstoned () =
  with_temp_dir (fun dir ->
      let eng = open_engine dir in
      ignore (do_ingest eng "<movie><actor/></movie>");
      Alcotest.(check bool) "flush 1" true (do_flush eng);
      ignore (do_ingest eng "<gala/>");
      ignore (do_delete eng "movie");
      Alcotest.(check bool) "flush 2" true (do_flush eng);
      let ckpt = Filename.concat dir ".compact-db.ckpt" in
      (match
         Ingest.compact ~dir ~name:"db" ~level_budget:4096 ~checkpoint:ckpt ()
       with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "compact: %s" (Xmldoc.Fault.to_string f));
      unwrap "refresh" (Ingest.refresh eng);
      let m = unwrap "manifest" (Ingest.read_manifest ~dir ~name:"db" ()) in
      (match m.Ingest.entries with
      | [ e ] ->
        Alcotest.(check (list string))
          "compacted level owes no tombstones (physically reclaimed)" []
          e.Ingest.tombs
      | es -> Alcotest.failf "expected one level, got %d" (List.length es));
      let stack = Ingest.level_stack eng in
      Alcotest.(check int) "one merged level" 1 (Array.length stack);
      (* root + gala: movie/actor physically gone from the merged level *)
      Alcotest.(check int) "deleted subtree reclaimed on disk" 2
        (Sketch.Synopsis.num_nodes (fst stack.(0)));
      Ingest.close eng)

(* ------------------------------------------------------------------ *)
(* The INGEST verb end to end                                          *)
(* ------------------------------------------------------------------ *)

let ingest_config =
  {
    Server.default_config with
    flush_records = 2;
    compact_levels = 0;
    drain_deadline = 2.0;
  }

let test_ingest_verb_end_to_end () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server ~config:ingest_config dir in
      let askl line = fst (Server.handle_line server line) in
      (* no ingestion state yet: responses are byte-identical to the
         pre-ingest protocol *)
      let q0 = askl "QUERY db //movie" in
      Alcotest.(check bool) "no levels tag before ingestion" false
        (contains q0 "levels=");
      Alcotest.(check bool) "no wal suffix before ingestion" false
        (contains (askl "STAT db") "wal=");
      Alcotest.(check bool) "no health ingest field before ingestion" false
        (contains (askl "HEALTH") "wal=");
      (* ack carries the durable sequence number and WAL depth *)
      Alcotest.(check string) "first ack" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <concert><title/></concert>");
      Alcotest.(check bool) "health exposes the pending record" true
        (contains (askl "HEALTH") "wal=1 staleness=");
      Alcotest.(check bool) "stat exposes the pending record" true
        (contains (askl "STAT db") "wal=1");
      (* the second ingest crosses flush_records: inline flush *)
      Alcotest.(check string) "second ack" "ok ingest name=db seq=2 wal=2"
        (askl "INGEST db <concert><venue/></concert>");
      let stat = askl "STAT db" in
      Alcotest.(check bool)
        (Printf.sprintf "flush published a level (%s)" stat)
        true
        (contains stat "levels=1 level_records=2 flushed=2 wal=0");
      (* queries now evaluate over base + levels and say so *)
      let q = askl "QUERY db //concert" in
      Alcotest.(check bool)
        (Printf.sprintf "answer tagged with the stack (%s)" q)
        true
        (contains q "levels=1 staleness=");
      Alcotest.(check (option (float 0.01))) "both fragments counted"
        (Some 2.0) (float_token "est=" q);
      (* the base content still answers identically under the stack *)
      Alcotest.(check (option (float 0.01))) "base content preserved"
        (Some 2.0)
        (float_token "est=" (askl "QUERY db //movie"));
      (* malformed requests are refused before anything durable *)
      Alcotest.(check bool) "INGEST needs a fragment" true
        (starts_with "error bad-request" (askl "INGEST db"));
      Alcotest.(check bool) "INGEST validates the name" true
        (starts_with "error bad-request" (askl "INGEST ../evil <a/>"));
      Alcotest.(check bool) "malformed fragment refused" true
        (starts_with "error parse" (askl "INGEST db <unclosed"));
      Alcotest.(check bool) "INGEST is single-target" true
        (Protocol.single_target "INGEST db <a/>"))

let test_ingest_enospc_defers () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server ~config:ingest_config dir in
      let askl line = fst (Server.handle_line server line) in
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:".db.wal" F.Write F.Enospc ];
          Alcotest.(check bool) "full disk defers, never acks" true
            (starts_with "error ingest-deferred" (askl "INGEST db <a/>")));
      (* space freed: the explicit retry is the FIRST durable copy *)
      Alcotest.(check string) "retry lands with seq 1"
        "ok ingest name=db seq=1 wal=1" (askl "INGEST db <a/>"))

let test_ingest_replay_serves_acked_records () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let config = { ingest_config with flush_records = 100 } in
      let server = quiet_server ~config dir in
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check string) "acked" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <gala/>");
      (* the record is acked but unflushed: a cold restart must make it
         serveable immediately (startup replay + flush), not after
         flush_records more arrivals *)
      let server2 = quiet_server ~config dir in
      let askl2 line = fst (Server.handle_line server2 line) in
      let q = askl2 "QUERY db //gala" in
      Alcotest.(check (option (float 0.01)))
        (Printf.sprintf "replayed record serves (%s)" q)
        (Some 1.0) (float_token "est=" q);
      Alcotest.(check bool) "exactly once: level holds it, WAL empty" true
        (contains (askl2 "STAT db") "levels=1 level_records=1 flushed=1 wal=0");
      ignore askl)

let test_delete_update_verbs_end_to_end () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let server = quiet_server ~config:ingest_config dir in
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check string) "first ack" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <concert><title/></concert>");
      Alcotest.(check string) "second ack" "ok ingest name=db seq=2 wal=2"
        (askl "INGEST db <concert><venue/></concert>");
      Alcotest.(check (option (float 0.01))) "both concerts visible"
        (Some 2.0)
        (float_token "est=" (askl "QUERY db //concert"));
      (* DELETE acks like an insert and becomes visible at its flush *)
      Alcotest.(check string) "delete ack" "ok delete name=db seq=3 wal=1"
        (askl "DELETE db concert");
      Alcotest.(check string) "filler ack" "ok ingest name=db seq=4 wal=2"
        (askl "INGEST db <gala/>");
      Alcotest.(check (option (float 0.01)))
        "flushed tombstone subtracts the concerts" (Some 0.0)
        (float_token "est=" (askl "QUERY db //concert"));
      Alcotest.(check (option (float 0.01))) "later insert serves"
        (Some 1.0)
        (float_token "est=" (askl "QUERY db //gala"));
      Alcotest.(check (option (float 0.01))) "base content never masked"
        (Some 2.0)
        (float_token "est=" (askl "QUERY db //movie"));
      (* UPDATE: delete-then-insert at one sequence number *)
      Alcotest.(check string) "update ack" "ok update name=db seq=5 wal=1"
        (askl "UPDATE db gala <opera><title/></opera>");
      Alcotest.(check string) "filler ack 2" "ok ingest name=db seq=6 wal=2"
        (askl "INGEST db <filler/>");
      Alcotest.(check (option (float 0.01))) "updated-away subtree gone"
        (Some 0.0)
        (float_token "est=" (askl "QUERY db //gala"));
      Alcotest.(check (option (float 0.01))) "replacement serves"
        (Some 1.0)
        (float_token "est=" (askl "QUERY db //opera"));
      (* a restart replays and serves the same picture *)
      let server2 = quiet_server ~config:ingest_config dir in
      let askl2 line = fst (Server.handle_line server2 line) in
      Alcotest.(check (option (float 0.01))) "deletion survives restart"
        (Some 0.0)
        (float_token "est=" (askl2 "QUERY db //concert"));
      Alcotest.(check (option (float 0.01))) "replacement survives restart"
        (Some 1.0)
        (float_token "est=" (askl2 "QUERY db //opera"));
      (* malformed requests refused before anything durable *)
      Alcotest.(check bool) "DELETE needs a path" true
        (starts_with "error bad-request" (askl "DELETE db"));
      Alcotest.(check bool) "DELETE validates the path" true
        (starts_with "error bad-request" (askl "DELETE db ../evil"));
      Alcotest.(check bool) "UPDATE needs a fragment" true
        (starts_with "error bad-request" (askl "UPDATE db gala"));
      Alcotest.(check bool) "UPDATE validates the fragment" true
        (starts_with "error parse" (askl "UPDATE db gala <unclosed"));
      Alcotest.(check bool) "DELETE is single-target" true
        (Protocol.single_target "DELETE db concert");
      Alcotest.(check bool) "UPDATE is single-target" true
        (Protocol.single_target "UPDATE db gala <a/>"))

(* ------------------------------------------------------------------ *)
(* Write pressure: pacing, shedding, disk watermarks                   *)
(* ------------------------------------------------------------------ *)

let test_write_pressure_paces_then_sheds () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let config =
        {
          Server.default_config with
          flush_records = 1000;
          write_pressure =
            {
              Serve.Write_pressure.default_config with
              depth_high = 4;
              pace_at = 0.25;
              shed_at = 0.5;
            };
        }
      in
      let server = quiet_server ~config dir in
      let askl line = fst (Server.handle_line server line) in
      (* empty memtable: plain ack, byte-identical to the unpressured
         protocol *)
      Alcotest.(check string) "unpaced ack" "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <a1/>");
      (* depth 1/4 crosses pace_at: the ack carries the advisory hint *)
      Alcotest.(check string) "paced ack"
        "ok ingest name=db seq=2 wal=2 backpressure=50"
        (askl "INGEST db <a2/>");
      (* depth 2/4 crosses shed_at: refused, nothing retained *)
      let shed = askl "INGEST db <a3/>" in
      Alcotest.(check bool)
        (Printf.sprintf "shed with retry-after (%s)" shed)
        true
        (starts_with "error ingest-deferred retry-after=250 " shed);
      Alcotest.(check bool) "DELETE shed too" true
        (starts_with "error ingest-deferred" (askl "DELETE db a1"));
      (* nothing was retained: depth still 2 *)
      Alcotest.(check bool) "shed retained nothing" true
        (contains (askl "STAT db") "wal=2");
      (* reads keep serving while writes shed *)
      Alcotest.(check bool) "reads live while shedding" true
        (starts_with "ok query" (askl "QUERY db //movie"));
      Alcotest.(check bool) "STAT exposes the write state" true
        (contains (askl "STAT db") "write_state=shedding");
      Alcotest.(check bool) "HEALTH exposes the write state" true
        (contains (askl "HEALTH") "write_state=shedding");
      (* the client recognizes the shed and honors the hint *)
      Alcotest.(check bool) "client classifies the shed" true
        (Serve.Client.is_deferred_response shed);
      Alcotest.(check (option int)) "client parses retry-after" (Some 250)
        (Serve.Client.retry_after_ms shed))

let test_disk_watermarks_shed_then_refuse () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let free = ref 100_000 in
      let config =
        {
          Server.default_config with
          flush_records = 1000;
          write_pressure =
            {
              Serve.Write_pressure.default_config with
              disk_soft = 50_000;
              disk_hard = 10_000;
              probe_interval = 0.0;
            };
          disk_free = Some (fun () -> Some !free);
        }
      in
      let server = quiet_server ~config dir in
      let askl line = fst (Server.handle_line server line) in
      Alcotest.(check string) "plenty of space: admitted"
        "ok ingest name=db seq=1 wal=1"
        (askl "INGEST db <a/>");
      (* under the soft watermark: shed with retry-after *)
      free := 40_000;
      Alcotest.(check bool) "soft watermark sheds" true
        (starts_with "error ingest-deferred" (askl "INGEST db <b/>"));
      (* under the hard watermark: refuse outright *)
      free := 9_000;
      Alcotest.(check bool) "hard watermark refuses inserts" true
        (starts_with "error readonly" (askl "INGEST db <b/>"));
      Alcotest.(check bool) "hard watermark refuses deletes" true
        (starts_with "error readonly" (askl "DELETE db a"));
      Alcotest.(check bool) "hard watermark refuses updates" true
        (starts_with "error readonly" (askl "UPDATE db a <c/>"));
      (* reads, HEALTH and scrub keep working *)
      Alcotest.(check bool) "reads live in readonly" true
        (starts_with "ok query" (askl "QUERY db //movie"));
      Alcotest.(check bool) "HEALTH reports readonly" true
        (contains (askl "HEALTH") "write_state=readonly");
      Alcotest.(check bool) "HEALTH reports disk_free" true
        (contains (askl "HEALTH") "disk_free=9000");
      Alcotest.(check bool) "scrub live in readonly" true
        (starts_with "ok scrub" (askl "SCRUB"));
      (* space freed (compaction, operator): writes resume by themselves *)
      free := 100_000;
      Alcotest.(check string) "writes resume when space frees"
        "ok ingest name=db seq=2 wal=2"
        (askl "INGEST db <b/>"))

(* ------------------------------------------------------------------ *)
(* Satellites: deadline clamping, fetch-gone, replica freshness        *)
(* ------------------------------------------------------------------ *)

let test_deadline_clamps_nonnegative () =
  (* elapsed past the deadline: the forwarded budget clamps to zero —
     never negative (whose meaning is the receiver's) — and the flag
     itself is always preserved *)
  Alcotest.(check string) "exhausted budget clamps to zero"
    "QUERY -deadline=0 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=1.5 db //a"
       ~elapsed:2.0);
  Alcotest.(check string) "exactly spent clamps to zero"
    "QUERY -deadline=0 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=1.5 db //a"
       ~elapsed:1.5);
  Alcotest.(check string) "remaining budget is the difference"
    "QUERY -deadline=1.5 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=2 db //a" ~elapsed:0.5);
  Alcotest.(check string) "other options untouched"
    "ANSWER -max-nodes=9 -deadline=0 db //a"
    (Protocol.with_remaining_deadline "ANSWER -max-nodes=9 -deadline=4 db //a"
       ~elapsed:99.0);
  Alcotest.(check string) "nothing elapsed, nothing rewritten"
    "QUERY -deadline=2 db //a"
    (Protocol.with_remaining_deadline "QUERY -deadline=2 db //a" ~elapsed:0.0);
  (* only the leading option zone is rewritten: a deadline-shaped
     operand is payload, not budget *)
  Alcotest.(check string) "operand zone never mangled"
    "QUERY db -deadline=5"
    (Protocol.with_remaining_deadline "QUERY db -deadline=5" ~elapsed:2.0)

let test_fetch_gone_mid_stream () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.ts" in
      (* two chunks' worth of payload so there is a re-stat between
         them; render_fetch takes the bytes it already verified *)
      let text = String.init 70_000 (fun i -> Char.chr (33 + (i mod 90))) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      (* a source that vanished before the stream starts *)
      let missing =
        Repair.render_fetch ~path:(Filename.concat dir "ghost.ts")
          ~name:"ghost" text
      in
      Alcotest.(check bool) "missing source refused up front" true
        (starts_with "error fetch-gone" missing);
      (* deleted mid-stream: the per-chunk Delay opens a window between
         the initial stat and the next chunk's re-stat *)
      Fun.protect ~finally:F.disarm (fun () ->
          F.arm ~seed [ F.rule ~prob:1.0 ~path:"db.ts" F.Write (F.Delay 0.25) ];
          let deleter =
            Thread.create
              (fun () ->
                Thread.delay 0.1;
                Sys.remove path)
              ()
          in
          let response = Repair.render_fetch ~path ~name:"db" text in
          Thread.join deleter;
          Alcotest.(check bool)
            (Printf.sprintf "mid-stream deletion aborts cleanly (%s)"
               (String.sub response 0 (min 60 (String.length response))))
            true
            (starts_with "error fetch-gone" response);
          Alcotest.(check bool) "no stale frames leak" false
            (contains response "end fetch"));
      (* restored source: the same render streams end to end *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      let clean = Repair.render_fetch ~path ~name:"db" text in
      Alcotest.(check bool) "intact source streams to the end" true
        (contains clean "end fetch"))

let test_replica_rank_prefers_fresh () =
  let g = Replica.create [ "lagging"; "fresh" ] in
  let m i = List.nth (Replica.members g) i in
  Replica.note_probe ~staleness:7.5 g (m 0) `Ready;
  Replica.note_probe ~staleness:0.0 g (m 1) `Ready;
  Alcotest.(check (float 0.001)) "staleness recorded" 7.5
    (Replica.staleness (m 0));
  (* same tier, same load: freshness decides, regardless of rotation *)
  for _ = 1 to 4 do
    Alcotest.(check string) "fresh member ranks first" "fresh"
      (Replica.path (List.hd (Replica.rank g)))
  done;
  (* state still dominates freshness: a draining-but-fresh member never
     outranks a ready-but-lagging one *)
  Replica.note_probe ~staleness:0.0 g (m 1) `Not_ready;
  Alcotest.(check string) "tier beats freshness" "lagging"
    (Replica.path (List.hd (Replica.rank g)));
  (* a flush catching up clears the penalty *)
  Replica.note_probe ~staleness:0.0 g (m 0) `Ready;
  Replica.note_probe ~staleness:0.0 g (m 1) `Ready;
  Alcotest.(check (float 0.001)) "caught up" 0.0 (Replica.staleness (m 0))

let test_repair_preflight_watermark () =
  with_temp_dir (fun dir ->
      (* an install that would push free space below the server's hard
         watermark is No_space even though it physically fits *)
      (match
         Repair.preflight
           ~free:(fun () -> Some 10_000)
           ~min_free:8_000 dir ~bytes:4_000
       with
      | Error `No_space -> ()
      | Ok () -> Alcotest.fail "watermark ignored"
      | Error (`Io m) -> Alcotest.failf "io: %s" m);
      (* headroom preserved: the same install clears a lower watermark *)
      (match
         Repair.preflight
           ~free:(fun () -> Some 10_000)
           ~min_free:2_000 dir ~bytes:4_000
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "install within the watermark refused");
      (* an unknown probe fails open to the empirical preallocation *)
      match Repair.preflight ~free:(fun () -> None) ~min_free:8_000 dir ~bytes:4_000 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "unknown probe must fail open")

(* ------------------------------------------------------------------ *)
(* Kill-point acceptance                                               *)
(* ------------------------------------------------------------------ *)

(* Widen the crash windows inside the child so seeded kills land inside
   flush writes, manifest swaps and WAL fsyncs, not only between
   requests. *)
let crash_window_faults =
  [
    F.rule ~prob:0.4 ~path:".wal" F.Fsync (F.Delay 0.004);
    F.rule ~prob:0.4 ~path:".delta" F.Write (F.Delay 0.004);
    F.rule ~prob:0.4 ~path:".levels" F.Rename (F.Delay 0.004);
  ]

let spawn_ingest_server ?(faults = []) ~round ~dir ~sock () =
  match Unix.fork () with
  | 0 ->
    (try
       if faults <> [] then F.arm ~seed:(seed + round) faults;
       let config =
         {
           Server.default_config with
           flush_records = 2;
           compact_levels = 2;
           drain_deadline = 2.0;
         }
       in
       let server = quiet_server ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let test_kill_points_lose_nothing () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let rng = Random.State.make [| seed |] in
      let rounds = 8 in
      let acked = ref [] and attempted = ref [] in
      let verify round =
        (* a clean restart replays the WAL and flushes: every
           acknowledged ingest must be serveable, exactly once *)
        let sock = Filename.concat dir (Printf.sprintf "v%d.sock" round) in
        let pid = spawn_ingest_server ~round ~dir ~sock () in
        Unix.close (connect sock);
        Fun.protect
          ~finally:(fun () ->
            Unix.kill pid Sys.sigterm;
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _, status ->
              Alcotest.failf "verify server round %d did not drain clean (%s)"
                round
                (match status with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s))
          (fun () ->
            List.iter
              (fun label ->
                let q = ask sock (Printf.sprintf "QUERY db //%s" label) in
                let est = float_token "est=" q in
                let want = if List.mem label !acked then Some 1.0 else None in
                match (want, est) with
                | Some w, Some e when Float.abs (e -. w) < 0.01 -> ()
                | Some _, _ ->
                  Alcotest.failf
                    "round %d: acked ingest %s lost or duplicated (%s)" round
                    label q
                | None, Some e when e > 1.01 ->
                  Alcotest.failf "round %d: unacked ingest %s duplicated (%s)"
                    round label q
                | None, _ -> ())
              !attempted)
      in
      for round = 1 to rounds do
        let sock = Filename.concat dir (Printf.sprintf "c%d.sock" round) in
        let pid =
          spawn_ingest_server ~faults:crash_window_faults ~round ~dir ~sock ()
        in
        Unix.close (connect sock);
        (* the killer sprays SIGKILL across a seeded offset while the
           driver below is mid-ingest: early offsets crash the WAL
           append/fsync, later ones crash flush publishes and the
           compaction machinery the driver's volume triggers *)
        let kill_after = 0.002 +. Random.State.float rng 0.12 in
        let killer =
          Thread.create
            (fun () ->
              Thread.delay kill_after;
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            ()
        in
        let budget = 3 + Random.State.int rng 4 in
        (try
           for i = 1 to budget do
             let label = Printf.sprintf "k%dx%d" round i in
             attempted := label :: !attempted;
             let response = ask sock (Printf.sprintf "INGEST db <%s/>" label) in
             if starts_with "ok ingest" response then acked := label :: !acked
           done
         with
        | End_of_file | Sys_error _
        | Unix.Unix_error _ ->
          (* the kill landed mid-request: the in-flight record may or
             may not be durable — it is simply not counted as acked *)
          ());
        Thread.join killer;
        (match Unix.waitpid [] pid with
        | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
        | _, Unix.WEXITED 0 ->
          (* the kill raced the round's last request and landed after a
             clean exit path was already underway; still a valid crash
             point for replay *)
          ()
        | _, status ->
          Alcotest.failf "round %d: unexpected child status (%s)" round
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
        verify round
      done;
      Printf.eprintf
        "ingest kill-points: %d rounds, %d attempted, %d acked — all \
         served, none duplicated\n%!"
        rounds
        (List.length !attempted)
        (List.length !acked);
      Alcotest.(check bool) "the run actually acknowledged ingests" true
        (List.length !acked > 0))

(* ------------------------------------------------------------------ *)
(* Write-chaos acceptance                                              *)
(* ------------------------------------------------------------------ *)

(* Regular bytes used under [dir] — the denominator of the fake disk
   probe, so the watermark guardrail is exercised against real file
   growth (WAL appends, level publishes), not a synthetic counter. *)
let dir_bytes dir =
  Array.fold_left
    (fun acc f ->
      match Unix.stat (Filename.concat dir f) with
      | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
      | _ -> acc
      | exception Unix.Unix_error _ -> acc)
    0
    (try Sys.readdir dir with Sys_error _ -> [||])

(* Mixed insert/delete/update flood against a forked server with a
   small disk budget, SIGKILLed mid-flight each round.  The model
   tracks, per label, what the acks promised: an acked insert must
   serve est=1, an acked delete est=0, an acked update both halves —
   across every restart.  A response proves retention (ok) or
   non-retention (deferred/readonly/error); only a request with NO
   response (the kill landed mid-flight) leaves a label ambiguous. *)
let test_write_chaos_mixed_mutations () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let rng = Random.State.make [| seed + 7 |] in
      let budget_bytes = 512 * 1024 in
      let expect : (string, [ `Exact of int | `Ambiguous ]) Hashtbl.t =
        Hashtbl.create 64
      in
      let live () =
        List.sort compare
          (Hashtbl.fold
             (fun l st acc ->
               match st with `Exact 1 -> l :: acc | _ -> acc)
             expect [])
      in
      let chaos_config () =
        {
          Server.default_config with
          flush_records = 3;
          compact_levels = 2;
          drain_deadline = 2.0;
          write_pressure =
            {
              Serve.Write_pressure.default_config with
              disk_soft = 128 * 1024;
              disk_hard = 64 * 1024;
              probe_interval = 0.0;
            };
          disk_free =
            Some (fun () -> Some (max 0 (budget_bytes - dir_bytes dir)));
        }
      in
      let spawn ?(faults = []) ~round ~sock () =
        match Unix.fork () with
        | 0 ->
          (try
             if faults <> [] then F.arm ~seed:(seed + 31 + round) faults;
             let server = quiet_server ~config:(chaos_config ()) dir in
             Server.install_drain_signals server;
             Server.serve_socket server ~path:sock;
             Unix._exit 0
           with _ -> Unix._exit 99)
        | pid -> pid
      in
      let rounds = 6 in
      for round = 1 to rounds do
        let sock = Filename.concat dir (Printf.sprintf "w%d.sock" round) in
        let pid =
          spawn ~faults:crash_window_faults ~round ~sock ()
        in
        Unix.close (connect sock);
        let kill_after = 0.002 +. Random.State.float rng 0.12 in
        let killer =
          Thread.create
            (fun () ->
              Thread.delay kill_after;
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            ()
        in
        let ops = 4 + Random.State.int rng 4 in
        (try
           for i = 1 to ops do
             let roll = Random.State.int rng 4 in
             let targets = live () in
             let pick () =
               List.nth targets (Random.State.int rng (List.length targets))
             in
             if roll = 2 && targets <> [] then begin
               let target = pick () in
               Hashtbl.replace expect target `Ambiguous;
               let r = ask sock (Printf.sprintf "DELETE db %s" target) in
               Hashtbl.replace expect target
                 (if starts_with "ok delete" r then `Exact 0 else `Exact 1)
             end
             else if roll = 3 && targets <> [] then begin
               let target = pick () in
               let repl = Printf.sprintf "w%dx%du" round i in
               Hashtbl.replace expect target `Ambiguous;
               Hashtbl.replace expect repl `Ambiguous;
               let r =
                 ask sock (Printf.sprintf "UPDATE db %s <%s/>" target repl)
               in
               if starts_with "ok update" r then begin
                 Hashtbl.replace expect target (`Exact 0);
                 Hashtbl.replace expect repl (`Exact 1)
               end
               else begin
                 Hashtbl.replace expect target (`Exact 1);
                 Hashtbl.replace expect repl (`Exact 0)
               end
             end
             else begin
               let l = Printf.sprintf "w%dx%d" round i in
               Hashtbl.replace expect l `Ambiguous;
               let r = ask sock (Printf.sprintf "INGEST db <%s/>" l) in
               if starts_with "ok ingest" r then
                 Hashtbl.replace expect l (`Exact 1)
               else begin
                 Hashtbl.replace expect l (`Exact 0);
                 (* a shed write must never take reads down with it *)
                 if
                   starts_with "error ingest-deferred" r
                   || starts_with "error readonly" r
                 then begin
                   let q = ask sock "QUERY db //movie" in
                   if not (starts_with "ok query" q) then
                     Alcotest.failf
                       "round %d: reads died while writes shed (%s)" round q
                 end
               end
             end
           done
         with
        | End_of_file | Sys_error _
        | Unix.Unix_error _ ->
          (* the kill landed mid-request: that label stays ambiguous *)
          ());
        Thread.join killer;
        (match Unix.waitpid [] pid with
        | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
          Alcotest.failf "round %d: unexpected child status (%s)" round
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
        (* restart clean and hold every promise the acks made *)
        let vsock = Filename.concat dir (Printf.sprintf "wv%d.sock" round) in
        let vpid = spawn ~round:(100 + round) ~sock:vsock () in
        Unix.close (connect vsock);
        Fun.protect
          ~finally:(fun () ->
            Unix.kill vpid Sys.sigterm;
            match Unix.waitpid [] vpid with
            | _, Unix.WEXITED 0 -> ()
            | _, _ ->
              Alcotest.failf "verify server round %d did not drain clean"
                round)
          (fun () ->
            Hashtbl.iter
              (fun l st ->
                match st with
                | `Ambiguous -> ()
                | `Exact n -> (
                  let q = ask vsock (Printf.sprintf "QUERY db //%s" l) in
                  match float_token "est=" q with
                  | Some e when Float.abs (e -. float_of_int n) < 0.01 -> ()
                  | _ ->
                    Alcotest.failf
                      "round %d: acked state for %s lost (want %d, got %s)"
                      round l n q))
              expect;
            let used = dir_bytes dir in
            if used > budget_bytes then
              Alcotest.failf "round %d: disk budget exceeded (%d > %d)"
                round used budget_bytes)
      done;
      let exact, ambiguous =
        Hashtbl.fold
          (fun _ st (e, a) ->
            match st with `Exact _ -> (e + 1, a) | `Ambiguous -> (e, a + 1))
          expect (0, 0)
      in
      Printf.eprintf
        "write-chaos: %d rounds, %d labels settled, %d ambiguous — every \
         acked mutation held across SIGKILLs\n%!"
        rounds exact ambiguous;
      Alcotest.(check bool) "the run actually settled mutations" true
        (exact > 0))

(* Insert flood into a nearly-full fake disk: the hard watermark must
   stop mutations BEFORE the budget is breached, reads must stay live
   throughout, and writes must resume once the probe sees space. *)
let test_write_chaos_watermark_holds () =
  with_temp_dir (fun dir ->
      save (Filename.concat dir "db.ts") (Lazy.force synopsis);
      let base = dir_bytes dir in
      let budget = base + (8 * 1024) in
      let hard = 4 * 1024 in
      let config =
        {
          Server.default_config with
          flush_records = 1000;
          write_pressure =
            {
              Serve.Write_pressure.default_config with
              disk_hard = hard;
              probe_interval = 0.0;
            };
          disk_free = Some (fun () -> Some (max 0 (budget - dir_bytes dir)));
        }
      in
      let server = quiet_server ~config dir in
      let askl line = fst (Server.handle_line server line) in
      let payload = String.make 100 'x' in
      let acked = ref 0 and refused = ref 0 in
      for i = 1 to 200 do
        let r =
          askl (Printf.sprintf "INGEST db <f%d>%s</f%d>" i payload i)
        in
        if starts_with "ok ingest" r then incr acked
        else if starts_with "error readonly" r then begin
          incr refused;
          Alcotest.(check bool) "reads live at the watermark" true
            (starts_with "ok query" (askl "QUERY db //movie"))
        end
        else Alcotest.failf "unexpected response: %s" r
      done;
      Alcotest.(check bool) "the flood landed some writes" true (!acked > 0);
      Alcotest.(check bool) "the watermark engaged" true (!refused > 0);
      (* the guardrail stopped writes before the hard floor: free space
         never fell more than one frame below the watermark *)
      let free = budget - dir_bytes dir in
      Alcotest.(check bool)
        (Printf.sprintf "hard watermark held (free=%d)" free)
        true
        (free >= hard - 512);
      Alcotest.(check bool) "HEALTH reports readonly" true
        (contains (askl "HEALTH") "write_state=readonly");
      Alcotest.(check bool) "DELETE refused at the watermark" true
        (starts_with "error readonly" (askl "DELETE db f1"));
      (* an operator frees space: writes resume by themselves *)
      let wal = Wal.path ~dir ~name:"db" in
      Unix.truncate wal 0;
      Alcotest.(check bool) "writes resume when space frees" true
        (starts_with "ok ingest" (askl "INGEST db <fresh/>")))

let () =
  Alcotest.run "ingest"
    [
      ( "wal",
        [
          Alcotest.test_case "append/replay round-trip" `Quick
            test_wal_roundtrip;
          Alcotest.test_case "torn tail truncated to the intact prefix" `Quick
            test_wal_torn_tail_truncated;
          Alcotest.test_case "sequence regression reads as a tear" `Quick
            test_wal_seq_regression_is_a_tear;
          Alcotest.test_case "ENOSPC rolls back, nothing partial" `Quick
            test_wal_enospc_rolls_back;
          Alcotest.test_case "mixed-op (v2) frames round-trip" `Quick
            test_wal_mixed_ops_roundtrip;
          Alcotest.test_case "append failure rolls back at every offset"
            `Quick test_wal_append_failure_at_every_offset;
        ] );
      ( "merge",
        [
          Alcotest.test_case "disjoint union is exact" `Quick
            test_merge_disjoint;
          Alcotest.test_case "tombstoned merge reclaims deletions" `Quick
            test_merge_tombstoned;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ack, validate-first, replay" `Quick
            test_engine_ack_and_replay;
          Alcotest.test_case "flush publishes a level and trims the WAL"
            `Quick test_engine_flush_publishes_and_trims;
          Alcotest.test_case "exactly-once when the trim is lost" `Quick
            test_exactly_once_when_trim_is_lost;
          Alcotest.test_case "flushes pause while compacting" `Quick
            test_flush_pauses_while_compacting;
          Alcotest.test_case "compaction merges the level stack" `Quick
            test_compaction_merges_levels;
          Alcotest.test_case "tombstones flush, load and survive restart"
            `Quick test_engine_tombstones_flush_and_replay;
          Alcotest.test_case "in-batch deletes prune before publish" `Quick
            test_engine_in_batch_pruning;
          Alcotest.test_case "update commits both halves at one seq" `Quick
            test_engine_update_is_atomic;
          Alcotest.test_case "compaction reclaims tombstoned subtrees"
            `Quick test_compaction_reclaims_tombstoned;
        ] );
      ( "verb",
        [
          Alcotest.test_case "INGEST end to end" `Quick
            test_ingest_verb_end_to_end;
          Alcotest.test_case "ENOSPC answers ingest-deferred" `Quick
            test_ingest_enospc_defers;
          Alcotest.test_case "restart replay serves acked records" `Quick
            test_ingest_replay_serves_acked_records;
          Alcotest.test_case "DELETE/UPDATE end to end" `Quick
            test_delete_update_verbs_end_to_end;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "pacing then shedding by memtable depth"
            `Quick test_write_pressure_paces_then_sheds;
          Alcotest.test_case "disk watermarks shed then refuse" `Quick
            test_disk_watermarks_shed_then_refuse;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "relay deadline clamps non-negative" `Quick
            test_deadline_clamps_nonnegative;
          Alcotest.test_case "FETCH source deleted mid-stream" `Quick
            test_fetch_gone_mid_stream;
          Alcotest.test_case "rank prefers fresher members" `Quick
            test_replica_rank_prefers_fresh;
          Alcotest.test_case "repair preflight honors the watermark" `Quick
            test_repair_preflight_watermark;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "seeded kill points lose nothing" `Quick
            test_kill_points_lose_nothing;
        ] );
      ( "write-chaos",
        [
          Alcotest.test_case "mixed mutation flood survives kill points"
            `Quick test_write_chaos_mixed_mutations;
          Alcotest.test_case "hard watermark holds under insert flood"
            `Quick test_write_chaos_watermark_holds;
        ] );
    ]
