(* Tests for process-isolated query execution: the prefork worker
   pool (crash isolation, hard watchdog, respawn backoff), poison-pill
   quarantine, in-process crash containment with the pool disabled,
   fork-failure shedding under injected EAGAIN, the client's
   per-synopsis circuit breaker, and a seeded end-to-end chaos run
   mixing healthy, hostile and malformed requests.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module Server = Serve.Server
module Pool = Serve.Pool
module Client = Serve.Client
module Jobs = Serve.Jobs
module Query_exec = Serve.Query_exec
module Serialize = Sketch.Serialize
module Stable = Sketch.Stable
module F = Xmldoc.Io_fault

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0xB0071
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "pool chaos seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tspool" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synopsis_db =
  lazy
    (Stable.build
       (Xmldoc.Parser.of_string
          "<db><movie><actor/><actor/><title/></movie>\
           <movie><actor/><title/></movie><short><title/></short></db>"))

let save path s =
  match Serialize.save_atomic path s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save %s: %s" path (Xmldoc.Fault.to_string f)

let setup dir = save (Filename.concat dir "db.ts") (Lazy.force synopsis_db)

let marker = "CHAOS"

let pool_config ~workers ~threshold =
  {
    Pool.default_config with
    workers;
    watchdog_grace = 0.4;
    poison_threshold = threshold;
    backoff_base = 0.02;
    backoff_cap = 0.2;
    chaos_marker = Some marker;
  }

let server_config ?(workers = 2) ?(threshold = 3) ?(deadline = 2.0) () =
  {
    Server.default_config with
    deadline = Some deadline;
    pool = pool_config ~workers ~threshold;
  }

(* Every server gets its pool shut down even when the test fails:
   leaked workers would outlive the test runner. *)
let with_server ?config dir f =
  let server = Server.create ~log:(fun _ -> ()) ?config dir in
  Fun.protect
    ~finally:(fun () ->
      ignore (Pool.shutdown (Server.pool server) : int);
      ignore (Jobs.drain (Server.jobs server) : int))
    (fun () -> f server)

let drive server line = fst (Server.handle_line server line)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_prefix what prefix response =
  if not (starts_with prefix response) then
    Alcotest.failf "%s: expected %S..., got %S" what prefix response

(* The requests the chaos suite throws at the pool. *)
let healthy = "QUERY db //movie[//actor]"
let healthy_answer = "ANSWER db //short"
let kill_q = "QUERY db //" ^ marker ^ ":exit"
let hang_q d = Printf.sprintf "QUERY -deadline=%g db //%s:hang" d marker
let so_q = "QUERY db //" ^ marker ^ ":stackoverflow"

(* ------------------------------------------------------------------ *)
(* Pool basics: same answers as in-process, health reporting           *)
(* ------------------------------------------------------------------ *)

let test_pool_answers_match_in_process () =
  with_temp_dir (fun dir ->
      setup dir;
      with_server dir ~config:{ (server_config ()) with pool = Pool.default_config }
        (fun inproc ->
          with_server dir ~config:(server_config ~workers:2 ()) (fun pooled ->
              Alcotest.(check bool) "pool enabled" true
                (Pool.enabled (Server.pool pooled));
              Alcotest.(check bool) "in-process has no pool" false
                (Pool.enabled (Server.pool inproc));
              List.iter
                (fun req ->
                  let a = drive inproc req and b = drive pooled req in
                  check_prefix req "ok " a;
                  Alcotest.(check string) ("same answer: " ^ req) a b)
                [ healthy; healthy_answer; "QUERY -deadline=-1 db //movie" ];
              (* not-found is answered by the parent without a worker *)
              check_prefix "ghost" "error not-found" (drive pooled "QUERY ghost //a");
              let h = drive pooled "HEALTH" in
              if not (contains h " pool=2/2") then
                Alcotest.failf "health without pool field: %S" h;
              let st = Pool.stats (Server.pool pooled) in
              Alcotest.(check int) "two workers forked" 2 st.Pool.forks;
              Alcotest.(check int) "two live" 2 st.Pool.live)))

(* ------------------------------------------------------------------ *)
(* Crash isolation: a dying worker costs one request                   *)
(* ------------------------------------------------------------------ *)

let test_worker_crash_is_contained () =
  with_temp_dir (fun dir ->
      setup dir;
      (* threshold high: quarantine is a separate test *)
      with_server dir ~config:(server_config ~workers:2 ~threshold:99 ())
        (fun server ->
          for round = 1 to 5 do
            check_prefix
              (Printf.sprintf "kill round %d" round)
              "error worker-crash" (drive server kill_q);
            check_prefix
              (Printf.sprintf "healthy after kill %d" round)
              "ok query" (drive server healthy)
          done;
          let st = Pool.stats (Server.pool server) in
          Alcotest.(check int) "five workers killed" 5 st.Pool.kills;
          (* 2 initial forks, 5 kills, and a live worker served the
             last healthy query: at least 6 forks must have happened
             (how many more depends on respawn-backoff timing) *)
          Alcotest.(check bool) "respawned" true (st.Pool.forks >= 6)))

let test_watchdog_kills_hung_worker () =
  with_temp_dir (fun dir ->
      setup dir;
      with_server dir ~config:(server_config ~workers:1 ~threshold:99 ())
        (fun server ->
          let t0 = Unix.gettimeofday () in
          let r = drive server (hang_q 0.3) in
          let elapsed = Unix.gettimeofday () -. t0 in
          check_prefix "hung worker" "error worker-crash" r;
          if not (contains r "watchdog") then
            Alcotest.failf "expected a watchdog kill, got %S" r;
          (* cooperative deadline 0.3 + grace 0.4 + slack *)
          Alcotest.(check bool)
            (Printf.sprintf "bounded by the watchdog (%.2fs)" elapsed)
            true (elapsed < 2.0);
          Alcotest.(check int) "killed" 1 (Pool.stats (Server.pool server)).Pool.kills;
          check_prefix "healthy after watchdog kill" "ok query"
            (drive server healthy)))

let test_contained_stack_overflow () =
  with_temp_dir (fun dir ->
      setup dir;
      with_server dir ~config:(server_config ~workers:1 ~threshold:99 ())
        (fun server ->
          let r = drive server so_q in
          check_prefix "stack overflow" "error worker-crash" r;
          if not (contains r "contained") then
            Alcotest.failf "expected a contained crash, got %S" r;
          (* the worker caught it itself: no kill, no refork *)
          let st = Pool.stats (Server.pool server) in
          Alcotest.(check int) "no worker killed" 0 st.Pool.kills;
          Alcotest.(check int) "no respawn" 1 st.Pool.forks;
          check_prefix "same worker still serves" "ok query" (drive server healthy)))

(* ------------------------------------------------------------------ *)
(* Poison-pill quarantine                                              *)
(* ------------------------------------------------------------------ *)

let test_poison_quarantine () =
  with_temp_dir (fun dir ->
      setup dir;
      with_server dir ~config:(server_config ~workers:2 ~threshold:2 ())
        (fun server ->
          let pool = Server.pool server in
          check_prefix "kill 1" "error worker-crash" (drive server kill_q);
          check_prefix "kill 2" "error worker-crash" (drive server kill_q);
          (* the pair is quarantined: answered instantly, no forking *)
          let forks_before = (Pool.stats pool).Pool.forks in
          for i = 1 to 5 do
            check_prefix
              (Printf.sprintf "poisoned %d" i)
              "error poisoned" (drive server kill_q)
          done;
          let st = Pool.stats pool in
          Alcotest.(check int) "answered from quarantine without forking"
            forks_before st.Pool.forks;
          Alcotest.(check int) "poisoned responses counted" 5 st.Pool.poisoned;
          Alcotest.(check int) "one pair quarantined" 1 st.Pool.quarantined;
          (match Pool.poisoned_pairs pool with
          | [ (name, _, kills) ] ->
            Alcotest.(check string) "quarantined synopsis" "db" name;
            Alcotest.(check int) "kill count recorded" 2 kills
          | pairs -> Alcotest.failf "expected one pair, got %d" (List.length pairs));
          (* other queries on the same synopsis are unaffected *)
          check_prefix "healthy unaffected" "ok query" (drive server healthy);
          (* contained crashes count toward quarantine too *)
          check_prefix "so 1" "error worker-crash" (drive server so_q);
          check_prefix "so 2" "error worker-crash" (drive server so_q);
          check_prefix "so quarantined" "error poisoned" (drive server so_q);
          Alcotest.(check int) "two pairs now" 2
            (Pool.stats pool).Pool.quarantined))

(* ------------------------------------------------------------------ *)
(* Defense in depth: pool disabled                                     *)
(* ------------------------------------------------------------------ *)

let test_in_process_guard () =
  (* the containment combinator the in-process read path runs under *)
  let o = Query_exec.guard (fun () -> raise Stack_overflow) in
  check_prefix "stack overflow contained" "error worker-crash" o.Query_exec.response;
  Alcotest.(check bool) "names the crash" true (contains o.Query_exec.response "stack overflow");
  let o = Query_exec.guard (fun () -> raise Out_of_memory) in
  check_prefix "oom contained" "error worker-crash" o.Query_exec.response;
  (* other exceptions still escape to the server's internal-error path *)
  (match Query_exec.guard (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "Failure must escape the guard"
  | exception Failure _ -> ());
  (* and the worker-crash class round-trips the fault taxonomy *)
  Alcotest.(check int) "exit code 6" 6
    (Xmldoc.Fault.exit_code (Xmldoc.Fault.Worker_crash { reason = "x" }))

(* ------------------------------------------------------------------ *)
(* Fork failure: shed as overloaded, never a crash                     *)
(* ------------------------------------------------------------------ *)

let test_build_fork_failure_sheds () =
  with_temp_dir (fun dir ->
      setup dir;
      let xml = Filename.concat dir "doc.xml" in
      let oc = open_out xml in
      output_string oc "<a><b/><b/></a>";
      close_out oc;
      with_server dir (fun server ->
          let build = Printf.sprintf "BUILD j1 %s 4KB" xml in
          F.arm ~seed [ F.rule F.Fork F.Eagain ];
          Fun.protect ~finally:F.disarm (fun () ->
              check_prefix "fork EAGAIN shed" "error overloaded" (drive server build));
          (* the supervisor survived; a resubmit after the pressure
             clears starts the build *)
          check_prefix "resubmit succeeds" "ok build" (drive server build)))

let test_pool_fork_failure_sheds () =
  with_temp_dir (fun dir ->
      setup dir;
      (* one worker, short deadline so the overloaded answer is quick *)
      with_server dir
        ~config:(server_config ~workers:1 ~threshold:99 ~deadline:0.4 ())
        (fun server ->
          check_prefix "kill the only worker" "error worker-crash"
            (drive server kill_q);
          F.arm ~seed [ F.rule F.Fork F.Eagain ];
          Fun.protect ~finally:F.disarm (fun () ->
              (* respawn attempts fail under injected EAGAIN: the
                 request is shed, the supervisor stays up *)
              check_prefix "no worker, fork failing" "error overloaded"
                (drive server healthy));
          (* pressure gone: the slot respawns under its backoff and
             serving resumes *)
          check_prefix "recovers after disarm" "ok query" (drive server healthy);
          Alcotest.(check bool) "respawned" true
            ((Pool.stats (Server.pool server)).Pool.live >= 1)))

(* ------------------------------------------------------------------ *)
(* Client circuit breaker                                              *)
(* ------------------------------------------------------------------ *)

(* A scripted fake server: answers every request line with whatever
   [mode] dictates, and counts the lines it saw — which is how the
   tests prove an open breaker fails fast *without* reaching the
   network. *)
let with_fake_server f =
  let path = Filename.temp_file "tsbrk" ".sock" in
  Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let stop = ref false in
  let hits = ref 0 in
  let mode = ref `Crash in
  let serve_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       while true do
         let _line = input_line ic in
         incr hits;
         let resp =
           match !mode with
           | `Crash -> "error worker-crash planted crash"
           | `Ok -> "ok query degraded=no est=1 classes=1 empty=no"
         in
         output_string oc (resp ^ "\n");
         flush oc
       done
     with End_of_file | Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let thread =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.select [ sock ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept sock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ -> serve_conn fd)
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join thread;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path hits mode)

let test_breaker_opens_and_recovers () =
  with_fake_server (fun path hits mode ->
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              attempts = 1;
              request_timeout = 2.0;
              breaker_threshold = 3;
              breaker_cooldown = 0.3;
              jitter_seed = seed;
            }
          [ path ]
      in
      let expect what prefix =
        match Client.request client what with
        | Ok r -> check_prefix what prefix r
        | Error e -> Alcotest.failf "%s: %s" what (Client.error_to_string e)
      in
      (* three worker-crash responses in a row trip the breaker *)
      for _ = 1 to 3 do
        expect "QUERY db //movie" "error worker-crash"
      done;
      Alcotest.(check bool) "open after threshold" true
        (Client.breaker_state client "db" = Some `Open);
      (* open = fail fast, locally: the server never sees the request *)
      let hits_before = !hits in
      (match Client.request client "QUERY db //movie" with
      | Error (Client.Breaker_open _) -> ()
      | Ok r -> Alcotest.failf "expected Breaker_open, got response %S" r
      | Error e -> Alcotest.failf "expected Breaker_open, got %s" (Client.error_to_string e));
      Alcotest.(check int) "no request reached the server" hits_before !hits;
      (* other synopses and non-query verbs are never gated *)
      expect "QUERY other //movie" "error worker-crash";
      expect "PING" "error worker-crash" (* the fake answers everything *);
      Alcotest.(check bool) "db still open" true
        (Client.breaker_state client "db" = Some `Open);
      (* cooldown passes, the server heals: the half-open probe closes it *)
      mode := `Ok;
      Thread.delay 0.5 (* > cooldown x max jitter (0.3 x 1.5) *);
      expect "QUERY db //movie" "ok query";
      Alcotest.(check bool) "closed after probe" true
        (Client.breaker_state client "db" = Some `Closed);
      expect "QUERY db //movie" "ok query";
      (* relapse: re-trip, then a FAILED probe goes straight back open *)
      mode := `Crash;
      for _ = 1 to 3 do
        expect "QUERY db //movie" "error worker-crash"
      done;
      Thread.delay 0.5;
      expect "QUERY db //movie" "error worker-crash" (* the admitted probe *);
      Alcotest.(check bool) "failed probe reopens" true
        (Client.breaker_state client "db" = Some `Open);
      (match Client.request client "QUERY db //movie" with
      | Error (Client.Breaker_open _) -> ()
      | _ -> Alcotest.fail "expected Breaker_open after failed probe");
      Client.close client)

(* a half-open probe that hits worker-crash must RE-OPEN the breaker —
   with a fresh cooldown — never wedge it half-open.  The wedge would
   show as either (a) traffic flowing while the synopsis still crashes,
   or (b) no second probe ever being admitted; this drives a full
   open -> crashed probe -> open -> healed probe -> closed cycle to
   rule out both. *)
let test_breaker_halfopen_probe_crash_reopens () =
  with_fake_server (fun path hits mode ->
      let cooldown = 0.2 in
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              attempts = 1;
              request_timeout = 2.0;
              breaker_threshold = 2;
              breaker_cooldown = cooldown;
              jitter_seed = seed;
            }
          [ path ]
      in
      let expect what prefix =
        match Client.request client what with
        | Ok r -> check_prefix what prefix r
        | Error e -> Alcotest.failf "%s: %s" what (Client.error_to_string e)
      in
      let past_cooldown () = Thread.delay (cooldown *. 1.5 *. 1.2) in
      for _ = 1 to 2 do
        expect "QUERY db //movie" "error worker-crash"
      done;
      Alcotest.(check bool) "tripped" true
        (Client.breaker_state client "db" = Some `Open);
      (* first half-open probe: admitted, crashes *)
      past_cooldown ();
      expect "QUERY db //movie" "error worker-crash";
      Alcotest.(check bool) "crashed probe re-opens (no half-open wedge)" true
        (Client.breaker_state client "db" = Some `Open);
      (* re-opened means fail-fast again, with zero network traffic *)
      let hits_before = !hits in
      (match Client.request client "QUERY db //movie" with
      | Error (Client.Breaker_open _) -> ()
      | Ok r -> Alcotest.failf "expected Breaker_open, got %S" r
      | Error e ->
        Alcotest.failf "expected Breaker_open, got %s"
          (Client.error_to_string e));
      Alcotest.(check int) "re-opened breaker sheds locally" hits_before !hits;
      (* and the re-open armed a FRESH cooldown: a second probe is
         admitted after it, so a healed server closes the breaker *)
      past_cooldown ();
      mode := `Ok;
      expect "QUERY db //movie" "ok query";
      Alcotest.(check bool) "second probe closed it" true
        (Client.breaker_state client "db" = Some `Closed);
      Client.close client)

(* the old synopsis-only breaker key would let a sick member fail-fast
   requests a healthy member could answer: trip the breaker against
   endpoint A, kill A, and the very next "db" query must flow to B —
   while A's open breaker is remembered for its eventual return *)
let test_breaker_keyed_per_endpoint () =
  with_fake_server (fun path_a hits_a mode_a ->
      with_fake_server (fun path_b hits_b mode_b ->
          ignore mode_a;
          mode_b := `Ok;
          let client =
            Client.create
              ~config:
                {
                  Client.default_config with
                  attempts = 1;
                  request_timeout = 2.0;
                  breaker_threshold = 2;
                  breaker_cooldown = 60.0 (* never elapses in this test *);
                  jitter_seed = seed;
                }
              [ path_a; path_b ]
          in
          (* a failed check must still close the client, or the fake
             servers' join blocks on the abandoned connection *)
          Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
          (* trip (A, db): two worker-crash answers in a row *)
          for _ = 1 to 2 do
            match Client.request client "QUERY db //movie" with
            | Ok r -> check_prefix "crash from A" "error worker-crash" r
            | Error e -> Alcotest.failf "warm-up: %s" (Client.error_to_string e)
          done;
          Alcotest.(check bool) "open for (A, db)" true
            (Client.breaker_state ~endpoint:path_a client "db" = Some `Open);
          Alcotest.(check bool) "no breaker for (B, db)" true
            (Client.breaker_state ~endpoint:path_b client "db" = None);
          (* cursor still points at A: its requests fail fast *)
          (match Client.request client "QUERY db //movie" with
          | Error (Client.Breaker_open _) -> ()
          | Ok r -> Alcotest.failf "expected Breaker_open at A, got %S" r
          | Error e ->
            Alcotest.failf "expected Breaker_open at A, got %s"
              (Client.error_to_string e));
          (* A dies; an ungated request fails over, moving the cursor *)
          Sys.remove path_a;
          Client.close client;
          (match Client.request client "PING" with
          | Ok _ -> ()
          | Error e ->
            Alcotest.failf "failover ping: %s" (Client.error_to_string e));
          (* the regression: "db" at the healthy member must NOT be
             gated by A's open breaker *)
          let b_hits = !hits_b in
          (match Client.request client "QUERY db //movie" with
          | Ok r -> check_prefix "db flows to B" "ok query" r
          | Error e ->
            Alcotest.failf "db at B should flow, got %s"
              (Client.error_to_string e));
          Alcotest.(check bool) "B actually served it" true (!hits_b > b_hits);
          Alcotest.(check int) "A saw only the two tripping requests" 2 !hits_a;
          (* and A's sickness is not forgotten *)
          Alcotest.(check bool) "(A, db) still open" true
            (Client.breaker_state ~endpoint:path_a client "db" = Some `Open)))

(* ------------------------------------------------------------------ *)
(* Lifecycle overlap: drain racing the respawn backoff                 *)
(* ------------------------------------------------------------------ *)

(* SIGTERM while the pool's only slot is waiting out a respawn backoff
   far longer than the drain deadline: the drain must not sit out the
   timer, the process must exit 0, and the socket must be unlinked. *)
let spawn_backoff_server ~dir ~sock =
  match Unix.fork () with
  | 0 ->
    (try
       let config =
         {
           Server.default_config with
           deadline = Some 2.0;
           drain_deadline = 2.0;
           pool =
             {
               (pool_config ~workers:1 ~threshold:99) with
               backoff_base = 30.0;
               backoff_cap = 60.0;
             };
         }
       in
       let server = Server.create ~log:(fun _ -> ()) ~config dir in
       Server.install_drain_signals server;
       Server.serve_socket server ~path:sock;
       Unix._exit 0
     with _ -> Unix._exit 99)
  | pid -> pid

let test_drain_during_respawn_backoff () =
  with_temp_dir (fun dir ->
      setup dir;
      let sock = Filename.concat dir "pool.sock" in
      let pid = spawn_backoff_server ~dir ~sock in
      let client =
        Client.create
          ~config:
            {
              Client.default_config with
              attempts = 8;
              backoff_base = 0.02;
              backoff_cap = 0.2;
              jitter_seed = seed;
            }
          [ sock ]
      in
      (match Client.request client "PING" with
      | Ok "pong" -> ()
      | Ok r -> Alcotest.failf "ping: %S" r
      | Error e -> Alcotest.failf "server never came up: %s" (Client.error_to_string e));
      (* kill the only worker: the slot is now in a 30 s backoff *)
      (match Client.request client kill_q with
      | Ok r -> check_prefix "worker killed" "error worker-crash" r
      | Error e -> Alcotest.failf "kill: %s" (Client.error_to_string e));
      Client.close client;
      let t0 = Unix.gettimeofday () in
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "server exited %d, want 0" n
      | _, Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
      | _, Unix.WSTOPPED s -> Alcotest.failf "server stopped by signal %d" s);
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "drain did not wait out the backoff (%.2fs)" elapsed)
        true (elapsed < 5.0);
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock))

(* ------------------------------------------------------------------ *)
(* End-to-end chaos: >= 200 mixed requests against a hostile pool      *)
(* ------------------------------------------------------------------ *)

let error_classes =
  [ "bad-request"; "not-found"; "overloaded"; "internal";
    "parse"; "corrupt"; "limit"; "deadline"; "io"; "busy";
    "worker-crash"; "poisoned" ]

let check_well_formed what response =
  let ok =
    (not (String.contains response '\n'))
    && (response = "pong" || response = "bye"
       || starts_with "ok " response
       ||
       match String.split_on_char ' ' response with
       | "error" :: cls :: _ -> List.mem cls error_classes
       | _ -> false)
  in
  if not ok then Alcotest.failf "%s: malformed reply %S" what response;
  if starts_with "error internal" response then
    Alcotest.failf "%s: internal error leaked: %S" what response

let test_pool_chaos () =
  with_temp_dir (fun dir ->
      setup dir;
      with_server dir ~config:(server_config ~workers:3 ~threshold:3 ())
        (fun server ->
          let rng = Random.State.make [| seed |] in
          let n = 220 in
          let poisoned = ref 0 and crashes = ref 0 and oks = ref 0 in
          for i = 1 to n do
            let req =
              match Random.State.int rng 10 with
              | 0 -> "PING"
              | 1 -> "HEALTH"
              | 2 -> "STAT db"
              | 3 -> kill_q
              | 4 -> so_q
              | 5 -> "QUERY db ]][[not-a-query"
              | 6 -> "QUERY ghost //a"
              | 7 -> healthy_answer
              | _ -> healthy
            in
            let response = drive server req in
            check_well_formed (Printf.sprintf "request %d (%s)" i req) response;
            if starts_with "error poisoned" response then incr poisoned
            else if starts_with "error worker-crash" response then incr crashes
            else if starts_with "ok " response || response = "pong" then incr oks
          done;
          (* the server survived 220 hostile requests, still answers,
             and the repeat offenders ended up quarantined *)
          check_prefix "alive and serving" "ok query" (drive server healthy);
          Alcotest.(check bool) "saw worker crashes" true (!crashes > 0);
          Alcotest.(check bool) "saw quarantined answers" true (!poisoned > 0);
          Alcotest.(check bool) "healthy traffic kept flowing" true (!oks > n / 3);
          let st = Pool.stats (Server.pool server) in
          Alcotest.(check bool) "kill-path crashes quarantined" true
            (st.Pool.quarantined >= 1);
          (* read-only verbs stay fast while a slow query is in flight:
             the acceptance criterion for dropping the server-wide
             request lock *)
          let hang_done = ref false in
          let hanger =
            Thread.create
              (fun () ->
                let r = drive server (hang_q 1.2) in
                check_prefix "hung query watchdog-killed" "error worker-crash" r;
                hang_done := true)
              ()
          in
          Thread.delay 0.1;
          let worst = ref 0.0 in
          for _ = 1 to 20 do
            let t0 = Unix.gettimeofday () in
            let r = drive server "PING" in
            let dt = Unix.gettimeofday () -. t0 in
            if dt > !worst then worst := dt;
            Alcotest.(check string) "ping during hang" "pong" r
          done;
          Alcotest.(check bool)
            (Printf.sprintf "PING latency bounded (worst %.3fs)" !worst)
            true
            (!worst < 0.5);
          Alcotest.(check bool) "hang still in flight during pings" true
            (not !hang_done);
          Thread.join hanger))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "answers match in-process" `Quick
            test_pool_answers_match_in_process;
          Alcotest.test_case "worker crash contained" `Quick
            test_worker_crash_is_contained;
          Alcotest.test_case "watchdog kills hung worker" `Quick
            test_watchdog_kills_hung_worker;
          Alcotest.test_case "contained stack overflow" `Quick
            test_contained_stack_overflow;
          Alcotest.test_case "poison quarantine" `Quick test_poison_quarantine;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "in-process guard" `Quick test_in_process_guard;
          Alcotest.test_case "build fork failure sheds" `Quick
            test_build_fork_failure_sheds;
          Alcotest.test_case "pool fork failure sheds" `Quick
            test_pool_fork_failure_sheds;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens, fails fast, recovers" `Quick
            test_breaker_opens_and_recovers;
          Alcotest.test_case "crashed half-open probe re-opens" `Quick
            test_breaker_halfopen_probe_crash_reopens;
          Alcotest.test_case "keyed per endpoint: failover not gated" `Quick
            test_breaker_keyed_per_endpoint;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "SIGTERM mid-respawn-backoff drains clean" `Quick
            test_drain_during_respawn_backoff;
        ] );
      ( "chaos",
        [ Alcotest.test_case "220 mixed hostile requests" `Quick test_pool_chaos ] );
    ]
