(* Brownout serving: the Overload controller as a unit, the -tier
   protocol plumbing, per-entry tier selection, and the acceptance
   chaos run check.sh pins a seed for — a ladder server flooded past
   its latency target must degrade (never refuse) everything a
   deadline can still fit at the coarsest tier, tag what it serves,
   and a coordinator must stop hedging against a group whose every
   member reports browned-out HEALTH.

   Everything is seeded; override with CHAOS_SEED=<n>. *)

module Server = Serve.Server
module Client = Serve.Client
module Protocol = Serve.Protocol
module Overload = Serve.Overload
module Catalog = Serve.Catalog
module Query_exec = Serve.Query_exec
module Replica = Serve.Replica
module Coordinator = Serve.Coordinator
module Serialize = Sketch.Serialize

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> 0xCEC93
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "CHAOS_SEED=%S is not an integer" s))

let () =
  Printf.eprintf "overload seed = %d (override with CHAOS_SEED=<n>)\n%!" seed

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tsovl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* A 3-tier ladder over a seeded XMark doc, saved as [db.ts] in [dir]. *)
let save_ladder ?(tiers = 3) ?(budget = 16 * 1024) dir =
  let xmark =
    match Datagen.Datasets.of_name "xmark" with
    | Some ds -> ds
    | None -> Alcotest.fail "xmark dataset missing"
  in
  let doc = Datagen.Datasets.generate ~seed ~scale:1.0 xmark in
  let stable = Sketch.Stable.build doc in
  match Sketch.Build.build_ladder_res stable ~budget ~tiers with
  | Error f -> Alcotest.failf "ladder build: %s" (Xmldoc.Fault.to_string f)
  | Ok { Sketch.Build.ladder; _ } -> (
    match Serialize.save_ladder_atomic (Filename.concat dir "db.ts") ladder with
    | Ok () -> ladder
    | Error f -> Alcotest.failf "ladder save: %s" (Xmldoc.Fault.to_string f))

let quiet_server ?config dir = Server.create ~log:(fun _ -> ()) ?config dir

let rec await_socket ?(attempts = 200) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Unix.close fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
    when attempts > 0 ->
    Unix.close fd;
    Thread.delay 0.02;
    await_socket ~attempts:(attempts - 1) path

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let test_controller_config_validation () =
  let bad config =
    match Overload.create ~config () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "nonsensical config accepted"
  in
  bad { Overload.default_config with max_level = -1 };
  bad { Overload.default_config with target_latency = 0.0 };
  bad { Overload.default_config with low = 1.0; high = 1.0 };
  bad { Overload.default_config with alpha = 0.0 };
  bad { Overload.default_config with alpha = 1.5 };
  ignore (Overload.create ~config:Overload.default_config ())

let test_controller_steps_with_pressure () =
  let config =
    {
      Overload.default_config with
      max_level = 2;
      target_latency = 0.010;
      depth_high = 100;
      dwell = 0.0;
    }
  in
  let o = Overload.create ~config () in
  Alcotest.(check int) "starts cool" 0 (Overload.level o);
  (* sustained latency at 5x target walks to the ceiling, one step per
     observation (dwell 0), and no further *)
  for _ = 1 to 5 do
    Overload.observe o ~queue_depth:0 ~latency:0.050
  done;
  Alcotest.(check int) "clamped at max_level" 2 (Overload.level o);
  Alcotest.(check bool) "pressure is high" true (Overload.pressure o >= 1.0);
  (* fast requests bring it back down *)
  for _ = 1 to 40 do
    Overload.observe o ~queue_depth:0 ~latency:0.0001
  done;
  Alcotest.(check int) "cools back to 0" 0 (Overload.level o);
  (* queue depth alone is also pressure *)
  let o = Overload.create ~config () in
  for _ = 1 to 5 do
    Overload.observe o ~queue_depth:200 ~latency:0.0001
  done;
  Alcotest.(check int) "depth alone degrades" 2 (Overload.level o)

let test_controller_dwell_hysteresis () =
  let config =
    {
      Overload.default_config with
      max_level = 3;
      target_latency = 0.010;
      dwell = 30.0 (* effectively: at most one step during this test *);
    }
  in
  let o = Overload.create ~config () in
  for _ = 1 to 10 do
    Overload.observe o ~queue_depth:0 ~latency:0.100
  done;
  Alcotest.(check int) "dwell caps step rate" 1 (Overload.level o)

let test_controller_admission () =
  let o = Overload.create () in
  Alcotest.(check bool) "admits everything before samples" true
    (Overload.admit o ~deadline:0.000001);
  (* train the coarsest-tier estimate at ~50ms *)
  for _ = 1 to 20 do
    Overload.observe ~coarsest:true o ~queue_depth:0 ~latency:0.050
  done;
  Alcotest.(check bool) "refuses a deadline below the coarsest estimate"
    false
    (Overload.admit o ~deadline:0.001);
  Alcotest.(check bool) "admits a deadline above it" true
    (Overload.admit o ~deadline:0.5);
  Alcotest.(check bool) "describe carries the level" true
    (starts_with "level=" (Overload.describe o))

(* ------------------------------------------------------------------ *)
(* Protocol plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let test_tier_option_parses () =
  (match Protocol.parse "QUERY -tier=2 db //a" with
  | Ok (Protocol.Query (opts, "db", _)) ->
    Alcotest.(check (option int)) "tier parsed" (Some 2) opts.Protocol.tier
  | _ -> Alcotest.fail "QUERY -tier=2 did not parse");
  (match Protocol.parse "QUERY db //a" with
  | Ok (Protocol.Query (opts, "db", _)) ->
    Alcotest.(check (option int)) "tier defaults to none" None
      opts.Protocol.tier
  | _ -> Alcotest.fail "plain QUERY did not parse");
  match Protocol.parse "QUERY -tier=-1 db //a" with
  | Error msg ->
    Alcotest.(check bool) "negative tier named" true (contains msg "tier")
  | Ok _ -> Alcotest.fail "negative tier accepted"

let test_with_tier_rewriting () =
  let check what expected got = Alcotest.(check string) what expected got in
  check "inserts the level" "QUERY -tier=2 db //a"
    (Protocol.with_tier "QUERY db //a" ~level:2);
  check "raises a finer ask" "QUERY -tier=3 db //a"
    (Protocol.with_tier "QUERY -tier=1 db //a" ~level:3);
  check "keeps a coarser ask" "QUERY -tier=3 db //a"
    (Protocol.with_tier "QUERY -tier=3 db //a" ~level:1);
  check "level 0 is identity" "QUERY db //a"
    (Protocol.with_tier "QUERY db //a" ~level:0);
  check "non-reads untouched" "BUILD db doc.xml 1KB"
    (Protocol.with_tier "BUILD db doc.xml 1KB" ~level:2);
  check "other options survive" "ANSWER -tier=1 -deadline=5 db //a"
    (Protocol.with_tier "ANSWER -deadline=5 db //a" ~level:1)

(* ------------------------------------------------------------------ *)
(* Tier selection over a real catalog                                  *)
(* ------------------------------------------------------------------ *)

let test_select_tier_clamps () =
  with_temp_dir @@ fun dir ->
  let ladder = save_ladder dir in
  let n = List.length ladder in
  let catalog = Catalog.create dir in
  ignore (Catalog.refresh catalog);
  let entry =
    match Catalog.find catalog "db" with
    | Some e -> e
    | None -> Alcotest.fail "ladder entry missing"
  in
  Alcotest.(check int) "all tiers loaded" n (Array.length entry.Catalog.tiers);
  let opts tier = { Protocol.no_opts with Protocol.tier } in
  let tier_of level request =
    match Query_exec.select_tier entry (opts request) ~level with
    | _, Some (k, total, _) ->
      Alcotest.(check int) "tag total" n total;
      k
    | _, None -> Alcotest.fail "ladder entry produced no tier tag"
  in
  Alcotest.(check int) "level 0, no ask -> finest" 0 (tier_of 0 None);
  Alcotest.(check int) "server level wins over finer ask" 2
    (tier_of 2 (Some 0));
  Alcotest.(check int) "coarser ask wins over cool server" 1
    (tier_of 0 (Some 1));
  Alcotest.(check int) "absurd ask clamps to coarsest" (n - 1)
    (tier_of 0 (Some 99));
  Alcotest.(check int) "absurd level clamps to coarsest" (n - 1)
    (tier_of 99 None);
  (* a plain single-tier snapshot never tags *)
  (match
     Serialize.save_atomic
       (Filename.concat dir "plain.ts")
       (snd (List.hd ladder))
   with
  | Ok () -> ()
  | Error f -> Alcotest.failf "save plain: %s" (Xmldoc.Fault.to_string f));
  ignore (Catalog.refresh catalog);
  let plain =
    match Catalog.find catalog "plain" with
    | Some e -> e
    | None -> Alcotest.fail "plain entry missing"
  in
  match Query_exec.select_tier plain (opts (Some 2)) ~level:3 with
  | _, None -> ()
  | _, Some _ -> Alcotest.fail "plain snapshot grew a tier tag"

(* ------------------------------------------------------------------ *)
(* Acceptance: brownout under flood                                    *)
(* ------------------------------------------------------------------ *)

(* Aggressive controller for tests: any latency dwarfs the target, so
   pressure is always high and the level ratchets to the ceiling and
   stays (no flaky cool-downs mid-assertion). *)
let hair_trigger =
  {
    Overload.default_config with
    max_level = 2;
    target_latency = 0.000001;
    depth_high = 1000;
    dwell = 0.01;
  }

let test_brownout_flood () =
  with_temp_dir @@ fun dir ->
  ignore (save_ladder dir);
  let sock = Filename.concat dir "ts.sock" in
  let config =
    { Server.default_config with max_inflight = 16; brownout = Some hair_trigger }
  in
  let server = quiet_server ~config dir in
  let thread =
    Thread.create (fun () -> Server.serve_socket server ~path:sock) ()
  in
  await_socket sock;
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Thread.join thread)
  @@ fun () ->
  let lock = Mutex.create () in
  let responses = ref [] in
  let lats = ref [] in
  let failure = ref None in
  let worker () =
    try
      let client = Client.create [ sock ] in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      for _ = 1 to 40 do
        let t0 = Unix.gettimeofday () in
        match
          Client.request client "QUERY -deadline=5 db //item[//mail]"
        with
        | Error e -> failwith (Client.error_to_string e)
        | Ok response ->
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.protect lock (fun () ->
              responses := response :: !responses;
              lats := dt :: !lats)
      done
    with e ->
      Mutex.protect lock (fun () ->
          if !failure = None then failure := Some (Printexc.to_string e))
  in
  let threads = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (match !failure with
  | Some msg -> Alcotest.failf "flood worker: %s" msg
  | None -> ());
  (* 1. nothing with a generous deadline was refused or failed *)
  List.iter
    (fun r ->
      if not (starts_with "ok query" r) then
        Alcotest.failf "flood response not ok: %S" r)
    !responses;
  Alcotest.(check int) "no deadline refusals" 0
    (Server.stats server).Server.refused_deadline;
  (* 2. the controller engaged, and every ladder answer declares its
     tier — including the degraded ones *)
  let o =
    match Server.overload server with
    | Some o -> o
    | None -> Alcotest.fail "brownout server has no controller"
  in
  Alcotest.(check int) "controller rode to the ceiling"
    hair_trigger.Overload.max_level (Overload.level o);
  List.iter
    (fun r ->
      if not (contains r " tier=") then
        Alcotest.failf "ladder answer without tier tag: %S" r)
    !responses;
  Alcotest.(check bool) "degraded tiers actually served" true
    (List.exists (fun r -> contains r " tier=2/") !responses);
  (* 3. p99 stayed bounded: every request finished well inside its 5s
     deadline (the bench asserts the sharper brownout-vs-not claim) *)
  let sorted = List.sort compare !lats in
  let p99 = List.nth sorted (List.length sorted * 99 / 100) in
  Alcotest.(check bool) "p99 bounded" true (p99 < 2.0);
  (* 4. HEALTH reports the brownout level *)
  let client = Client.create [ sock ] in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (match Client.request client "HEALTH" with
  | Ok health ->
    Alcotest.(check bool)
      (Printf.sprintf "HEALTH carries load (%s)" health)
      true
      (contains health
         (Printf.sprintf " load=%d" hair_trigger.Overload.max_level))
  | Error e -> Alcotest.failf "HEALTH: %s" (Client.error_to_string e));
  (* 5. with the coarse estimate trained, an impossible deadline is
     refused up front — it could not be met even fully degraded *)
  match Client.request client "QUERY -deadline=0.0000001 db //item[//mail]" with
  | Ok response ->
    Alcotest.(check bool)
      (Printf.sprintf "impossible deadline refused (%s)" response)
      true
      (starts_with "error overloaded" response
      && contains response "coarsest");
    Alcotest.(check bool) "refusal counted" true
      ((Server.stats server).Server.refused_deadline >= 1)
  | Error e -> Alcotest.failf "refusal probe: %s" (Client.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Acceptance: hedge suppression against a browned-out group           *)
(* ------------------------------------------------------------------ *)

let test_hedges_suppressed_when_group_browned_out () =
  with_temp_dir @@ fun dir ->
  ignore (save_ladder dir);
  let socks =
    List.init 2 (fun i -> Filename.concat dir (Printf.sprintf "r%d.sock" i))
  in
  let config =
    { Server.default_config with max_inflight = 16; brownout = Some hair_trigger }
  in
  let servers = List.map (fun _ -> quiet_server ~config dir) socks in
  let threads =
    List.map2
      (fun server sock ->
        Thread.create (fun () -> Server.serve_socket server ~path:sock) ())
      servers socks
  in
  List.iter await_socket socks;
  Fun.protect
    ~finally:(fun () ->
      List.iter Server.request_drain servers;
      List.iter Thread.join threads)
  @@ fun () ->
  (* brown both members out: the hair-trigger controller ratchets to
     max after a few requests and never cools *)
  List.iter
    (fun sock ->
      let client = Client.create [ sock ] in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      for _ = 1 to 10 do
        match Client.request client "QUERY db //item" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "warm-up: %s" (Client.error_to_string e)
      done)
    socks;
  let coord =
    Coordinator.create
      ~log:(fun _ -> ())
      ~config:
        {
          Coordinator.default_config with
          hedge_after = 0.0001 (* every request wants a hedge *);
          probe_interval = 0.05;
          retry_burst = 100.0;
          retry_ratio = 1.0;
        }
      socks
  in
  (* the background prober only runs under serve_socket — front the
     coordinator like a real deployment *)
  let coord_sock = Filename.concat dir "coord.sock" in
  let coord_thread =
    Thread.create
      (fun () -> Coordinator.serve_socket coord ~path:coord_sock)
      ()
  in
  await_socket coord_sock;
  (Fun.protect
     ~finally:(fun () ->
       Coordinator.request_drain coord;
       Thread.join coord_thread)
  @@ fun () ->
  (* wait for a probe sweep to see load>0 on every member *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (not (Replica.all_browned_out (Coordinator.group coord)))
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.02
  done;
  Alcotest.(check bool) "probes saw the brownout" true
    (Replica.all_browned_out (Coordinator.group coord));
  let before = (Coordinator.stats coord).Coordinator.hedges in
  let front = Client.create [ coord_sock ] in
  Fun.protect ~finally:(fun () -> Client.close front) @@ fun () ->
  for _ = 1 to 30 do
    match Client.request front "QUERY db //item" with
    | Ok response ->
      if not (starts_with "ok query" response) then
        Alcotest.failf "coordinator response: %S" response
    | Error e -> Alcotest.failf "front request: %s" (Client.error_to_string e)
  done;
  let stats = Coordinator.stats coord in
  Alcotest.(check int) "no hedges once browned-out" before
    stats.Coordinator.hedges;
  Alcotest.(check bool) "suppressions counted" true
    (stats.Coordinator.hedges_suppressed > 0);
  match Client.request front "HEALTH" with
  | Ok health ->
    Alcotest.(check bool)
      (Printf.sprintf "coordinator HEALTH says browned_out=yes (%s)" health)
      true
      (contains health " browned_out=yes")
  | Error e -> Alcotest.failf "front HEALTH: %s" (Client.error_to_string e));
  (* ranking prefers the cooler member once one cools: cool r1 by hand
     (prober is drained by now, so the load we set sticks) *)
  let members = Replica.members (Coordinator.group coord) in
  let r1 = List.nth members 1 in
  Replica.note_probe ~load:0 (Coordinator.group coord) r1 `Ready;
  Alcotest.(check bool) "group no longer uniformly browned-out" false
    (Replica.all_browned_out (Coordinator.group coord));
  let first = List.hd (Replica.rank (Coordinator.group coord)) in
  Alcotest.(check string) "cool member ranks first" (Replica.path r1)
    (Replica.path first)

let () =
  Alcotest.run "overload"
    [
      ( "controller",
        [
          Alcotest.test_case "config validation" `Quick
            test_controller_config_validation;
          Alcotest.test_case "steps with pressure, clamps, cools" `Quick
            test_controller_steps_with_pressure;
          Alcotest.test_case "dwell bounds the step rate" `Quick
            test_controller_dwell_hysteresis;
          Alcotest.test_case "deadline-aware admission" `Quick
            test_controller_admission;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "-tier parses and rejects" `Quick
            test_tier_option_parses;
          Alcotest.test_case "with_tier rewrites the option zone" `Quick
            test_with_tier_rewriting;
        ] );
      ( "selection",
        [
          Alcotest.test_case "select_tier clamps level and asks" `Quick
            test_select_tier_clamps;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "flooded ladder server degrades, never drops"
            `Slow test_brownout_flood;
          Alcotest.test_case "browned-out group suppresses hedges" `Slow
            test_hedges_suppressed_when_group_browned_out;
        ] );
    ]
