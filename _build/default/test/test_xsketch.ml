(* Tests for the twig-XSKETCH baseline: histograms, builder, estimator,
   and answer sampling. *)

module T = Testutil
module Tree = Xmldoc.Tree
module Histogram = Xsketch.Histogram
module Builder = Xsketch.Builder
module Model = Xsketch.Model

(* ---------------- histograms ---------------- *)

let test_hist_exact () =
  let sigs = [ ([| 1.; 2. |], 3.); ([| 2.; 0. |], 1.) ] in
  let h = Histogram.of_signatures sigs ~max_buckets:4 in
  Alcotest.(check int) "buckets" 2 (Histogram.num_buckets h);
  Alcotest.(check int) "dims" 2 (Histogram.dims h);
  T.check_float "mean dim0" 1.25 (Histogram.mean h 0);
  T.check_float "mean dim1" 1.5 (Histogram.mean h 1);
  T.check_float "exist dim1" 0.75 (Histogram.exist_prob h 1);
  T.check_float "expectation of product" ((0.75 *. 2.) +. 0.)
    (Histogram.expectation h (fun c -> c.(0) *. c.(1)) *. 1.)

let test_hist_compression () =
  let sigs = List.init 10 (fun i -> ([| float_of_int i |], 1.)) in
  let h = Histogram.of_signatures sigs ~max_buckets:4 in
  Alcotest.(check int) "compressed to 4" 4 (Histogram.num_buckets h);
  (* the residual bucket preserves the mean *)
  T.check_float "mean preserved" 4.5 (Histogram.mean h 0)

let test_hist_coalesce () =
  let sigs = [ ([| 2. |], 1.); ([| 2. |], 3.); ([| 1. |], 1.) ] in
  let h = Histogram.of_signatures sigs ~max_buckets:8 in
  Alcotest.(check int) "identical vectors coalesce" 2 (Histogram.num_buckets h)

let test_hist_empty () =
  Alcotest.(check int) "empty" 0 (Histogram.num_buckets (Histogram.of_signatures [] ~max_buckets:4));
  Alcotest.(check int) "size of empty" 0 (Histogram.size_bytes [])

let prop_hist_weights_sum =
  let arb =
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (pair (array_of_size (Gen.return 3) (float_range 0. 5.)) (float_range 0.5 3.)))
  in
  T.qtest "weights sum to 1" arb (fun sigs ->
      let h = Histogram.of_signatures sigs ~max_buckets:5 in
      let total = List.fold_left (fun a (b : Histogram.bucket) -> a +. b.weight) 0. h in
      T.feq ~eps:1e-6 total 1.)

let prop_hist_mean_preserved =
  let arb =
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (pair (array_of_size (Gen.return 2) (float_range 0. 5.)) (float_range 0.5 3.)))
  in
  T.qtest "compression preserves means" arb (fun sigs ->
      let exact = Histogram.of_signatures sigs ~max_buckets:1000 in
      let tight = Histogram.of_signatures sigs ~max_buckets:2 in
      T.feq ~eps:1e-6 (Histogram.mean exact 0) (Histogram.mean tight 0)
      && T.feq ~eps:1e-6 (Histogram.mean exact 1) (Histogram.mean tight 1))

(* ---------------- builder ---------------- *)

let doc = Datagen.Datasets.generate ~seed:31 ~scale:0.3 Datagen.Datasets.Imdb

let d = Twig.Doc.of_tree doc

let stable = Sketch.Stable.build doc

let training =
  let qs = Workload.positive ~seed:77 ~n:10 stable in
  List.map (fun q -> (q, Twig.Eval.selectivity d q)) qs

let test_label_split () =
  let xs = Builder.label_split stable ~initial_buckets:1 in
  Alcotest.(check int) "one node per label"
    (List.length (Tree.distinct_labels doc))
    (Model.num_nodes xs);
  (* total elements preserved *)
  let total = Array.fold_left (fun a (n : Model.node) -> a +. n.count) 0. xs.Model.nodes in
  T.check_float "elements" (float_of_int (Tree.size doc)) total

let test_build_grows_to_budget () =
  let budget = 4096 in
  let xs = Builder.build stable ~training ~budget in
  Alcotest.(check bool) "reached budget ballpark" true
    (Model.size_bytes xs >= budget / 2);
  Alcotest.(check bool) "more nodes than label split" true
    (Model.num_nodes xs > List.length (Tree.distinct_labels doc))

let test_build_checkpoints_monotone () =
  let budgets = [ 1024; 2048; 4096 ] in
  let sweep = Builder.build_with_checkpoints stable ~training ~budgets in
  let sizes = List.map (fun (_, xs) -> Model.size_bytes xs) sweep in
  Alcotest.(check bool) "sizes non-decreasing" true
    (List.sort Stdlib.compare sizes = sizes)

(* ---------------- estimator ---------------- *)

let test_estimate_label_counts () =
  (* single-label queries are exact from the label-split graph *)
  let xs = Builder.label_split stable ~initial_buckets:1 in
  List.iter
    (fun src ->
      let q = Twig.Parse.query src in
      T.check_float ~eps:1e-6 src (Twig.Eval.selectivity d q) (Xsketch.Estimate.tuples xs q))
    [ "//movie"; "//actor"; "//keyword"; "//tvseries" ]

let test_estimate_empty () =
  let xs = Builder.label_split stable ~initial_buckets:1 in
  T.check_float "absent label" 0.
    (Xsketch.Estimate.tuples xs (Twig.Parse.query "//nothere"))

let test_path_prob_bounds () =
  let xs = Builder.build stable ~training ~budget:4096 in
  let paths = [ "//movie"; "//movie/genre"; "//actor[/role]"; "/movie" ] in
  List.iter
    (fun src ->
      let p = Twig.Parse.path src in
      let prob = Xsketch.Estimate.path_prob xs xs.Model.root p in
      Alcotest.(check bool) (src ^ " in [0,1]") true (prob >= 0. && prob <= 1.))
    paths

let prop_estimates_finite =
  T.qtest ~count:60 "estimates finite and non-negative" T.arb_query (fun q ->
      let xs = Builder.label_split stable ~initial_buckets:1 in
      let est = Xsketch.Estimate.tuples xs q in
      Float.is_finite est && est >= 0.)

(* ---------------- answer sampling ---------------- *)

let test_sample_positive () =
  let xs = Builder.build stable ~training ~budget:8192 in
  let q = Twig.Parse.query "//movie{/genre}" in
  match Xsketch.Answer.sample ~seed:3 xs q with
  | None -> Alcotest.fail "expected a sampled answer"
  | Some t ->
    (* the sampled tree uses variable-annotated labels *)
    let movie = Twig.Eval.nesting_label 1 (Xmldoc.Label.of_string "movie") in
    Alcotest.(check bool) "movies sampled" true (Tree.count_label movie t > 0)

let test_sample_negative_empty () =
  let xs = Builder.build stable ~training ~budget:8192 in
  let q = Twig.Parse.query "//movie{/nothere}" in
  Alcotest.(check bool) "required miss empties" true
    (Xsketch.Answer.sample ~seed:3 xs q = None)

let test_sample_deterministic () =
  let xs = Builder.build stable ~training ~budget:8192 in
  let q = Twig.Parse.query "//tvseries{//episode?}" in
  let a = Xsketch.Answer.sample ~seed:9 xs q and b = Xsketch.Answer.sample ~seed:9 xs q in
  match (a, b) with
  | Some ta, Some tb -> Alcotest.(check bool) "same seed same tree" true (Tree.equal ta tb)
  | None, None -> ()
  | _ -> Alcotest.fail "determinism violated"

let test_sample_budget_cap () =
  let xs = Builder.build stable ~training ~budget:8192 in
  let q = Twig.Parse.query "//movie{//name?}" in
  match Xsketch.Answer.sample ~seed:1 ~max_nodes:50 xs q with
  | None -> ()
  | Some t -> Alcotest.(check bool) "cap respected" true (Tree.size t <= 51)

let test_size_accounting () =
  let xs = Builder.build stable ~training ~budget:4096 in
  let by_hand =
    Array.fold_left
      (fun acc (n : Model.node) ->
        acc + Sketch.Synopsis.node_bytes
        + (Sketch.Synopsis.edge_bytes * Array.length n.edges)
        + Histogram.size_bytes n.hist)
      0 xs.Model.nodes
  in
  Alcotest.(check int) "size model" by_hand (Model.size_bytes xs)

let () =
  Alcotest.run "xsketch"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact" `Quick test_hist_exact;
          Alcotest.test_case "compression" `Quick test_hist_compression;
          Alcotest.test_case "coalesce" `Quick test_hist_coalesce;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          prop_hist_weights_sum;
          prop_hist_mean_preserved;
        ] );
      ( "builder",
        [
          Alcotest.test_case "label split" `Quick test_label_split;
          Alcotest.test_case "grows to budget" `Slow test_build_grows_to_budget;
          Alcotest.test_case "checkpoints monotone" `Slow test_build_checkpoints_monotone;
          Alcotest.test_case "size accounting" `Slow test_size_accounting;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "label counts exact" `Quick test_estimate_label_counts;
          Alcotest.test_case "empty result" `Quick test_estimate_empty;
          Alcotest.test_case "probabilities bounded" `Slow test_path_prob_bounds;
          prop_estimates_finite;
        ] );
      ( "answer",
        [
          Alcotest.test_case "positive sample" `Slow test_sample_positive;
          Alcotest.test_case "negative empty" `Slow test_sample_negative_empty;
          Alcotest.test_case "deterministic" `Slow test_sample_deterministic;
          Alcotest.test_case "node budget" `Slow test_sample_budget_cap;
        ] );
    ]
