(* Tests for the workload generator. *)

module T = Testutil

let doc = Datagen.Datasets.generate ~seed:21 ~scale:0.3 Datagen.Datasets.Imdb

let d = Twig.Doc.of_tree doc

let stable = Sketch.Stable.build doc

let test_positive_all_positive () =
  let qs = Workload.positive ~seed:1 ~n:100 stable in
  Alcotest.(check int) "requested count" 100 (List.length qs);
  let stats = Workload.measure d qs in
  T.check_float "all positive" 1. stats.positive_fraction;
  Alcotest.(check bool) "tuples flow" true (stats.avg_binding_tuples > 0.)

let test_positive_distinct () =
  let qs = Workload.positive ~seed:2 ~n:80 stable in
  let keys = List.map Twig.Syntax.to_string qs in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq Stdlib.compare keys))

let test_positive_deterministic () =
  let a = Workload.positive ~seed:3 ~n:20 stable in
  let b = Workload.positive ~seed:3 ~n:20 stable in
  Alcotest.(check (list string)) "same seed same workload"
    (List.map Twig.Syntax.to_string a)
    (List.map Twig.Syntax.to_string b)

let test_negative_all_negative () =
  let qs = Workload.negative ~seed:4 ~n:50 stable in
  Alcotest.(check bool) "got queries" true (List.length qs > 0);
  let stats = Workload.measure d qs in
  T.check_float "all negative" 0. stats.positive_fraction

let test_params_respected () =
  let params = { Workload.default_params with max_vars = 1; pred_prob = 0. } in
  let qs = Workload.positive ~params ~seed:5 ~n:30 stable in
  List.iter
    (fun q ->
      Alcotest.(check bool) "at most 2 vars" true (Twig.Syntax.num_vars q <= 2);
      let no_preds =
        Twig.Syntax.fold_paths
          (fun acc p -> acc && List.for_all (fun (s : Twig.Syntax.step) -> s.preds = []) p)
          true q
      in
      Alcotest.(check bool) "no predicates" true no_preds)
    qs

let test_negative_uses_absent_label () =
  let qs = Workload.negative ~seed:11 ~n:20 stable in
  let absent = Xmldoc.Label.of_string "__no_such_element__" in
  List.iter
    (fun q ->
      let found =
        Twig.Syntax.fold_paths
          (fun acc p ->
            acc
            || List.exists
                 (fun (s : Twig.Syntax.step) -> Xmldoc.Label.equal s.label absent)
                 p)
          false q
      in
      Alcotest.(check bool) "poison label present" true found)
    qs

let test_measure_empty () =
  let s = Workload.measure d [] in
  Alcotest.(check int) "no queries" 0 s.queries;
  T.check_float "zero avg" 0. s.avg_binding_tuples

let test_features_present () =
  (* over a decent sample, the generator exercises optional edges,
     predicates, and both axes *)
  let qs = Workload.positive ~seed:6 ~n:200 stable in
  let has_opt = ref false and has_pred = ref false in
  let has_child = ref false and has_desc = ref false in
  let rec scan_node (n : Twig.Syntax.node) =
    List.iter
      (fun (e : Twig.Syntax.edge) ->
        if e.optional then has_opt := true;
        List.iter
          (fun (s : Twig.Syntax.step) ->
            if s.preds <> [] then has_pred := true;
            match s.axis with
            | Twig.Syntax.Child -> has_child := true
            | Twig.Syntax.Descendant -> has_desc := true)
          e.path;
        scan_node e.target)
      n.edges
  in
  List.iter scan_node qs;
  Alcotest.(check bool) "optional edges" true !has_opt;
  Alcotest.(check bool) "predicates" true !has_pred;
  Alcotest.(check bool) "child axis" true !has_child;
  Alcotest.(check bool) "descendant axis" true !has_desc

let () =
  Alcotest.run "workload"
    [
      ( "positive",
        [
          Alcotest.test_case "all positive" `Quick test_positive_all_positive;
          Alcotest.test_case "distinct" `Quick test_positive_distinct;
          Alcotest.test_case "deterministic" `Quick test_positive_deterministic;
          Alcotest.test_case "params respected" `Quick test_params_respected;
          Alcotest.test_case "features present" `Quick test_features_present;
        ] );
      ( "negative",
        [
          Alcotest.test_case "all negative" `Quick test_negative_all_negative;
          Alcotest.test_case "poison label" `Quick test_negative_uses_absent_label;
          Alcotest.test_case "measure empty" `Quick test_measure_empty;
        ] );
    ]
