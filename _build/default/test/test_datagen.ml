(* Tests for the profile engine and the four dataset profiles. *)

module T = Testutil
module Tree = Xmldoc.Tree
open Datagen

let test_determinism () =
  List.iter
    (fun ds ->
      let a = Datasets.generate ~seed:11 ~scale:0.2 ds in
      let b = Datasets.generate ~seed:11 ~scale:0.2 ds in
      Alcotest.(check bool)
        (Datasets.name ds ^ " deterministic")
        true (Tree.equal a b);
      let c = Datasets.generate ~seed:12 ~scale:0.2 ds in
      Alcotest.(check bool)
        (Datasets.name ds ^ " seed sensitive")
        false (Tree.equal a c))
    Datasets.all

let test_scale () =
  List.iter
    (fun ds ->
      let small = Tree.size (Datasets.generate ~seed:3 ~scale:0.2 ds) in
      let large = Tree.size (Datasets.generate ~seed:3 ~scale:1.0 ds) in
      Alcotest.(check bool)
        (Datasets.name ds ^ " scales up")
        true
        (float_of_int large > 3. *. float_of_int small))
    Datasets.all

let test_roots () =
  let root ds = Xmldoc.Label.to_string (Tree.label (Datasets.generate ~scale:0.05 ds)) in
  Alcotest.(check string) "imdb root" "imdb" (root Datasets.Imdb);
  Alcotest.(check string) "xmark root" "site" (root Datasets.Xmark);
  Alcotest.(check string) "sprot root" "sptr" (root Datasets.Sprot);
  Alcotest.(check string) "dblp root" "dblp" (root Datasets.Dblp)

let test_of_name () =
  Alcotest.(check bool) "imdb" true (Datasets.of_name "IMDB" = Some Datasets.Imdb);
  Alcotest.(check bool) "swissprot" true (Datasets.of_name "SwissProt" = Some Datasets.Sprot);
  Alcotest.(check bool) "unknown" true (Datasets.of_name "nope" = None)

let test_xmark_recursion () =
  (* the parlist/listitem recursion must actually nest *)
  let doc = Datasets.generate ~seed:5 ~scale:2.0 Datasets.Xmark in
  let parlist = Xmldoc.Label.of_string "parlist" in
  let deep = ref 0 in
  let rec walk depth_in_parlist (t : Tree.t) =
    let d =
      if Xmldoc.Label.equal (Tree.label t) parlist then depth_in_parlist + 1
      else depth_in_parlist
    in
    if d >= 2 then incr deep;
    Array.iter (walk d) (Tree.children t)
  in
  walk 0 doc;
  Alcotest.(check bool) "nested parlists exist" true (!deep > 0)

let test_vertical_correlation () =
  (* IMDB: cast size correlates with keyword count through the movie
     variant — big casts should co-occur with many keywords *)
  let doc = Datasets.generate ~seed:9 ~scale:1.0 Datasets.Imdb in
  let movie = Xmldoc.Label.of_string "movie" in
  let keyword = Xmldoc.Label.of_string "keyword" in
  let actor = Xmldoc.Label.of_string "actor" in
  let big_kw = ref 0. and big_n = ref 0 and small_kw = ref 0. and small_n = ref 0 in
  Tree.iter
    (fun n ->
      if Xmldoc.Label.equal (Tree.label n) movie then begin
        let kw = Tree.count_label keyword n and cast = Tree.count_label actor n in
        if cast >= 8 then begin
          big_kw := !big_kw +. float_of_int kw;
          incr big_n
        end
        else begin
          small_kw := !small_kw +. float_of_int kw;
          incr small_n
        end
      end)
    doc;
  Alcotest.(check bool) "both kinds present" true (!big_n > 0 && !small_n > 0);
  let avg_big = !big_kw /. float_of_int !big_n in
  let avg_small = !small_kw /. float_of_int !small_n in
  Alcotest.(check bool) "keywords follow cast size" true (avg_big > avg_small +. 2.)

let test_sprot_anticorrelation () =
  (* domains and chains are anti-correlated under features *)
  let doc = Datasets.generate ~seed:4 ~scale:1.0 Datasets.Sprot in
  let features = Xmldoc.Label.of_string "features" in
  let domain = Xmldoc.Label.of_string "domain" in
  let chain = Xmldoc.Label.of_string "chain" in
  let both_high = ref 0 and total = ref 0 in
  Tree.iter
    (fun n ->
      if Xmldoc.Label.equal (Tree.label n) features then begin
        incr total;
        if Tree.count_label domain n >= 3 && Tree.count_label chain n >= 3 then
          incr both_high
      end)
    doc;
  Alcotest.(check bool) "features present" true (!total > 100);
  Alcotest.(check bool) "never many of both" true (!both_high = 0)

let test_profile_validation () =
  let bad =
    {
      Profile.name = "bad";
      root = "a";
      rules = [ Profile.simple "a" [ Profile.child "missing" ] ];
      max_depth = 4;
    }
  in
  match Profile.generate bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected missing-rule error"

let test_dists () =
  (* distribution draws stay within their supports *)
  let p kind =
    {
      Profile.name = "t";
      root = "r";
      rules = [ Profile.simple "r" [ Profile.child ~count:kind "x" ]; Profile.simple "x" [] ];
      max_depth = 3;
    }
  in
  for seed = 0 to 50 do
    let n t = Tree.count_label (Xmldoc.Label.of_string "x") t in
    let u = n (Profile.generate ~seed (p (Profile.Uniform (2, 5)))) in
    Alcotest.(check bool) "uniform support" true (u >= 2 && u <= 5);
    let c = n (Profile.generate ~seed (p (Profile.Const 3))) in
    Alcotest.(check int) "const" 3 c;
    let g = n (Profile.generate ~seed (p (Profile.Geometric (0.5, 8)))) in
    Alcotest.(check bool) "geometric cap" true (g >= 0 && g <= 8);
    let z = n (Profile.generate ~seed (p (Profile.Zipf (4, 1.2)))) in
    Alcotest.(check bool) "zipf support" true (z >= 1 && z <= 4)
  done

let test_max_depth () =
  let rec_profile =
    {
      Profile.name = "rec";
      root = "a";
      rules = [ Profile.simple "a" [ Profile.child ~count:(Profile.Const 1) "a" ] ];
      max_depth = 5;
    }
  in
  let t = Profile.generate rec_profile in
  Alcotest.(check int) "depth capped" 5 (Tree.height t)

let () =
  Alcotest.run "datagen"
    [
      ( "engine",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "scaling" `Quick test_scale;
          Alcotest.test_case "missing rule" `Quick test_profile_validation;
          Alcotest.test_case "distributions" `Quick test_dists;
          Alcotest.test_case "max depth" `Quick test_max_depth;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "roots" `Quick test_roots;
          Alcotest.test_case "of_name" `Quick test_of_name;
          Alcotest.test_case "xmark recursion" `Quick test_xmark_recursion;
          Alcotest.test_case "imdb vertical correlation" `Quick test_vertical_correlation;
          Alcotest.test_case "sprot anti-correlation" `Quick test_sprot_anticorrelation;
        ] );
    ]
