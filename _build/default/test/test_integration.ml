(* End-to-end integration tests: document -> summaries -> queries ->
   answers -> metrics, across the generated datasets. *)

module T = Testutil
module Tree = Xmldoc.Tree
module Synopsis = Sketch.Synopsis

let with_dataset ds scale f =
  let doc = Datagen.Datasets.generate ~seed:101 ~scale ds in
  let d = Twig.Doc.of_tree doc in
  let stable = Sketch.Stable.build doc in
  f doc d stable

(* The full zero-error pipeline: over the stable summary, estimates are
   exact and approximate nesting trees are isomorphic to the truth. *)
let test_zero_error_pipeline () =
  List.iter
    (fun ds ->
      with_dataset ds 0.15 (fun _doc d stable ->
          let qs = Workload.positive ~seed:1 ~n:25 stable in
          List.iter
            (fun q ->
              let exact = Twig.Eval.run ~dedup:false d q in
              let est = Sketch.Selectivity.estimate stable q in
              T.check_float ~eps:1e-6
                (Datagen.Datasets.name ds ^ ": " ^ Twig.Syntax.to_string q)
                exact.selectivity est;
              match (exact.nesting, Sketch.Eval.to_nesting_tree (Sketch.Eval.eval stable q)) with
              | Some nt, Some at ->
                T.check_float "esd zero" 0.
                  (Metric.Esd.between_trees nt at)
              | None, None -> ()
              | _ -> Alcotest.fail "emptiness mismatch")
            qs))
    Datagen.Datasets.all

(* Compression keeps estimates within a loose factor of truth and keeps
   the answers non-degenerate. *)
let test_compressed_pipeline () =
  with_dataset Datagen.Datasets.Imdb 0.4 (fun doc d stable ->
      let budget = Synopsis.size_bytes stable / 5 in
      let ts = Sketch.Build.build stable ~budget in
      Alcotest.(check bool) "fits" true (Synopsis.size_bytes ts <= budget);
      T.check_float "elements preserved"
        (float_of_int (Tree.size doc))
        (Synopsis.total_elements ts);
      let qs = Workload.positive ~seed:2 ~n:40 stable in
      let errs =
        List.map
          (fun q ->
            let exact = Twig.Eval.selectivity d q in
            let est = Sketch.Selectivity.estimate ts q in
            Sketch.Selectivity.relative_error ~actual:exact ~estimate:est ~sanity:1.)
          qs
      in
      let avg = List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs) in
      Alcotest.(check bool)
        (Printf.sprintf "avg error %.3f below 25%%" avg)
        true (avg < 0.25))

(* Negative workloads produce empty approximate answers (§6.1). *)
let test_negative_workloads_empty () =
  List.iter
    (fun ds ->
      with_dataset ds 0.15 (fun _doc _d stable ->
          let budget = Synopsis.size_bytes stable / 4 in
          let ts = Sketch.Build.build stable ~budget in
          let qs = Workload.negative ~seed:3 ~n:20 stable in
          List.iter
            (fun q ->
              let ans = Sketch.Eval.eval ts q in
              Alcotest.(check bool)
                ("empty: " ^ Twig.Syntax.to_string q)
                true ans.empty)
            qs))
    Datagen.Datasets.all

(* The xsketch baseline agrees with the exact evaluator on the same
   zero-compression regime it can represent: label-count queries. *)
let test_xsketch_baseline_sane () =
  with_dataset Datagen.Datasets.Dblp 0.2 (fun _doc d stable ->
      let training =
        List.map
          (fun q -> (q, Twig.Eval.selectivity d q))
          (Workload.positive ~seed:5 ~n:8 stable)
      in
      let xs = Xsketch.Builder.build stable ~training ~budget:4096 in
      let qs = Workload.positive ~seed:6 ~n:25 stable in
      List.iter
        (fun q ->
          let est = Xsketch.Estimate.tuples xs q in
          Alcotest.(check bool) "finite" true (Float.is_finite est && est >= 0.))
        qs)

(* ESD ranks the stable summary's answers at 0 and compressed answers
   worse; more compression cannot help. *)
let test_esd_budget_ordering () =
  with_dataset Datagen.Datasets.Sprot 0.3 (fun _doc d stable ->
      let full = Synopsis.size_bytes stable in
      let sweep =
        Sketch.Build.build_with_checkpoints stable ~budgets:[ full / 2; full / 10 ]
      in
      let qs = Workload.positive ~seed:7 ~n:15 stable in
      let avg_esd ts =
        let es =
          List.filter_map
            (fun q ->
              match (Twig.Eval.run d q).nesting with
              | None -> None
              | Some nt ->
                let ans = Sketch.Eval.eval ts q in
                let approx =
                  match Sketch.Eval.to_nesting_tree ans with
                  | Some t -> Sketch.Stable.build t
                  | None -> ans.Sketch.Eval.synopsis
                in
                Some (Metric.Esd.between_synopses (Sketch.Stable.build nt) approx))
            qs
        in
        List.fold_left ( +. ) 0. es /. float_of_int (List.length es)
      in
      match sweep with
      | [ (_, big); (_, small) ] ->
        let e_big = avg_esd big and e_small = avg_esd small in
        Alcotest.(check bool)
          (Printf.sprintf "esd grows with compression (%.0f <= %.0f)" e_big e_small)
          true
          (e_big <= e_small +. 1e-9)
      | _ -> Alcotest.fail "expected two checkpoints")

(* Serialization round trips a compressed sketch and its estimates. *)
let test_serialize_compressed () =
  with_dataset Datagen.Datasets.Xmark 0.3 (fun _doc _d stable ->
      let ts = Sketch.Build.build stable ~budget:(Synopsis.size_bytes stable / 4) in
      let ts' = Sketch.Serialize.of_string (Sketch.Serialize.to_string ts) in
      let q = Twig.Parse.query "//item{//mail?}" in
      T.check_float "estimates survive serialization"
        (Sketch.Selectivity.estimate ts q)
        (Sketch.Selectivity.estimate ts' q))

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "zero error over stable" `Slow test_zero_error_pipeline;
          Alcotest.test_case "compressed accuracy" `Slow test_compressed_pipeline;
          Alcotest.test_case "negative workloads empty" `Slow test_negative_workloads_empty;
          Alcotest.test_case "xsketch baseline sane" `Slow test_xsketch_baseline_sane;
          Alcotest.test_case "esd budget ordering" `Slow test_esd_budget_ordering;
          Alcotest.test_case "serialize compressed" `Quick test_serialize_compressed;
        ] );
    ]
