(* Tests for the distance metrics: MAC/EMD set distances, ESD, and the
   tree-edit baseline, including the Figure 10 / Example 5.1 scenario. *)

module T = Testutil
module Tree = Xmldoc.Tree

(* ---------------- set distances ---------------- *)

let size_one _ = 1.

let dist_eq a b = if String.equal a b then 0. else 2.

let test_mac_identical () =
  let s = [ ("x", 3.); ("y", 2.) ] in
  T.check_float "identical sets" 0. (Metric.Set_distance.mac ~size:size_one ~dist:dist_eq s s)

let test_mac_empty () =
  let s = [ ("x", 3.); ("y", 2.) ] in
  T.check_float "vs empty = total size" 5.
    (Metric.Set_distance.mac ~size:size_one ~dist:dist_eq s []);
  T.check_float "symmetric empty" 5.
    (Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [] s);
  T.check_float "both empty" 0. (Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [] [])

let test_mac_frequency_penalty () =
  (* 4-vs-1 is punished harder than 4-vs-6 + 1-vs-2 (Example 5.1) *)
  let d41 = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [ ("x", 4.) ] [ ("x", 1.) ] in
  let d46 = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [ ("x", 4.) ] [ ("x", 6.) ] in
  let d12 = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [ ("y", 1.) ] [ ("y", 2.) ] in
  Alcotest.(check bool) "superlinear ordering" true (d41 > d46 +. d12)

let test_mac_fraction_cheaper_than_absence () =
  (* claiming 0.3 of a sub-tree must cost less than claiming absence *)
  let frac =
    Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [ ("x", 1.) ] [ ("x", 0.3) ]
  in
  let absent = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq [ ("x", 1.) ] [] in
  Alcotest.(check bool) "fraction cheaper" true (frac < absent)

let test_mac_mass_matching () =
  (* one true class split into several near-identical ones is cheap *)
  let split =
    Metric.Set_distance.mac ~size:size_one ~dist:dist_eq
      [ ("x", 10.) ]
      [ ("x", 4.); ("x", 6.) ]
  in
  T.check_float "split classes free" 0. split

let test_emd_basic () =
  let emd = Metric.Set_distance.emd ~size:size_one ~dist:dist_eq in
  T.check_float "identical" 0. (emd [ ("x", 3.) ] [ ("x", 3.) ]);
  T.check_float "move 2 at distance 2" 4. (emd [ ("x", 3.) ] [ ("x", 1.); ("y", 2.) ]);
  T.check_float "pure creation" 2. (emd [ ("x", 1.) ] [ ("x", 1.); ("y", 2.) ]);
  T.check_float "empty" 3. (emd [ ("x", 3.) ] [])

let test_emd_optimal_routing () =
  (* EMD must route mass optimally, not greedily by list order *)
  let dist a b =
    match (a, b) with
    | "u1", "v1" | "u2", "v2" -> 1.
    | "u1", "v2" | "u2", "v1" -> 10.
    | _ -> 0.
  in
  let emd = Metric.Set_distance.emd ~size:(fun _ -> 100.) ~dist in
  T.check_float "diagonal matching" 2.
    (emd [ ("u1", 1.); ("u2", 1.) ] [ ("v2", 1.); ("v1", 1.) ])

let arb_multiset =
  QCheck.(
    list_of_size (Gen.int_range 0 6)
      (pair (oneofl [ "a"; "b"; "c"; "d" ]) (float_range 0.5 5.)))

let dedup m =
  (* generators can repeat values; coalesce for cleaner semantics *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, f) ->
      Hashtbl.replace tbl v (f +. Option.value ~default:0. (Hashtbl.find_opt tbl v)))
    m;
  Hashtbl.fold (fun v f acc -> (v, f) :: acc) tbl []

let prop_mac_nonneg_and_self =
  T.qtest "mac >= 0 and mac(s,s) = 0" arb_multiset (fun m ->
      let m = dedup m in
      let mac = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq in
      mac m m < 1e-9 && mac m [] >= 0.)

let prop_mac_symmetric =
  T.qtest "mac symmetric" (QCheck.pair arb_multiset arb_multiset) (fun (a, b) ->
      let a = dedup a and b = dedup b in
      let mac = Metric.Set_distance.mac ~size:size_one ~dist:dist_eq in
      T.feq ~eps:1e-6 (mac a b) (mac b a))

let prop_emd_symmetric =
  T.qtest ~count:100 "emd symmetric" (QCheck.pair arb_multiset arb_multiset)
    (fun (a, b) ->
      let a = dedup a and b = dedup b in
      let emd = Metric.Set_distance.emd ~size:size_one ~dist:dist_eq in
      T.feq ~eps:1e-6 (emd a b) (emd b a))

let prop_emd_leq_deletion =
  T.qtest ~count:100 "emd <= delete everything" (QCheck.pair arb_multiset arb_multiset)
    (fun (a, b) ->
      let a = dedup a and b = dedup b in
      let emd = Metric.Set_distance.emd ~size:size_one ~dist:dist_eq in
      let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. in
      emd a b <= total a +. total b +. 1e-6)

(* ---------------- tree edit distance ---------------- *)

let test_tree_edit_basics () =
  let a = Tree.v "a" [ Tree.v "b" []; Tree.v "c" [] ] in
  Alcotest.(check int) "self" 0 (Metric.Tree_edit.distance a a);
  let b = Tree.v "a" [ Tree.v "b" [] ] in
  Alcotest.(check int) "one deletion" 1 (Metric.Tree_edit.distance a b);
  let c = Tree.v "a" [ Tree.v "b" []; Tree.v "d" [] ] in
  Alcotest.(check int) "one rename" 1 (Metric.Tree_edit.distance a c);
  Alcotest.(check int) "rename forbidden = 2" 2 (Metric.Tree_edit.distance_insert_delete a c)

let test_tree_edit_structure () =
  let a = Tree.v "a" [ Tree.v "b" [ Tree.v "c" [] ] ] in
  let b = Tree.v "a" [ Tree.v "b" []; Tree.v "c" [] ] in
  (* moving c up = delete + insert under unit model is 2, but ZS allows
     keeping c and restructuring at cost <= 2 *)
  Alcotest.(check bool) "small restructure" true (Metric.Tree_edit.distance a b <= 2)

let prop_tree_edit_self =
  T.qtest ~count:60 "distance t t = 0" (T.arb_tree ()) (fun t ->
      Metric.Tree_edit.distance t t = 0)

let prop_tree_edit_symmetric =
  T.qtest ~count:40 "tree edit symmetric"
    (QCheck.pair (T.arb_tree ()) (T.arb_tree ()))
    (fun (a, b) -> Metric.Tree_edit.distance a b = Metric.Tree_edit.distance b a)

let prop_tree_edit_bounds =
  T.qtest ~count:40 "tree edit bounded by sizes"
    (QCheck.pair (T.arb_tree ()) (T.arb_tree ()))
    (fun (a, b) ->
      let d = Metric.Tree_edit.distance a b in
      d >= abs (Tree.size a - Tree.size b) && d <= Tree.size a + Tree.size b)

let prop_tree_edit_triangle =
  T.qtest ~count:25 "tree edit triangle inequality"
    (QCheck.triple (T.arb_tree ()) (T.arb_tree ()) (T.arb_tree ()))
    (fun (a, b, c) ->
      Metric.Tree_edit.distance a c
      <= Metric.Tree_edit.distance a b + Metric.Tree_edit.distance b c)

(* ---------------- ESD ---------------- *)

(* the Figure 10 trees *)
let sc () = Tree.v "c" [ Tree.v "x" [] ]

let sd () = Tree.v "d" [ Tree.v "y" [] ]

let mk_a nc nd = Tree.v "a" (List.init nc (fun _ -> sc ()) @ List.init nd (fun _ -> sd ()))

let fig10_t = Tree.v "r" [ mk_a 4 1; mk_a 1 4 ]

let fig10_t1 = Tree.v "r" [ mk_a 1 1; mk_a 4 4 ]

let fig10_t2 = Tree.v "r" [ mk_a 6 2; mk_a 2 6 ]

let test_esd_self () =
  T.check_float "ESD(T,T)" 0. (Metric.Esd.between_trees fig10_t fig10_t);
  T.check_float "ESD(T1,T1)" 0. (Metric.Esd.between_trees fig10_t1 fig10_t1)

let test_fig10_esd_ordering () =
  (* the correlation-preserving answer T2 must beat T1 under ESD/MAC *)
  let d1 = Metric.Esd.between_trees fig10_t fig10_t1 in
  let d2 = Metric.Esd.between_trees fig10_t fig10_t2 in
  Alcotest.(check bool) "T2 closer than T1" true (d2 < d1)

let test_fig10_tree_edit_fails () =
  (* tree-edit does NOT prefer T2 — the motivating failure of §5 *)
  let d1 = Metric.Tree_edit.distance_insert_delete fig10_t fig10_t1 in
  let d2 = Metric.Tree_edit.distance_insert_delete fig10_t fig10_t2 in
  Alcotest.(check bool) "edit distance misleads" true (d1 <= d2)

let test_fig10_linear_ablation () =
  (* with a linear penalty (EMD) the two approximations tie: the
     superlinear multiplicity penalty is what creates the preference *)
  let d1 = Metric.Esd.between_trees ~metric:Emd fig10_t fig10_t1 in
  let d2 = Metric.Esd.between_trees ~metric:Emd fig10_t fig10_t2 in
  T.check_float "EMD ties" d1 d2

let test_esd_example51_element_level () =
  let esd_pair x y =
    Metric.Esd.between_trees (Tree.v "root" [ x ]) (Tree.v "root" [ y ])
  in
  let d_v = esd_pair (mk_a 4 1) (mk_a 1 1) in
  let d_v' = esd_pair (mk_a 4 1) (mk_a 6 2) in
  Alcotest.(check bool) "ESD(u,v) > ESD(u,v')" true (d_v > d_v')

let test_esd_label_mismatch () =
  let a = Tree.v "a" [] and b = Tree.v "b" [] in
  T.check_float "different roots = total size" 2. (Metric.Esd.between_trees a b)

let test_esd_subtree_sizes () =
  let s = Sketch.Stable.build fig10_t in
  let sizes = Metric.Esd.subtree_sizes s in
  T.check_float "root size = document size"
    (float_of_int (Tree.size fig10_t))
    sizes.(s.Sketch.Synopsis.root)

let prop_esd_self_zero =
  T.qtest ~count:100 "ESD(t,t) = 0" (T.arb_tree ()) (fun t ->
      Metric.Esd.between_trees t t < 1e-9)

let prop_esd_symmetric =
  T.qtest ~count:60 "ESD symmetric" (QCheck.pair (T.arb_tree ()) (T.arb_tree ()))
    (fun (a, b) ->
      T.feq ~eps:1e-6 (Metric.Esd.between_trees a b) (Metric.Esd.between_trees b a))

let prop_esd_nonneg =
  T.qtest ~count:60 "ESD >= 0" (QCheck.pair (T.arb_tree ()) (T.arb_tree ()))
    (fun (a, b) -> Metric.Esd.between_trees a b >= 0.)

let prop_esd_iso_invariant =
  (* sibling order does not matter *)
  T.qtest ~count:60 "ESD invariant under sibling reorder" (T.arb_tree ()) (fun t ->
      let rec reversed (x : Tree.t) =
        Tree.make (Tree.label x)
          (List.rev_map reversed (Array.to_list (Tree.children x)))
      in
      Metric.Esd.between_trees t (reversed t) < 1e-9)

let prop_esd_emd_agree_on_equal =
  T.qtest ~count:60 "all metrics are zero on isomorphic trees" (T.arb_tree ())
    (fun t ->
      Metric.Esd.between_trees ~metric:Emd t t < 1e-9
      && Metric.Esd.between_trees ~metric:Mac_linear t t < 1e-9)

let () =
  Alcotest.run "metric"
    [
      ( "set-distance",
        [
          Alcotest.test_case "mac identical" `Quick test_mac_identical;
          Alcotest.test_case "mac vs empty" `Quick test_mac_empty;
          Alcotest.test_case "mac frequency penalty" `Quick test_mac_frequency_penalty;
          Alcotest.test_case "fraction cheaper than absence" `Quick
            test_mac_fraction_cheaper_than_absence;
          Alcotest.test_case "mass matching" `Quick test_mac_mass_matching;
          Alcotest.test_case "emd basics" `Quick test_emd_basic;
          Alcotest.test_case "emd optimal routing" `Quick test_emd_optimal_routing;
          prop_mac_nonneg_and_self;
          prop_mac_symmetric;
          prop_emd_symmetric;
          prop_emd_leq_deletion;
        ] );
      ( "tree-edit",
        [
          Alcotest.test_case "basics" `Quick test_tree_edit_basics;
          Alcotest.test_case "restructuring" `Quick test_tree_edit_structure;
          prop_tree_edit_self;
          prop_tree_edit_symmetric;
          prop_tree_edit_bounds;
          prop_tree_edit_triangle;
        ] );
      ( "esd",
        [
          Alcotest.test_case "self distance" `Quick test_esd_self;
          Alcotest.test_case "figure 10 ordering" `Quick test_fig10_esd_ordering;
          Alcotest.test_case "tree edit fails figure 10" `Quick test_fig10_tree_edit_fails;
          Alcotest.test_case "linear ablation ties" `Quick test_fig10_linear_ablation;
          Alcotest.test_case "example 5.1 element level" `Quick
            test_esd_example51_element_level;
          Alcotest.test_case "label mismatch" `Quick test_esd_label_mismatch;
          Alcotest.test_case "subtree sizes" `Quick test_esd_subtree_sizes;
          prop_esd_self_zero;
          prop_esd_symmetric;
          prop_esd_nonneg;
          prop_esd_iso_invariant;
          prop_esd_emd_agree_on_equal;
        ] );
    ]
