(* Tests for the synopsis representation, BUILD_STABLE, Expand, the
   interval heap, canonicalization, and serialization. *)

open Sketch
module T = Testutil
module Tree = Xmldoc.Tree

let fig1 =
  Xmldoc.Parser.of_string
    "<d><a><n/><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><b><t/></b></a>\
     <a><p><y/><t/><k/></p><n/><b><t/></b></a>\
     <a><n/><p><y/><t/><k/></p><b><t/></b></a></d>"

(* ---------------- BUILD_STABLE ---------------- *)

let test_stable_fig1 () =
  let s = Stable.build fig1 in
  (* d; a(n,p,p,b) x1; a(n,p,b) x2; p(y,t,k); p(y,t,k,k); b(t);
     n; y; t; k  -> 10 classes *)
  Alcotest.(check int) "classes" 10 (Synopsis.num_nodes s);
  Alcotest.(check bool) "count stable" true (Synopsis.is_count_stable s);
  T.check_float "total elements" (float_of_int (Tree.size fig1)) (Synopsis.total_elements s);
  T.check_float "root count" 1. (Synopsis.count s s.Synopsis.root)

let test_stable_same_label_different_structure () =
  (* Figure 3: two documents with equal label paths but different
     count structure get different stable synopses *)
  let t1 =
    Xmldoc.Parser.of_string
      "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
       <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>"
  in
  let t2 =
    Xmldoc.Parser.of_string
      "<r><a><b><c/></b><b><c/></b></a>\
       <a><b><c/><c/><c/><c/></b><b><c/><c/><c/><c/></b></a></r>"
  in
  let s1 = Stable.build t1 and s2 = Stable.build t2 in
  (* t1: both a's identical -> one a class; t2: two a classes *)
  Alcotest.(check int) "t1 classes" 5 (Synopsis.num_nodes s1);
  Alcotest.(check int) "t2 classes" 6 (Synopsis.num_nodes s2)

let test_class_of_elements () =
  let s, classes = Stable.class_of_elements fig1 in
  Alcotest.(check int) "one class per element" (Tree.size fig1) (Array.length classes);
  (* extent counts must match the class assignment *)
  let counts = Array.make (Synopsis.num_nodes s) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) classes;
  Array.iteri
    (fun u n -> T.check_float "extent count" (float_of_int n) (Synopsis.count s u))
    counts

(* Lemma 3.1: Expand inverts BUILD_STABLE up to sibling order. *)
let prop_stable_roundtrip =
  T.qtest "Expand (Build_stable t) iso t" (T.arb_tree ()) (fun t ->
      Tree.equal_unordered t (Expand.exact (Stable.build t)))

let prop_stable_minimal =
  (* building the stable summary of the expansion is a fixpoint *)
  T.qtest "stable summary is a fixpoint" (T.arb_tree ()) (fun t ->
      let s = Stable.build t in
      Synopsis.num_nodes (Stable.build (Expand.exact s)) = Synopsis.num_nodes s)

let prop_stable_counts =
  T.qtest "stable preserves per-label element counts" (T.arb_tree ()) (fun t ->
      let s = Stable.build t in
      List.for_all
        (fun l ->
          let from_syn =
            Array.fold_left
              (fun acc (n : Synopsis.node) ->
                if Xmldoc.Label.equal n.label l then acc +. n.count else acc)
              0. s.Synopsis.nodes
          in
          T.feq from_syn (float_of_int (Tree.count_label l t)))
        (Tree.distinct_labels t))

let prop_stable_idempotent_on_regular =
  T.qtest "stable synopsis smaller than document" (T.arb_tree ()) (fun t ->
      Synopsis.num_nodes (Stable.build t) <= Tree.size t)

(* ---------------- Expand.approximate ---------------- *)

let test_expand_approximate_totals () =
  (* fractional counts are distributed with preserved totals *)
  let nodes =
    [|
      { Synopsis.label = Xmldoc.Label.of_string "r"; count = 1.; edges = [| (1, 4.) |] };
      { Synopsis.label = Xmldoc.Label.of_string "a"; count = 4.; edges = [| (2, 1.5) |] };
      { Synopsis.label = Xmldoc.Label.of_string "b"; count = 6.; edges = [||] };
    |]
  in
  let s = Synopsis.make ~root:0 nodes in
  let t = Expand.approximate s in
  Alcotest.(check int) "4 a's" 4 (Tree.count_label (Xmldoc.Label.of_string "a") t);
  Alcotest.(check int) "6 b's" 6 (Tree.count_label (Xmldoc.Label.of_string "b") t)

let test_expand_cyclic_guard () =
  let nodes =
    [|
      { Synopsis.label = Xmldoc.Label.of_string "r"; count = 1.; edges = [| (1, 1.) |] };
      { Synopsis.label = Xmldoc.Label.of_string "a"; count = 5.; edges = [| (1, 1.) |] };
    |]
  in
  let s = Synopsis.make ~root:0 nodes in
  (match Expand.exact s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection in exact expansion");
  match Expand.approximate ~max_nodes:1000 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected max_nodes abort on a k=1 self loop"

(* ---------------- synopsis helpers ---------------- *)

let test_synopsis_access () =
  let s = Stable.build fig1 in
  Alcotest.(check int) "size bytes"
    ((Synopsis.num_nodes s * Synopsis.node_bytes)
    + (Synopsis.num_edges s * Synopsis.edge_bytes))
    (Synopsis.size_bytes s);
  let parents = Synopsis.parents s in
  let total_in = Array.fold_left (fun acc a -> acc + Array.length a) 0 parents in
  Alcotest.(check int) "in-degree sum = edges" (Synopsis.num_edges s) total_in;
  (* edge_count finds existing edges and returns 0 for absent *)
  Array.iteri
    (fun u (n : Synopsis.node) ->
      Array.iter
        (fun (v, k) -> T.check_float "edge_count" k (Synopsis.edge_count s u v))
        n.Synopsis.edges)
    s.Synopsis.nodes;
  T.check_float "absent edge" 0. (Synopsis.edge_count s s.Synopsis.root s.Synopsis.root)

let test_heights () =
  let s = Stable.build fig1 in
  let h = Synopsis.heights s in
  Alcotest.(check int) "root height = doc height" (Tree.height fig1) h.(s.Synopsis.root)

let test_canonicalize_merges_leaves () =
  (* two same-label leaf classes merge *)
  let lbl = Xmldoc.Label.of_string in
  let nodes =
    [|
      { Synopsis.label = lbl "r"; count = 1.; edges = [| (1, 2.); (2, 3.) |] };
      { Synopsis.label = lbl "x"; count = 2.; edges = [||] };
      { Synopsis.label = lbl "x"; count = 3.; edges = [||] };
    |]
  in
  let s = Synopsis.canonicalize (Synopsis.make ~root:0 nodes) in
  Alcotest.(check int) "merged" 2 (Synopsis.num_nodes s);
  T.check_float "counts added" 5. (Synopsis.count s (1 - s.Synopsis.root));
  T.check_float "edge counts added" 5.
    (Synopsis.edge_count s s.Synopsis.root (1 - s.Synopsis.root))

let test_canonicalize_keeps_distinct () =
  let lbl = Xmldoc.Label.of_string in
  let nodes =
    [|
      { Synopsis.label = lbl "r"; count = 1.; edges = [| (1, 2.); (2, 3.) |] };
      { Synopsis.label = lbl "x"; count = 2.; edges = [| (3, 1.) |] };
      { Synopsis.label = lbl "x"; count = 3.; edges = [| (3, 2.) |] };
      { Synopsis.label = lbl "y"; count = 8.; edges = [||] };
    |]
  in
  let s = Synopsis.canonicalize (Synopsis.make ~root:0 nodes) in
  Alcotest.(check int) "no bogus merge" 4 (Synopsis.num_nodes s)

let prop_canonicalize_fixpoint_on_stable =
  T.qtest "stable synopses are canonical" (T.arb_tree ()) (fun t ->
      let s = Stable.build t in
      Synopsis.num_nodes (Synopsis.canonicalize s) = Synopsis.num_nodes s)

let prop_canonicalize_preserves_expansion =
  T.qtest "canonicalization preserves the document" (T.arb_tree ()) (fun t ->
      let s = Stable.build t in
      Tree.equal_unordered (Expand.exact s) (Expand.exact (Synopsis.canonicalize s)))

(* ---------------- serialization ---------------- *)

let test_serialize_roundtrip () =
  let s = Stable.build fig1 in
  let s' = Serialize.of_string (Serialize.to_string s) in
  Alcotest.(check int) "nodes" (Synopsis.num_nodes s) (Synopsis.num_nodes s');
  Alcotest.(check int) "edges" (Synopsis.num_edges s) (Synopsis.num_edges s');
  Alcotest.(check bool) "same expansion" true
    (Tree.equal_unordered (Expand.exact s) (Expand.exact s'))

let prop_serialize_roundtrip =
  T.qtest ~count:100 "serialize round trip" (T.arb_tree ()) (fun t ->
      let s = Stable.build t in
      let s' = Serialize.of_string (Serialize.to_string s) in
      Tree.equal_unordered (Expand.exact s) (Expand.exact s'))

let test_serialize_errors () =
  let fails src =
    match Serialize.of_string src with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "expected failure on %S" src
  in
  fails "";
  fails "root 0";
  fails "treesketch 1\nroot 0\nnode 1 2 a\n";
  fails "treesketch 1\nroot 0\nbogus line\n"

(* ---------------- interval heap ---------------- *)

let test_dheap_basics () =
  let h = Dheap.create () in
  Alcotest.(check bool) "empty" true (Dheap.is_empty h);
  List.iter (fun p -> Dheap.push h p (int_of_float p)) [ 5.; 1.; 9.; 3.; 7. ];
  Alcotest.(check int) "length" 5 (Dheap.length h);
  Alcotest.(check (option (pair (float 0.) int))) "min" (Some (1., 1)) (Dheap.pop_min h);
  Alcotest.(check (option (pair (float 0.) int))) "max" (Some (9., 9)) (Dheap.pop_max h);
  Alcotest.(check (option (pair (float 0.) int))) "min2" (Some (3., 3)) (Dheap.pop_min h);
  Alcotest.(check (option (pair (float 0.) int))) "max2" (Some (7., 7)) (Dheap.pop_max h);
  Alcotest.(check (option (pair (float 0.) int))) "last" (Some (5., 5)) (Dheap.pop_min h);
  Alcotest.(check bool) "drained" true (Dheap.is_empty h);
  Alcotest.(check (option (pair (float 0.) int))) "empty pop" None (Dheap.pop_min h)

let arb_ops =
  (* a random interleaving of pushes and pops *)
  QCheck.(list_of_size (Gen.int_range 1 200) (pair (int_range 0 2) (float_range (-100.) 100.)))

let prop_dheap_invariant =
  T.qtest "interval heap invariant" arb_ops (fun ops ->
      let h = Dheap.create () in
      List.for_all
        (fun (op, prio) ->
          (match op with
          | 0 -> Dheap.push h prio ()
          | 1 -> ignore (Dheap.pop_min h)
          | _ -> ignore (Dheap.pop_max h));
          Dheap.check_invariant h)
        ops)

let prop_dheap_total_order =
  T.qtest "drain min yields sorted output" QCheck.(list (float_range (-1e6) 1e6))
    (fun prios ->
      let h = Dheap.create () in
      List.iter (fun p -> Dheap.push h p ()) prios;
      let rec drain acc =
        match Dheap.pop_min h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort Stdlib.compare prios)

let prop_dheap_max_order =
  T.qtest "drain max yields reverse sorted output"
    QCheck.(list (float_range (-1e6) 1e6))
    (fun prios ->
      let h = Dheap.create () in
      List.iter (fun p -> Dheap.push h p ()) prios;
      let rec drain acc =
        match Dheap.pop_max h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      drain [] = List.sort (fun a b -> Stdlib.compare b a) prios)

let prop_dheap_mixed =
  T.qtest "min <= max at all times" arb_ops (fun ops ->
      let h = Dheap.create () in
      List.for_all
        (fun (op, prio) ->
          (match op with
          | 0 -> Dheap.push h prio ()
          | 1 -> ignore (Dheap.pop_min h)
          | _ -> ignore (Dheap.pop_max h));
          match (Dheap.min_priority h, Dheap.max_priority h) with
          | Some lo, Some hi -> lo <= hi
          | None, None -> Dheap.is_empty h
          | _ -> false)
        ops)

(* model check: the interval heap agrees with a sorted-list reference
   under arbitrary interleavings *)
let prop_dheap_model =
  T.qtest ~count:150 "interval heap matches sorted-list model" arb_ops (fun ops ->
      let h = Dheap.create () in
      let model = ref [] in
      List.for_all
        (fun (op, prio) ->
          match op with
          | 0 ->
            Dheap.push h prio ();
            model := List.merge Stdlib.compare [ prio ] !model;
            true
          | 1 -> (
            match (Dheap.pop_min h, !model) with
            | None, [] -> true
            | Some (p, ()), m :: rest ->
              model := rest;
              p = m
            | _ -> false)
          | _ -> (
            match (Dheap.pop_max h, List.rev !model) with
            | None, [] -> true
            | Some (p, ()), m :: rest ->
              model := List.rev rest;
              p = m
            | _ -> false))
        ops)

(* canonicalization is idempotent, also on compressed (non-stable)
   synopses *)
let prop_canonicalize_idempotent =
  T.qtest ~count:60 "canonicalize is idempotent" (T.arb_tree ()) (fun t ->
      let stable = Stable.build t in
      let ts = Build.build stable ~budget:(Synopsis.size_bytes stable / 2) in
      let once = Synopsis.canonicalize ts in
      let twice = Synopsis.canonicalize once in
      Synopsis.num_nodes once = Synopsis.num_nodes twice
      && T.feq (Synopsis.total_elements once) (Synopsis.total_elements twice))

let () =
  Alcotest.run "sketch"
    [
      ( "stable",
        [
          Alcotest.test_case "figure 1 classes" `Quick test_stable_fig1;
          Alcotest.test_case "figure 3 distinction" `Quick
            test_stable_same_label_different_structure;
          Alcotest.test_case "class_of_elements" `Quick test_class_of_elements;
          prop_stable_roundtrip;
          prop_stable_minimal;
          prop_stable_counts;
          prop_stable_idempotent_on_regular;
        ] );
      ( "expand",
        [
          Alcotest.test_case "approximate totals" `Quick test_expand_approximate_totals;
          Alcotest.test_case "cycle guards" `Quick test_expand_cyclic_guard;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "accessors" `Quick test_synopsis_access;
          Alcotest.test_case "heights" `Quick test_heights;
          Alcotest.test_case "canonicalize merges" `Quick test_canonicalize_merges_leaves;
          Alcotest.test_case "canonicalize distinct" `Quick test_canonicalize_keeps_distinct;
          prop_canonicalize_fixpoint_on_stable;
          prop_canonicalize_preserves_expansion;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "round trip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialize_errors;
          prop_serialize_roundtrip;
        ] );
      ( "dheap",
        [
          Alcotest.test_case "basics" `Quick test_dheap_basics;
          prop_dheap_invariant;
          prop_dheap_total_order;
          prop_dheap_max_order;
          prop_dheap_mixed;
          prop_dheap_model;
        ] );
      ("canonical-extra", [ prop_canonicalize_idempotent ]);
    ]
