test/test_datagen.ml: Alcotest Array Datagen Datasets List Profile Testutil Xmldoc
