test/test_build.ml: Alcotest Array Build Cluster Datagen List Option Printf Random Sketch Stable Synopsis Testutil Topdown Xmldoc
