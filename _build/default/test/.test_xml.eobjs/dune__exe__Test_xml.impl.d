test/test_xml.ml: Alcotest Buffer Gen Label List Parser Printer Printf QCheck Stats String Testutil Tree Xmldoc
