test/test_metric.ml: Alcotest Array Gen Hashtbl List Metric Option QCheck Sketch String Testutil Xmldoc
