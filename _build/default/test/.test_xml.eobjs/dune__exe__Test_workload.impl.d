test/test_workload.ml: Alcotest Datagen List Sketch Stdlib Testutil Twig Workload Xmldoc
