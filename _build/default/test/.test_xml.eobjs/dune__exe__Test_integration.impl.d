test/test_integration.ml: Alcotest Datagen Float List Metric Printf Sketch Testutil Twig Workload Xmldoc Xsketch
