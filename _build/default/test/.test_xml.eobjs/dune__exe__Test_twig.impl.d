test/test_twig.ml: Alcotest Array Doc Eval Float List Parse QCheck Syntax Testutil Twig Xmldoc
