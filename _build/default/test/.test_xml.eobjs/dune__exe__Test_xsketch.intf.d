test/test_xsketch.mli:
