test/test_build.mli:
