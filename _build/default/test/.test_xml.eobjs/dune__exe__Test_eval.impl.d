test/test_eval.ml: Alcotest Array Build Eval Float List QCheck Selectivity Sketch Stable String Synopsis Testutil Twig Xmldoc
