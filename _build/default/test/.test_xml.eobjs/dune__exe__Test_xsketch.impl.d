test/test_xsketch.ml: Alcotest Array Datagen Float Gen List QCheck Sketch Stdlib Testutil Twig Workload Xmldoc Xsketch
