test/test_sketch.ml: Alcotest Array Build Dheap Expand Gen List QCheck Serialize Sketch Stable Stdlib Synopsis Testutil Xmldoc
