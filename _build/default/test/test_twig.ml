(* Tests for the twig-query substrate: syntax, parser, indexed
   documents, exact evaluation. *)

open Twig
module T = Testutil
module Tree = Xmldoc.Tree

(* the running example: the document of Figure 1 *)
let fig1 =
  Xmldoc.Parser.of_string
    "<d><a><n/><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><b><t/></b></a>\
     <a><p><y/><t/><k/></p><n/><b><t/></b></a>\
     <a><n/><p><y/><t/><k/></p><b><t/></b></a></d>"

let doc = Doc.of_tree fig1

(* ---------------- syntax & parser ---------------- *)

let roundtrip src =
  let q = Parse.query src in
  Alcotest.(check string) ("round trip " ^ src) src (Syntax.to_string q)

let test_parse_roundtrip () =
  List.iter roundtrip
    [
      "//a";
      "/a/b/c";
      "//a[//b]";
      "//a[b/c][//d]/e";
      "//a{//b,//c?}";
      "//a[//b]{//p{//k?},//n?}";
      "/a//b[c[d]]{/e?,//f{//g}}";
    ]

let test_parse_pred_default_axis () =
  (* a bare name in a predicate defaults to the child axis *)
  let q1 = Parse.query "//a[b]" in
  let q2 = Parse.query "//a[/b]" in
  Alcotest.(check bool) "bare = child" true (Syntax.equal q1 q2);
  let q3 = Parse.query "//a[//b]" in
  Alcotest.(check bool) "desc differs" false (Syntax.equal q1 q3)

let test_parse_errors () =
  let fails src =
    match Parse.query src with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  fails "";
  fails "//";
  fails "//a[";
  fails "//a{//b";
  fails "//a{}";
  fails "a[]"

let test_renumber () =
  let q = Parse.query "//a{//b{//c},//d}" in
  let vars = List.map (fun (n : Syntax.node) -> n.var) (Syntax.nodes_preorder q) in
  Alcotest.(check (list int)) "pre-order vars" [ 0; 1; 2; 3; 4 ] vars;
  Alcotest.(check int) "num vars" 5 (Syntax.num_vars q)

let prop_query_roundtrip =
  T.qtest "query print/parse round trip" T.arb_query (fun q ->
      Syntax.equal q (Parse.query (Syntax.to_string q)))

(* ---------------- indexed documents ---------------- *)

let test_doc_basics () =
  Alcotest.(check int) "size" (Tree.size fig1) (Doc.size doc);
  Alcotest.(check int) "root" 0 (Doc.root doc);
  Alcotest.(check string) "root label" "d"
    (Xmldoc.Label.to_string (Doc.label doc 0));
  Alcotest.(check int) "root subtree" (Doc.size doc) (Doc.subtree_size doc 0);
  Alcotest.(check int) "root parent" (-1) (Doc.parent doc 0)

let test_doc_preorder_ranges () =
  for oid = 0 to Doc.size doc - 1 do
    let sum =
      Array.fold_left
        (fun acc c -> acc + Doc.subtree_size doc c)
        1 (Doc.children doc oid)
    in
    Alcotest.(check int) "subtree = 1 + children subtrees" (Doc.subtree_size doc oid) sum;
    Array.iter
      (fun c -> Alcotest.(check int) "parent pointer" oid (Doc.parent doc c))
      (Doc.children doc oid)
  done

let prop_doc_consistent =
  T.qtest "Doc invariants on random trees" (T.arb_tree ()) (fun t ->
      let d = Doc.of_tree t in
      Doc.size d = Tree.size t
      && Doc.height d = Tree.height t
      && begin
        let ok = ref true in
        for oid = 0 to Doc.size d - 1 do
          let last = Doc.subtree_last d oid in
          if last >= Doc.size d then ok := false;
          Array.iter (fun c -> if c <= oid || c > last then ok := false) (Doc.children d oid)
        done;
        !ok
      end)

(* ---------------- exact evaluation ---------------- *)

let sel src = Eval.selectivity doc (Parse.query src)

let test_eval_simple_counts () =
  T.check_float "//a" 3. (sel "//a");
  T.check_float "//p" 4. (sel "//p");
  T.check_float "//k" 5. (sel "//k");
  T.check_float "/a/p" 4. (sel "/a/p");
  T.check_float "//zz" 0. (sel "//zz")

let test_eval_preds () =
  T.check_float "//a[//b]" 3. (sel "//a[//b]");
  T.check_float "//p[k]" 4. (sel "//p[k]");
  T.check_float "//a[zz]" 0. (sel "//a[zz]");
  T.check_float "//a[//b][//k]" 3. (sel "//a[//b][//k]")

let test_eval_twig_fig2 () =
  let q = Parse.query "//a[//b]{//p{//k},//n}" in
  (* a1: 2 p's with 1 and 2 k's times 1 n; a2, a3: 1 p with 1 k, 1 n *)
  let expected = (1. +. 2.) +. 1. +. 1. in
  T.check_float "fig2 tuples" expected (Eval.selectivity doc q)

let test_eval_optional () =
  let required = Parse.query "//a{//zz}" in
  let optional = Parse.query "//a{//zz?}" in
  T.check_float "required empty nullifies" 0. (Eval.selectivity doc required);
  T.check_float "optional empty keeps parents" 3. (Eval.selectivity doc optional)

let test_eval_nesting_tree () =
  let q = Parse.query "//b{/t}" in
  match (Eval.run doc q).nesting with
  | None -> Alcotest.fail "expected non-empty nesting tree"
  | Some nt ->
    (* root + 3 b's + 3 t's *)
    Alcotest.(check int) "nesting size" 7 (Tree.size nt);
    let b = Eval.nesting_label 1 (Xmldoc.Label.of_string "b") in
    Alcotest.(check int) "3 bound b elements" 3 (Tree.count_label b nt)

let test_eval_empty_nesting () =
  let q = Parse.query "//zz" in
  let r = Eval.run doc q in
  Alcotest.(check bool) "no nesting" true (r.nesting = None);
  T.check_float "zero tuples" 0. r.selectivity

let test_eval_path_dedup () =
  (* nested identical tags a1 > a2 > a3: node-set semantics count the
     distinct bound elements (a2, a3); witness-path semantics count
     step assignments (a2 via a1; a3 via a1; a3 via a2) *)
  let t = Xmldoc.Parser.of_string "<r><a><a><a/></a></a></r>" in
  let d = Doc.of_tree t in
  T.check_float "//a" 3. (Eval.selectivity d (Parse.query "//a"));
  T.check_float "//a//a node-set" 2. (Eval.selectivity d (Parse.query "//a//a"));
  T.check_float "//a//a witness paths" 3.
    (Eval.selectivity ~dedup:false d (Parse.query "//a//a"))

let test_satisfies () =
  let p = Parse.path "//a[//b]/p" in
  Alcotest.(check bool) "root satisfies" true (Eval.satisfies doc 0 p);
  let none = Parse.path "//a/zz" in
  Alcotest.(check bool) "absent path" false (Eval.satisfies doc 0 none)

let prop_run_vs_selectivity =
  T.qtest ~count:100 "run and selectivity agree" T.arb_query (fun q ->
      let r = Eval.run doc q in
      T.feq r.selectivity (Eval.selectivity doc q)
      && (r.selectivity > 0.) = (r.nesting <> None))

let prop_eval_on_random_docs =
  T.qtest ~count:100 "eval total on random docs"
    (QCheck.pair (T.arb_tree ()) T.arb_query)
    (fun (t, q) ->
      let d = Doc.of_tree t in
      let r = Eval.run d q in
      Float.is_finite r.selectivity && r.selectivity >= 0.)

let () =
  Alcotest.run "twig"
    [
      ( "syntax",
        [
          Alcotest.test_case "round trips" `Quick test_parse_roundtrip;
          Alcotest.test_case "pred default axis" `Quick test_parse_pred_default_axis;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "renumber" `Quick test_renumber;
          prop_query_roundtrip;
        ] );
      ( "doc",
        [
          Alcotest.test_case "basics" `Quick test_doc_basics;
          Alcotest.test_case "pre-order ranges" `Quick test_doc_preorder_ranges;
          prop_doc_consistent;
        ] );
      ( "eval",
        [
          Alcotest.test_case "simple counts" `Quick test_eval_simple_counts;
          Alcotest.test_case "predicates" `Quick test_eval_preds;
          Alcotest.test_case "figure 2 twig" `Quick test_eval_twig_fig2;
          Alcotest.test_case "optional edges" `Quick test_eval_optional;
          Alcotest.test_case "nesting tree" `Quick test_eval_nesting_tree;
          Alcotest.test_case "empty result" `Quick test_eval_empty_nesting;
          Alcotest.test_case "descendant dedup" `Quick test_eval_path_dedup;
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          prop_run_vs_selectivity;
          prop_eval_on_random_docs;
        ] );
    ]
