type t = {
  label : Label.t;
  children : t array;
}

let make_arr label children = { label; children }

let make label children = { label; children = Array.of_list children }

let leaf label = { label; children = [||] }

let v tag children = make (Label.of_string tag) children

let label t = t.label

let children t = t.children

let rec size t = Array.fold_left (fun acc c -> acc + size c) 1 t.children

let rec height t =
  Array.fold_left (fun acc c -> max acc (1 + height c)) 0 t.children

let rec fold_pre f acc t =
  let acc = f acc t in
  Array.fold_left (fold_pre f) acc t.children

let rec fold_post f acc t =
  let acc = Array.fold_left (fold_post f) acc t.children in
  f acc t

let iter f t = fold_pre (fun () n -> f n) () t

let count_label l t =
  fold_pre (fun acc n -> if Label.equal n.label l then acc + 1 else acc) 0 t

let distinct_labels t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  iter
    (fun n ->
      if not (Hashtbl.mem seen n.label) then begin
        Hashtbl.add seen n.label ();
        order := n.label :: !order
      end)
    t;
  List.rev !order

let rec equal a b =
  Label.equal a.label b.label
  && Array.length a.children = Array.length b.children
  && begin
    let n = Array.length a.children in
    let rec loop i = i >= n || (equal a.children.(i) b.children.(i) && loop (i + 1)) in
    loop 0
  end

(* The canonical order sorts children recursively, so isomorphic trees
   (modulo sibling order) compare equal.  Sorting is done on the fly; for
   the sizes used in tests this is fast enough. *)
let rec compare_canonical a b =
  let c = Label.compare a.label b.label in
  if c <> 0 then c
  else begin
    let sort arr =
      let copy = Array.copy arr in
      Array.sort compare_canonical copy;
      copy
    in
    let ca = sort a.children and cb = sort b.children in
    let c = Stdlib.compare (Array.length ca) (Array.length cb) in
    if c <> 0 then c
    else begin
      let n = Array.length ca in
      let rec loop i =
        if i >= n then 0
        else
          let c = compare_canonical ca.(i) cb.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0
    end
  end

let equal_unordered a b = compare_canonical a b = 0

let rec pp ppf t =
  Label.pp ppf t.label;
  if Array.length t.children > 0 then begin
    Format.pp_print_char ppf '(';
    Array.iteri
      (fun i c ->
        if i > 0 then Format.pp_print_char ppf ',';
        pp ppf c)
      t.children;
    Format.pp_print_char ppf ')'
  end
