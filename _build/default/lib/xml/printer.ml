let rec emit buf indent level (t : Tree.t) =
  let pad () =
    if indent > 0 then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * level) ' ')
    end
  in
  pad ();
  let tag = Label.to_string (Tree.label t) in
  let kids = Tree.children t in
  if Array.length kids = 0 then begin
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    Buffer.add_string buf "/>"
  end
  else begin
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    Buffer.add_char buf '>';
    Array.iter (emit buf indent (level + 1)) kids;
    pad ();
    Buffer.add_string buf "</";
    Buffer.add_string buf tag;
    Buffer.add_char buf '>'
  end

let to_buffer ?(indent = 0) buf t = emit buf indent 0 t

let to_string ?indent t =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf t;
  Buffer.contents buf

let to_file ?indent path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\"?>\n";
      let buf = Buffer.create 65536 in
      to_buffer ?indent buf t;
      Buffer.output_buffer oc buf;
      output_char oc '\n')

(* <tag/> costs |tag| + 3 bytes; <tag>...</tag> costs 2|tag| + 5. *)
let serialized_size t =
  Tree.fold_pre
    (fun acc n ->
      let len = String.length (Label.to_string (Tree.label n)) in
      if Array.length (Tree.children n) = 0 then acc + len + 3
      else acc + (2 * len) + 5)
    0 t
