(** Document statistics used by Table 1 and by the data generators'
    self-checks. *)

type t = {
  elements : int;  (** total number of element nodes *)
  height : int;  (** tree height, leaf = 0 *)
  distinct_labels : int;
  max_fanout : int;
  avg_fanout : float;  (** over internal (non-leaf) nodes *)
  leaves : int;
  serialized_bytes : int;  (** size of the compact XML serialization *)
}

val compute : Tree.t -> t

val label_histogram : Tree.t -> (Label.t * int) list
(** Occurrences per label, sorted by decreasing count. *)

val pp : Format.formatter -> t -> unit
