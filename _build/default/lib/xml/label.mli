(** Interned element labels (tags).

    Every distinct tag string is mapped to a small integer once, so that
    label comparison — the innermost operation of every algorithm in this
    repository — is a single integer comparison.  The interning table is
    global and append-only; labels are never garbage collected. *)

type t = private int
(** An interned label.  The representation is exposed as [private int] so
    that labels can be used directly as array indices and hash keys. *)

val of_string : string -> t
(** [of_string s] interns [s], returning the existing label if [s] was
    seen before. *)

val to_string : t -> string
(** [to_string l] is the tag string [l] was interned from. *)

val to_int : t -> int
(** [to_int l] is the integer identity of [l] (unique per distinct tag). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order on labels.  The order is interning order, not
    lexicographic order of the underlying strings. *)

val hash : t -> int

val count : unit -> int
(** Number of distinct labels interned so far. *)

val pp : Format.formatter -> t -> unit
(** Prints the underlying tag string. *)
