exception Error of { line : int; column : int; message : string }

(* Hand-rolled recursive-descent scanner over a string.  Position
   tracking is maintained lazily: we record only the byte offset and
   recover line/column when raising. *)

type state = {
  src : string;
  mutable pos : int;
}

let position st upto =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min upto (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = position st st.pos in
  raise (Error { line; column; message })

let eof st = st.pos >= String.length st.src

let peek st = st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let expect st c =
  if eof st || peek st <> c then
    fail st (Printf.sprintf "expected %C" c)
  else advance st

let scan_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Skip until the terminator string [stop] is found (inclusive). *)
let skip_until st stop =
  let n = String.length stop in
  let limit = String.length st.src - n in
  let rec search i =
    if i > limit then fail st (Printf.sprintf "unterminated construct, expected %S" stop)
    else if String.sub st.src i n = stop then st.pos <- i + n
    else search (i + 1)
  in
  search st.pos

(* Attributes: name = "value" | name = 'value'.  Values are discarded. *)
let skip_attributes st =
  let rec loop () =
    skip_spaces st;
    if eof st then fail st "unterminated start tag"
    else
      match peek st with
      | '>' | '/' -> ()
      | _ ->
        let _name = scan_name st in
        skip_spaces st;
        if (not (eof st)) && peek st = '=' then begin
          advance st;
          skip_spaces st;
          (match if eof st then '\000' else peek st with
          | ('"' | '\'') as quote ->
            advance st;
            (try
               while peek st <> quote do
                 advance st
               done
             with Invalid_argument _ -> fail st "unterminated attribute value");
            advance st
          | _ -> fail st "expected a quoted attribute value")
        end;
        loop ()
  in
  loop ()

(* Skip non-element content between tags: text, comments, CDATA and
   processing instructions.  Returns when positioned at a '<' that opens
   an element start/end tag, or at end of input. *)
let rec skip_misc st =
  while (not (eof st)) && peek st <> '<' do
    advance st
  done;
  if not (eof st) then begin
    if st.pos + 1 < String.length st.src then
      match st.src.[st.pos + 1] with
      | '!' ->
        if
          st.pos + 3 < String.length st.src
          && String.sub st.src st.pos 4 = "<!--"
        then begin
          st.pos <- st.pos + 4;
          skip_until st "-->";
          skip_misc st
        end
        else if
          st.pos + 8 < String.length st.src
          && String.sub st.src st.pos 9 = "<![CDATA["
        then begin
          st.pos <- st.pos + 9;
          skip_until st "]]>";
          skip_misc st
        end
        else begin
          (* DOCTYPE or other declaration: skip to the matching '>'.
             Internal subsets in brackets are handled by nesting count. *)
          let depth = ref 0 in
          (try
             while
               not (peek st = '>' && !depth = 0)
             do
               (match peek st with
               | '[' -> incr depth
               | ']' -> decr depth
               | _ -> ());
               advance st
             done
           with Invalid_argument _ -> fail st "unterminated declaration");
          advance st;
          skip_misc st
        end
      | '?' ->
        st.pos <- st.pos + 2;
        skip_until st "?>";
        skip_misc st
      | _ -> ()
  end

(* Parse one element, positioned at its '<'. *)
let rec parse_element st =
  expect st '<';
  let name = scan_name st in
  skip_attributes st;
  if eof st then fail st "unterminated start tag";
  if peek st = '/' then begin
    advance st;
    expect st '>';
    Tree.leaf (Label.of_string name)
  end
  else begin
    expect st '>';
    let children = ref [] in
    let rec content () =
      skip_misc st;
      if eof st then fail st (Printf.sprintf "missing </%s>" name)
      else if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/'
      then begin
        st.pos <- st.pos + 2;
        let close = scan_name st in
        if close <> name then
          fail st (Printf.sprintf "mismatched tags: <%s> closed by </%s>" name close);
        skip_spaces st;
        expect st '>'
      end
      else begin
        children := parse_element st :: !children;
        content ()
      end
    in
    content ();
    Tree.make (Label.of_string name) (List.rev !children)
  end

let of_string src =
  let st = { src; pos = 0 } in
  skip_misc st;
  if eof st then fail st "no root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "content after the root element";
  root

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      of_string src)

let error_to_string = function
  | Error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line column message)
  | _ -> None
