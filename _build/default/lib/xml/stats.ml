type t = {
  elements : int;
  height : int;
  distinct_labels : int;
  max_fanout : int;
  avg_fanout : float;
  leaves : int;
  serialized_bytes : int;
}

let compute tree =
  let elements = ref 0 in
  let leaves = ref 0 in
  let max_fanout = ref 0 in
  let internal = ref 0 in
  let fanout_sum = ref 0 in
  Tree.iter
    (fun n ->
      incr elements;
      let f = Array.length (Tree.children n) in
      if f = 0 then incr leaves
      else begin
        incr internal;
        fanout_sum := !fanout_sum + f;
        if f > !max_fanout then max_fanout := f
      end)
    tree;
  {
    elements = !elements;
    height = Tree.height tree;
    distinct_labels = List.length (Tree.distinct_labels tree);
    max_fanout = !max_fanout;
    avg_fanout =
      (if !internal = 0 then 0. else float_of_int !fanout_sum /. float_of_int !internal);
    leaves = !leaves;
    serialized_bytes = Printer.serialized_size tree;
  }

let label_histogram tree =
  let counts = Hashtbl.create 64 in
  Tree.iter
    (fun n ->
      let l = Tree.label n in
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    tree;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)

let pp ppf s =
  Format.fprintf ppf
    "@[<v>elements: %d@,height: %d@,distinct labels: %d@,max fanout: %d@,\
     avg fanout: %.2f@,leaves: %d@,serialized bytes: %d@]"
    s.elements s.height s.distinct_labels s.max_fanout s.avg_fanout s.leaves
    s.serialized_bytes
