(** A small, dependency-free parser for the element structure of XML.

    The paper's algorithms only look at the label structure of a
    document, so this parser deliberately implements the subset of
    XML 1.0 needed to recover it:

    - elements: [<tag ...>...</tag>] and [<tag ... />];
    - attributes are scanned and discarded;
    - text content, comments, CDATA sections, processing instructions
      and the DOCTYPE declaration are skipped;
    - entities inside text are not expanded (text is discarded anyway).

    A document must have exactly one root element. *)

exception Error of { line : int; column : int; message : string }
(** Raised on malformed input, with a 1-based source position. *)

val of_string : string -> Tree.t
(** Parse a document held in memory.  @raise Error on malformed input. *)

val of_file : string -> Tree.t
(** Parse a document from a file.  @raise Error on malformed input,
    [Sys_error] if the file cannot be read. *)

val error_to_string : exn -> string option
(** [error_to_string e] renders [e] if it is an {!Error}, for
    human-facing diagnostics. *)
