(** Node-labeled ordered trees — the XML data model of the paper (§2).

    A document is a tree [T(V, E)] where every node carries a label and
    edges capture element containment.  Values (text content) are outside
    the scope of the paper and of this reproduction; the parser drops
    them.  Children are ordered (document order) although none of the
    algorithms here depend on the order. *)

type t = private {
  label : Label.t;
  children : t array;
}

val make : Label.t -> t list -> t
(** [make label children] builds an element node. *)

val make_arr : Label.t -> t array -> t
(** Like {!make} but takes ownership of the array (no copy). *)

val leaf : Label.t -> t
(** [leaf label] is an element with no children. *)

val v : string -> t list -> t
(** [v tag children] is [make (Label.of_string tag) children] — the
    convenient constructor used by tests and examples. *)

val label : t -> Label.t

val children : t -> t array

(** {1 Measures} *)

val size : t -> int
(** Number of element nodes in the tree (including the root). *)

val height : t -> int
(** [height t] is [0] for a leaf and [1 + max (height children)]
    otherwise — the "depth" notion used by [CREATEPOOL] (§4.2). *)

val count_label : Label.t -> t -> int
(** Number of nodes carrying the given label. *)

val distinct_labels : t -> Label.t list
(** All labels occurring in the tree, each once, in discovery order. *)

(** {1 Traversals} *)

val fold_pre : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val fold_post : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Post-order fold over all nodes: children are visited (recursively)
    before their parent, mirroring [BUILD_STABLE]'s traversal. *)

val iter : (t -> unit) -> t -> unit
(** Pre-order iteration. *)

(** {1 Comparisons} *)

val equal : t -> t -> bool
(** Structural equality: same labels, same children in the same order. *)

val equal_unordered : t -> t -> bool
(** Isomorphism that ignores sibling order — the equivalence of
    Lemma 3.1 ([Expand (Build_stable t)] is isomorphic to [t]).
    Runs in [O(n log n)] per level via sorted canonical keys. *)

val compare_canonical : t -> t -> int
(** A total order compatible with {!equal_unordered}: two trees are
    equal under this order iff they are isomorphic modulo sibling
    order. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, e.g. [a(b,c(d))] — for debugging and
    test failure messages. *)
