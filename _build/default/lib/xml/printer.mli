(** Serialization of {!Tree.t} back to XML text. *)

val to_buffer : ?indent:int -> Buffer.t -> Tree.t -> unit
(** [to_buffer ~indent buf t] appends the XML rendering of [t] to
    [buf].  [indent] is the number of spaces per nesting level;
    [~indent:0] (the default) produces compact single-line output with
    no whitespace between elements. *)

val to_string : ?indent:int -> Tree.t -> string

val to_file : ?indent:int -> string -> Tree.t -> unit
(** [to_file path t] writes [t] to [path], prefixed with an XML
    declaration. *)

val serialized_size : Tree.t -> int
(** Number of bytes of the compact serialization — the "file size"
    statistic of Table 1, computed without materializing the string. *)
