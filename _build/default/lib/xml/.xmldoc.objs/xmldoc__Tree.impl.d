lib/xml/tree.ml: Array Format Hashtbl Label List Stdlib
