lib/xml/printer.ml: Array Buffer Fun Label String Tree
