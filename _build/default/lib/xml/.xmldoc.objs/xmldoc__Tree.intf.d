lib/xml/tree.mli: Format Label
