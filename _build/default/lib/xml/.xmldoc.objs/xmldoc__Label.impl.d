lib/xml/label.ml: Array Format Hashtbl Stdlib
