lib/xml/parser.ml: Char Fun Label List Printf String Tree
