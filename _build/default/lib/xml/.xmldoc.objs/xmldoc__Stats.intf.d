lib/xml/stats.mli: Format Label Tree
