lib/xml/printer.mli: Buffer Tree
