lib/xml/stats.ml: Array Format Hashtbl List Option Printer Stdlib Tree
