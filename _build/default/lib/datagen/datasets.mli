(** Profiles mimicking the four data sets of the paper's evaluation
    (Table 1).

    Each profile reproduces the structural traits that drive the
    paper's experiments:

    - {b IMDB}: movie/series records with skewed cast and keyword
      fan-outs and a blockbuster/indie dichotomy (correlated sibling
      counts);
    - {b XMark}: the auction-site schema, including the recursive
      [description/parlist/listitem] nesting that makes XMark's
      count-stable summary disproportionately large (Table 1);
    - {b SwissProt}: wide, flat protein entries with many references
      and features — the workloads with huge binding-tuple counts
      (Table 2) — plus anti-correlated feature mixes;
    - {b DBLP}: a large, highly regular bibliography whose stable
      summary is tiny relative to the document (Table 1).

    [scale = 1.] yields documents in the few-tens-of-thousands of
    elements ("TX"-like, scaled down from the paper's 100K–2M so the
    full benchmark suite runs in minutes); benchmarks pass larger
    scales for the Figure 13 datasets. *)

type dataset =
  | Imdb
  | Xmark
  | Sprot
  | Dblp
  | Treebank
      (** natural-language parse trees: deeply recursive, high-entropy
          structure — a beyond-the-paper stress case *)

val all : dataset list

val name : dataset -> string

val of_name : string -> dataset option
(** Case-insensitive lookup ("imdb", "xmark", "sprot" / "swissprot",
    "dblp", "treebank"). *)

val profile : dataset -> Profile.t

val generate : ?seed:int -> ?scale:float -> dataset -> Xmldoc.Tree.t
(** Deterministic per seed. *)
