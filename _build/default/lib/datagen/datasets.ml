open Profile

type dataset = Imdb | Xmark | Sprot | Dblp | Treebank

let all = [ Imdb; Xmark; Sprot; Dblp; Treebank ]

let name = function
  | Imdb -> "IMDB"
  | Xmark -> "XMark"
  | Sprot -> "SwissProt"
  | Dblp -> "DBLP"
  | Treebank -> "TreeBank"

let of_name s =
  match String.lowercase_ascii s with
  | "imdb" -> Some Imdb
  | "xmark" -> Some Xmark
  | "sprot" | "swissprot" -> Some Sprot
  | "dblp" -> Some Dblp
  | "treebank" | "tbank" -> Some Treebank
  | _ -> None

let leaf tag = simple tag []

(* ------------------------------------------------------------------ *)
(* IMDB: movie database with a blockbuster/indie dichotomy that
   propagates vertically (blockbuster casts are credited with roles,
   hit series have documented episodes).                               *)
(* ------------------------------------------------------------------ *)

let imdb =
  {
    name = "IMDB";
    root = "imdb";
    max_depth = 8;
    rules =
      [
        simple "imdb"
          [
            child ~count:(Const 900) ~scaled:true "movie";
            child ~count:(Const 250) ~scaled:true "tvseries";
          ];
        (* Blockbusters have big casts, many keywords and credited
           roles; indies few of each: sibling counts correlate within a
           variant, and the context reaches down into the cast. *)
        rule "movie"
          [
            variant ~name:"blockbuster" 0.3
              [
                child "title";
                child "year";
                child ~count:(Uniform (2, 3)) "genre";
                child ~count:(Uniform (6, 14)) "keyword";
                child ~bias:"big" "cast";
                child ~count:(Uniform (1, 2)) "director";
                child ~prob:0.9 "rating";
                child ~prob:0.7 "trivia";
              ];
            variant ~name:"indie" 0.7
              [
                child "title";
                child "year";
                child ~count:(Uniform (1, 2)) "genre";
                child ~count:(Uniform (0, 4)) "keyword";
                child ~bias:"small" "cast";
                child "director";
                child ~prob:0.5 "rating";
              ];
          ];
        rule "cast"
          [
            variant ~name:"big" 0.3
              [ child ~count:(Uniform (8, 20)) ~bias:"credited" "actor" ];
            variant ~name:"small" 0.7
              [ child ~count:(Zipf (6, 1.2)) ~bias:"uncredited" "actor" ];
          ];
        rule "actor"
          [
            variant ~name:"credited" 0.4 [ child "name"; child "role" ];
            variant ~name:"uncredited" 0.6 [ child "name" ];
          ];
        rule "tvseries"
          [
            variant ~name:"hit" 0.35
              [
                child "title";
                child "year";
                child ~count:(Uniform (3, 6)) ~bias:"documented" "season";
                child ~count:(Uniform (2, 5)) "keyword";
              ];
            variant ~name:"flop" 0.65
              [
                child "title";
                child "year";
                child ~count:(Uniform (1, 2)) ~bias:"sparse" "season";
                child ~count:(Uniform (0, 1)) "keyword";
              ];
          ];
        rule "season"
          [
            variant ~name:"documented" 0.4
              [ child ~count:(Uniform (8, 14)) ~bias:"aired" "episode" ];
            variant ~name:"sparse" 0.6
              [ child ~count:(Uniform (2, 6)) ~bias:"bare" "episode" ];
          ];
        rule "episode"
          [
            variant ~name:"aired" 0.5 [ child "title"; child "airdate" ];
            variant ~name:"bare" 0.5 [ child "title" ];
          ];
        simple "director" [ child "name" ];
        leaf "title"; leaf "year"; leaf "genre"; leaf "keyword"; leaf "name";
        leaf "role"; leaf "rating"; leaf "trivia"; leaf "airdate";
      ];
  }

(* ------------------------------------------------------------------ *)
(* XMark: auction site.  Item richness depends on the region (the
   vertical correlation), and description mark-up recurses.            *)
(* ------------------------------------------------------------------ *)

let xmark =
  let region tag items bias_name =
    simple tag [ child ~count:(Const items) ~scaled:true ~bias:bias_name "item" ]
  in
  {
    name = "XMark";
    root = "site";
    max_depth = 14;
    rules =
      [
        simple "site"
          [
            child "regions";
            child "categories";
            child "people";
            child "open_auctions";
            child "closed_auctions";
          ];
        simple "regions"
          [
            child "africa"; child "asia"; child "australia";
            child "europe"; child "namerica"; child "samerica";
          ];
        region "africa" 12 "poor";
        region "asia" 30 "poor";
        region "australia" 18 "rich";
        region "europe" 65 "rich";
        region "namerica" 75 "rich";
        region "samerica" 12 "poor";
        rule "item"
          [
            variant ~name:"rich" 0.5
              [
                child "location";
                child "quantity";
                child "name";
                child "payment";
                child ~bias:"deep" "description";
                child "shipping";
                child ~count:(Uniform (3, 6)) "incategory";
                child ~prob:0.7 "mailbox";
              ];
            variant ~name:"poor" 0.5
              [
                child "location";
                child "quantity";
                child "name";
                child ~bias:"flat" "description";
                child "incategory";
                child ~prob:0.1 "mailbox";
              ];
          ];
        simple "mailbox" [ child ~count:(Uniform (1, 4)) "mail" ];
        simple "mail" [ child "from"; child "to"; child "date"; child "text" ];
        (* recursive document mark-up: text or nested parlist *)
        rule "description"
          [
            variant ~name:"flat" 0.85 [ child "text" ];
            variant ~name:"deep" 0.15 [ child "parlist" ];
          ];
        simple "parlist" [ child ~count:(Uniform (1, 3)) "listitem" ];
        rule "listitem"
          [
            variant 0.85 [ child "text" ];
            variant 0.15 [ child "parlist" ];
          ];
        simple "categories" [ child ~count:(Const 25) ~scaled:true "category" ];
        simple "category" [ child "name"; child "description" ];
        simple "people" [ child ~count:(Const 255) ~scaled:true "person" ];
        rule "person"
          [
            variant ~name:"full" 0.4
              [
                child "name";
                child "emailaddress";
                child ~prob:0.9 "phone";
                child ~prob:0.9 "address";
                child ~prob:0.6 "homepage";
                child ~prob:0.9 "creditcard";
                child ~bias:"engaged" "profile";
                child ~prob:0.25 "watches";
              ];
            variant ~name:"casual" 0.6
              [
                child "name";
                child "emailaddress";
                child ~prob:0.2 "phone";
                child ~prob:0.1 "address";
                child ~prob:0.35 "creditcard";
                child ~prob:0.4 ~bias:"minimal" "profile";
              ];
          ];
        simple "address"
          [ child "street"; child "city"; child "country"; child "zipcode" ];
        rule "profile"
          [
            variant ~name:"engaged" 0.5
              [
                child ~count:(Uniform (2, 5)) "interest";
                child ~prob:0.8 "education";
                child ~prob:0.9 "gender";
                child "business";
                child ~prob:0.9 "age";
              ];
            variant ~name:"minimal" 0.5
              [ child ~count:(Uniform (0, 1)) "interest"; child "business" ];
          ];
        simple "watches" [ child ~count:(Uniform (1, 3)) "watch" ];
        simple "open_auctions" [ child ~count:(Const 120) ~scaled:true "open_auction" ];
        rule "open_auction"
          [
            variant ~name:"contested" 0.3
              [
                child "initial";
                child ~count:(Uniform (5, 12)) "bidder";
                child "current";
                child "itemref";
                child "seller";
                child ~bias:"verbose" "annotation";
                child "quantity";
                child "type";
                child "interval";
              ];
            variant ~name:"quiet" 0.7
              [
                child "initial";
                child ~count:(Uniform (0, 2)) "bidder";
                child "current";
                child "itemref";
                child "seller";
                child ~prob:0.6 ~bias:"terse" "annotation";
                child "quantity";
                child "type";
                child "interval";
              ];
          ];
        simple "bidder" [ child "date"; child "time"; child "increase" ];
        rule "annotation"
          [
            variant ~name:"verbose" 0.4
              [ child "author"; child ~bias:"deep" "description"; child "happiness" ];
            variant ~name:"terse" 0.6
              [ child "author"; child ~bias:"flat" "description" ];
          ];
        simple "interval" [ child "start"; child "end" ];
        simple "closed_auctions"
          [ child ~count:(Const 80) ~scaled:true "closed_auction" ];
        simple "closed_auction"
          [
            child "seller"; child "buyer"; child "itemref"; child "price";
            child "date"; child "quantity"; child "type";
            child ~bias:"terse" "annotation";
          ];
        leaf "location"; leaf "quantity"; leaf "name"; leaf "payment";
        leaf "shipping"; leaf "incategory"; leaf "from"; leaf "to";
        leaf "date"; leaf "text"; leaf "emailaddress"; leaf "phone";
        leaf "street"; leaf "city"; leaf "country"; leaf "zipcode";
        leaf "homepage"; leaf "creditcard"; leaf "interest"; leaf "education";
        leaf "gender"; leaf "business"; leaf "age"; leaf "watch";
        leaf "initial"; leaf "current"; leaf "itemref"; leaf "seller";
        leaf "buyer"; leaf "price"; leaf "type"; leaf "start"; leaf "end";
        leaf "time"; leaf "increase"; leaf "author"; leaf "happiness";
      ];
  }

(* ------------------------------------------------------------------ *)
(* SwissProt: wide protein entries.  Enzyme-like and structural
   entries carry anti-correlated feature mixes, and the entry kind
   reaches down into reference and feature structure.                  *)
(* ------------------------------------------------------------------ *)

let sprot =
  {
    name = "SwissProt";
    root = "sptr";
    max_depth = 8;
    rules =
      [
        simple "sptr" [ child ~count:(Const 700) ~scaled:true "entry" ];
        rule "entry"
          [
            variant ~name:"enzyme" 0.5
              [
                child "ac";
                child "mod";
                child "descr";
                child ~count:(Uniform (1, 2)) "species";
                child ~count:(Uniform (1, 3)) "org";
                child ~count:(Uniform (3, 8)) ~bias:"cited" "ref";
                child ~count:(Uniform (2, 6)) "keyword";
                child ~bias:"enzymatic" "features";
              ];
            variant ~name:"fragment" 0.5
              [
                child "ac";
                child "mod";
                child "descr";
                child "species";
                child "org";
                child ~count:(Uniform (1, 2)) ~bias:"bare" "ref";
                child ~count:(Uniform (0, 2)) "keyword";
                child ~bias:"structural" "features";
              ];
          ];
        rule "ref"
          [
            variant ~name:"cited" 0.5
              [
                child ~count:(Uniform (3, 8)) "author";
                child "cite";
                child ~prob:0.9 "medline";
              ];
            variant ~name:"bare" 0.5
              [ child ~count:(Uniform (1, 3)) "author"; child "cite" ];
          ];
        (* anti-correlated feature mixes (the Figure 10 pattern at
           data-set scale) *)
        rule "features"
          [
            variant ~name:"enzymatic" 0.5
              [
                child ~count:(Uniform (4, 10)) ~bias:"annotated" "domain";
                child ~count:(Uniform (0, 1)) "chain";
                child ~count:(Uniform (0, 3)) "transmem";
              ];
            variant ~name:"structural" 0.5
              [
                child ~count:(Uniform (0, 1)) ~bias:"plain" "domain";
                child ~count:(Uniform (4, 10)) "chain";
                child ~count:(Uniform (0, 2)) "binding";
              ];
          ];
        rule "domain"
          [
            variant ~name:"annotated" 0.5
              [ child "descr"; child "from"; child "to" ];
            variant ~name:"plain" 0.5 [ child "from"; child "to" ];
          ];
        simple "chain" [ child "descr"; child "from"; child "to" ];
        simple "transmem" [ child "from"; child "to" ];
        simple "binding" [ child "from"; child "to" ];
        leaf "ac"; leaf "mod"; leaf "descr"; leaf "species"; leaf "org";
        leaf "author"; leaf "cite"; leaf "medline"; leaf "keyword";
        leaf "from"; leaf "to";
      ];
  }

(* ------------------------------------------------------------------ *)
(* DBLP: flat, regular bibliography.                                   *)
(* ------------------------------------------------------------------ *)

let dblp =
  {
    name = "DBLP";
    root = "dblp";
    max_depth = 6;
    rules =
      [
        simple "dblp"
          [
            child ~count:(Const 1500) ~scaled:true "article";
            child ~count:(Const 1800) ~scaled:true "inproceedings";
            child ~count:(Const 60) ~scaled:true "proceedings";
            child ~count:(Const 25) ~scaled:true "phdthesis";
            child ~count:(Const 40) ~scaled:true "www";
          ];
        simple "article"
          [
            child ~count:(Zipf (6, 1.0)) "author";
            child "title";
            child "journal";
            child "year";
            child ~prob:0.8 "volume";
            child ~prob:0.7 "number";
            child ~prob:0.85 "pages";
            child ~prob:0.6 "ee";
            child ~prob:0.4 "url";
          ];
        simple "inproceedings"
          [
            child ~count:(Zipf (6, 1.0)) "author";
            child "title";
            child "booktitle";
            child "year";
            child ~prob:0.85 "pages";
            child ~prob:0.6 "ee";
            child ~prob:0.5 "crossref";
            child ~prob:0.3 "url";
          ];
        simple "proceedings"
          [
            child ~count:(Uniform (1, 3)) "editor";
            child "title";
            child "booktitle";
            child "year";
            child ~prob:0.8 "publisher";
            child ~prob:0.7 "isbn";
            child ~prob:0.5 "series";
          ];
        simple "phdthesis"
          [
            child "author"; child "title"; child "year"; child "school";
            child ~prob:0.3 "ee";
          ];
        simple "www"
          [ child ~count:(Uniform (1, 4)) "author"; child "title"; child ~prob:0.9 "url" ];
        leaf "author"; leaf "title"; leaf "journal"; leaf "year";
        leaf "volume"; leaf "number"; leaf "pages"; leaf "ee"; leaf "url";
        leaf "booktitle"; leaf "crossref"; leaf "editor"; leaf "publisher";
        leaf "isbn"; leaf "series"; leaf "school";
      ];
  }

(* ------------------------------------------------------------------ *)
(* TreeBank: parse trees of natural-language sentences — the deeply
   recursive, high-entropy structure that is the classic stress case
   for XML summarization (not part of the paper's evaluation; used by
   the `treebank` benchmark as a beyond-the-paper hard case).          *)
(* ------------------------------------------------------------------ *)

let treebank =
  {
    name = "TreeBank";
    root = "treebank";
    max_depth = 24;
    rules =
      [
        simple "treebank" [ child ~count:(Const 800) ~scaled:true "s" ];
        (* S -> NP VP (declarative) | S CC S (coordination) | VP (imperative) *)
        rule "s"
          [
            variant 0.7 [ child "np"; child "vp"; child ~prob:0.3 "punct" ];
            variant 0.15 [ child "s"; child "cc"; child "s" ];
            variant 0.15 [ child "vp" ];
          ];
        (* NP -> DT? JJ* NN | NP PP | PRP | NP SBAR *)
        rule "np"
          [
            variant 0.55
              [
                child ~prob:0.7 "dt";
                child ~count:(Geometric (0.6, 3)) "jj";
                child "nn";
              ];
            variant 0.25 [ child "np"; child "pp" ];
            variant 0.12 [ child "prp" ];
            variant 0.08 [ child "np"; child "sbar" ];
          ];
        (* VP -> VB NP? PP* | VP PP | MD VP | VB S *)
        rule "vp"
          [
            variant 0.55
              [
                child "vb";
                child ~prob:0.7 "np";
                child ~count:(Geometric (0.5, 2)) "pp";
              ];
            variant 0.2 [ child "vp"; child "pp" ];
            variant 0.15 [ child "md"; child "vp" ];
            variant 0.1 [ child "vb"; child "s" ];
          ];
        simple "pp" [ child "in"; child "np" ];
        simple "sbar" [ child ~prob:0.8 "in"; child "s" ];
        leaf "dt"; leaf "nn"; leaf "jj"; leaf "prp"; leaf "vb"; leaf "md";
        leaf "in"; leaf "cc"; leaf "punct";
      ];
  }

let profile = function
  | Imdb -> imdb
  | Xmark -> xmark
  | Sprot -> sprot
  | Dblp -> dblp
  | Treebank -> treebank

let generate ?seed ?scale ds = Profile.generate ?seed ?scale (profile ds)
