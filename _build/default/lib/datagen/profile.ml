type dist =
  | Const of int
  | Uniform of int * int
  | Geometric of float * int
  | Zipf of int * float

type child_spec = {
  tag : string;
  count : dist;
  prob : float;
  scaled : bool;
  bias : string option;
}

type variant = {
  name : string option;
  weight : float;
  children : child_spec list;
}

let bias_strength = 0.85

type rule = {
  tag : string;
  variants : variant list;
}

type t = {
  name : string;
  root : string;
  rules : rule list;
  max_depth : int;
}

let child ?(count = Const 1) ?(prob = 1.) ?(scaled = false) ?bias tag =
  { tag; count; prob; scaled; bias }

let variant ?name weight children = { name; weight; children }

let rule tag variants =
  if variants = [] then invalid_arg "Profile.rule: no variants";
  { tag; variants }

let simple tag children = rule tag [ { name = None; weight = 1.; children } ]

let draw_dist rng = function
  | Const n -> n
  | Uniform (lo, hi) ->
    if hi < lo then invalid_arg "Profile: bad Uniform bounds";
    lo + Random.State.int rng (hi - lo + 1)
  | Geometric (p, cap) ->
    if not (p > 0. && p <= 1.) then invalid_arg "Profile: bad Geometric p";
    let rec draw n =
      if n >= cap then cap
      else if Random.State.float rng 1. < p then n
      else draw (n + 1)
    in
    draw 0
  | Zipf (n, s) ->
    if n < 1 then invalid_arg "Profile: bad Zipf n";
    (* inverse-CDF sampling over 1..n with weights 1/k^s *)
    let total = ref 0. in
    for k = 1 to n do
      total := !total +. (1. /. (float_of_int k ** s))
    done;
    let target = Random.State.float rng !total in
    let rec find k acc =
      if k >= n then n
      else begin
        let acc = acc +. (1. /. (float_of_int k ** s)) in
        if acc >= target then k else find (k + 1) acc
      end
    in
    find 1 0.

let pick_variant rng variants =
  let total = List.fold_left (fun acc v -> acc +. v.weight) 0. variants in
  let target = Random.State.float rng total in
  let rec find acc = function
    | [ v ] -> v
    | v :: rest -> if acc +. v.weight >= target then v else find (acc +. v.weight) rest
    | [] -> assert false
  in
  find 0. variants

let generate ?(seed = 0x5eed) ?(scale = 1.) profile =
  let rng = Random.State.make [| seed |] in
  let rules = Hashtbl.create 32 in
  List.iter
    (fun r ->
      if Hashtbl.mem rules r.tag then
        invalid_arg (Printf.sprintf "Profile.generate: duplicate rule for %s" r.tag);
      Hashtbl.add rules r.tag r)
    profile.rules;
  let rule_of tag =
    match Hashtbl.find_opt rules tag with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Profile.generate: no rule for tag %s" tag)
  in
  let rec element depth tag forced =
    let r = rule_of tag in
    let children =
      if depth >= profile.max_depth then []
      else begin
        let variant =
          match forced with
          | Some forced_name
            when Random.State.float rng 1. < bias_strength
                 && List.exists
                      (fun (v : variant) -> v.name = Some forced_name)
                      r.variants ->
            List.find (fun (v : variant) -> v.name = Some forced_name) r.variants
          | _ -> pick_variant rng r.variants
        in
        List.concat_map
          (fun spec ->
            if Random.State.float rng 1. >= spec.prob then []
            else begin
              let n = draw_dist rng spec.count in
              let n =
                if spec.scaled then
                  int_of_float (Float.round (float_of_int n *. scale))
                else n
              in
              List.init (max 0 n) (fun _ -> element (depth + 1) spec.tag spec.bias)
            end)
          variant.children
      end
    in
    Xmldoc.Tree.v tag children
  in
  element 0 profile.root None
