(** Profile-driven synthetic XML generation.

    The paper evaluates on four real data sets (IMDB, XMark, SwissProt,
    DBLP) that are not available in this environment; {!Datasets}
    defines profiles that mimic their documented structural traits —
    label vocabulary, fan-out skew, optional elements, recursion, and
    sibling-count correlations — at configurable scale.  The
    TREESKETCH algorithms are sensitive exactly to those traits, so the
    substitution preserves the experimental behaviour (see DESIGN.md).

    A profile is a set of rules, one per element tag.  Each rule is a
    weighted mixture of {e variants}; an element first draws a variant,
    then materializes that variant's child specifications.  Variants
    are what encode sibling correlations (e.g. "many reviews and few
    sales" vs "few reviews and many sales" — the T/T2 pattern of
    Figure 10 that selectivity-only synopses cannot tell apart). *)

type dist =
  | Const of int
  | Uniform of int * int  (** inclusive bounds *)
  | Geometric of float * int  (** success probability, cap *)
  | Zipf of int * float  (** values 1..n with exponent s *)

type child_spec = {
  tag : string;
  count : dist;
  prob : float;  (** probability that this child group is present *)
  scaled : bool;  (** multiply the drawn count by the generation scale *)
  bias : string option;
      (** vertical correlation: children generated from this spec pick
          the named variant of their own rule with probability
          {!bias_strength}.  This propagates structural context down
          the tree — the correlation that clustering-based synopses
          capture and one-level histograms cannot. *)
}

type variant = {
  name : string option;  (** referenced by [bias] *)
  weight : float;
  children : child_spec list;
}

val bias_strength : float
(** Probability that a biased child follows the named variant
    (0.85). *)

type rule = {
  tag : string;
  variants : variant list;  (** non-empty; weights need not sum to 1 *)
}

type t = {
  name : string;
  root : string;
  rules : rule list;
  max_depth : int;  (** recursion cut-off (root is at depth 0) *)
}

val child :
  ?count:dist -> ?prob:float -> ?scaled:bool -> ?bias:string -> string -> child_spec
(** Defaults: [count = Const 1], [prob = 1.], [scaled = false], no
    bias. *)

val variant : ?name:string -> float -> child_spec list -> variant

val rule : string -> variant list -> rule

val simple : string -> child_spec list -> rule
(** A rule with a single variant. *)

val generate : ?seed:int -> ?scale:float -> t -> Xmldoc.Tree.t
(** Generate a document.  [scale] (default 1.0) multiplies the counts
    of [scaled] child groups.  Same seed, same document.
    @raise Invalid_argument if a tag lacks a rule or the profile is
    malformed. *)
