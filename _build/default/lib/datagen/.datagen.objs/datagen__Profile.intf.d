lib/datagen/profile.mli: Xmldoc
