lib/datagen/datasets.mli: Profile Xmldoc
