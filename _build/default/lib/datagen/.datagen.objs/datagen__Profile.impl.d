lib/datagen/profile.ml: Float Hashtbl List Printf Random Xmldoc
