lib/datagen/datasets.ml: Profile String
