module Synopsis = Sketch.Synopsis
module Syntax = Twig.Syntax

type params = {
  max_vars : int;
  max_path_len : int;
  descendant_prob : float;
  optional_prob : float;
  pred_prob : float;
}

let default_params =
  {
    max_vars = 5;
    max_path_len = 3;
    descendant_prob = 0.5;
    optional_prob = 0.3;
    pred_prob = 0.4;
  }

(* A random downward walk of [hops] edges in the stable synopsis,
   starting below [u]; returns the visited nodes (length <= hops, cut
   at leaves).  Every hop follows an existing synopsis edge, so every
   element of class [u] owns a matching path (count-stability!). *)
let random_walk rng syn u hops =
  let rec go u left acc =
    let out = Synopsis.edges syn u in
    if left = 0 || Array.length out = 0 then List.rev acc
    else begin
      let v, _ = out.(Random.State.int rng (Array.length out)) in
      go v (left - 1) (v :: acc)
    end
  in
  go u hops []

(* Turn a walk into a path: keep the final node, keep intermediate
   nodes with probability 1/2; a kept node at gap 1 from its
   predecessor draws its axis, larger gaps force [//]. *)
let path_of_walk rng params syn walk ~preds_at_end =
  let n = List.length walk in
  let kept =
    List.filteri (fun i _ -> i = n - 1 || Random.State.float rng 1. < 0.5) walk
  in
  let walk_arr = Array.of_list walk in
  let gap_of node prev =
    (* distance between positions in the original walk *)
    let pos x =
      let rec find i = if walk_arr.(i) == x then i else find (i + 1) in
      find 0
    in
    match prev with None -> pos node + 1 | Some p -> pos node - pos p
  in
  let rec steps prev = function
    | [] -> []
    | node :: rest ->
      let gap = gap_of node prev in
      let axis =
        if gap > 1 then Syntax.Descendant
        else if Random.State.float rng 1. < params.descendant_prob then
          Syntax.Descendant
        else Syntax.Child
      in
      let preds =
        if rest = [] then preds_at_end node
        else []
      in
      { Syntax.axis; label = Synopsis.label syn node; preds } :: steps (Some node) rest
  in
  (steps None kept, List.rev kept |> List.hd)

let sample_pred rng params syn v =
  let hops = 1 + Random.State.int rng 2 in
  match random_walk rng syn v hops with
  | [] -> []
  | walk ->
    let path, _ = path_of_walk rng params syn walk ~preds_at_end:(fun _ -> []) in
    [ path ]

(* Sample one positive query. *)
let sample_query rng params syn =
  let budget = ref (1 + Random.State.int rng params.max_vars) in
  let rec grow u ~depth ~first =
    if !budget <= 0 then None
    else begin
      let hops = 1 + Random.State.int rng params.max_path_len in
      match random_walk rng syn u hops with
      | [] -> None
      | walk ->
        decr budget;
        let preds_at_end node =
          if Random.State.float rng 1. < params.pred_prob then
            sample_pred rng params syn node
          else []
        in
        let path, end_node = path_of_walk rng params syn walk ~preds_at_end in
        let optional =
          (not first) && Random.State.float rng 1. < params.optional_prob
        in
        let fanout =
          if depth = 0 then 1 + Random.State.int rng 2
          else Random.State.int rng 3
        in
        let children =
          List.init fanout (fun i ->
              grow end_node ~depth:(depth + 1) ~first:(first && i = 0))
          |> List.filter_map Fun.id
        in
        Some (Syntax.edge ~optional path (Syntax.node children))
    end
  in
  match grow syn.Synopsis.root ~depth:0 ~first:true with
  | None -> None
  | Some edge -> Some (Syntax.query [ edge ])

let generate_distinct rng params syn n transform =
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 200 * n in
  while !found < n && !attempts < max_attempts do
    incr attempts;
    match sample_query rng params syn with
    | None -> ()
    | Some q -> (
      match transform q with
      | None -> ()
      | Some q ->
        let key = Syntax.to_string q in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := q :: !out;
          incr found
        end)
  done;
  List.rev !out

let positive ?(params = default_params) ~seed ~n syn =
  let rng = Random.State.make [| seed; 0xca11 |] in
  generate_distinct rng params syn n (fun q -> Some q)

(* A label absent from any document: interned once. *)
let absent_label = Xmldoc.Label.of_string "__no_such_element__"

let negative ?(params = default_params) ~seed ~n syn =
  let rng = Random.State.make [| seed; 0xdead |] in
  let poison (q : Syntax.t) =
    (* replace the last step's label on the first (required) edge *)
    match q.edges with
    | [] -> None
    | edge :: rest ->
      let rec replace_last = function
        | [] -> []
        | [ (step : Syntax.step) ] -> [ { step with label = absent_label } ]
        | step :: tl -> step :: replace_last tl
      in
      Some
        (Syntax.renumber
           {
             q with
             edges = { edge with path = replace_last edge.path } :: rest;
           })
  in
  generate_distinct rng params syn n poison

type stats = {
  queries : int;
  avg_binding_tuples : float;
  positive_fraction : float;
}

let measure doc queries =
  let total = ref 0. and pos = ref 0 in
  List.iter
    (fun q ->
      let s = Twig.Eval.selectivity doc q in
      total := !total +. s;
      if s > 0. then incr pos)
    queries;
  let n = List.length queries in
  {
    queries = n;
    avg_binding_tuples = (if n = 0 then 0. else !total /. float_of_int n);
    positive_fraction = (if n = 0 then 0. else float_of_int !pos /. float_of_int n);
  }
