(** Top-down, workload-driven twig-XSKETCH construction.

    Following the original proposal (as summarized in §3.1 and §6.1 of
    the TREESKETCH paper), construction starts from the coarse
    {e label-split graph} (one node per tag) and greedily applies
    refinement operations until the space budget is filled:

    - {e node splits}: a node is split on its highest-variance outgoing
      dimension (members with child count above/below the mean part
      ways), sharpening both structure and histograms;
    - {e histogram refinements}: a node's bucket budget is increased,
      letting its joint histogram keep more exact buckets.

    Candidate refinements are ranked by the {e estimation error of the
    resulting synopsis on a training workload} — the expensive
    workload-driven evaluation step that Table 3 blames for
    twig-XSKETCH's high construction times (and that TSBUILD's
    workload-independent squared-error metric avoids).

    Like TSBUILD, the builder reads extents and exact signatures off
    the count-stable summary rather than the base document. *)

type params = {
  candidates_per_round : int;
      (** how many top-scoring candidates get the full workload
          evaluation each round *)
  bucket_increment : int;  (** buckets added by a histogram refinement *)
  initial_buckets : int;  (** bucket budget of label-split nodes *)
  max_buckets : int;
      (** per-node bucket ceiling.  The original system kept per-node
          histograms small (high-dimensional joint spaces defeat
          fine-grained buckets — the weakness §6.2 points at); budget
          beyond this must go to structural splits. *)
  max_rounds : int;  (** safety stop *)
  stable_dims_only : bool;
      (** faithful-2004 mode (default true): joint bucket distributions
          are recorded only across B/F-stable dimensions, as in the
          original model ("edge distribution information ... across
          different stable ancestor or descendant edges"); unstable
          dimensions carry their average only.  [false] yields the
          modernized baseline used as an ablation in EXPERIMENTS.md. *)
}

val default_params : params

type training = (Twig.Syntax.t * float) list
(** Training workload: queries with their true selectivities. *)

val label_split : Sketch.Synopsis.t -> initial_buckets:int -> Model.t
(** The coarsest synopsis: one node per label. *)

val build :
  ?params:params ->
  Sketch.Synopsis.t ->
  training:training ->
  budget:int ->
  Model.t
(** Grow a twig-XSKETCH from the label-split graph up to [budget]
    bytes, guided by the training workload. *)

val build_with_checkpoints :
  ?params:params ->
  Sketch.Synopsis.t ->
  training:training ->
  budgets:int list ->
  (int * Model.t) list
(** One growth pass snapshotting at each budget (ascending); returns
    [(budget, xsketch)] in the order given. *)
