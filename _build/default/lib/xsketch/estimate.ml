module Syntax = Twig.Syntax

(* All estimation happens as expectations of demand products over a
   node's joint bucket histogram.  A demand maps a bucket's count
   vector (aligned with the node's edge array) to a factor. *)

type ctx = {
  xs : Model.t;
  max_hops : int;
  (* memo tables for the descendant-step recursions, keyed by
     (node, path suffix).  Paths are small; structural hashing is
     fine. *)
  desc_val : (int * Syntax.step * Syntax.path * int * int, float) Hashtbl.t;
      (* key: node, //-step, remaining path, hops left, terminal-value id *)
  desc_prob : (int * Syntax.step * Syntax.path, float) Hashtbl.t;
  (* memo for query-node tuple values, keyed by (node, var) *)
  tup_memo : (int * int, float) Hashtbl.t;
}

let joint ctx v demands =
  match demands with
  | [] -> 1.
  | demands ->
    let h = Model.hist ctx.xs v in
    if h = [] then
      (* leaf with no outgoing edges: evaluate demands on an empty
         vector *)
      List.fold_left (fun acc d -> acc *. d [||]) 1. demands
    else
      Histogram.expectation h (fun c ->
          List.fold_left (fun acc d -> acc *. d c) 1. demands)

(* [value_demand ctx v step rest tv] and friends build, for a node
   [v], the demand corresponding to one query path.  [tv] is the value
   collected at each final match. *)

(* Terminal values carry an id so memo entries for different query
   contexts with equal path suffixes do not collide. *)
let rec path_value_at ctx v (p : Syntax.path) (tv : int * (int -> float)) =
  (* expected sum of tv over matches of p, for one element of v *)
  match p with
  | [] -> snd tv v
  | _ -> joint ctx v [ value_demand ctx v p tv ]

(* demand (over v's buckets) for the first step of [p] *)
and value_demand ctx v (p : Syntax.path) tv =
  match p with
  | [] -> fun _ -> 1.
  | step :: rest ->
    let edges = Model.edges ctx.xs v in
    (match step.axis with
    | Child ->
      let per_child =
        Array.map
          (fun (w, _) ->
            if Xmldoc.Label.equal (Model.label ctx.xs w) step.label then
              with_preds_value ctx w step.preds rest tv
            else 0.)
          edges
      in
      fun c ->
        let sum = ref 0. in
        Array.iteri (fun j m -> if m <> 0. then sum := !sum +. (c.(j) *. m)) per_child;
        !sum
    | Descendant ->
      let per_child =
        Array.map
          (fun (w, _) ->
            let direct =
              if Xmldoc.Label.equal (Model.label ctx.xs w) step.label then
                with_preds_value ctx w step.preds rest tv
              else 0.
            in
            direct +. desc_value ctx w step rest tv ctx.max_hops)
          edges
      in
      fun c ->
        let sum = ref 0. in
        Array.iteri (fun j m -> if m <> 0. then sum := !sum +. (c.(j) *. m)) per_child;
        !sum)

(* value through deeper descendants of [v] for a //-step *)
and desc_value ctx v step rest tv hops =
  if hops <= 0 then 0.
  else begin
    let key = (v, step, rest, hops, fst tv) in
    match Hashtbl.find_opt ctx.desc_val key with
    | Some x -> x
    | None ->
      Hashtbl.add ctx.desc_val key 0. (* cycle cut *) ;
      let edges = Model.edges ctx.xs v in
      let per_child =
        Array.map
          (fun (w, _) ->
            let direct =
              if Xmldoc.Label.equal (Model.label ctx.xs w) step.Syntax.label then
                with_preds_value ctx w step.preds rest tv
              else 0.
            in
            direct +. desc_value ctx w step rest tv (hops - 1))
          edges
      in
      let demand c =
        let sum = ref 0. in
        Array.iteri (fun j m -> if m <> 0. then sum := !sum +. (c.(j) *. m)) per_child;
        !sum
      in
      let x = joint ctx v [ demand ] in
      Hashtbl.replace ctx.desc_val key x;
      x
  end

(* value of [rest] from [w], jointly with the step's branch predicates
   (all consume w's dimensions in one expectation) *)
and with_preds_value ctx w preds rest tv =
  let pred_demands = List.map (fun p -> prob_demand ctx w p) preds in
  match rest with
  | [] ->
    (* the match is w itself; predicates gate it *)
    joint ctx w pred_demands *. snd tv w
  | _ -> joint ctx w (value_demand ctx w rest tv :: pred_demands)

(* ---- existence probabilities ---- *)

and path_prob_at ctx v (p : Syntax.path) =
  match p with [] -> 1. | _ -> joint ctx v [ prob_demand ctx v p ]

and prob_demand ctx v (p : Syntax.path) =
  match p with
  | [] -> fun _ -> 1.
  | step :: rest ->
    let edges = Model.edges ctx.xs v in
    let per_child =
      Array.map
        (fun (w, _) ->
          match step.Syntax.axis with
          | Child ->
            if Xmldoc.Label.equal (Model.label ctx.xs w) step.label then
              with_preds_prob ctx w step.preds rest
            else 0.
          | Descendant ->
            let direct =
              if Xmldoc.Label.equal (Model.label ctx.xs w) step.label then
                with_preds_prob ctx w step.preds rest
              else 0.
            in
            let deeper = desc_prob ctx w step rest in
            1. -. ((1. -. direct) *. (1. -. deeper)))
        edges
    in
    fun c ->
      let miss = ref 1. in
      Array.iteri
        (fun j q ->
          if q > 0. then miss := !miss *. ((1. -. Float.min 1. q) ** c.(j)))
        per_child;
      1. -. !miss

and desc_prob ctx v step rest =
  let key = (v, step, rest) in
  match Hashtbl.find_opt ctx.desc_prob key with
  | Some x -> x
  | None ->
    Hashtbl.add ctx.desc_prob key 0. (* cycle cut *) ;
    let edges = Model.edges ctx.xs v in
    let per_child =
      Array.map
        (fun (w, _) ->
          let direct =
            if Xmldoc.Label.equal (Model.label ctx.xs w) step.Syntax.label then
              with_preds_prob ctx w step.preds rest
            else 0.
          in
          let deeper = desc_prob ctx w step rest in
          1. -. ((1. -. direct) *. (1. -. deeper)))
        edges
    in
    let demand c =
      let miss = ref 1. in
      Array.iteri
        (fun j q ->
          if q > 0. then miss := !miss *. ((1. -. Float.min 1. q) ** c.(j)))
        per_child;
      1. -. !miss
    in
    let x = joint ctx v [ demand ] in
    Hashtbl.replace ctx.desc_prob key x;
    x

and with_preds_prob ctx w preds rest =
  let pred_demands = List.map (fun p -> prob_demand ctx w p) preds in
  match rest with
  | [] -> joint ctx w pred_demands
  | _ -> joint ctx w (prob_demand ctx w rest :: pred_demands)

(* ---- query tuples ---- *)

let rec tup ctx v (qn : Syntax.node) =
  let key = (v, qn.var) in
  match Hashtbl.find_opt ctx.tup_memo key with
  | Some x -> x
  | None ->
    Hashtbl.add ctx.tup_memo key 0. (* cycle cut for recursive labels *) ;
    let demands =
      List.map
        (fun (e : Syntax.edge) ->
          let d =
            value_demand ctx v e.path
              (e.target.var, fun w -> tup ctx w e.target)
          in
          if e.optional then fun c -> Float.max 1. (d c) else d)
        qn.edges
    in
    let x = joint ctx v demands in
    Hashtbl.replace ctx.tup_memo key x;
    x

let make_ctx ?(max_hops = 20) xs =
  {
    xs;
    max_hops;
    desc_val = Hashtbl.create 256;
    desc_prob = Hashtbl.create 256;
    tup_memo = Hashtbl.create 64;
  }

let tuples ?max_hops xs q =
  let ctx = make_ctx ?max_hops xs in
  tup ctx xs.Model.root q

let path_prob ?max_hops xs v p =
  let ctx = make_ctx ?max_hops xs in
  path_prob_at ctx v p

let path_count ?max_hops xs v p =
  let ctx = make_ctx ?max_hops xs in
  path_value_at ctx v p (-1, fun _ -> 1.)
