type node = {
  label : Xmldoc.Label.t;
  count : float;
  edges : (int * float) array;
  hist : Histogram.t;
}

type t = {
  nodes : node array;
  root : int;
}

let size_bytes s =
  Array.fold_left
    (fun acc n ->
      acc + Sketch.Synopsis.node_bytes
      + (Sketch.Synopsis.edge_bytes * Array.length n.edges)
      + Histogram.size_bytes n.hist)
    0 s.nodes

let num_nodes s = Array.length s.nodes

let label s u = s.nodes.(u).label

let count s u = s.nodes.(u).count

let edges s u = s.nodes.(u).edges

let hist s u = s.nodes.(u).hist

let make ~root nodes =
  if root < 0 || root >= Array.length nodes then invalid_arg "Xsketch.Model.make: bad root";
  { nodes; root }

let pp ppf s =
  Format.fprintf ppf "@[<v>twig-xsketch: %d nodes, %d bytes, root=%d@,"
    (num_nodes s) (size_bytes s) s.root;
  Array.iteri
    (fun u n ->
      Format.fprintf ppf "  [%d] %s count=%g (%d buckets):" u
        (Xmldoc.Label.to_string n.label)
        n.count
        (Histogram.num_buckets n.hist);
      Array.iter (fun (t, k) -> Format.fprintf ppf " ->%d(%g)" t k) n.edges;
      Format.fprintf ppf "@,")
    s.nodes;
  Format.fprintf ppf "@]"
