(** The twig-XSKETCH synopsis (Polyzotis–Garofalakis–Ioannidis,
    ICDE 2004), reimplemented as the comparison baseline of §6.

    Like a TREESKETCH it is a graph synopsis (node partitions + per-node
    counts + edges), but each node additionally stores an edge
    {!Histogram.t} over its outgoing dimensions.  Edge averages are kept
    too (they are the 1-bucket degenerate histogram). *)

type node = {
  label : Xmldoc.Label.t;
  count : float;
  edges : (int * float) array;  (** (target, average), sorted by target *)
  hist : Histogram.t;
      (** joint child-count histogram; dimension [i] of a bucket refers
          to [edges.(i)] *)
}

type t = {
  nodes : node array;
  root : int;
}

val size_bytes : t -> int
(** Node and edge costs as in {!Sketch.Synopsis} plus
    {!Histogram.size_bytes} per node; buckets are what a twig-XSKETCH
    spends its budget on. *)

val num_nodes : t -> int

val label : t -> int -> Xmldoc.Label.t

val count : t -> int -> float

val edges : t -> int -> (int * float) array

val hist : t -> int -> Histogram.t

val make : root:int -> node array -> t

val pp : Format.formatter -> t -> unit
