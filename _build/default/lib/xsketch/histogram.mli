(** Per-node edge histograms (§3.1).

    A twig-XSKETCH node [u] stores a histogram over the joint
    distribution of its elements' child counts along its outgoing
    synopsis edges: bucket [(c1, ..., cn) -> w] says that a fraction
    [w] of [extent u] has exactly [ci] children along edge [i].  This
    captures sibling-edge correlations one level deep — the extra
    power twig-XSKETCHes have over plain averages, bought with the
    extra space the buckets cost.

    Histograms are compressed to a bucket budget: the heaviest buckets
    are kept exact and the remainder is collapsed into one residual
    average bucket. *)

type bucket = {
  weight : float;  (** fraction of the extent, in (0, 1] *)
  counts : float array;
      (** child counts per outgoing-edge dimension; integral for exact
          buckets, averaged for the residual bucket *)
}

type t = bucket list
(** Invariant: weights sum to ~1 (up to float noise); at most one
    residual (non-integral) bucket. *)

val of_signatures : (float array * float) list -> max_buckets:int -> t
(** [of_signatures sigs ~max_buckets] builds a compressed histogram
    from [(count vector, element weight)] pairs.  Equal vectors are
    coalesced; the heaviest [max_buckets - 1] become exact buckets and
    the rest are averaged into a residual bucket. *)

val dims : t -> int

val num_buckets : t -> int

val mean : t -> int -> float
(** Expected child count along one dimension. *)

val exist_prob : t -> int -> float
(** Fraction of elements with at least one child along the dimension
    (residual buckets contribute via [min 1 count]). *)

val expectation : t -> (float array -> float) -> float
(** [expectation h f] is [sum_b w_b * f b.counts] — the workhorse for
    bucket-aware query estimation. *)

val size_bytes : t -> int
(** Storage charge: [4 + 4 * dims] bytes per bucket (weight plus
    32-bit counts), matching the storage model of the original
    twig-XSKETCH implementation. *)
