lib/xsketch/answer.mli: Model Twig Xmldoc
