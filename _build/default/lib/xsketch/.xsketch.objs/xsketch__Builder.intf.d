lib/xsketch/builder.mli: Model Sketch Twig
