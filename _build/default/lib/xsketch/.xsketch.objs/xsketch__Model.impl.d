lib/xsketch/model.ml: Array Format Histogram Sketch Xmldoc
