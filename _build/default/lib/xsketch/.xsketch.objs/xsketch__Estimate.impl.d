lib/xsketch/estimate.ml: Array Float Hashtbl Histogram List Model Twig Xmldoc
