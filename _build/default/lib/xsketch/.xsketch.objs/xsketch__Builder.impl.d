lib/xsketch/builder.ml: Array Estimate Float Fun Hashtbl Histogram List Model Sketch Stdlib Twig Xmldoc
