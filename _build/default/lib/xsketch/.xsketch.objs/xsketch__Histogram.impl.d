lib/xsketch/histogram.ml: Array Float Hashtbl List Stdlib
