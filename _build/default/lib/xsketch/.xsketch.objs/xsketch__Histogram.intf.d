lib/xsketch/histogram.mli:
