lib/xsketch/model.mli: Format Histogram Xmldoc
