lib/xsketch/estimate.mli: Model Twig
