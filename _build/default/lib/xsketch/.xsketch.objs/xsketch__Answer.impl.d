lib/xsketch/answer.ml: Array Bytes Estimate Float Fun Hashtbl Histogram List Model Random Twig Xmldoc
