(** Approximate answers from a twig-XSKETCH (§6.1).

    The original twig-XSKETCH work targeted selectivity only; following
    the comparison methodology of the TREESKETCH paper, an approximate
    {e answer} is produced by traversing the query tree and {e sampling}
    the number of descendants of every result element from the recorded
    edge histograms.  The output is a concrete nesting tree (with the
    composite [q<var>#label] labels), directly comparable to the true
    nesting tree under ESD. *)

val sample :
  ?seed:int ->
  ?max_hops:int ->
  ?max_nodes:int ->
  Model.t ->
  Twig.Syntax.t ->
  Xmldoc.Tree.t option
(** Sample one approximate nesting tree.  [None] when the sampled
    answer is empty (a required variable found no bindings).
    [max_nodes] (default 300_000) truncates runaway expansions;
    [max_hops] (default 20) bounds descendant-step depth. *)
