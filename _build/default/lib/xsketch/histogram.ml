type bucket = {
  weight : float;
  counts : float array;
}

type t = bucket list

let of_signatures sigs ~max_buckets =
  match sigs with
  | [] -> []
  | (first, _) :: _ ->
    let ndims = Array.length first in
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. sigs in
    if total <= 0. then []
    else begin
      (* coalesce identical vectors *)
      let tbl : (float array, float ref) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (vec, w) ->
          match Hashtbl.find_opt tbl vec with
          | Some cell -> cell := !cell +. w
          | None -> Hashtbl.add tbl (Array.copy vec) (ref w))
        sigs;
      let all =
        Hashtbl.fold (fun vec w acc -> (vec, !w) :: acc) tbl []
        |> List.sort (fun (va, a) (vb, b) ->
               let c = Stdlib.compare b a in
               if c <> 0 then c else Stdlib.compare va vb)
      in
      let max_buckets = max 1 max_buckets in
      let rec split i kept = function
        | [] -> (List.rev kept, [])
        | x :: tl when i < max_buckets - 1 -> split (i + 1) (x :: kept) tl
        | rest -> (List.rev kept, rest)
      in
      let kept, rest =
        if List.length all <= max_buckets then (all, []) else split 0 [] all
      in
      let buckets =
        List.map (fun (vec, w) -> { weight = w /. total; counts = vec }) kept
      in
      match rest with
      | [] -> buckets
      | rest ->
        let rw = List.fold_left (fun acc (_, w) -> acc +. w) 0. rest in
        let avg = Array.make ndims 0. in
        List.iter
          (fun (vec, w) ->
            Array.iteri (fun i c -> avg.(i) <- avg.(i) +. (w *. c)) vec)
          rest;
        Array.iteri (fun i s -> avg.(i) <- s /. rw) avg;
        buckets @ [ { weight = rw /. total; counts = avg } ]
    end

let dims = function [] -> 0 | b :: _ -> Array.length b.counts

let num_buckets = List.length

let mean h i =
  List.fold_left (fun acc b -> acc +. (b.weight *. b.counts.(i))) 0. h

let exist_prob h i =
  List.fold_left (fun acc b -> acc +. (b.weight *. Float.min 1. b.counts.(i))) 0. h

let expectation h f =
  List.fold_left (fun acc b -> acc +. (b.weight *. f b.counts)) 0. h

let size_bytes h =
  List.fold_left (fun acc b -> acc + 4 + (4 * Array.length b.counts)) 0 h
