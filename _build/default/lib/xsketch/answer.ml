module Syntax = Twig.Syntax
module Tree = Xmldoc.Tree

(* Approximate answers per the §6.1 description: for each element of
   the result tree and each query edge, the {e number of descendants}
   along the edge's path is sampled from the recorded edge histograms —
   one count draw per hop of a path embedding, multiplied along the
   embedding (the per-hop independence that histogram synopses impose
   on multi-hop structure).  Bound elements are then materialized and
   recurse independently.  Intermediate (unbound) elements never
   materialize, exactly like in a nesting tree. *)

type ctx = {
  xs : Model.t;
  rng : Random.State.t;
  max_hops : int;
  mutable budget : int;
  reach : (int, Bytes.t) Hashtbl.t;
}

let reachable ctx label =
  let key = Xmldoc.Label.to_int label in
  match Hashtbl.find_opt ctx.reach key with
  | Some b -> b
  | None ->
    let n = Model.num_nodes ctx.xs in
    let b = Bytes.make n '\000' in
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to n - 1 do
        if Bytes.get b v = '\000' then begin
          let hit =
            Array.exists
              (fun (w, _) ->
                Xmldoc.Label.equal (Model.label ctx.xs w) label
                || Bytes.get b w = '\001')
              (Model.edges ctx.xs v)
          in
          if hit then begin
            Bytes.set b v '\001';
            changed := true
          end
        end
      done
    done;
    Hashtbl.add ctx.reach key b;
    b

(* One draw of the child count along dimension [j] of node [u]: pick a
   bucket by weight, read the dimension, randomized rounding for the
   residual bucket's fractional counts. *)
let draw_count ctx u j =
  let h = Model.hist ctx.xs u in
  match h with
  | [] -> 0
  | h ->
    let target = Random.State.float ctx.rng 1. in
    let rec pick acc = function
      | [ (b : Histogram.bucket) ] -> b
      | b :: rest ->
        if acc +. b.Histogram.weight >= target then b else pick (acc +. b.weight) rest
      | [] -> assert false
    in
    let c = (pick 0. h).counts.(j) in
    let base = int_of_float (Float.floor c) in
    let frac = c -. Float.floor c in
    base + if frac > 0. && Random.State.float ctx.rng 1. < frac then 1 else 0

let binomial ctx n p =
  if p >= 1. then n
  else begin
    let k = ref 0 in
    for _ = 1 to n do
      if Random.State.float ctx.rng 1. < p then incr k
    done;
    !k
  end

(* Sampled number of path matches per end node, for ONE parent element:
   one count draw per hop, multiplied along each embedding. *)
let rec sample_matches ctx u (p : Syntax.path) : (int * int) list =
  match p with
  | [] -> [ (u, 1) ]
  | step :: rest ->
    let acc : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let add v n =
      if n > 0 then
        match Hashtbl.find_opt acc v with
        | Some cell -> cell := !cell + n
        | None -> Hashtbl.add acc v (ref n)
    in
    (* [through w mult]: the embedding reached node [w] carrying
       [mult] sampled copies of the hop products so far. *)
    let matched w mult =
      (* branch predicates thin the count *)
      let mult =
        List.fold_left
          (fun m pred ->
            if m = 0 then 0
            else begin
              let s = Estimate.path_prob ~max_hops:ctx.max_hops ctx.xs w pred in
              binomial ctx m s
            end)
          mult step.preds
      in
      if mult > 0 then
        List.iter (fun (e, n) -> add e (mult * n)) (sample_matches ctx w rest)
    in
    let hop u j mult = mult * draw_count ctx u j in
    (match step.axis with
    | Child ->
      Array.iteri
        (fun j (w, _) ->
          if Xmldoc.Label.equal (Model.label ctx.xs w) step.label then begin
            let m = hop u j 1 in
            if m > 0 then matched w m
          end)
        (Model.edges ctx.xs u)
    | Descendant ->
      let reach = reachable ctx step.label in
      let rec dfs v mult hops =
        if hops > 0 && mult > 0 && mult < 1_000_000 then
          Array.iteri
            (fun j (w, _) ->
              let is_match =
                Xmldoc.Label.equal (Model.label ctx.xs w) step.label
              in
              let can_reach = Bytes.get reach w = '\001' in
              if is_match || can_reach then begin
                let m = hop v j mult in
                if m > 0 then begin
                  if is_match then matched w m;
                  if can_reach then dfs w m (hops - 1)
                end
              end)
            (Model.edges ctx.xs v)
      in
      dfs u 1 ctx.max_hops);
    Hashtbl.fold (fun v n out -> (v, !n) :: out) acc []

let rec sample_binding ctx v (qn : Syntax.node) =
  if ctx.budget <= 0 then None
  else begin
    ctx.budget <- ctx.budget - 1;
    let results =
      List.map
        (fun (e : Syntax.edge) ->
          let children =
            sample_matches ctx v e.path
            |> List.concat_map (fun (w, n) ->
                   List.init (min n ctx.budget) (fun _ -> sample_binding ctx w e.target))
            |> List.filter_map Fun.id
          in
          (e, children))
        qn.edges
    in
    let invalid =
      List.exists
        (fun ((e : Syntax.edge), children) -> (not e.optional) && children = [])
        results
    in
    if invalid then None
    else begin
      let children = List.concat_map snd results in
      Some (Tree.make (Twig.Eval.nesting_label qn.var (Model.label ctx.xs v)) children)
    end
  end

let sample ?(seed = 1) ?(max_hops = 20) ?(max_nodes = 300_000) xs q =
  let ctx =
    {
      xs;
      rng = Random.State.make [| seed; 0x5a3 |];
      max_hops;
      budget = max_nodes;
      reach = Hashtbl.create 8;
    }
  in
  sample_binding ctx xs.Model.root q
