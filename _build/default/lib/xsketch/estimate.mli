(** Twig selectivity estimation over a twig-XSKETCH.

    The estimator mirrors the methodology of the original paper
    (illustrated in §3.1: [sel(Q) = |extent(A)| * sum_b,c H_A(b) *
    H_B(c|b) * b * c]): within each synopsis node, all query demands
    that consume that node's outgoing dimensions — path continuations,
    branch predicates, and sibling query edges — are combined under a
    single expectation over the node's joint bucket histogram, so
    one-level sibling correlations are captured exactly.  Across nodes,
    independence is assumed (as in the original).  Descendant steps
    recurse over the synopsis graph with a hop bound. *)

val tuples : ?max_hops:int -> Model.t -> Twig.Syntax.t -> float
(** Estimated number of binding tuples (the outer-join convention of
    {!Twig.Eval} for optional edges). *)

val path_prob : ?max_hops:int -> Model.t -> int -> Twig.Syntax.path -> float
(** Probability that an element of the given node has at least one
    match of the path — exposed for tests. *)

val path_count : ?max_hops:int -> Model.t -> int -> Twig.Syntax.path -> float
(** Expected number of matches of the path per element of the node —
    exposed for tests. *)
