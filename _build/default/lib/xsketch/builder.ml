module Synopsis = Sketch.Synopsis

type params = {
  candidates_per_round : int;
  bucket_increment : int;
  initial_buckets : int;
  max_buckets : int;
  max_rounds : int;
  stable_dims_only : bool;
}

let default_params =
  {
    candidates_per_round = 32;
    bucket_increment = 2;
    initial_buckets = 1;
    max_buckets = 8;
    max_rounds = 100_000;
    stable_dims_only = true;
  }

type training = (Twig.Syntax.t * float) list

(* Working state: a partition of the stable summary's nodes. *)
type state = {
  stable : Synopsis.t;
  stable_parents : int array array;
  stable_dims_only : bool;
  mutable members : int list array;  (* per cluster *)
  mutable buckets : int array;  (* per cluster bucket budget *)
  assign : int array;  (* stable node -> cluster *)
  mutable n : int;  (* number of clusters *)
}

(* Per-member signature: child counts grouped by target cluster. *)
let signature st s =
  let local : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (tgt, k) ->
      let c = st.assign.(tgt) in
      match Hashtbl.find_opt local c with
      | Some cell -> cell := !cell +. k
      | None -> Hashtbl.add local c (ref k))
    (Synopsis.edges st.stable s);
  local

(* Build the Xsketch node for cluster [c]: edges, averages, histogram. *)
let export_node st c =
  let members = st.members.(c) in
  let count =
    List.fold_left (fun acc s -> acc +. Synopsis.count st.stable s) 0. members
  in
  (* collect target dims *)
  let dim_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let dims = ref [] in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun tgt _ ->
          if not (Hashtbl.mem dim_index tgt) then begin
            Hashtbl.add dim_index tgt (Hashtbl.length dim_index);
            dims := tgt :: !dims
          end)
        (signature st s))
    members;
  let ndims = Hashtbl.length dim_index in
  let dim_targets = Array.make ndims 0 in
  List.iter (fun tgt -> dim_targets.(Hashtbl.find dim_index tgt) <- tgt) !dims;
  let sigs =
    List.map
      (fun s ->
        let vec = Array.make ndims 0. in
        Hashtbl.iter
          (fun tgt k -> vec.(Hashtbl.find dim_index tgt) <- !k)
          (signature st s);
        (vec, Synopsis.count st.stable s))
      members
  in
  (* B/F-stability gate (the original model): the joint distribution is
     only recorded across stable dimensions; an unstable dimension
     carries its average only (its bucket coordinates are flattened to
     the mean, which also lets duplicate buckets coalesce). *)
  let sigs =
    if not st.stable_dims_only then sigs
    else begin
      let total_w =
        List.fold_left (fun a (_, w) -> a +. w) 0. sigs
      in
      let stable_dim = Array.make ndims true in
      Array.iteri
        (fun j tgt ->
          (* F-stable: every element of c has a child in tgt *)
          let f_stable = List.for_all (fun (vec, _) -> vec.(j) >= 1.) sigs in
          (* B-stable: every element of tgt has its parents in c *)
          let b_stable =
            List.for_all
              (fun t ->
                Array.for_all (fun p -> st.assign.(p) = c) st.stable_parents.(t))
              st.members.(tgt)
          in
          stable_dim.(j) <- f_stable && b_stable)
        dim_targets;
      if Array.for_all Fun.id stable_dim then sigs
      else begin
        let means = Array.make ndims 0. in
        List.iter
          (fun (vec, w) ->
            Array.iteri (fun j v -> means.(j) <- means.(j) +. (w *. v)) vec)
          sigs;
        Array.iteri (fun j m -> means.(j) <- m /. total_w) means;
        List.map
          (fun (vec, w) ->
            (Array.mapi (fun j v -> if stable_dim.(j) then v else means.(j)) vec, w))
          sigs
      end
    end
  in
  let hist = Histogram.of_signatures sigs ~max_buckets:st.buckets.(c) in
  let edges =
    Array.init ndims (fun j ->
        (dim_targets.(j), Histogram.mean hist j))
    |> Array.to_list
    |> List.filter (fun (_, avg) -> avg > 0.)
    |> Array.of_list
  in
  (* keep histogram dims aligned with the (possibly filtered) edges *)
  let keep =
    Array.init ndims (fun j -> Histogram.mean hist j > 0.)
  in
  let filter_vec vec =
    let out = ref [] in
    Array.iteri (fun j v -> if keep.(j) then out := v :: !out) vec;
    Array.of_list (List.rev !out)
  in
  let hist =
    List.map
      (fun (b : Histogram.bucket) -> { b with counts = filter_vec b.counts })
      hist
  in
  let label =
    match members with
    | s :: _ -> Synopsis.label st.stable s
    | [] -> invalid_arg "Builder.export_node: empty cluster"
  in
  { Model.label; count; edges; hist }

let export st =
  let nodes = Array.init st.n (fun c -> export_node st c) in
  Model.make ~root:st.assign.(st.stable.Synopsis.root) nodes

let size_of_state st = Model.size_bytes (export st)

(* ------------------------------------------------------------------ *)
(* Candidates                                                           *)
(* ------------------------------------------------------------------ *)

type refinement =
  | Split of int  (** split cluster on its highest-variance dimension *)
  | More_buckets of int

(* Partition members of [c] along its highest-variance dimension at the
   mean; returns the two member lists or None if structurally
   homogeneous. *)
let split_members st c =
  let members = st.members.(c) in
  if List.length members < 2 then None
  else begin
    (* per-dim weighted mean/variance *)
    let acc : (int, float ref * float ref * float ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun s ->
        let w = Synopsis.count st.stable s in
        Hashtbl.iter
          (fun tgt k ->
            let sw, sx, sxx =
              match Hashtbl.find_opt acc tgt with
              | Some cell -> cell
              | None ->
                let cell = (ref 0., ref 0., ref 0.) in
                Hashtbl.add acc tgt cell;
                cell
            in
            sw := !sw +. w;
            sx := !sx +. (w *. !k);
            sxx := !sxx +. (w *. !k *. !k))
          (signature st s))
      members;
    let total_w =
      List.fold_left (fun a s -> a +. Synopsis.count st.stable s) 0. members
    in
    let best = ref None in
    Hashtbl.iter
      (fun tgt (_, sx, sxx) ->
        (* variance over the whole extent (absent dims count as 0) *)
        let mean = !sx /. total_w in
        let var = (!sxx /. total_w) -. (mean *. mean) in
        match !best with
        | Some (_, _, bv) when bv >= var -> ()
        | _ -> if var > 1e-12 then best := Some (tgt, mean, var))
      acc;
    match !best with
    | None -> None
    | Some (tgt, mean, _) ->
      let value s =
        match Hashtbl.find_opt (signature st s) tgt with
        | Some k -> !k
        | None -> 0.
      in
      let lo, hi = List.partition (fun s -> value s <= mean) members in
      if lo = [] || hi = [] then None else Some (lo, hi)
  end

let apply st = function
  | More_buckets c -> st.buckets.(c) <- st.buckets.(c) + 1
  | Split c -> (
    match split_members st c with
    | None -> ()
    | Some (lo, hi) ->
      let fresh = st.n in
      st.n <- st.n + 1;
      if fresh >= Array.length st.members then begin
        let grow arr fill =
          let bigger = Array.make (2 * Array.length arr) fill in
          Array.blit arr 0 bigger 0 (Array.length arr);
          bigger
        in
        st.members <- grow st.members [];
        st.buckets <- grow st.buckets 0
      end;
      st.members.(c) <- lo;
      st.members.(fresh) <- hi;
      st.buckets.(fresh) <- st.buckets.(c);
      List.iter (fun s -> st.assign.(s) <- fresh) hi)

(* error of a synopsis on the training workload *)
let workload_error xs training =
  let n = List.length training in
  if n = 0 then 0.
  else begin
    let total =
      List.fold_left
        (fun acc (q, truth) ->
          let est = Estimate.tuples xs q in
          acc +. (Float.abs (truth -. est) /. Float.max truth 1.))
        0. training
    in
    total /. float_of_int n
  end

(* cheap pre-score used to shortlist candidates before the expensive
   workload evaluation *)
let prescore st = function
  | More_buckets c ->
    (* favor big clusters with tight bucket budgets (saturated
       histograms) *)
    float_of_int (List.length st.members.(c)) /. float_of_int st.buckets.(c)
  | Split c -> (
    match split_members st c with
    | None -> neg_infinity
    | Some (lo, hi) -> float_of_int (min (List.length lo) (List.length hi)))

let candidates params st =
  let out = ref [] in
  for c = 0 to st.n - 1 do
    if List.length st.members.(c) > 1 then begin
      out := Split c :: !out;
      if st.buckets.(c) < params.max_buckets then out := More_buckets c :: !out
    end
  done;
  !out

let make_state stable ~initial_buckets ~stable_dims_only =
  let n_stable = Synopsis.num_nodes stable in
  let by_label : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let assign = Array.make n_stable 0 in
  let count = ref 0 in
  for s = 0 to n_stable - 1 do
    let l = Xmldoc.Label.to_int (Synopsis.label stable s) in
    let c =
      match Hashtbl.find_opt by_label l with
      | Some c -> c
      | None ->
        let c = !count in
        incr count;
        Hashtbl.add by_label l c;
        c
    in
    assign.(s) <- c
  done;
  let members = Array.make (max 1 (2 * !count)) [] in
  for s = n_stable - 1 downto 0 do
    members.(assign.(s)) <- s :: members.(assign.(s))
  done;
  {
    stable;
    stable_parents = Synopsis.parents stable;
    stable_dims_only;
    members;
    buckets = Array.make (Array.length members) initial_buckets;
    assign;
    n = !count;
  }

let label_split stable ~initial_buckets =
  export (make_state stable ~initial_buckets ~stable_dims_only:true)

let make_trial st r params =
  let trial =
    {
      st with
      members = Array.copy st.members;
      buckets = Array.copy st.buckets;
      assign = Array.copy st.assign;
    }
  in
  (match r with
  | More_buckets c -> trial.buckets.(c) <- trial.buckets.(c) + params.bucket_increment - 1
  | Split _ -> ());
  apply trial r;
  export trial

let build_gen params stable ~training ~on_step ~stop =
  let st =
    make_state stable ~initial_buckets:params.initial_buckets
      ~stable_dims_only:params.stable_dims_only
  in
  on_step st;
  let rounds = ref 0 in
  let exhausted = ref false in
  while (not (stop st)) && (not !exhausted) && !rounds < params.max_rounds do
    incr rounds;
    let cands =
      candidates params st
      |> List.map (fun r -> (prescore st r, r))
      |> List.filter (fun (sc, _) -> sc > neg_infinity)
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    match take params.candidates_per_round cands with
    | [] -> exhausted := true
    | top ->
      (* full workload evaluation of each shortlisted refinement *)
      let scored =
        List.map
          (fun (_, r) ->
            let trial = make_trial st r params in
            let err = workload_error trial training in
            (err, r))
          top
      in
      let best_err, best =
        List.fold_left
          (fun (be, br) (e, r) -> if e < be then (e, r) else (be, br))
          (infinity, snd (List.hd scored))
          scored
      in
      ignore best_err;
      apply st best;
      (match best with
      | More_buckets c -> st.buckets.(c) <- st.buckets.(c) + params.bucket_increment - 1
      | Split _ -> ());
      on_step st
  done;
  st

let build ?(params = default_params) stable ~training ~budget =
  let st =
    build_gen params stable ~training
      ~on_step:(fun _ -> ())
      ~stop:(fun st -> size_of_state st >= budget)
  in
  export st

let build_with_checkpoints ?(params = default_params) stable ~training ~budgets =
  let sorted = List.sort_uniq Stdlib.compare budgets in
  let results = Hashtbl.create 8 in
  let remaining = ref sorted in
  let last : Model.t option ref = ref None in
  let on_step st =
    let xs = export st in
    last := Some xs;
    let size = Model.size_bytes xs in
    let rec note () =
      match !remaining with
      | b :: rest when size >= b ->
        (* first synopsis at or above the budget: keep the previous one
           (the largest fitting the budget), or this one if none *)
        let chosen =
          match Hashtbl.find_opt results (-b) with Some s -> s | None -> xs
        in
        Hashtbl.replace results b chosen;
        remaining := rest;
        note ()
      | b :: _ ->
        (* remember the latest synopsis still under budget b *)
        Hashtbl.replace results (-b) xs
      | [] -> ()
    in
    note ()
  in
  let final_budget = List.fold_left max 0 sorted in
  let st =
    build_gen params stable ~training ~on_step ~stop:(fun st ->
        size_of_state st >= final_budget)
  in
  let final = export st in
  List.map
    (fun b ->
      match Hashtbl.find_opt results b with
      | Some s -> (b, s)
      | None -> (
        match Hashtbl.find_opt results (-b) with
        | Some s -> (b, s)
        | None -> (b, final)))
    budgets
