module Synopsis = Sketch.Synopsis

type set_metric = Mac | Mac_linear | Emd

let subtree_sizes (s : Synopsis.t) =
  let n = Synopsis.num_nodes s in
  let sizes = Array.make n (-1.) in
  let in_progress = Array.make n false in
  let rec size u =
    if sizes.(u) >= 0. then sizes.(u)
    else if in_progress.(u) then 0. (* cycle: cut the walk *)
    else begin
      in_progress.(u) <- true;
      let total =
        Array.fold_left
          (fun acc (v, k) -> acc +. (k *. size v))
          1. (Synopsis.edges s u)
      in
      in_progress.(u) <- false;
      sizes.(u) <- total;
      total
    end
  in
  for u = 0 to n - 1 do
    ignore (size u)
  done;
  sizes

let between_synopses ?(metric = Mac) (sa : Synopsis.t) (sb : Synopsis.t) =
  let size_a = subtree_sizes sa and size_b = subtree_sizes sb in
  let set_dist ~size ~dist u v =
    match metric with
    | Mac -> Set_distance.mac ~penalty:`Superlinear ~size ~dist u v
    | Mac_linear -> Set_distance.mac ~penalty:`Linear ~size ~dist u v
    | Emd -> Set_distance.emd ~size ~dist u v
  in
  (* Values compared by the set metric: Left = class of sa, Right =
     class of sb.  Sizes price sub-tree insertion/deletion. *)
  let value_size = function
    | `Left u -> size_a.(u)
    | `Right v -> size_b.(v)
  in
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let in_progress : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* children of a class grouped by tag: (tag, [(class, per-element count)]) *)
  let children_by_tag s u =
    let tbl : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun (v, k) ->
        let tag = Xmldoc.Label.to_int (Synopsis.label s v) in
        match Hashtbl.find_opt tbl tag with
        | Some l -> l := (v, k) :: !l
        | None -> Hashtbl.add tbl tag (ref [ (v, k) ]))
      (Synopsis.edges s u);
    tbl
  in
  let rec esd u v =
    if not (Xmldoc.Label.equal (Synopsis.label sa u) (Synopsis.label sb v)) then
      size_a.(u) +. size_b.(v)
    else
      match Hashtbl.find_opt memo (u, v) with
      | Some d -> d
      | None ->
        if Hashtbl.mem in_progress (u, v) then
          Float.abs (size_a.(u) -. size_b.(v))
        else begin
          Hashtbl.add in_progress (u, v) ();
          let ca = children_by_tag sa u and cb = children_by_tag sb v in
          let tags = Hashtbl.create 8 in
          Hashtbl.iter (fun t _ -> Hashtbl.replace tags t ()) ca;
          Hashtbl.iter (fun t _ -> Hashtbl.replace tags t ()) cb;
          let ground x y =
            match (x, y) with
            | `Left a, `Right b | `Right b, `Left a -> esd a b
            | `Left a, `Left a' ->
              (* same-side distances arise only inside a set metric
                 comparing left to right; defensive fallback *)
              Float.abs (size_a.(a) -. size_a.(a'))
            | `Right b, `Right b' -> Float.abs (size_b.(b) -. size_b.(b'))
          in
          let total =
            Hashtbl.fold
              (fun tag () acc ->
                let left =
                  match Hashtbl.find_opt ca tag with
                  | Some l -> List.map (fun (c, k) -> (`Left c, k)) !l
                  | None -> []
                in
                let right =
                  match Hashtbl.find_opt cb tag with
                  | Some l -> List.map (fun (c, k) -> (`Right c, k)) !l
                  | None -> []
                in
                acc +. set_dist ~size:value_size ~dist:ground left right)
              tags 0.
          in
          Hashtbl.remove in_progress (u, v);
          Hashtbl.replace memo (u, v) total;
          total
        end
  in
  esd sa.Synopsis.root sb.Synopsis.root

let between_trees ?metric a b =
  between_synopses ?metric (Sketch.Stable.build a) (Sketch.Stable.build b)
