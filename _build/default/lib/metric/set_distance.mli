(** Distances between multisets of values — the building block of the
    ESD metric (§5).

    The paper computes the distance [distS(Ut, Vt)] between the
    [t]-tagged children of two elements with a value-set metric such as
    MAC (Ioannidis & Poosala, VLDB'99) or EMD.  Both need:

    - a {e ground distance} between two values (here: a recursive ESD
      call);
    - a {e size} per value (here: the sub-tree size |e|), which prices
      the insertion of a missing sub-tree, per the paper's
      empty-set transformation [ESD(e, ev) = |e|].

    Values are given as [(value, frequency)] pairs with strictly
    positive — possibly fractional — frequencies (a synopsis edge
    average is a fractional per-element child count).

    Our MAC implementation is a match-and-compare scheme: distinct
    values are greedily paired by ground distance; a matched pair costs
    [min(f1,f2) * d] for the common mass plus a frequency-mismatch
    penalty.  With the [`Superlinear] penalty the mismatch costs
    [(hi - lo) * (hi / lo) * size]: relative multiplicity distortions
    are punished harder, which is what lets ESD prefer the
    correlation-preserving answer T2 over T1 in Figure 10 (the revised
    MAC of the paper has the same qualitative behaviour; its exact
    constants were never published).  [`Linear] drops the ratio factor
    and makes MAC coincide with a greedy transportation cost. *)

type 'v multiset = ('v * float) list

type penalty = [ `Linear | `Superlinear ]

val mac :
  ?penalty:penalty ->
  size:('v -> float) ->
  dist:('v -> 'v -> float) ->
  'v multiset ->
  'v multiset ->
  float
(** Match-and-compare distance.  Default penalty: [`Superlinear]. *)

val emd :
  size:('v -> float) ->
  dist:('v -> 'v -> float) ->
  'v multiset ->
  'v multiset ->
  float
(** Exact transportation (earth mover's) distance with
    creation/deletion priced at [size v], computed with a successive-
    shortest-path min-cost flow (exact for the small sets arising in
    ESD computations). *)
