lib/metric/esd.mli: Sketch Xmldoc
