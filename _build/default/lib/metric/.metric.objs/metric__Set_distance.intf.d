lib/metric/set_distance.mli:
