lib/metric/tree_edit.mli: Xmldoc
