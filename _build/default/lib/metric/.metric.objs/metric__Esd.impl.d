lib/metric/esd.ml: Array Float Hashtbl List Set_distance Sketch Xmldoc
