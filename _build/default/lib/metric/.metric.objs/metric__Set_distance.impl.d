lib/metric/set_distance.ml: Array Float List Stdlib
