lib/metric/tree_edit.ml: Array Hashtbl List Stdlib Xmldoc
