(** Tree-edit distance (Zhang & Shasha 1989) — the graph-theoretic
    baseline metric whose unsuitability for approximate answers §5
    demonstrates (Figure 10): syntactic edit cost treats the
    correlation-preserving and correlation-breaking approximations as
    equally good.

    Unit costs: insert 1, delete 1, relabel 1 (0 when labels match).
    Complexity O(n1 * n2 * min(d1, l1) * min(d2, l2)); fine for the
    example-sized trees it is used on. *)

val distance : Xmldoc.Tree.t -> Xmldoc.Tree.t -> int

val distance_insert_delete : Xmldoc.Tree.t -> Xmldoc.Tree.t -> int
(** Variant with relabeling forbidden (cost 2 via delete+insert),
    matching the edit model used in the Figure 10 discussion. *)
