type 'v multiset = ('v * float) list

type penalty = [ `Linear | `Superlinear ]

(* ------------------------------------------------------------------ *)
(* MAC: greedy match-and-compare.                                      *)
(* ------------------------------------------------------------------ *)

(* MAC as a greedy transportation with a superlinear surcharge on
   unmatched (residual) mass.

   1. Mass is matched greedily in order of increasing ground distance,
      many-to-one allowed (the "match" phase), each unit of flow paying
      the ground distance (capped by the cost of deleting both
      endpoints).
   2. Residual mass r = f - m of a value whose matched mass is m pays
      a deletion surcharge r * amp * size, where amp = f / m when
      m >= 1 (the superlinear multiplicity distortion that makes ESD
      prefer correlation-preserving answers, Figure 10) and 1
      otherwise (a value matched fractionally, or not at all, must not
      cost more than plain deletion).  The surcharge is capped at
      2 f * size. *)
let mac ?(penalty = `Superlinear) ~size ~dist u v =
  match (u, v) with
  | [], [] -> 0.
  | u, [] -> List.fold_left (fun acc (x, f) -> acc +. (f *. size x)) 0. u
  | [], v -> List.fold_left (fun acc (x, f) -> acc +. (f *. size x)) 0. v
  | u, v ->
    let u = Array.of_list u and v = Array.of_list v in
    let nu = Array.length u and nv = Array.length v in
    let su = Array.map (fun (x, _) -> size x) u in
    let sv = Array.map (fun (x, _) -> size x) v in
    (* candidate flows, cheapest ground distance first; deleting both
       endpoints bounds any sensible move *)
    let cands = ref [] in
    for i = 0 to nu - 1 do
      for j = 0 to nv - 1 do
        let d = Float.min (dist (fst u.(i)) (fst v.(j))) (su.(i) +. sv.(j)) in
        cands := (d, i, j) :: !cands
      done
    done;
    let cands = List.sort Stdlib.compare !cands in
    let rem_u = Array.map snd u and rem_v = Array.map snd v in
    let total = ref 0. in
    List.iter
      (fun (d, i, j) ->
        let flow = Float.min rem_u.(i) rem_v.(j) in
        if flow > 0. then begin
          rem_u.(i) <- rem_u.(i) -. flow;
          rem_v.(j) <- rem_v.(j) -. flow;
          total := !total +. (flow *. d)
        end)
      cands;
    let residual f r s =
      if r <= 0. then 0.
      else begin
        let m = f -. r in
        let amp =
          match penalty with
          | `Linear -> 1.
          | `Superlinear -> if m >= 1. then f /. m else 1.
        in
        Float.min (r *. amp) (2. *. f) *. s
      end
    in
    Array.iteri (fun i (_, f) -> total := !total +. residual f rem_u.(i) su.(i)) u;
    Array.iteri (fun j (_, f) -> total := !total +. residual f rem_v.(j) sv.(j)) v;
    !total

(* ------------------------------------------------------------------ *)
(* EMD: exact transportation via successive shortest paths.            *)
(* ------------------------------------------------------------------ *)

let eps = 1e-9

let emd ~size ~dist u v =
  match (u, v) with
  | [], [] -> 0.
  | u, [] -> List.fold_left (fun acc (x, f) -> acc +. (f *. size x)) 0. u
  | [], v -> List.fold_left (fun acc (x, f) -> acc +. (f *. size x)) 0. v
  | u, v ->
    let u = Array.of_list u and v = Array.of_list v in
    let nu = Array.length u and nv = Array.length v in
    let tot_u = Array.fold_left (fun a (_, f) -> a +. f) 0. u in
    let tot_v = Array.fold_left (fun a (_, f) -> a +. f) 0. v in
    (* Transportation network: sources 0..nu (index nu = "birth" source
       supplying mass for the surplus of v), sinks 0..nv (index nv =
       "death" sink absorbing the surplus of u). *)
    let ns = nu + 1 and nt = nv + 1 in
    let supply = Array.init ns (fun i ->
        if i < nu then snd u.(i) else Float.max 0. (tot_v -. tot_u))
    in
    let demand = Array.init nt (fun j ->
        if j < nv then snd v.(j) else Float.max 0. (tot_u -. tot_v))
    in
    let cost i j =
      if i < nu && j < nv then dist (fst u.(i)) (fst v.(j))
      else if i < nu then size (fst u.(i)) (* delete a u value *)
      else if j < nv then size (fst v.(j)) (* create a v value *)
      else 0. (* birth -> death: moving virtual mass is free *)
    in
    let flow = Array.make_matrix ns nt 0. in
    let remaining_supply = Array.copy supply and remaining_demand = Array.copy demand in
    let total_cost = ref 0. in
    (* Successive shortest augmenting paths on the residual network.
       Nodes: 0..ns-1 sources, ns..ns+nt-1 sinks, plus virtual src/dst. *)
    let nn = ns + nt + 2 in
    let src = ns + nt and dst = ns + nt + 1 in
    let continue_ = ref true in
    while !continue_ do
      (* Bellman-Ford over the residual graph *)
      let d = Array.make nn infinity in
      let pred = Array.make nn (-1) in
      d.(src) <- 0.;
      let changed = ref true in
      let iters = ref 0 in
      while !changed && !iters <= nn do
        changed := false;
        incr iters;
        (* src -> sources with remaining supply *)
        for i = 0 to ns - 1 do
          if remaining_supply.(i) > eps && d.(src) < d.(i) then begin
            d.(i) <- d.(src);
            pred.(i) <- src;
            changed := true
          end
        done;
        for i = 0 to ns - 1 do
          for j = 0 to nt - 1 do
            let c = cost i j in
            (* forward arc *)
            if d.(i) +. c < d.(ns + j) -. eps then begin
              d.(ns + j) <- d.(i) +. c;
              pred.(ns + j) <- i;
              changed := true
            end;
            (* residual (backward) arc *)
            if flow.(i).(j) > eps && d.(ns + j) -. c < d.(i) -. eps then begin
              d.(i) <- d.(ns + j) -. c;
              pred.(i) <- ns + j;
              changed := true
            end
          done
        done;
        for j = 0 to nt - 1 do
          if remaining_demand.(j) > eps && d.(ns + j) < d.(dst) then begin
            d.(dst) <- d.(ns + j);
            pred.(dst) <- ns + j;
            changed := true
          end
        done
      done;
      if d.(dst) = infinity then continue_ := false
      else begin
        (* trace the path and find the bottleneck *)
        let rec bottleneck node acc =
          if node = src then acc
          else begin
            let p = pred.(node) in
            let amount =
              if p = src then remaining_supply.(node)
              else if node = dst then remaining_demand.(p - ns)
              else if p < ns then infinity (* forward arc has no capacity *)
              else flow.(node).(p - ns) (* backward arc limited by flow *)
            in
            bottleneck p (Float.min acc amount)
          end
        in
        let amount = bottleneck dst infinity in
        if amount <= eps then continue_ := false
        else begin
          let rec apply node =
            if node <> src then begin
              let p = pred.(node) in
              if p = src then remaining_supply.(node) <- remaining_supply.(node) -. amount
              else if node = dst then
                remaining_demand.(p - ns) <- remaining_demand.(p - ns) -. amount
              else if p < ns then begin
                flow.(p).(node - ns) <- flow.(p).(node - ns) +. amount;
                total_cost := !total_cost +. (amount *. cost p (node - ns))
              end
              else begin
                flow.(node).(p - ns) <- flow.(node).(p - ns) -. amount;
                total_cost := !total_cost -. (amount *. cost node (p - ns))
              end;
              apply p
            end
          in
          apply dst
        end
      end
    done;
    !total_cost
