module Tree = Xmldoc.Tree

(* Post-order flattening: labels and leftmost-leaf indices, 1-based as
   in the Zhang-Shasha formulation. *)
type flat = {
  labels : Xmldoc.Label.t array;  (* index 1..n *)
  lml : int array;  (* leftmost leaf of node i *)
  keyroots : int list;  (* ascending *)
  n : int;
}

let flatten t =
  let n = Tree.size t in
  let labels = Array.make (n + 1) (Tree.label t) in
  let lml = Array.make (n + 1) 0 in
  let counter = ref 0 in
  let rec visit node =
    let kids = Tree.children node in
    let first_leaf = ref 0 in
    Array.iteri
      (fun i kid ->
        let leaf = visit kid in
        if i = 0 then first_leaf := leaf)
      kids;
    incr counter;
    let id = !counter in
    labels.(id) <- Tree.label node;
    lml.(id) <- (if Array.length kids = 0 then id else !first_leaf);
    lml.(id)
  in
  ignore (visit t);
  (* keyroots: nodes that are not the leftmost-descendant continuation
     of a higher node, i.e. for each distinct lml value keep the
     largest node having it *)
  let best = Hashtbl.create 64 in
  for i = 1 to n do
    Hashtbl.replace best lml.(i) i
  done;
  let keyroots = Hashtbl.fold (fun _ i acc -> i :: acc) best [] in
  { labels; lml; keyroots = List.sort Stdlib.compare keyroots; n }

let distance_gen ~rename a b =
  let fa = flatten a and fb = flatten b in
  let td = Array.make_matrix (fa.n + 1) (fb.n + 1) 0 in
  (* forest-distance scratch, re-used across keyroot pairs *)
  let fd = Array.make_matrix (fa.n + 1) (fb.n + 1) 0 in
  List.iter
    (fun i1 ->
      List.iter
        (fun j1 ->
          let li1 = fa.lml.(i1) and lj1 = fb.lml.(j1) in
          (* fd indices: (i - li1 + 1), (j - lj1 + 1); index 0 = empty *)
          fd.(0).(0) <- 0;
          for i = li1 to i1 do
            fd.(i - li1 + 1).(0) <- fd.(i - li1).(0) + 1
          done;
          for j = lj1 to j1 do
            fd.(0).(j - lj1 + 1) <- fd.(0).(j - lj1) + 1
          done;
          for i = li1 to i1 do
            for j = lj1 to j1 do
              let ii = i - li1 + 1 and jj = j - lj1 + 1 in
              if fa.lml.(i) = li1 && fb.lml.(j) = lj1 then begin
                let r =
                  rename
                    (Xmldoc.Label.equal fa.labels.(i) fb.labels.(j))
                in
                let d =
                  min
                    (min (fd.(ii - 1).(jj) + 1) (fd.(ii).(jj - 1) + 1))
                    (fd.(ii - 1).(jj - 1) + r)
                in
                fd.(ii).(jj) <- d;
                td.(i).(j) <- d
              end
              else begin
                let pi = fa.lml.(i) - li1 and pj = fb.lml.(j) - lj1 in
                fd.(ii).(jj) <-
                  min
                    (min (fd.(ii - 1).(jj) + 1) (fd.(ii).(jj - 1) + 1))
                    (fd.(pi).(pj) + td.(i).(j))
              end
            done
          done)
        fb.keyroots)
    fa.keyroots;
  td.(fa.n).(fb.n)

let distance a b = distance_gen ~rename:(fun equal -> if equal then 0 else 1) a b

let distance_insert_delete a b =
  distance_gen ~rename:(fun equal -> if equal then 0 else 2) a b
