(** Element Simulation Distance (§5).

    [ESD(u, v)] between two identically-labeled elements is the sum,
    over child tags [t], of a value-set distance between the multisets
    of [t]-children, with the ground distance between two children
    being a recursive ESD call; missing sub-trees are priced at their
    size, per the paper's empty-set transformation.  The distance
    between two trees is the ESD of their roots.

    Following the paper's efficiency remark, the metric is evaluated on
    {e stable summaries}: all elements of a synopsis class share one
    sub-tree structure, so a single memoized class-pair ESD covers
    every element pair, and the child multisets are read directly off
    the synopsis edges (the per-element child count of an edge is its
    frequency — fractional for compressed or query-result synopses,
    which is how approximate answers are scored without expansion). *)

type set_metric =
  | Mac  (** greedy match-and-compare, superlinear frequency penalty *)
  | Mac_linear  (** same with linear penalty *)
  | Emd  (** exact transportation distance *)

val between_synopses :
  ?metric:set_metric -> Sketch.Synopsis.t -> Sketch.Synopsis.t -> float
(** ESD between the documents summarized by two synopses (compared at
    their roots).  Roots with different labels are at distance
    [size a + size b].  Cycles in compressed synopses are cut by an
    in-progress guard that falls back to the size difference.
    Default metric: [Mac]. *)

val between_trees : ?metric:set_metric -> Xmldoc.Tree.t -> Xmldoc.Tree.t -> float
(** Builds the stable summaries on the fly and compares them. *)

val subtree_sizes : Sketch.Synopsis.t -> float array
(** Per-class expected sub-tree size: [1 + sum_edges k * size(child)]
    (exact for stable synopses).  Exposed for tests. *)
