exception Error of { offset : int; message : string }

type state = {
  src : string;
  mutable pos : int;
}

let fail st message = raise (Error { offset = st.pos; message })

let eof st = st.pos >= String.length st.src

let peek st = st.src.[st.pos]

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_spaces st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    st.pos <- st.pos + 1
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let scan_name st =
  skip_spaces st;
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an element name";
  String.sub st.src start (st.pos - start)

(* axis: '//' or '/'; [default] is used when the axis is omitted (legal
   only for the first step of a predicate path). *)
let scan_axis ?default st : Syntax.axis =
  skip_spaces st;
  if looking_at st "//" then begin
    st.pos <- st.pos + 2;
    Descendant
  end
  else if (not (eof st)) && peek st = '/' then begin
    st.pos <- st.pos + 1;
    Child
  end
  else
    match default with
    | Some axis -> axis
    | None -> fail st "expected '/' or '//'"

let rec scan_step ?default st : Syntax.step =
  let axis = scan_axis ?default st in
  let name = scan_name st in
  let preds = ref [] in
  skip_spaces st;
  while (not (eof st)) && peek st = '[' do
    st.pos <- st.pos + 1;
    let p = scan_path ~in_pred:true st in
    skip_spaces st;
    if eof st || peek st <> ']' then fail st "expected ']'";
    st.pos <- st.pos + 1;
    preds := p :: !preds;
    skip_spaces st
  done;
  { axis; label = Xmldoc.Label.of_string name; preds = List.rev !preds }

and scan_path ~in_pred st : Syntax.path =
  (* Inside a predicate the first step may omit its axis (child). *)
  let first =
    if in_pred then scan_step ~default:Syntax.Child st else scan_step st
  in
  let steps = ref [ first ] in
  skip_spaces st;
  while (not (eof st)) && peek st = '/' do
    steps := scan_step st :: !steps
  done;
  List.rev !steps

let rec scan_twig st : Syntax.edge =
  let path = scan_path ~in_pred:false st in
  skip_spaces st;
  let optional =
    if (not (eof st)) && peek st = '?' then begin
      st.pos <- st.pos + 1;
      true
    end
    else false
  in
  skip_spaces st;
  let edges =
    if (not (eof st)) && peek st = '{' then begin
      st.pos <- st.pos + 1;
      let subs = ref [ scan_twig st ] in
      skip_spaces st;
      while (not (eof st)) && peek st = ',' do
        st.pos <- st.pos + 1;
        subs := scan_twig st :: !subs;
        skip_spaces st
      done;
      if eof st || peek st <> '}' then fail st "expected '}' or ','";
      st.pos <- st.pos + 1;
      List.rev !subs
    end
    else []
  in
  Syntax.edge ~optional path (Syntax.node edges)

let finish st v =
  skip_spaces st;
  if not (eof st) then fail st "trailing characters";
  v

let path src =
  let st = { src; pos = 0 } in
  finish st (scan_path ~in_pred:false st)

let query src =
  let st = { src; pos = 0 } in
  skip_spaces st;
  let edges =
    if (not (eof st)) && peek st = '{' then begin
      st.pos <- st.pos + 1;
      let subs = ref [ scan_twig st ] in
      skip_spaces st;
      while (not (eof st)) && peek st = ',' do
        st.pos <- st.pos + 1;
        subs := scan_twig st :: !subs;
        skip_spaces st
      done;
      if eof st || peek st <> '}' then fail st "expected '}' or ','";
      st.pos <- st.pos + 1;
      List.rev !subs
    end
    else [ scan_twig st ]
  in
  finish st (Syntax.query edges)

let error_to_string = function
  | Error { offset; message } ->
    Some (Printf.sprintf "twig parse error at offset %d: %s" offset message)
  | _ -> None
