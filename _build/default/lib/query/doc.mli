(** Indexed documents for exact query evaluation.

    The element nodes of a {!Xmldoc.Tree.t} are numbered in pre-order,
    so the proper descendants of an element [e] are exactly the
    contiguous oid range [(e + 1) .. (e + subtree_size e - 1)].  This
    makes descendant-axis scans cache-friendly range sweeps. *)

type oid = int
(** Element identifier: the element's pre-order rank, root = 0. *)

type t

val of_tree : Xmldoc.Tree.t -> t

val size : t -> int
(** Total number of elements. *)

val root : t -> oid

val label : t -> oid -> Xmldoc.Label.t

val children : t -> oid -> oid array

val parent : t -> oid -> oid
(** Parent oid; the root's parent is [-1]. *)

val subtree_size : t -> oid -> int
(** Number of elements in the subtree rooted at the oid (itself
    included). *)

val subtree_last : t -> oid -> oid
(** Last oid (inclusive) of the element's subtree range. *)

val height : t -> int
(** Height of the document tree. *)

val iter_descendants : t -> oid -> (oid -> unit) -> unit
(** Apply a function to every proper descendant of the element. *)

val tree : t -> Xmldoc.Tree.t
(** The original tree the document was built from. *)
