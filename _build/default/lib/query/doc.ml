type oid = int

type t = {
  labels : Xmldoc.Label.t array;
  children : oid array array;
  parent : oid array;
  subtree : int array;  (* subtree sizes, element included *)
  tree : Xmldoc.Tree.t;
  height : int;
}

let of_tree tree =
  let n = Xmldoc.Tree.size tree in
  let labels = Array.make n (Xmldoc.Tree.label tree) in
  let children = Array.make n [||] in
  let parent = Array.make n (-1) in
  let subtree = Array.make n 1 in
  let counter = ref 0 in
  (* Pre-order numbering; returns the subtree size of the visited node. *)
  let rec visit par (node : Xmldoc.Tree.t) =
    let oid = !counter in
    incr counter;
    labels.(oid) <- Xmldoc.Tree.label node;
    parent.(oid) <- par;
    let kids = Xmldoc.Tree.children node in
    let child_oids = Array.make (Array.length kids) 0 in
    let total = ref 1 in
    Array.iteri
      (fun i kid ->
        child_oids.(i) <- !counter;
        total := !total + visit oid kid)
      kids;
    children.(oid) <- child_oids;
    subtree.(oid) <- !total;
    !total
  in
  let (_ : int) = visit (-1) tree in
  { labels; children; parent; subtree; tree; height = Xmldoc.Tree.height tree }

let size d = Array.length d.labels

let root (_ : t) = 0

let label d oid = d.labels.(oid)

let children d oid = d.children.(oid)

let parent d oid = d.parent.(oid)

let subtree_size d oid = d.subtree.(oid)

let subtree_last d oid = oid + d.subtree.(oid) - 1

let height d = d.height

let iter_descendants d oid f =
  for i = oid + 1 to subtree_last d oid do
    f i
  done

let tree d = d.tree
