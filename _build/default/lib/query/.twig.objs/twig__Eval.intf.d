lib/query/eval.mli: Doc Syntax Xmldoc
