lib/query/eval.ml: Array Bytes Doc Float List Printf Stdlib Syntax Xmldoc
