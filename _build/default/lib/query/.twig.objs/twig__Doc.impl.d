lib/query/doc.ml: Array Xmldoc
