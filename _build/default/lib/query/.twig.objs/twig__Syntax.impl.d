lib/query/syntax.ml: Format List Xmldoc
