lib/query/parse.mli: Syntax
