lib/query/doc.mli: Xmldoc
