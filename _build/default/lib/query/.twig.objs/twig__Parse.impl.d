lib/query/parse.ml: List Printf String Syntax Xmldoc
