lib/query/syntax.mli: Format Xmldoc
