(** The twig-query model of the paper (§2).

    A twig query is a node-labeled query tree [TQ]: each node is a
    variable [qi] (with [q0] a distinguished root bound to the document
    root) and each edge [(qi, qj)] carries an XPath expression
    [path(qi, qj)] built from the child ([/]) and descendant ([//])
    axes, with optional existential branching predicates [\[l̄\]] whose
    [l̄] is a label path.  Following the generalized-tree-pattern
    notation, an edge may be {e optional} ("dashed"): its emptiness does
    not nullify the query result. *)

type axis =
  | Child  (** [/l] — direct children labeled [l] *)
  | Descendant  (** [//l] — proper descendants labeled [l] *)

type step = {
  axis : axis;
  label : Xmldoc.Label.t;
  preds : path list;
      (** existential branching predicates anchored at this step *)
}

and path = step list
(** A non-empty sequence of steps. *)

type edge = {
  path : path;
  optional : bool;  (** dashed edge: may be empty without nullifying *)
  target : node;
}

and node = {
  var : int;  (** variable index; the root is always [0] *)
  edges : edge list;
}

type t = node
(** A twig query — its root node (variable [q0]). *)

(** {1 Construction}

    The constructors below build queries with temporary variable
    numbers; {!renumber} (applied automatically by {!query}) assigns
    final pre-order numbers. *)

val step : ?preds:path list -> axis -> string -> step

val child : ?preds:path list -> string -> step
(** [child l] is [step Child l]. *)

val desc : ?preds:path list -> string -> step
(** [desc l] is [step Descendant l]. *)

val edge : ?optional:bool -> path -> node -> edge

val node : edge list -> node

val query : edge list -> t
(** [query edges] is the full query: the root variable [q0] with the
    given outgoing edges, all variables renumbered in pre-order. *)

val renumber : t -> t
(** Re-assign variable indices in pre-order starting from 0. *)

(** {1 Observers} *)

val num_vars : t -> int
(** Number of variables (query nodes), root included. *)

val nodes_preorder : t -> node list
(** All query nodes, root first, in pre-order. *)

val path_length : path -> int
(** Number of steps, branching predicates not counted. *)

val fold_paths : ('a -> path -> 'a) -> 'a -> t -> 'a
(** Fold over every edge path in the query (not over predicates). *)

(** {1 Printing}

    The concrete syntax (accepted by {!Parse}) is:
    {v
      twig     ::= path '?'? ( '{' twig (',' twig)* '}' )?
      path     ::= step+
      step     ::= ('/' | '//') name pred*
      pred     ::= '[' predpath ']'
      predpath ::= firststep step*      (* leading axis may be omitted,
                                           defaulting to child *)
    v}
    For example, the query of Figure 2 is
    [//a[//b]{//p{//k?},//n?}]. *)

val pp_path : Format.formatter -> path -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality (variable numbers ignored, edge order
    significant). *)
