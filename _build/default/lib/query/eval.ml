module Label = Xmldoc.Label
module Tree = Xmldoc.Tree

type result = {
  selectivity : float;
  nesting : Tree.t option;
}

exception Found

(* [satisfies d e p]: does at least one embedding of [p] exist under
   [e]?  Raises-and-catches [Found] to short-circuit range scans. *)
let rec satisfies d e (p : Syntax.path) =
  match p with
  | [] -> true
  | step :: rest -> (
    let try_node t =
      if
        Label.equal (Doc.label d t) step.Syntax.label
        && List.for_all (fun pred -> satisfies d t pred) step.preds
        && satisfies d t rest
      then raise Found
    in
    try
      (match step.axis with
      | Child -> Array.iter try_node (Doc.children d e)
      | Descendant -> Doc.iter_descendants d e try_node);
      false
    with Found -> true)

(* Elements matching one step from [e] (predicates enforced). *)
let step_targets d e (step : Syntax.step) acc =
  let consider t acc =
    if
      Label.equal (Doc.label d t) step.label
      && List.for_all (fun pred -> satisfies d t pred) step.preds
    then t :: acc
    else acc
  in
  match step.axis with
  | Child -> Array.fold_right consider (Doc.children d e) acc
  | Descendant ->
    let acc = ref acc in
    Doc.iter_descendants d e (fun t -> acc := consider t !acc);
    !acc

let eval_path ?(dedup = true) d e (p : Syntax.path) =
  let rec walk current = function
    | [] -> current
    | step :: rest ->
      let next = List.fold_left (fun acc e -> step_targets d e step acc) [] current in
      (* Under node-set (XPath) semantics, distinct current elements
         sharing descendants (e.g. a //-step over nested identical
         tags) are deduplicated.  Under witness-path semantics — the
         counting model of the synopsis framework — every step-witness
         path counts separately. *)
      let next = if dedup then List.sort_uniq Stdlib.compare next else next in
      walk next rest
  in
  walk [ e ] p

let nesting_label var l =
  Label.of_string (Printf.sprintf "q%d#%s" var (Label.to_string l))

(* Per-(variable, element) memo tables.  [valid] uses a byte per cell:
   0 = unknown, 1 = valid, 2 = invalid. *)
type memo = {
  doc : Doc.t;
  valid : Bytes.t array;  (* indexed by var *)
  tuples : float array array;
  nest : Tree.t option array array;  (* None = not yet built *)
  want_nesting : bool;
  dedup : bool;
}

let make_memo d q ~want_nesting ~dedup =
  let v = Syntax.num_vars q in
  let n = Doc.size d in
  {
    doc = d;
    valid = Array.init v (fun _ -> Bytes.make n '\000');
    tuples = Array.init v (fun _ -> Array.make n nan);
    nest =
      (if want_nesting then Array.init v (fun _ -> Array.make n None)
       else [||]);
    want_nesting;
    dedup;
  }

let rec is_valid memo (q : Syntax.node) e =
  let cache = memo.valid.(q.var) in
  match Bytes.get cache e with
  | '\001' -> true
  | '\002' -> false
  | _ ->
    let ok =
      List.for_all
        (fun (edge : Syntax.edge) ->
          edge.optional
          || List.exists
               (fun t -> is_valid memo edge.target t)
               (eval_path ~dedup:true memo.doc e edge.path))
        q.edges
    in
    Bytes.set cache e (if ok then '\001' else '\002');
    ok

let rec tuples_of memo (q : Syntax.node) e =
  let cache = memo.tuples.(q.var) in
  let cached = cache.(e) in
  if not (Float.is_nan cached) then cached
  else begin
    (* Break cycles defensively (cannot happen on tree documents with
       downward axes, but a 0 sentinel is cheap insurance). *)
    cache.(e) <- 0.;
    let product =
      List.fold_left
        (fun acc (edge : Syntax.edge) ->
          let sum =
            List.fold_left
              (fun s t ->
                if is_valid memo edge.target t then s +. tuples_of memo edge.target t
                else s)
              0.
              (eval_path ~dedup:memo.dedup memo.doc e edge.path)
          in
          let factor = if edge.optional then Float.max 1. sum else sum in
          acc *. factor)
        1. q.edges
    in
    cache.(e) <- product;
    product
  end

let rec nesting_of memo (q : Syntax.node) e =
  match memo.nest.(q.var).(e) with
  | Some t -> t
  | None ->
    let children =
      List.concat_map
        (fun (edge : Syntax.edge) ->
          eval_path ~dedup:memo.dedup memo.doc e edge.path
          |> List.filter_map (fun t ->
                 if is_valid memo edge.target t then
                   Some (nesting_of memo edge.target t)
                 else None))
        q.edges
    in
    let node = Tree.make (nesting_label q.var (Doc.label memo.doc e)) children in
    memo.nest.(q.var).(e) <- Some node;
    node

let run ?(dedup = true) d q =
  let memo = make_memo d q ~want_nesting:true ~dedup in
  let root = Doc.root d in
  if is_valid memo q root then
    {
      selectivity = tuples_of memo q root;
      nesting = Some (nesting_of memo q root);
    }
  else { selectivity = 0.; nesting = None }

let selectivity ?(dedup = true) d q =
  let memo = make_memo d q ~want_nesting:false ~dedup in
  let root = Doc.root d in
  if is_valid memo q root then tuples_of memo q root else 0.
