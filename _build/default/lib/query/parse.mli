(** Parser for the textual twig syntax documented in {!Syntax}. *)

exception Error of { offset : int; message : string }

val path : string -> Syntax.path
(** Parse a bare path, e.g. ["//a\[//b\]/c"].  @raise Error *)

val query : string -> Syntax.t
(** Parse a full twig query, e.g. ["//a\[//b\]{//p{//k?},//n?}"].
    @raise Error *)

val error_to_string : exn -> string option
