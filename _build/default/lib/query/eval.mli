(** Exact twig-query evaluation over an indexed document.

    This is the ground truth against which the approximate answers and
    selectivity estimates of the synopses are measured.  The semantics
    follow §2 of the paper:

    - a binding tuple assigns an element to every query variable such
      that every edge's path constraint holds;
    - an element is a valid binding for a variable iff every {e
      required} (non-dashed) outgoing edge has at least one valid
      target;
    - optional (dashed) edges may be empty; for tuple counting they
      behave like an outer join (an empty optional edge contributes a
      single null combination);
    - the {e nesting tree} [NT(Q)] contains the elements appearing in
      bindings, preserving their ancestor/descendant relations, with
      each node annotated by the variable it binds. *)

type result = {
  selectivity : float;
      (** number of binding tuples of the query (0 if the result is
          empty).  A float because tuple counts are products of child
          cardinalities and can exceed [max_int] on pathological
          queries. *)
  nesting : Xmldoc.Tree.t option;
      (** the nesting tree, with composite labels built by
          {!nesting_label}; [None] iff the result is empty *)
}

val run : ?dedup:bool -> Doc.t -> Syntax.t -> result
(** Evaluate the query exactly.  [dedup] (default true) selects
    node-set (XPath) semantics: an element reached through several
    overlapping descendant-step witnesses counts once.  With
    [~dedup:false], every witness path counts separately — the
    {e witness-path} semantics that graph-synopsis frameworks
    (including the paper's [EVAL_EMBED]) implement; the two coincide
    whenever same-label elements do not nest along the query paths,
    which is the common case the paper's evaluation relies on. *)

val selectivity : ?dedup:bool -> Doc.t -> Syntax.t -> float
(** Just the binding-tuple count (skips nesting-tree construction). *)

val eval_path : ?dedup:bool -> Doc.t -> Doc.oid -> Syntax.path -> Doc.oid list
(** [eval_path d e p] is the sorted list of elements reachable from
    [e] along [p], branching predicates enforced; duplicate-free under
    the default node-set semantics. *)

val satisfies : Doc.t -> Doc.oid -> Syntax.path -> bool
(** [satisfies d e p] tests whether at least one element is reachable
    from [e] along [p] (short-circuiting). *)

val nesting_label : int -> Xmldoc.Label.t -> Xmldoc.Label.t
(** [nesting_label var l] is the composite label ["q<var>#<l>"] used
    for nesting-tree nodes, so that the ESD metric only matches
    elements bound to the same query variable (§6.1). *)
