type axis = Child | Descendant

type step = {
  axis : axis;
  label : Xmldoc.Label.t;
  preds : path list;
}

and path = step list

type edge = {
  path : path;
  optional : bool;
  target : node;
}

and node = {
  var : int;
  edges : edge list;
}

type t = node

let step ?(preds = []) axis label =
  { axis; label = Xmldoc.Label.of_string label; preds }

let child ?preds label = step ?preds Child label

let desc ?preds label = step ?preds Descendant label

let edge ?(optional = false) path target =
  if path = [] then invalid_arg "Syntax.edge: empty path";
  { path; optional; target }

let node edges = { var = 0; edges }

let renumber root =
  let counter = ref 0 in
  let rec visit n =
    let var = !counter in
    incr counter;
    { var; edges = List.map (fun e -> { e with target = visit e.target }) n.edges }
  in
  visit root

let query edges = renumber (node edges)

let nodes_preorder root =
  let rec visit acc n =
    List.fold_left (fun acc e -> visit acc e.target) (n :: acc) n.edges
  in
  List.rev (visit [] root)

let num_vars root = List.length (nodes_preorder root)

let path_length = List.length

let fold_paths f init root =
  let rec visit acc n =
    List.fold_left (fun acc e -> visit (f acc e.path) e.target) acc n.edges
  in
  visit init root

let axis_string = function Child -> "/" | Descendant -> "//"

let rec pp_step ppf s =
  Format.fprintf ppf "%s%s" (axis_string s.axis) (Xmldoc.Label.to_string s.label);
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_pred_path p) s.preds

and pp_path ppf p = List.iter (pp_step ppf) p

(* Inside predicates, a leading child axis is printed without the '/'
   (the parser defaults a bare leading name to the child axis). *)
and pp_pred_path ppf = function
  | [] -> ()
  | first :: rest ->
    (match first.axis with
    | Child -> Format.pp_print_string ppf (Xmldoc.Label.to_string first.label)
    | Descendant ->
      Format.fprintf ppf "//%s" (Xmldoc.Label.to_string first.label));
    List.iter (fun p -> Format.fprintf ppf "[%a]" pp_pred_path p) first.preds;
    pp_path ppf rest

let rec pp_edge ppf e =
  pp_path ppf e.path;
  if e.optional then Format.pp_print_char ppf '?';
  match e.target.edges with
  | [] -> ()
  | edges ->
    Format.pp_print_char ppf '{';
    List.iteri
      (fun i sub ->
        if i > 0 then Format.pp_print_char ppf ',';
        pp_edge ppf sub)
      edges;
    Format.pp_print_char ppf '}'

let pp ppf root =
  match root.edges with
  | [ e ] -> pp_edge ppf e
  | edges ->
    Format.pp_print_char ppf '{';
    List.iteri
      (fun i e ->
        if i > 0 then Format.pp_print_char ppf ',';
        pp_edge ppf e)
      edges;
    Format.pp_print_char ppf '}'

let to_string q = Format.asprintf "%a" pp q

let rec equal_path a b =
  List.length a = List.length b
  && List.for_all2
       (fun (sa : step) (sb : step) ->
         sa.axis = sb.axis
         && Xmldoc.Label.equal sa.label sb.label
         && List.length sa.preds = List.length sb.preds
         && List.for_all2 equal_path sa.preds sb.preds)
       a b

let rec equal_node a b =
  List.length a.edges = List.length b.edges
  && List.for_all2
       (fun ea eb ->
         ea.optional = eb.optional
         && equal_path ea.path eb.path
         && equal_node ea.target eb.target)
       a.edges b.edges

let equal = equal_node
