module Tree = Xmldoc.Tree

(* A class signature: the element's label plus its child classes and
   per-class counts, canonically ordered.  Signatures are encoded as
   int arrays to get cheap, allocation-light hashing. *)
module Sig = struct
  type t = int array
  (* layout: [| label; class1; count1; class2; count2; ... |] *)

  let equal (a : t) (b : t) =
    Array.length a = Array.length b
    && begin
      let rec loop i = i >= Array.length a || (a.(i) = b.(i) && loop (i + 1)) in
      loop 0
    end

  let hash (a : t) =
    (* FNV-1a over the int components; good enough dispersion. *)
    let h = ref 0x811c9dc5 in
    Array.iter
      (fun x ->
        h := (!h lxor x) * 0x01000193;
        h := !h land max_int)
      a;
    !h
end

module SigTbl = Hashtbl.Make (Sig)

type builder = {
  table : int SigTbl.t;  (* signature -> class id *)
  mutable labels : Xmldoc.Label.t list;  (* class labels, reversed *)
  mutable class_edges : (int * int) list list;  (* per class, reversed *)
  mutable num_classes : int;
  counts : (int, int) Hashtbl.t;  (* class id -> extent size *)
}

let new_builder () =
  {
    table = SigTbl.create 4096;
    labels = [];
    class_edges = [];
    num_classes = 0;
    counts = Hashtbl.create 4096;
  }

(* The (class, count) pairs of an element's children, canonically
   sorted by class id. *)
let child_signature child_classes =
  let sorted = List.sort Stdlib.compare child_classes in
  let rec group = function
    | [] -> []
    | c :: rest ->
      let rec take n = function
        | c' :: tl when c' = c -> take (n + 1) tl
        | tl -> (n, tl)
      in
      let n, tl = take 1 rest in
      (c, n) :: group tl
  in
  group sorted

let encode label pairs =
  let arr = Array.make (1 + (2 * List.length pairs)) 0 in
  arr.(0) <- Xmldoc.Label.to_int label;
  List.iteri
    (fun i (c, n) ->
      arr.(1 + (2 * i)) <- c;
      arr.(2 + (2 * i)) <- n)
    pairs;
  arr

let classify b label child_classes =
  let pairs = child_signature child_classes in
  let key = encode label pairs in
  let cls =
    match SigTbl.find_opt b.table key with
    | Some id -> id
    | None ->
      let id = b.num_classes in
      b.num_classes <- id + 1;
      b.labels <- label :: b.labels;
      b.class_edges <- pairs :: b.class_edges;
      SigTbl.add b.table key id;
      id
  in
  Hashtbl.replace b.counts cls
    (1 + Option.value ~default:0 (Hashtbl.find_opt b.counts cls));
  cls

let finish b ~root_class =
  let n = b.num_classes in
  let labels = Array.of_list (List.rev b.labels) in
  let edges = Array.of_list (List.rev b.class_edges) in
  let nodes =
    Array.init n (fun i ->
        {
          Synopsis.label = labels.(i);
          count = float_of_int (Hashtbl.find b.counts i);
          edges =
            Array.of_list
              (List.map (fun (c, k) -> (c, float_of_int k)) edges.(i));
        })
  in
  Synopsis.make ~root:root_class nodes

let class_of_elements tree =
  let b = new_builder () in
  let classes = Array.make (Tree.size tree) 0 in
  let counter = ref 0 in
  (* Pre-order oid assignment, post-order classification. *)
  let rec visit node =
    let oid = !counter in
    incr counter;
    let kids = Array.map visit (Tree.children node) in
    let cls = classify b (Tree.label node) (Array.to_list kids) in
    classes.(oid) <- cls;
    cls
  in
  let root_class = visit tree in
  (finish b ~root_class, classes)

let build tree = fst (class_of_elements tree)

let build_doc doc = build (Twig.Doc.tree doc)
