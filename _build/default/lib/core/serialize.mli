(** Plain-text persistence for synopses, used by the command-line
    tools ([tsbuild] writes, [tsquery] reads).

    Format (line oriented):
    {v
    treesketch 1
    root <id>
    node <id> <count> <label>
    edge <from> <to> <avg>
    v} *)

val save : string -> Synopsis.t -> unit
(** Write the synopsis to a file. *)

val load : string -> Synopsis.t
(** Read a synopsis back.  @raise Failure on malformed input. *)

val to_string : Synopsis.t -> string

val of_string : string -> Synopsis.t
(** @raise Failure on malformed input. *)
