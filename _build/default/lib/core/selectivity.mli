(** Selectivity estimation over a TREESKETCH (§4.4).

    The estimate is computed from the result synopsis of [EVAL_QUERY]
    with one post-order pass: for every result node, the average number
    of binding tuples per element of its extent is the product, over
    the query children of its variable, of the summed
    [edge count * child tuples] contributions (an optional/dashed edge
    contributes at least 1 — the outer-join convention matched by the
    exact evaluator {!Twig.Eval}). *)

val of_answer : Twig.Syntax.t -> Eval.answer -> float
(** Estimated number of binding tuples summarized by an answer.  An
    empty answer estimates 0. *)

val estimate : ?max_hops:int -> Synopsis.t -> Twig.Syntax.t -> float
(** [estimate ts q] runs [EVAL_QUERY] and folds the result. *)

val relative_error : actual:float -> estimate:float -> sanity:float -> float
(** The error measure of §6.1: [|r - e| / max(r, s)] with sanity bound
    [s] (the paper uses the 10-percentile of true workload counts). *)
