(** [BUILD_STABLE] (§4.1, Figure 4): the unique minimal count-stable
    summary of a document.

    Elements are processed in post-order; each element's equivalence
    class is determined by its label together with the multiset of
    (child class, child count) pairs, looked up in a hash table.  The
    construction runs in [O(|T|)] hash operations. *)

val build : Xmldoc.Tree.t -> Synopsis.t
(** The count-stable synopsis of the document.  Every edge average is
    an exact integer; [Expand.exact] inverts the construction up to
    sibling order (Lemma 3.1). *)

val build_doc : Twig.Doc.t -> Synopsis.t
(** Same, over an already-indexed document. *)

val class_of_elements : Xmldoc.Tree.t -> Synopsis.t * int array
(** [class_of_elements t] also returns the class (synopsis node id) of
    every element, indexed by pre-order oid — used by tests and by the
    workload sampler. *)
