module Syntax = Twig.Syntax

let of_answer (q : Syntax.t) (ans : Eval.answer) =
  if ans.empty then 0.
  else begin
    (* query children per variable: (child var, optional) *)
    let max_var = Syntax.num_vars q in
    let q_children = Array.make max_var [] in
    List.iter
      (fun (qn : Syntax.node) ->
        q_children.(qn.var) <-
          List.map (fun (e : Syntax.edge) -> (e.target.var, e.optional)) qn.edges)
      (Syntax.nodes_preorder q);
    let syn = ans.raw in
    let n = Synopsis.num_nodes syn in
    let tuples = Array.make n 1. in
    (* children have strictly larger query variables: descending var
       order is a valid post-order *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> Stdlib.compare (ans.var.(b), b) (ans.var.(a), a))
      order;
    Array.iter
      (fun uq ->
        let product =
          List.fold_left
            (fun acc (cvar, optional) ->
              let sum =
                Array.fold_left
                  (fun s (wq, k) ->
                    if ans.var.(wq) = cvar then s +. (k *. tuples.(wq)) else s)
                  0.
                  (Synopsis.edges syn uq)
              in
              let factor = if optional then Float.max 1. sum else sum in
              acc *. factor)
            1.
            q_children.(ans.var.(uq))
        in
        tuples.(uq) <- product)
      order;
    tuples.(syn.Synopsis.root)
  end

let estimate ?max_hops ts q = of_answer q (Eval.eval ?max_hops ts q)

let relative_error ~actual ~estimate ~sanity =
  Float.abs (actual -. estimate) /. Float.max actual sanity
