(** Double-ended priority queue (interval heap).

    [CREATEPOOL] keeps only the [Uh] best candidate merges seen so far,
    which requires evicting the worst element ([pop_max]) while
    [TSBUILD] consumes the best ([pop_min]).  An interval heap supports
    both in [O(log n)].

    Elements carry a float priority; ties are broken arbitrarily. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit

val min_priority : 'a t -> float option

val max_priority : 'a t -> float option

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest priority. *)

val pop_max : 'a t -> (float * 'a) option
(** Remove and return the element with the largest priority. *)

val clear : 'a t -> unit

val check_invariant : 'a t -> bool
(** Internal structural invariant — exposed for property tests. *)
