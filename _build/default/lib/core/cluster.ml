type delta = {
  errd : float;
  sized : int;
}

(* Per-edge sufficient statistics: over the elements of the source
   cluster, the sum and sum of squares of per-element child counts into
   the target cluster.  Both are additive over source members; when two
   *target* clusters merge, the combined dimension needs the cross term
   Sum n_s * K_u(s) * K_v(s), which is recovered from the stable
   summary's in-edges (the "small subset of the base data" the paper
   mentions). *)
type stats = {
  mutable sum : float;
  mutable sumsq : float;
}

type t = {
  stable : Synopsis.t;
  inmap : (int, float) Hashtbl.t array;
      (* per representative: stable source node -> total per-element
         child count from that source into this cluster.  Additive
         under merges (member sets are disjoint), merged
         smaller-into-larger. *)
  uf : int array;
  members : int list array;  (* valid at representatives *)
  count : float array;
  height : int array;
  version : int array;
  mutable alive : int;
  mutable edges : int;
  mutable sq : float;
  out : (int, stats) Hashtbl.t array;
      (* per representative: target representative -> stats.  Keys may
         be stale (merged-away) ids; they are renamed on access, which
         is safe because cross-term-carrying collapses are applied
         eagerly at merge time. *)
  sqout : float array;  (* derived from [out], kept in sync *)
}

let stable t = t.stable

let rec find t i =
  if t.uf.(i) = i then i
  else begin
    let r = find t t.uf.(i) in
    t.uf.(i) <- r;
    r
  end

let is_rep t i = t.uf.(i) = i

let num_alive t = t.alive

let label t i = Synopsis.label t.stable i

let count t i = t.count.(i)

let height t i = t.height.(i)

let version t i = t.version.(i)

let size_bytes t = (Synopsis.node_bytes * t.alive) + (Synopsis.edge_bytes * t.edges)

let sq_error t = t.sq

let alive_ids t =
  let acc = ref [] in
  for i = Array.length t.uf - 1 downto 0 do
    if t.uf.(i) = i then acc := i :: !acc
  done;
  !acc

(* Rename stale keys in a stats map.  Pure renames only: a collapse of
   two live dimensions is handled eagerly during [merge]. *)
let normalize t map =
  let stale = ref [] in
  Hashtbl.iter (fun k _ -> if not (is_rep t k) then stale := k :: !stale) !map;
  match !stale with
  | [] -> ()
  | stale ->
    List.iter
      (fun k ->
        let st = Hashtbl.find !map k in
        let k' = find t k in
        Hashtbl.remove !map k;
        (match Hashtbl.find_opt !map k' with
        | Some dst ->
          (* both keys were live when last written only if their merge's
             cross term was already folded in; adding is then correct *)
          dst.sum <- dst.sum +. st.sum;
          dst.sumsq <- dst.sumsq +. st.sumsq
        | None -> Hashtbl.add !map k' st))
      stale

let out_map t u =
  let map = ref t.out.(u) in
  normalize t map;
  t.out.(u) <- !map;
  t.out.(u)

let sq_of_map n map =
  Hashtbl.fold
    (fun _ st acc -> acc +. st.sumsq -. (st.sum *. st.sum /. n))
    map 0.

(* ------------------------------------------------------------------ *)
(* Candidate evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* In-edge pass for the pair (u, v): per stable source node [s], the
   per-element counts A(s) into u and B(s) into v; grouped by the
   source's current cluster p = find(s), accumulating the covariance
   cross term and presence flags. *)
type parent_info = {
  mutable cross : float;  (* Sum_s n_s * A(s) * B(s) over s in p *)
  mutable has_u : bool;
  mutable has_v : bool;
}

let in_pass t u v =
  let mu = t.inmap.(u) and mv = t.inmap.(v) in
  let per_parent : (int, parent_info) Hashtbl.t = Hashtbl.create 16 in
  let info_of p =
    match Hashtbl.find_opt per_parent p with
    | Some i -> i
    | None ->
      let i = { cross = 0.; has_u = false; has_v = false } in
      Hashtbl.add per_parent p i;
      i
  in
  (* sources feeding u: cross terms need both sides per source *)
  Hashtbl.iter
    (fun s a ->
      let info = info_of (find t s) in
      info.has_u <- true;
      match Hashtbl.find_opt mv s with
      | Some b -> info.cross <- info.cross +. (Synopsis.count t.stable s *. a *. b)
      | None -> ())
    mu;
  (* sources feeding v only contribute their presence flag *)
  Hashtbl.iter (fun s _ -> (info_of (find t s)).has_v <- true) mv;
  per_parent

let get_stats map k =
  match Hashtbl.find_opt map k with
  | Some st -> (st.sum, st.sumsq)
  | None -> (0., 0.)

(* Children-part statistics of the merged cluster, and the number of
   distinct out-dimensions it would have. *)
let merged_children t u v per_parent =
  let mu = out_map t u and mv = out_map t v in
  let n_x = t.count.(u) +. t.count.(v) in
  (* union of dimensions with u, v collapsed into one ("x") *)
  let sq_acc = ref 0. and dims = ref 0 in
  let su_u, qu_u = get_stats mu u and su_v, qu_v = get_stats mu v in
  let sv_u, qv_u = get_stats mv u and sv_v, qv_v = get_stats mv v in
  let cross_u =
    match Hashtbl.find_opt per_parent u with Some i -> i.cross | None -> 0.
  in
  let cross_v =
    match Hashtbl.find_opt per_parent v with Some i -> i.cross | None -> 0.
  in
  let x_sum = su_u +. su_v +. sv_u +. sv_v in
  let x_sumsq = qu_u +. qu_v +. qv_u +. qv_v +. (2. *. (cross_u +. cross_v)) in
  if x_sum > 0. then begin
    incr dims;
    sq_acc := !sq_acc +. x_sumsq -. (x_sum *. x_sum /. n_x)
  end;
  let visit_dim w st_sum st_sumsq =
    if w <> u && w <> v && (st_sum > 0. || st_sumsq > 0.) then begin
      incr dims;
      sq_acc := !sq_acc +. st_sumsq -. (st_sum *. st_sum /. n_x)
    end
  in
  Hashtbl.iter
    (fun w st ->
      if w <> u && w <> v then begin
        let s2, q2 = get_stats mv w in
        visit_dim w (st.sum +. s2) (st.sumsq +. q2)
      end)
    mu;
  Hashtbl.iter
    (fun w st ->
      if w <> u && w <> v && not (Hashtbl.mem mu w) then
        visit_dim w st.sum st.sumsq)
    mv;
  (!sq_acc, !dims, x_sum, x_sumsq)

let check_pair t u v =
  u <> v
  && is_rep t u && is_rep t v
  && Xmldoc.Label.equal (label t u) (label t v)

(* Full evaluation of a candidate merge. *)
let evaluate t u v =
  let per_parent = in_pass t u v in
  let sq_x, dims_x, x_sum, x_sumsq = merged_children t u v per_parent in
  let delta_children = sq_x -. t.sqout.(u) -. t.sqout.(v) in
  (* common external parents: covariance correction + one saved edge *)
  let delta_parents = ref 0. and in_saved = ref 0 in
  let commons = ref [] in
  Hashtbl.iter
    (fun p info ->
      if p <> u && p <> v && info.has_u && info.has_v then begin
        let mp = out_map t p in
        let sum_pu, _ = get_stats mp u and sum_pv, _ = get_stats mp v in
        let d = 2. *. (info.cross -. (sum_pu *. sum_pv /. t.count.(p))) in
        delta_parents := !delta_parents +. d;
        incr in_saved;
        commons := (p, info.cross, d) :: !commons
      end)
    per_parent;
  let out_u = Hashtbl.length (out_map t u) and out_v = Hashtbl.length (out_map t v) in
  let out_saved = out_u + out_v - dims_x in
  let errd = delta_children +. !delta_parents in
  let sized = Synopsis.node_bytes + (Synopsis.edge_bytes * (out_saved + !in_saved)) in
  (errd, sized, out_saved + !in_saved, sq_x, x_sum, x_sumsq, !commons, per_parent)

let delta t u v =
  if not (check_pair t u v) then None
  else begin
    let errd, sized, _, _, _, _, _, _ = evaluate t u v in
    Some { errd; sized }
  end

let bump t i = t.version.(i) <- t.version.(i) + 1

let merge t u v =
  if not (check_pair t u v) then invalid_arg "Cluster.merge";
  let errd, _, edges_saved, sq_x, x_sum, x_sumsq, commons, per_parent =
    evaluate t u v
  in
  let mu = out_map t u and mv = out_map t v in
  (* Build the merged out map in place on u's table. *)
  Hashtbl.iter
    (fun w st ->
      if w <> u && w <> v then begin
        match Hashtbl.find_opt mu w with
        | Some dst ->
          dst.sum <- dst.sum +. st.sum;
          dst.sumsq <- dst.sumsq +. st.sumsq
        | None -> Hashtbl.add mu w { sum = st.sum; sumsq = st.sumsq }
      end)
    mv;
  Hashtbl.remove mu u;
  Hashtbl.remove mu v;
  if x_sum > 0. then Hashtbl.add mu u { sum = x_sum; sumsq = x_sumsq };
  t.out.(v) <- Hashtbl.create 1;
  (* Common external parents: collapse their (u, v) dimensions with the
     cross term, so later lazy renames stay pure. *)
  List.iter
    (fun (p, cross, _d) ->
      let mp = out_map t p in
      let sum_pu, sq_pu = get_stats mp u and sum_pv, sq_pv = get_stats mp v in
      Hashtbl.remove mp u;
      Hashtbl.remove mp v;
      Hashtbl.add mp u
        {
          sum = sum_pu +. sum_pv;
          sumsq = sq_pu +. sq_pv +. (2. *. cross);
        };
      t.sqout.(p) <- sq_of_map t.count.(p) mp)
    commons;
  (* Union: u survives; merge the in-edge maps smaller-into-larger. *)
  let small, big =
    if Hashtbl.length t.inmap.(u) <= Hashtbl.length t.inmap.(v) then
      (t.inmap.(u), t.inmap.(v))
    else (t.inmap.(v), t.inmap.(u))
  in
  Hashtbl.iter
    (fun s k ->
      Hashtbl.replace big s (k +. Option.value ~default:0. (Hashtbl.find_opt big s)))
    small;
  t.inmap.(u) <- big;
  t.inmap.(v) <- Hashtbl.create 1;
  t.uf.(v) <- u;
  t.members.(u) <- List.rev_append t.members.(v) t.members.(u);
  t.members.(v) <- [];
  t.count.(u) <- t.count.(u) +. t.count.(v);
  t.height.(u) <- max t.height.(u) t.height.(v);
  t.alive <- t.alive - 1;
  t.edges <- t.edges - edges_saved;
  t.sq <- t.sq +. errd;
  t.sqout.(u) <- sq_x;
  (* staleness: the pair, every parent, every child *)
  Hashtbl.iter (fun p _ -> bump t (find t p)) per_parent;
  Hashtbl.iter (fun w _ -> bump t (find t w)) mu;
  bump t u;
  bump t v;
  u

(* ------------------------------------------------------------------ *)
(* Construction and export                                              *)
(* ------------------------------------------------------------------ *)

let of_stable stable =
  let n = Synopsis.num_nodes stable in
  let heights = Synopsis.heights stable in
  let inmap = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun u node ->
      Array.iter (fun (v, k) -> Hashtbl.replace inmap.(v) u k) node.Synopsis.edges)
    stable.Synopsis.nodes;
  let out =
    Array.init n (fun u ->
        let map = Hashtbl.create 8 in
        let n_u = Synopsis.count stable u in
        Array.iter
          (fun (v, k) ->
            match Hashtbl.find_opt map v with
            | Some st ->
              st.sum <- st.sum +. (n_u *. k);
              st.sumsq <- st.sumsq +. (n_u *. k *. k)
            | None -> Hashtbl.add map v { sum = n_u *. k; sumsq = n_u *. k *. k })
          (Synopsis.edges stable u);
        map)
  in
  {
    stable;
    inmap;
    uf = Array.init n (fun i -> i);
    members = Array.init n (fun i -> [ i ]);
    count = Array.init n (fun i -> Synopsis.count stable i);
    height = Array.copy heights;
    version = Array.make n 0;
    alive = n;
    edges = Synopsis.num_edges stable;
    sq = 0.;
    out;
    sqout = Array.make n 0.;
  }

(* Reference recomputation from the stable summary — O(members * degree)
   per cluster; used by tests to validate the incremental bookkeeping. *)
let sq_error_direct t =
  List.fold_left
    (fun acc u ->
      let per_target : (int, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let n_s = Synopsis.count t.stable s in
          (* group s's stable edges by live target *)
          let local : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
          Array.iter
            (fun (tgt, k) ->
              let r = find t tgt in
              match Hashtbl.find_opt local r with
              | Some cell -> cell := !cell +. k
              | None -> Hashtbl.add local r (ref k))
            (Synopsis.edges t.stable s);
          Hashtbl.iter
            (fun r kk ->
              let sum, sumsq =
                match Hashtbl.find_opt per_target r with
                | Some cell -> cell
                | None ->
                  let cell = (ref 0., ref 0.) in
                  Hashtbl.add per_target r cell;
                  cell
              in
              sum := !sum +. (n_s *. !kk);
              sumsq := !sumsq +. (n_s *. !kk *. !kk))
            local)
        t.members.(u);
      Hashtbl.fold
        (fun _ (sum, sumsq) a -> a +. !sumsq -. (!sum *. !sum /. t.count.(u)))
        per_target acc)
    0. (alive_ids t)

let to_synopsis t =
  let reps = alive_ids t in
  let index = Hashtbl.create (List.length reps) in
  List.iteri (fun i r -> Hashtbl.add index r i) reps;
  let nodes =
    Array.of_list
      (List.map
         (fun r ->
           let map = out_map t r in
           let edges =
             Hashtbl.fold
               (fun tgt st acc ->
                 if st.sum > 0. then
                   (Hashtbl.find index tgt, st.sum /. t.count.(r)) :: acc
                 else acc)
               map []
           in
           {
             Synopsis.label = label t r;
             count = t.count.(r);
             edges = Array.of_list edges;
           })
         reps)
  in
  Synopsis.make ~root:(Hashtbl.find index (find t t.stable.Synopsis.root)) nodes
