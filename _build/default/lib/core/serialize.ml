let to_string (s : Synopsis.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "treesketch 1\n";
  Buffer.add_string buf (Printf.sprintf "root %d\n" s.root);
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %.17g %s\n" i n.Synopsis.count
           (Xmldoc.Label.to_string n.Synopsis.label)))
    s.nodes;
  Array.iteri
    (fun i n ->
      Array.iter
        (fun (t, k) -> Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" i t k))
        n.Synopsis.edges)
    s.nodes;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let root = ref (-1) in
  let nodes : (int, Xmldoc.Label.t * float) Hashtbl.t = Hashtbl.create 256 in
  let edges : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 256 in
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] | [] -> ()
    | [ "treesketch"; "1" ] -> ()
    | [ "root"; id ] -> root := int_of_string id
    | "node" :: id :: count :: label_words ->
      let label = String.concat " " label_words in
      Hashtbl.replace nodes (int_of_string id)
        (Xmldoc.Label.of_string label, float_of_string count)
    | [ "edge"; from; into; avg ] ->
      let from = int_of_string from in
      let entry = (int_of_string into, float_of_string avg) in
      (match Hashtbl.find_opt edges from with
      | Some l -> l := entry :: !l
      | None -> Hashtbl.add edges from (ref [ entry ]))
    | _ -> failwith (Printf.sprintf "Serialize.of_string: bad line %S" line)
  in
  (try List.iter parse_line lines
   with Failure _ as e -> raise e | _ -> failwith "Serialize.of_string: malformed input");
  let n = Hashtbl.length nodes in
  if !root < 0 || !root >= n then failwith "Serialize.of_string: missing or bad root";
  let node_arr =
    Array.init n (fun i ->
        match Hashtbl.find_opt nodes i with
        | None -> failwith (Printf.sprintf "Serialize.of_string: missing node %d" i)
        | Some (label, count) ->
          let edges =
            match Hashtbl.find_opt edges i with
            | Some l -> Array.of_list !l
            | None -> [||]
          in
          { Synopsis.label; count; edges })
  in
  Synopsis.make ~root:!root node_arr

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
