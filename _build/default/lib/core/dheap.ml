(* Interval heap (Leeuwen & Wood / Sahni): the array is viewed as a
   sequence of intervals; slot [2j] holds the low endpoint and [2j+1]
   the high endpoint of interval [j].  Interval [j]'s children are
   intervals [2j+1] and [2j+2].  Invariant: every element stored in the
   subtree of interval [j] lies within [lo_j, hi_j]. *)

type 'a entry = {
  prio : float;
  value : 'a;
}

type 'a t = {
  mutable a : 'a entry array;
  mutable n : int;
}

let dummy = Obj.magic 0

let create () = { a = [||]; n = 0 }

let length t = t.n

let is_empty t = t.n = 0

let clear t =
  t.a <- [||];
  t.n <- 0

let ensure_capacity t =
  if t.n >= Array.length t.a then begin
    let cap = max 16 (2 * Array.length t.a) in
    let bigger = Array.make cap { prio = 0.; value = dummy } in
    Array.blit t.a 0 bigger 0 t.n;
    t.a <- bigger
  end

let swap t i j =
  let tmp = t.a.(i) in
  t.a.(i) <- t.a.(j);
  t.a.(j) <- tmp

(* Bubble a low endpoint towards the root along the min chain. *)
let rec bubble_min t idx =
  let j = idx / 2 in
  if j > 0 then begin
    let pj = (j - 1) / 2 in
    if t.a.(idx).prio < t.a.(2 * pj).prio then begin
      swap t idx (2 * pj);
      bubble_min t (2 * pj)
    end
  end

(* Bubble a high endpoint towards the root along the max chain. *)
let rec bubble_max t idx =
  let j = idx / 2 in
  if j > 0 then begin
    let pj = (j - 1) / 2 in
    if t.a.(idx).prio > t.a.((2 * pj) + 1).prio then begin
      swap t idx ((2 * pj) + 1);
      bubble_max t ((2 * pj) + 1)
    end
  end

let push t prio value =
  ensure_capacity t;
  let idx = t.n in
  t.a.(idx) <- { prio; value };
  t.n <- t.n + 1;
  if idx > 0 then begin
    if idx land 1 = 1 then begin
      (* completing an interval: order the pair, then fix both chains *)
      if t.a.(idx).prio < t.a.(idx - 1).prio then swap t idx (idx - 1);
      bubble_max t idx;
      bubble_min t (idx - 1)
    end
    else begin
      (* a new single-element interval: route towards whichever parent
         bound it violates (at most one) *)
      let pj = (idx / 2 - 1) / 2 in
      if t.a.(idx).prio < t.a.(2 * pj).prio then bubble_min t idx
      else if t.a.(idx).prio > t.a.((2 * pj) + 1).prio then begin
        swap t idx ((2 * pj) + 1);
        bubble_max t ((2 * pj) + 1)
      end
    end
  end

let min_priority t = if t.n = 0 then None else Some t.a.(0).prio

let max_priority t =
  if t.n = 0 then None
  else if t.n = 1 then Some t.a.(0).prio
  else Some t.a.(1).prio

(* Re-insert [x] starting from the root's low slot, descending the min
   chain (Sahni's delete-min repair). *)
let sift_down_min t x =
  let rec go j x =
    (* keep x within the interval: it must not exceed the high slot *)
    let x =
      if (2 * j) + 1 < t.n && x.prio > t.a.((2 * j) + 1).prio then begin
        let h = t.a.((2 * j) + 1) in
        t.a.((2 * j) + 1) <- x;
        h
      end
      else x
    in
    let c1 = (2 * j) + 1 and c2 = (2 * j) + 2 in
    let best = ref (-1) in
    if 2 * c1 < t.n then best := c1;
    if 2 * c2 < t.n && t.a.(2 * c2).prio < t.a.(2 * c1).prio then best := c2;
    if !best >= 0 && t.a.(2 * !best).prio < x.prio then begin
      t.a.(2 * j) <- t.a.(2 * !best);
      go !best x
    end
    else t.a.(2 * j) <- x
  in
  go 0 x

(* Effective max slot of interval [j]: the high slot if the interval is
   full, otherwise its single low slot. *)
let max_slot t j = if (2 * j) + 1 < t.n then (2 * j) + 1 else 2 * j

let sift_down_max t x =
  let rec go j x =
    let mj = max_slot t j in
    let x =
      if mj = (2 * j) + 1 && x.prio < t.a.(2 * j).prio then begin
        let l = t.a.(2 * j) in
        t.a.(2 * j) <- x;
        l
      end
      else x
    in
    let c1 = (2 * j) + 1 and c2 = (2 * j) + 2 in
    let best = ref (-1) in
    if 2 * c1 < t.n then best := c1;
    if 2 * c2 < t.n && t.a.(max_slot t c2).prio > t.a.(max_slot t c1).prio then
      best := c2;
    if !best >= 0 && t.a.(max_slot t !best).prio > x.prio then begin
      t.a.(mj) <- t.a.(max_slot t !best);
      go !best x
    end
    else t.a.(mj) <- x
  in
  go 0 x

let pop_min t =
  if t.n = 0 then None
  else begin
    let res = t.a.(0) in
    let last = t.a.(t.n - 1) in
    t.n <- t.n - 1;
    if t.n > 0 then sift_down_min t last;
    Some (res.prio, res.value)
  end

let pop_max t =
  if t.n = 0 then None
  else if t.n = 1 then begin
    let res = t.a.(0) in
    t.n <- 0;
    Some (res.prio, res.value)
  end
  else begin
    let res = t.a.(1) in
    let last = t.a.(t.n - 1) in
    t.n <- t.n - 1;
    if t.n > 1 then sift_down_max t last;
    Some (res.prio, res.value)
  end

let check_invariant t =
  let ok = ref true in
  for j = 0 to ((t.n + 1) / 2) - 1 do
    (* interval ordering *)
    if (2 * j) + 1 < t.n && t.a.(2 * j).prio > t.a.((2 * j) + 1).prio then
      ok := false;
    (* containment of children in the parent interval *)
    if j > 0 then begin
      let pj = (j - 1) / 2 in
      let lo_p = t.a.(2 * pj).prio and hi_p = t.a.((2 * pj) + 1).prio in
      if t.a.(2 * j).prio < lo_p then ok := false;
      if (2 * j) + 1 < t.n && t.a.((2 * j) + 1).prio > hi_p then ok := false;
      if (2 * j) + 1 >= t.n && t.a.(2 * j).prio > hi_p then ok := false
    end
  done;
  !ok
