(** The working clustering state of [TSBUILD] (§4.2).

    A clustering partitions the nodes of the count-stable summary into
    clusters; the induced TREESKETCH has one node per cluster.  Because
    all elements summarized by one stable node have identical sub-tree
    structure, the exact per-element child counts of any cluster edge —
    and hence the sufficient statistics (sum and sum of squares of
    child counts) driving the squared-error metric — can be recovered
    from the stable summary alone, without touching the base document.

    Cluster identifiers are stable-node ids; a merge keeps one of the
    two ids as the surviving representative.  Each representative
    carries a {e version} that is bumped whenever a merge changes its
    statistics or its neighborhood, which is how the candidate heap
    detects stale entries (the [affected(h,m)] recomputation of
    Figure 5). *)

type t

type delta = {
  errd : float;  (** increase in squared error if the merge is applied *)
  sized : int;  (** decrease in synopsis size (bytes), always positive *)
}

val of_stable : Synopsis.t -> t
(** The identity clustering: one cluster per stable node (squared error
    0). *)

val stable : t -> Synopsis.t

val find : t -> int -> int
(** Current representative of a (possibly merged) cluster id. *)

val is_rep : t -> int -> bool

val alive_ids : t -> int list
(** All current representatives. *)

val num_alive : t -> int

val label : t -> int -> Xmldoc.Label.t

val count : t -> int -> float
(** Extent size of a cluster (its id must be a representative). *)

val height : t -> int -> int
(** Max height over the cluster's members. *)

val version : t -> int -> int

val size_bytes : t -> int
(** Size of the induced synopsis under the {!Synopsis} cost model,
    maintained incrementally. *)

val sq_error : t -> float
(** Total squared error of the induced clustering, maintained
    incrementally. *)

val sq_error_direct : t -> float
(** Recomputed from scratch — used by tests to validate the
    incremental bookkeeping. *)

val delta : t -> int -> int -> delta option
(** [delta t u v] evaluates the candidate merge of representatives [u]
    and [v]: the exact increase in squared error (including the
    contributions of common parents, which may be negative when
    anti-correlated siblings merge) and the exact decrease in size.
    [None] if the ids are equal, dead, or differently labeled. *)

val merge : t -> int -> int -> int
(** Apply the merge and return the surviving representative.
    @raise Invalid_argument on ids rejected by {!delta}. *)

val to_synopsis : t -> Synopsis.t
(** The induced TREESKETCH: one node per live cluster, edge averages =
    sum of child counts / extent size. *)
