lib/core/build.ml: Cluster Dheap Hashtbl List Stable Stdlib Xmldoc
