lib/core/topdown.mli: Synopsis
