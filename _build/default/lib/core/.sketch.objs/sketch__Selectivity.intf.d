lib/core/selectivity.mli: Eval Synopsis Twig
