lib/core/selectivity.ml: Array Eval Float List Stdlib Synopsis Twig
