lib/core/cluster.mli: Synopsis Xmldoc
