lib/core/eval.ml: Array Bytes Expand Hashtbl List Option Stdlib Synopsis Twig Vec Xmldoc
