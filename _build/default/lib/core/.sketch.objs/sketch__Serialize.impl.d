lib/core/serialize.ml: Array Buffer Fun Hashtbl List Printf String Synopsis Xmldoc
