lib/core/build.mli: Cluster Synopsis Xmldoc
