lib/core/dheap.mli:
