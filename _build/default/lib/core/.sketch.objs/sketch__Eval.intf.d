lib/core/eval.mli: Synopsis Twig Xmldoc
