lib/core/expand.ml: Array Float List Synopsis Xmldoc
