lib/core/vec.mli:
