lib/core/serialize.mli: Synopsis
