lib/core/cluster.ml: Array Hashtbl List Option Synopsis Xmldoc
