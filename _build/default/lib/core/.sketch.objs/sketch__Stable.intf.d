lib/core/stable.mli: Synopsis Twig Xmldoc
