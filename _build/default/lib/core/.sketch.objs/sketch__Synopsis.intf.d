lib/core/synopsis.mli: Format Xmldoc
