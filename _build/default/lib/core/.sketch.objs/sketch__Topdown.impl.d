lib/core/topdown.ml: Array Hashtbl List Stdlib Synopsis Xmldoc
