lib/core/dheap.ml: Array Obj
