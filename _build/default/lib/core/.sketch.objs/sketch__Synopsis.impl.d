lib/core/synopsis.ml: Array Float Format Hashtbl List Option Stdlib Xmldoc
