lib/core/expand.mli: Synopsis Xmldoc
