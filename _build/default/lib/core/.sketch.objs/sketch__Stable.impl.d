lib/core/stable.ml: Array Hashtbl List Option Stdlib Synopsis Twig Xmldoc
