(** Minimal growable vector used by the query-evaluation builders. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val to_array : 'a t -> 'a array
