(* Quickstart: summarize a document, ask a twig query, get an
   approximate answer and a selectivity estimate.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. An XML document — parse from text (or build with Tree.v). *)
  let doc =
    Xmldoc.Parser.of_string
      "<library>\
         <shelf><book><title/><author/><award/></book>\
                <book><title/><author/><author/></book></shelf>\
         <shelf><book><title/><author/></book>\
                <journal><title/><issue/><issue/></journal></shelf>\
       </library>"
  in
  Format.printf "Document: %d elements@." (Xmldoc.Tree.size doc);

  (* 2. The count-stable summary: a lossless structural synopsis. *)
  let stable = Sketch.Stable.build doc in
  Format.printf "Count-stable summary: %d classes, %d bytes@."
    (Sketch.Synopsis.num_nodes stable)
    (Sketch.Synopsis.size_bytes stable);

  (* 3. A TREESKETCH: the summary compressed into a space budget. *)
  let ts = Sketch.Build.build stable ~budget:120 in
  Format.printf "TreeSketch (120-byte budget): %d nodes, %d bytes@."
    (Sketch.Synopsis.num_nodes ts)
    (Sketch.Synopsis.size_bytes ts);

  (* 4. A twig query: books with an author, returning their titles. *)
  let q = Twig.Parse.query "//book[author]{/title,/author?}" in
  Format.printf "@.Query: %s@." (Twig.Syntax.to_string q);

  (* 5. The approximate answer, computed on the synopsis alone. *)
  let answer = Sketch.Eval.eval ts q in
  (match Sketch.Eval.to_nesting_tree answer with
  | Some tree -> Format.printf "Approximate answer: %a@." Xmldoc.Tree.pp tree
  | None -> Format.printf "Approximate answer: (empty)@.");
  Format.printf "Estimated binding tuples: %g@."
    (Sketch.Selectivity.estimate ts q);

  (* 6. Compare with the exact result. *)
  let exact = Twig.Eval.run (Twig.Doc.of_tree doc) q in
  Format.printf "Exact binding tuples:     %g@." exact.selectivity;
  (match exact.nesting with
  | Some tree -> Format.printf "Exact answer:       %a@." Xmldoc.Tree.pp tree
  | None -> ());

  (* 7. Score the approximation with the ESD metric. *)
  match (exact.nesting, Sketch.Eval.to_nesting_tree answer) with
  | Some t, Some a ->
    Format.printf "@.ESD(exact, approximate) = %g  (0 = perfect)@."
      (Metric.Esd.between_trees t a)
  | _ -> ()
