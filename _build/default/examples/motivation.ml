(* The motivating example of §3.1 (Figure 3): two documents that are
   indistinguishable to a selectivity-estimation synopsis but have very
   different result structure — and how count-stability tells them
   apart.

     dune exec examples/motivation.exe *)

module Tree = Xmldoc.Tree

(* T1: each a has one b with 1 c and one b with 4 c's.
   T2: one a has two light b's, the other two heavy b's. *)
let bc n = Tree.v "b" (List.init n (fun _ -> Tree.v "c" []))

let t1 = Tree.v "r" [ Tree.v "a" [ bc 1; bc 4 ]; Tree.v "a" [ bc 1; bc 4 ] ]

let t2 = Tree.v "r" [ Tree.v "a" [ bc 1; bc 1 ]; Tree.v "a" [ bc 4; bc 4 ] ]

let () =
  Format.printf "T1 = %a@." Tree.pp t1;
  Format.printf "T2 = %a@.@." Tree.pp t2;

  (* Both documents give every twig query the same selectivity... *)
  let q = Twig.Parse.query "//a{/b{/c}}" in
  let sel t = Twig.Eval.selectivity (Twig.Doc.of_tree t) q in
  Format.printf "Query %s:@." (Twig.Syntax.to_string q);
  Format.printf "  selectivity in T1 = %g, in T2 = %g  (identical!)@.@."
    (sel t1) (sel t2);

  (* ... but their count-stable summaries differ, because count
     stability groups elements only when their sub-trees are identical. *)
  let s1 = Sketch.Stable.build t1 and s2 = Sketch.Stable.build t2 in
  Format.printf "Count-stable summary of T1 (%d classes):@.%a@."
    (Sketch.Synopsis.num_nodes s1) Sketch.Synopsis.pp s1;
  Format.printf "Count-stable summary of T2 (%d classes):@.%a@."
    (Sketch.Synopsis.num_nodes s2) Sketch.Synopsis.pp s2;

  (* The structural difference is exactly what approximate answers need:
     the same query produces differently-shaped nesting trees. *)
  let nest t =
    match (Twig.Eval.run (Twig.Doc.of_tree t) q).nesting with
    | Some n -> Format.asprintf "%a" Tree.pp n
    | None -> "(empty)"
  in
  Format.printf "Nesting tree in T1: %s@." (nest t1);
  Format.printf "Nesting tree in T2: %s@.@." (nest t2);
  Format.printf
    "A selectivity-only synopsis (same counts, same histograms) cannot@.";
  Format.printf
    "distinguish these answers; the TreeSketch model can (§3, Figure 3).@."
