(* The Figure 10 / Example 5.1 scenario: why tree-edit distance cannot
   judge approximate answers, and how ESD's multiplicity-aware matching
   prefers the answer that preserves sibling correlations.

     dune exec examples/esd_demo.exe *)

module Tree = Xmldoc.Tree

let sc () = Tree.v "c" [ Tree.v "x" [] ]

let sd () = Tree.v "d" [ Tree.v "y" [] ]

let mk_a nc nd =
  Tree.v "a" (List.init nc (fun _ -> sc ()) @ List.init nd (fun _ -> sd ()))

(* the true answer T and two approximations of it *)
let t = Tree.v "r" [ mk_a 4 1; mk_a 1 4 ]

let t1 = Tree.v "r" [ mk_a 1 1; mk_a 4 4 ] (* breaks the correlation *)

let t2 = Tree.v "r" [ mk_a 6 2; mk_a 2 6 ] (* keeps it, inflated counts *)

let () =
  Format.printf "True answer    T  = %a@." Tree.pp t;
  Format.printf "Approximation  T1 = %a@." Tree.pp t1;
  Format.printf "Approximation  T2 = %a@.@." Tree.pp t2;
  Format.printf
    "T pairs FEW c-subtrees with MANY d-subtrees and vice versa.  T2 keeps@.";
  Format.printf
    "that anti-correlation (with inflated counts); T1 destroys it.@.@.";

  let edit = Metric.Tree_edit.distance_insert_delete in
  Format.printf "Tree-edit distance:  distE(T,T1) = %d,  distE(T,T2) = %d@."
    (edit t t1) (edit t t2);
  Format.printf "  -> tree edit judges the correlation-breaking T1 no worse!@.@.";

  let esd ?metric a b = Metric.Esd.between_trees ?metric a b in
  Format.printf "ESD with MAC (superlinear penalty):  ESD(T,T1) = %g,  ESD(T,T2) = %g@."
    (esd t t1) (esd t t2);
  Format.printf "  -> ESD prefers T2, as intuition demands (Example 5.1).@.@.";

  Format.printf "Ablation - linear penalties cannot make the call:@.";
  Format.printf "  EMD ground:        ESD(T,T1) = %g,  ESD(T,T2) = %g@."
    (esd ~metric:Metric.Esd.Emd t t1)
    (esd ~metric:Metric.Esd.Emd t t2);
  Format.printf "  MAC linear:        ESD(T,T1) = %g,  ESD(T,T2) = %g@."
    (esd ~metric:Metric.Esd.Mac_linear t t1)
    (esd ~metric:Metric.Esd.Mac_linear t t2);

  (* element-level comparison of Example 5.1 *)
  let pair x y = Metric.Esd.between_trees (Tree.v "p" [ x ]) (Tree.v "p" [ y ]) in
  Format.printf "@.Element level (Example 5.1): u = a(4Sc,1Sd)@.";
  Format.printf "  ESD(u, a(1Sc,1Sd)) = %g   (T1's element)@."
    (pair (mk_a 4 1) (mk_a 1 1));
  Format.printf "  ESD(u, a(6Sc,2Sd)) = %g   (T2's element - closer)@."
    (pair (mk_a 4 1) (mk_a 6 2))
