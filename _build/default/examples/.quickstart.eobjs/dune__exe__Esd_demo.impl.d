examples/esd_demo.ml: Format List Metric Xmldoc
