examples/esd_demo.mli:
