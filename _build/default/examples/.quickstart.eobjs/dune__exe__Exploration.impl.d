examples/exploration.ml: Datagen Float Format List Sketch Twig Unix Xmldoc
