examples/motivation.ml: Format List Sketch Twig Xmldoc
