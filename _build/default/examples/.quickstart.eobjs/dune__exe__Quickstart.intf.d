examples/quickstart.mli:
