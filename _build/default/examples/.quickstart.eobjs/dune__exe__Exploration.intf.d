examples/exploration.mli:
