examples/motivation.mli:
