examples/quickstart.ml: Format Metric Sketch Twig Xmldoc
