(* An interactive-exploration session (the paper's motivating use
   case, §1): an analyst poses successive twig queries against a large
   movie database; every query is first answered approximately from a
   10KB TREESKETCH — in microseconds — and the preview tells the
   analyst whether the full query is worth running.

     dune exec examples/exploration.exe *)

let line fmt = Format.printf (fmt ^^ "@.")

let () =
  line "Generating the movie database...";
  let doc = Datagen.Datasets.generate ~seed:2026 ~scale:2.0 Datagen.Datasets.Imdb in
  let idx = Twig.Doc.of_tree doc in
  let stats = Xmldoc.Stats.compute doc in
  line "  %d elements, %.1f MB serialized" stats.elements
    (float_of_int stats.serialized_bytes /. 1e6);

  line "Building the 10KB TreeSketch once, offline...";
  let stable = Sketch.Stable.build doc in
  let t0 = Unix.gettimeofday () in
  let ts = Sketch.Build.build stable ~budget:(10 * 1024) in
  line "  stable summary %d KB -> sketch %d bytes in %.1fs"
    (Sketch.Synopsis.size_bytes stable / 1024)
    (Sketch.Synopsis.size_bytes ts)
    (Unix.gettimeofday () -. t0);

  let session =
    [
      ( "How many movies are there, roughly?",
        "//movie" );
      ( "Movies with keywords AND a credited cast?",
        "//movie[keyword]{//actor[role]}" );
      ( "Do hit series have documented episodes?",
        "//tvseries{//season{/episode[airdate]}}" );
      ( "Directors of blockbusters with trivia?",
        "//movie[trivia]{/director{/name},/rating?}" );
      ( "Anything tagged with both a role and an award?",
        "//actor[role][award]" );
    ]
  in
  List.iter
    (fun (question, src) ->
      let q = Twig.Parse.query src in
      line "@.%s" question;
      line "  query: %s" src;
      let t0 = Unix.gettimeofday () in
      let answer = Sketch.Eval.eval ts q in
      let estimate = Sketch.Selectivity.of_answer q answer in
      let preview_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      if answer.empty then
        line "  preview: EMPTY (%.2f ms) - skip the full query" preview_ms
      else begin
        line "  preview: ~%.0f binding tuples, result shape %d classes (%.2f ms)"
          estimate
          (Sketch.Synopsis.num_nodes answer.synopsis)
          preview_ms;
        let t1 = Unix.gettimeofday () in
        let exact = Twig.Eval.run idx q in
        let full_ms = 1000. *. (Unix.gettimeofday () -. t1) in
        line "  full answer: %g tuples (%.1f ms) - preview error %.1f%%, %.0fx faster"
          exact.selectivity full_ms
          (100.
          *. Float.abs (exact.selectivity -. estimate)
          /. Float.max 1. exact.selectivity)
          (full_ms /. Float.max 0.001 preview_ms)
      end)
    session;
  line "@.The empty preview above saved one full scan; every non-empty preview";
  line "was accurate enough to judge the result before computing it."
