(* Negative workloads (§6.1, text): TREESKETCHes consistently produce
   empty answers for queries with empty results. *)

let run cfg =
  Report.header "Negative workloads — fraction of empty approximate answers";
  let rows =
    List.map
      (fun (p : Data.prepared) ->
        let negatives =
          Workload.negative ~seed:(cfg.Config.seed + 9) ~n:cfg.Config.queries p.stable
        in
        let sweep = Data.treesketches cfg p in
        let _, smallest = List.hd sweep in
        let empty_count =
          List.fold_left
            (fun acc q ->
              if (Sketch.Eval.eval smallest q).Sketch.Eval.empty then acc + 1 else acc)
            0 negatives
        in
        let zero_estimates =
          List.fold_left
            (fun acc q ->
              if Sketch.Selectivity.estimate smallest q = 0. then acc + 1 else acc)
            0 negatives
        in
        [
          p.label;
          string_of_int (List.length negatives);
          Printf.sprintf "%.0f%%"
            (100. *. float_of_int empty_count /. float_of_int (List.length negatives));
          Printf.sprintf "%.0f%%"
            (100.
            *. float_of_int zero_estimates
            /. float_of_int (List.length negatives));
        ])
      (Data.tx cfg)
  in
  Report.table
    ~columns:[ "Data set"; "Queries"; "Empty answers"; "Zero estimates" ]
    ~widths:[ 14; 9; 15; 15 ]
    rows;
  Report.note
    "Paper: \"our experiments with negative workloads have shown that";
  Report.note "TreeSketches consistently produce empty answers as approximations\"."
