(* Dataset preparation, cached per (dataset, scale) so experiments in
   one run share documents, summaries, workloads, and ground truth. *)

type prepared = {
  label : string;  (** e.g. "XMark-TX" *)
  dataset : Datagen.Datasets.dataset;
  doc : Xmldoc.Tree.t;
  idx : Twig.Doc.t;
  stable : Sketch.Synopsis.t;
  queries : Twig.Syntax.t list;
  truths : float list;  (** exact selectivities, aligned with queries *)
  training : Xsketch.Builder.training;
  sanity : float;  (** 10-percentile of true counts (§6.1) *)
}

let cache : (string * int, prepared) Hashtbl.t = Hashtbl.create 8

let percentile p xs =
  match List.sort Stdlib.compare xs with
  | [] -> 1.
  | sorted ->
    let n = List.length sorted in
    let idx = min (n - 1) (int_of_float (p *. float_of_int n)) in
    List.nth sorted idx

let prepare cfg ~suffix (ds, scale) =
  let label = Datagen.Datasets.name ds ^ suffix in
  let key = (label, cfg.Config.queries) in
  match Hashtbl.find_opt cache key with
  | Some p -> p
  | None ->
    let doc = Datagen.Datasets.generate ~seed:cfg.Config.seed ~scale ds in
    let idx = Twig.Doc.of_tree doc in
    let stable = Sketch.Stable.build doc in
    let queries =
      Workload.positive ~seed:(cfg.seed + 1) ~n:cfg.Config.queries stable
    in
    let truths = List.map (fun q -> Twig.Eval.selectivity idx q) queries in
    let training =
      Workload.positive ~seed:(cfg.seed + 2) ~n:cfg.Config.training stable
      |> List.map (fun q -> (q, Twig.Eval.selectivity idx q))
    in
    let sanity = Float.max 1. (percentile 0.1 truths) in
    let p =
      { label; dataset = ds; doc; idx; stable; queries; truths; training; sanity }
    in
    Hashtbl.add cache key p;
    p

let tx cfg = List.map (prepare cfg ~suffix:"-TX") Config.tx_scales

let large cfg = List.map (prepare cfg ~suffix:"") Config.large_scales

(* Budget sweeps, cached per prepared dataset. *)

let ts_cache : (string, (int * Sketch.Synopsis.t) list) Hashtbl.t = Hashtbl.create 8

let treesketches cfg p =
  match Hashtbl.find_opt ts_cache p.label with
  | Some l -> l
  | None ->
    let l =
      Sketch.Build.build_with_checkpoints p.stable ~budgets:(Config.budgets_bytes cfg)
    in
    Hashtbl.add ts_cache p.label l;
    l

let xs_cache : (string, (int * Xsketch.Model.t) list) Hashtbl.t = Hashtbl.create 8

let xsketches cfg p =
  match Hashtbl.find_opt xs_cache p.label with
  | Some l -> l
  | None ->
    let l =
      Xsketch.Builder.build_with_checkpoints p.stable ~training:p.training
        ~budgets:(Config.budgets_bytes cfg)
    in
    Hashtbl.add xs_cache p.label l;
    l
