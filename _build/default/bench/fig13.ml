(* Figure 13: TREESKETCH estimation error on the large data sets
   (IMDB, XMark, SwissProt, DBLP) across budgets, plus construction
   times, demonstrating the scaling behaviour of §6.2. *)

let run cfg =
  Report.header
    "Figure 13 — TreeSketch selectivity error (%) on large data sets";
  let datasets = Data.large cfg in
  let sweeps =
    List.map
      (fun (p : Data.prepared) ->
        let sweep, t = Report.timed (fun () -> Data.treesketches cfg p) in
        (p, sweep, t))
      datasets
  in
  let budgets = Config.budgets_bytes cfg in
  let rows =
    List.map
      (fun budget ->
        Printf.sprintf "%d" (budget / 1024)
        :: List.map
             (fun ((p : Data.prepared), sweep, _) ->
               let ts = List.assoc budget sweep in
               let errors =
                 List.map2
                   (fun q truth ->
                     Sketch.Selectivity.relative_error ~actual:truth
                       ~estimate:(Sketch.Selectivity.estimate ts q)
                       ~sanity:p.sanity)
                   p.queries p.truths
               in
               Printf.sprintf "%.1f" (100. *. Report.avg errors))
             sweeps)
      budgets
  in
  Report.table
    ~columns:("  KB" :: List.map (fun ((p : Data.prepared), _, _) -> p.label) sweeps)
    ~widths:(6 :: List.map (fun _ -> 12) sweeps)
    rows;
  print_newline ();
  List.iter
    (fun ((p : Data.prepared), _, t) ->
      Report.note "%s: budget sweep built in %s" p.label (Report.seconds t))
    sweeps;
  Report.note
    "Paper (Fig 13): error drops below 5%% at 50KB on all four data sets;";
  Report.note
    "construction stays affordable (paper: 2.5-240 min on 2004 hardware)."
