(* Table 1: data set characteristics — element counts, serialized file
   size, and count-stable synopsis size. *)

let run cfg =
  Report.header
    "Table 1 — Data set characteristics (paper: elements / file size / stable size)";
  let datasets = Data.tx cfg @ Data.large cfg in
  let rows =
    List.map
      (fun (p : Data.prepared) ->
        let stats = Xmldoc.Stats.compute p.doc in
        [
          p.label;
          string_of_int stats.elements;
          Printf.sprintf "%.1f" (float_of_int stats.serialized_bytes /. 1e6);
          Printf.sprintf "%.0f" (float_of_int (Sketch.Synopsis.size_bytes p.stable) /. 1024.);
          string_of_int (Sketch.Synopsis.num_nodes p.stable);
          string_of_int stats.height;
          string_of_int stats.distinct_labels;
        ])
      datasets
  in
  Report.table
    ~columns:
      [ "Data set"; "Elements"; "File(MB)"; "Stable(KB)"; "Classes"; "Height"; "Labels" ]
    ~widths:[ 14; 10; 10; 12; 9; 8; 8 ]
    rows;
  Report.note
    "Paper (Table 1): IMDB-TX 102,754 el / 77KB; XMark-TX 103,135 el / 276KB;";
  Report.note
    "SProt-TX 182,300 el / 265KB; IMDB 236,822 / 149KB; XMark 2M / 2.6MB;";
  Report.note
    "SProt 473,031 / 645KB; DBLP 1,594,443 / 204KB.  Our documents are seeded";
  Report.note
    "synthetic stand-ins scaled to comparable element counts (DESIGN.md)."
