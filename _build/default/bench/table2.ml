(* Table 2: workload characteristics — average number of binding tuples
   per positive query. *)

let run cfg =
  Report.header "Table 2 — Workload characteristics (avg binding tuples per query)";
  let datasets = Data.tx cfg @ Data.large cfg in
  let rows =
    List.map
      (fun (p : Data.prepared) ->
        [
          p.label;
          string_of_int (List.length p.queries);
          Printf.sprintf "%.0f" (Report.avg p.truths);
          Printf.sprintf "%.0f" p.sanity;
        ])
      datasets
  in
  Report.table
    ~columns:[ "Data set"; "Queries"; "Avg tuples"; "Sanity bound" ]
    ~widths:[ 14; 9; 12; 13 ]
    rows;
  Report.note
    "Paper (Table 2): IMDB-TX 3,477; XMark-TX 2,436; SProt-TX 104,592;";
  Report.note "IMDB 13,039; XMark 145,577; SProt 365,493; DBLP 78,784."
