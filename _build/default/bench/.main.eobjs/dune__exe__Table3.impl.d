bench/table3.ml: Data Float List Printf Report Sketch Xsketch
