bench/main.ml: Ablation Array Config Fig11 Fig12 Fig13 List Micro Negative Printf String Sys Table1 Table2 Table3 Treebank Unix
