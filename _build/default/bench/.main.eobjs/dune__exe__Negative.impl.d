bench/negative.ml: Config Data List Printf Report Sketch Workload
