bench/config.ml: Datagen List
