bench/fig13.ml: Config Data List Printf Report Sketch
