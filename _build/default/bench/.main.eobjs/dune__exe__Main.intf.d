bench/main.mli:
