bench/table2.ml: Data List Printf Report
