bench/ablation.ml: Data List Metric Printf Report Sketch Xmldoc Xsketch
