bench/data.ml: Config Datagen Float Hashtbl List Sketch Stdlib Twig Workload Xmldoc Xsketch
