bench/fig11.ml: Config Data List Metric Printf Report Sketch Twig Xmldoc Xsketch
