bench/treebank.ml: Config Data List Printf Report Sketch Xmldoc Xsketch
