bench/fig12.ml: Data List Printf Report Sketch Xsketch
