bench/table1.ml: Data List Printf Report Sketch Xmldoc
