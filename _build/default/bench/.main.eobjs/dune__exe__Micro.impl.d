bench/micro.ml: Analyze Bechamel Benchmark Data Hashtbl Instance List Measure Metric Printf Report Sketch Staged Stdlib Test Time Toolkit Twig Xmldoc
