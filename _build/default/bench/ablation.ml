(* Ablations of the design choices called out in DESIGN.md:

   1. the ESD set-distance penalty (superlinear MAC vs linear MAC vs
      EMD) on the Figure 10 scenario — the superlinear multiplicity
      penalty is what makes ESD prefer correlation-preserving answers;
   2. the twig-XSKETCH stability gate: faithful-2004 (histograms only
      across B/F-stable dimensions) vs the modernized every-edge
      variant;
   3. TSBUILD candidate-pool size (Uh): quality/time trade-off of the
      CREATEPOOL heuristic. *)

module Tree = Xmldoc.Tree

let fig10_scenario () =
  let sc () = Tree.v "c" [ Tree.v "x" [] ] in
  let sd () = Tree.v "d" [ Tree.v "y" [] ] in
  let mk_a nc nd =
    Tree.v "a" (List.init nc (fun _ -> sc ()) @ List.init nd (fun _ -> sd ()))
  in
  let t = Tree.v "r" [ mk_a 4 1; mk_a 1 4 ] in
  let t1 = Tree.v "r" [ mk_a 1 1; mk_a 4 4 ] in
  let t2 = Tree.v "r" [ mk_a 6 2; mk_a 2 6 ] in
  (t, t1, t2)

let metric_ablation () =
  Report.header "Ablation 1 — ESD set-distance penalty on the Figure 10 scenario";
  let t, t1, t2 = fig10_scenario () in
  let rows =
    List.map
      (fun (name, metric) ->
        let d1 = Metric.Esd.between_trees ?metric t t1 in
        let d2 = Metric.Esd.between_trees ?metric t t2 in
        let verdict =
          if d2 < d1 then "prefers T2 (correct)"
          else if d1 < d2 then "prefers T1 (wrong)"
          else "tie"
        in
        [ name; Printf.sprintf "%.0f" d1; Printf.sprintf "%.0f" d2; verdict ])
      [
        ("MAC superlinear", Some Metric.Esd.Mac);
        ("MAC linear", Some Metric.Esd.Mac_linear);
        ("EMD", Some Metric.Esd.Emd);
      ]
  in
  Report.table
    ~columns:[ "Set distance"; "ESD(T,T1)"; "ESD(T,T2)"; "Verdict" ]
    ~widths:[ 17; 11; 11; 24 ]
    rows;
  let e1 = Metric.Tree_edit.distance_insert_delete t t1 in
  let e2 = Metric.Tree_edit.distance_insert_delete t t2 in
  Report.note "Tree-edit distance (the §5 strawman): distE(T,T1)=%d, distE(T,T2)=%d" e1 e2;
  Report.note
    "T2 preserves the Sc/Sd anti-correlation and should win; only the";
  Report.note "superlinear multiplicity penalty delivers that preference."

let stability_ablation cfg =
  Report.header
    "Ablation 2 — twig-XSketch histogram stability gate (2004-faithful vs modernized)";
  let p = List.hd (Data.tx cfg) in
  let budget = 10 * 1024 in
  let measure params =
    let xs, t =
      Report.timed (fun () ->
          Xsketch.Builder.build ~params p.Data.stable ~training:p.training ~budget)
    in
    let errors =
      List.map2
        (fun q truth ->
          Sketch.Selectivity.relative_error ~actual:truth
            ~estimate:(Xsketch.Estimate.tuples xs q) ~sanity:p.sanity)
        p.queries p.truths
    in
    (100. *. Report.avg errors, t)
  in
  let faithful, t1 =
    measure { Xsketch.Builder.default_params with stable_dims_only = true }
  in
  let modern, t2 =
    measure { Xsketch.Builder.default_params with stable_dims_only = false }
  in
  Report.table
    ~columns:[ "Variant"; "Sel. error %"; "Build time" ]
    ~widths:[ 30; 13; 11 ]
    [
      [ "stable dims only (2004)"; Printf.sprintf "%.1f" faithful; Report.seconds t1 ];
      [ "all dims (modernized)"; Printf.sprintf "%.1f" modern; Report.seconds t2 ];
    ];
  Report.note "(%s at 10KB.)  The 2004 model records joint distributions only" p.label;
  Report.note
    "across B/F-stable edges; lifting that restriction is an anachronistic";
  Report.note "upgrade the original system did not have (see EXPERIMENTS.md)."

let pool_ablation cfg =
  Report.header "Ablation 3 — TSBUILD candidate-pool size (Uh)";
  let p = List.hd (Data.tx cfg) in
  let budget = 10 * 1024 in
  let rows =
    List.map
      (fun heap_max ->
        let params = { Sketch.Build.default_params with heap_max } in
        let cl = Sketch.Cluster.of_stable p.Data.stable in
        let (), t =
          Report.timed (fun () -> Sketch.Build.compress ~params cl ~budget)
        in
        let ts = Sketch.Cluster.to_synopsis cl in
        let errors =
          List.map2
            (fun q truth ->
              Sketch.Selectivity.relative_error ~actual:truth
                ~estimate:(Sketch.Selectivity.estimate ts q) ~sanity:p.sanity)
            p.queries p.truths
        in
        [
          string_of_int heap_max;
          Printf.sprintf "%.0f" (Sketch.Cluster.sq_error cl);
          Printf.sprintf "%.1f" (100. *. Report.avg errors);
          Report.seconds t;
        ])
      [ 100; 1_000; 10_000 ]
  in
  Report.table
    ~columns:[ "Uh"; "Squared error"; "Sel. error %"; "Time" ]
    ~widths:[ 8; 14; 13; 8 ]
    rows;
  Report.note "(%s compressed to 10KB.)  Larger pools explore more merges per" p.label;
  Report.note "regeneration; the paper's Uh=10000 is the quality/time sweet spot."

let construction_ablation cfg =
  Report.header
    "Ablation 4 — bottom-up TSBUILD vs top-down (split-based) construction";
  let budget = 10 * 1024 in
  let rows =
    List.map
      (fun (p : Data.prepared) ->
        let (td, td_sq), td_time =
          Report.timed (fun () -> Sketch.Topdown.build p.Data.stable ~budget)
        in
        let cl, bu_time =
          Report.timed (fun () ->
              let cl = Sketch.Cluster.of_stable p.stable in
              Sketch.Build.compress cl ~budget;
              cl)
        in
        let bu = Sketch.Cluster.to_synopsis cl in
        let err ts =
          let errors =
            List.map2
              (fun q truth ->
                Sketch.Selectivity.relative_error ~actual:truth
                  ~estimate:(Sketch.Selectivity.estimate ts q) ~sanity:p.sanity)
              p.queries p.truths
          in
          100. *. Report.avg errors
        in
        [
          p.label;
          Printf.sprintf "%.0f / %.0f" (Sketch.Cluster.sq_error cl) td_sq;
          Printf.sprintf "%.1f / %.1f" (err bu) (err td);
          Printf.sprintf "%s / %s" (Report.seconds bu_time) (Report.seconds td_time);
        ])
      (Data.tx cfg)
  in
  Report.table
    ~columns:[ "Data set"; "sq err (bu/td)"; "sel %% (bu/td)"; "time (bu/td)" ]
    ~widths:[ 14; 17; 16; 15 ]
    rows;
  Report.note
    "The paper (S4.2) reports bottom-up construction 'yields much better";
  Report.note
    "results'; on our profile-generated data the top-down splitter wins both";
  Report.note
    "metrics - its max-variance dimension splits align with the generators'";
  Report.note
    "clean variance structure.  A negative reproduction result, recorded in";
  Report.note "EXPERIMENTS.md."

let run cfg =
  metric_ablation ();
  stability_ablation cfg;
  pool_ablation cfg;
  construction_ablation cfg
