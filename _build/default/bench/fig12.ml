(* Figure 12: average relative selectivity-estimation error vs synopsis
   size, TREESKETCH vs twig-XSKETCH, on the TX data sets (the paper
   plots XMark-TX and SProt-TX and notes IMDB-TX is similar; we print
   all three). *)

let avg_error estimate p =
  let errors =
    List.map2
      (fun q truth ->
        Sketch.Selectivity.relative_error ~actual:truth ~estimate:(estimate q)
          ~sanity:p.Data.sanity)
      p.Data.queries p.truths
  in
  100. *. Report.avg errors

let run cfg =
  Report.header
    "Figure 12 — Avg relative selectivity error (%) vs synopsis size";
  List.iter
    (fun (p : Data.prepared) ->
      let rows =
        List.map2
          (fun (budget, ts) (_, xs) ->
            let ts_err = avg_error (fun q -> Sketch.Selectivity.estimate ts q) p in
            let xs_err = avg_error (fun q -> Xsketch.Estimate.tuples xs q) p in
            [
              Printf.sprintf "%d" (budget / 1024);
              Printf.sprintf "%.1f" ts_err;
              Printf.sprintf "%.1f" xs_err;
            ])
          (Data.treesketches cfg p) (Data.xsketches cfg p)
      in
      print_newline ();
      Printf.printf "  %s (%d queries, sanity bound %.0f)\n" p.label
        (List.length p.queries) p.sanity;
      Report.table
        ~columns:[ "  KB"; "TreeSketch %"; "twig-XSketch %" ]
        ~widths:[ 6; 14; 16 ]
        rows)
    (Data.tx cfg);
  Report.note
    "Paper (Fig 12): TreeSketch stays well below 10%% at every budget while";
  Report.note
    "twig-XSketch is both less accurate and less stable across budgets."
