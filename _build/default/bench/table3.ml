(* Table 3: construction times.  As in the paper, the TREESKETCH
   number is the time to compress the count-stable summary all the way
   down to the label-split floor (a worst case for TSBUILD), while the
   twig-XSKETCH number is the time to grow the label-split graph to a
   10KB synopsis with the workload-driven refinement search. *)

let run cfg =
  Report.header "Table 3 — Construction time (TSBUILD vs workload-driven twig-XSKETCH)";
  let rows =
    List.map
      (fun (p : Data.prepared) ->
        let _, ts_time =
          Report.timed (fun () ->
              let cl = Sketch.Cluster.of_stable p.stable in
              Sketch.Build.compress cl ~budget:1;
              Sketch.Cluster.to_synopsis cl)
        in
        let _, xs_time =
          Report.timed (fun () ->
              Xsketch.Builder.build p.stable ~training:p.training ~budget:(10 * 1024))
        in
        [
          p.label;
          Report.seconds ts_time;
          Report.seconds xs_time;
          Printf.sprintf "%.1fx" (xs_time /. Float.max 1e-9 ts_time);
        ])
      (Data.tx cfg)
  in
  Report.table
    ~columns:[ "Data set"; "TreeSketch"; "twig-XSketch"; "Ratio" ]
    ~widths:[ 14; 12; 14; 8 ]
    rows;
  Report.note
    "Paper (Table 3, minutes): IMDB-TX 0.7 vs 13; XMark-TX 8 vs 47; SProt-TX";
  Report.note
    "10 vs 55 — TreeSketch construction is several times faster because its";
  Report.note
    "squared-error quality metric is workload-independent, while twig-XSketch";
  Report.note "re-evaluates candidate refinements against a query workload."
