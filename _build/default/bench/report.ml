(* Minimal fixed-width table rendering for the benchmark reports. *)

let rule width = print_endline (String.make width '-')

let header title =
  print_newline ();
  rule 78;
  Printf.printf "%s\n" title;
  rule 78

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let row cells widths =
  List.iter2 (fun cell w -> Printf.printf "%-*s" w cell) cells widths;
  print_newline ()

let table ~columns ~widths rows =
  row columns widths;
  rule (List.fold_left ( + ) 0 widths);
  List.iter (fun r -> row r widths) rows

let seconds t = Printf.sprintf "%.1fs" t

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let avg = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
