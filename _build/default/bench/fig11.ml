(* Figure 11: average ESD of approximate answers vs synopsis size, for
   TREESKETCH and twig-XSKETCH, on the three TX data sets.

   Protocol (§6.1): for every positive query, compare the approximate
   nesting tree against the true nesting tree under ESD (with the MAC
   set distance and per-variable label matching).  TREESKETCH answers
   come from EVAL_QUERY followed by expansion; twig-XSKETCH answers are
   sampled from the edge histograms.  An empty approximate answer is
   scored against the root-only document. *)

let esd_of_answer ~true_stable approx_stable =
  Metric.Esd.between_synopses true_stable approx_stable

let run cfg =
  Report.header "Figure 11 — Avg ESD of approximate answers vs synopsis size";
  List.iter
    (fun (p : Data.prepared) ->
      (* the answer-quality workload: a prefix of the main workload *)
      let queries =
        List.filteri (fun i _ -> i < cfg.Config.esd_queries) p.queries
      in
      let truths =
        List.filter_map
          (fun q ->
            match (Twig.Eval.run p.idx q).nesting with
            | None -> None
            | Some nt -> Some (q, Sketch.Stable.build nt))
          queries
      in
      let root_only =
        Sketch.Stable.build
          (Xmldoc.Tree.make
             (Twig.Eval.nesting_label 0 (Xmldoc.Tree.label p.doc))
             [])
      in
      let rows =
        List.map2
          (fun (budget, ts) (_, xs) ->
            let ts_esd =
              List.map
                (fun (q, true_stable) ->
                  let ans = Sketch.Eval.eval ts q in
                  let approx =
                    if ans.Sketch.Eval.empty then root_only
                    else
                      match Sketch.Eval.to_nesting_tree ans with
                      | Some t -> Sketch.Stable.build t
                      | None -> ans.Sketch.Eval.synopsis
                  in
                  esd_of_answer ~true_stable approx)
                truths
            in
            let xs_esd =
              List.mapi
                (fun i (q, true_stable) ->
                  let approx =
                    match Xsketch.Answer.sample ~seed:(cfg.Config.seed + i) xs q with
                    | Some t -> Sketch.Stable.build t
                    | None -> root_only
                  in
                  esd_of_answer ~true_stable approx)
                truths
            in
            [
              Printf.sprintf "%d" (budget / 1024);
              Printf.sprintf "%.0f" (Report.avg ts_esd);
              Printf.sprintf "%.0f" (Report.avg xs_esd);
            ])
          (Data.treesketches cfg p) (Data.xsketches cfg p)
      in
      print_newline ();
      Printf.printf "  %s (%d scoreable queries)\n" p.label (List.length truths);
      Report.table
        ~columns:[ "  KB"; "TreeSketch ESD"; "twig-XSketch ESD" ]
        ~widths:[ 6; 16; 18 ]
        rows)
    (Data.tx cfg);
  Report.note
    "Paper (Fig 11): TreeSketch ESD is 2-4x lower than twig-XSketch at every";
  Report.note
    "budget.  Our reimplemented baseline is substantially stronger than the";
  Report.note
    "2004 original (see EXPERIMENTS.md); the TreeSketch advantage here shows";
  Report.note "mainly against the faithful stability-gated histogram mode."
