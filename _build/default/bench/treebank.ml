(* Beyond the paper: TreeBank-like parse trees — deeply recursive,
   high-entropy structure, the classic stress case for XML structural
   summaries.  Both synopsis families degrade here; the experiment
   records by how much, and how the errors respond to budget. *)

let run cfg =
  Report.header "TreeBank (beyond the paper) — the hard recursive case";
  let p = Data.prepare cfg ~suffix:"" (List.hd Config.extra_scales) in
  let stats = Xmldoc.Stats.compute p.doc in
  Report.note
    "%d elements, height %d; stable summary %d KB in %d classes (%.1f%% of"
    stats.elements stats.height
    (Sketch.Synopsis.size_bytes p.stable / 1024)
    (Sketch.Synopsis.num_nodes p.stable)
    (100.
    *. float_of_int (Sketch.Synopsis.size_bytes p.stable)
    /. float_of_int stats.serialized_bytes);
  Report.note
    "the serialized document — an order of magnitude denser than Table 1's";
  Report.note "datasets: parse trees barely compress).";
  print_newline ();
  let rows =
    List.map2
      (fun (budget, ts) (_, xs) ->
        let err estimate =
          let errors =
            List.map2
              (fun q truth ->
                Sketch.Selectivity.relative_error ~actual:truth
                  ~estimate:(estimate q) ~sanity:p.sanity)
              p.queries p.truths
          in
          100. *. Report.avg errors
        in
        [
          Printf.sprintf "%d" (budget / 1024);
          Printf.sprintf "%.1f" (err (fun q -> Sketch.Selectivity.estimate ts q));
          Printf.sprintf "%.1f" (err (fun q -> Xsketch.Estimate.tuples xs q));
        ])
      (Data.treesketches cfg p) (Data.xsketches cfg p)
  in
  Report.table
    ~columns:[ "  KB"; "TreeSketch %"; "twig-XSketch %" ]
    ~widths:[ 6; 14; 16 ]
    rows;
  Report.note
    "Selectivity error vs budget.  Both synopses are an order of magnitude";
  Report.note
    "worse than on the paper's datasets: at these compression ratios, parse";
  Report.note
    "trees simply do not cluster — the caveat later structural-summary work";
  Report.note "(e.g. XSEED) documents at length."
