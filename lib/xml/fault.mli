(** The single error taxonomy of the ingestion layer.

    Every [*_res] loader in the repository — [Xmldoc.Parser],
    [Sketch.Serialize], [Sketch.Build] — reports failure as a value of
    this type, so callers (the CLI in particular) handle corrupt XML,
    corrupt synopsis files, resource-limit violations and expired
    deadlines uniformly, each with its own exit code. *)

type t =
  | Parse_error of { line : int; column : int; message : string }
      (** malformed XML, with a 1-based source position *)
  | Limit_exceeded of { what : string; actual : int; limit : int }
      (** a {!Limits.t} bound was hit; [what] names the resource
          ("bytes", "depth", "elements", "nodes") *)
  | Corrupt_synopsis of { line : int; content : string; message : string }
      (** malformed or invariant-violating synopsis file; [line] is
          1-based ([0] when the failure is not tied to one line) and
          [content] is the offending line's text *)
  | Deadline of { stage : string; elapsed : float }
      (** the {!Limits.t} deadline expired during [stage] *)
  | Io_error of { path : string; message : string }
      (** the underlying file could not be read *)
  | Worker_crash of { reason : string }
      (** an isolated query worker died mid-evaluation (stack overflow,
          OOM-kill, segfault-class bug) or the evaluation was contained
          at the last line of defense; the request is lost but the
          server — and every other request — survives *)

exception Fault of t
(** Raising carrier used by the legacy non-[result] entry points for
    faults that predate them (limit and deadline violations). *)

val to_string : t -> string
(** One-line human-readable rendering, suitable for stderr. *)

val with_path : string -> t -> t
(** Tag a fault with the file it came from: the path is woven into the
    human-facing field of each case ([message], [what], [stage]; the
    [Io_error] path is replaced), so multi-file consumers — the serving
    catalog above all — always report {e which} file failed. *)

val class_name : t -> string
(** Stable one-word taxonomy tag per case ([parse], [corrupt], [limit],
    [deadline], [io], [worker-crash]) — the error class of the serving
    protocol and of structured log records. *)

val exit_code : t -> int
(** Distinct process exit code per taxonomy case, used by the CLI:
    parse error 1, corrupt synopsis 2, limit exceeded 3, deadline 4,
    I/O error 5, worker crash 6. *)

val degraded_exit_code : int
(** [10]: the work completed but degraded — a build emitted its
    best-so-far over-budget synopsis, distinct from both success (0)
    and the hard fault codes (1-5). *)

val exit_code_table : (int * string * string) list
(** Every process exit code of the [treesketch] CLI as
    [(code, class, description)]: [0 ok], [10 degraded], then the
    {!exit_code} taxonomy keyed by {!class_name}.  The CLI manual
    renders this table verbatim; tests assert it matches
    {!exit_code}. *)
