(** Resource limits threaded through every ingestion entry point.

    Loading untrusted bytes must be a total function: it returns a value
    or a structured {!Fault.t}, never a crash.  A [Limits.t] bounds the
    four resources a hostile or degenerate input can exhaust — input
    size, nesting depth, element/node count, and wall-clock budget —
    and is accepted by [Xmldoc.Parser], [Sketch.Serialize] and
    [Sketch.Build].

    Deadlines are absolute timestamps on the {!now} clock; an expired
    deadline makes loaders return [Fault.Deadline] and makes
    [Sketch.Build.build_res] degrade gracefully instead of failing. *)

type t = {
  max_bytes : int;  (** maximum input size in bytes *)
  max_depth : int;  (** maximum element nesting depth (root = 1) *)
  max_elements : int;
      (** maximum number of elements (XML) or synopsis nodes (sketch) *)
  deadline : float option;
      (** absolute timestamp on the {!now} clock, [None] = no deadline *)
}

val default : t
(** Generous production defaults: 256 MiB, depth 200k, 50M elements,
    no deadline.  Large enough that every document in the paper's
    experiments (§6) loads unimpeded. *)

val unlimited : t
(** No bounds at all — for trusted, already-validated inputs. *)

val now : unit -> float
(** The clock deadlines are measured on (seconds, monotone within a
    process). *)

val with_timeout : float -> t -> t
(** [with_timeout seconds l] is [l] with a deadline [seconds] from
    now. *)

val expired : t -> bool
(** Has the deadline passed? Always [false] without a deadline. *)

val parse_bytes : string -> (int, string) result
(** Parse a human byte-size spec: a positive integer with an optional
    case-insensitive [B], [KB], [MB] or [GB] suffix (["10KB"], ["2MB"],
    ["4096"]).  Rejects non-positive values and sizes that overflow
    [int].  Shared by the CLI budget flags and the bench harness. *)
