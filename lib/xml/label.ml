type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256

let names : string array ref = ref (Array.make 256 "")

let next = ref 0

(* The intern table is process-global mutable state and the serving
   runtime parses queries and loads snapshots from several threads at
   once, so interning is serialized.  [to_string] stays lock-free: an
   id a thread can legitimately hold was fully published (cell written,
   then the table entry added) before [of_string] returned it, and a
   stale [!names] array still contains every id published before the
   resize. *)
let intern_lock = Mutex.create ()

let of_string s =
  Mutex.protect intern_lock (fun () ->
      match Hashtbl.find_opt table s with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        if id >= Array.length !names then begin
          let bigger = Array.make (2 * Array.length !names) "" in
          Array.blit !names 0 bigger 0 (Array.length !names);
          names := bigger
        end;
        !names.(id) <- s;
        Hashtbl.add table s id;
        id)

let to_string id = !names.(id)

let to_int id = id

let equal (a : int) (b : int) = a = b

let compare (a : int) (b : int) = Stdlib.compare a b

let hash (id : int) = id

let count () = !next

let pp ppf id = Format.pp_print_string ppf (to_string id)
