type site =
  | Read
  | Write
  | Open
  | Close
  | Stat
  | Accept
  | Connect
  | Fsync
  | Rename
  | Fork

let site_name = function
  | Read -> "read"
  | Write -> "write"
  | Open -> "open"
  | Close -> "close"
  | Stat -> "stat"
  | Accept -> "accept"
  | Connect -> "connect"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Fork -> "fork"

type fault =
  | Eintr
  | Eio
  | Enospc
  | Eagain
  | Short
  | Short_at of int
  | Delay of float

type rule = {
  site : site;
  fault : fault;
  prob : float;
  limit : int;
  path_substring : string option;
}

let rule ?(prob = 1.0) ?(limit = max_int) ?path site fault =
  { site; fault; prob; limit; path_substring = path }

type armed_rule = { r : rule; mutable fired : int }

type plan = {
  rng : Random.State.t;
  rules : armed_rule list;
  plan_seed : int;
  mutable total : int;
}

(* One global plan behind one mutex: the serving runtime taps from
   several threads, and determinism requires every draw to come from
   the single seeded state in a serialized order. *)
let lock = Mutex.create ()

let active : plan option ref = ref None

let arm ?(seed = 0) rules =
  Mutex.protect lock (fun () ->
      active :=
        Some
          {
            rng = Random.State.make [| seed |];
            rules = List.map (fun r -> { r; fired = 0 }) rules;
            plan_seed = seed;
            total = 0;
          })

let disarm () = Mutex.protect lock (fun () -> active := None)

let armed () = !active <> None

let seed () =
  Mutex.protect lock (fun () ->
      match !active with Some p -> Some p.plan_seed | None -> None)

let injected () =
  Mutex.protect lock (fun () ->
      match !active with Some p -> p.total | None -> 0)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let applies ar site path =
  ar.r.site = site
  && ar.fired < ar.r.limit
  && match ar.r.path_substring with
     | None -> true
     | Some sub -> contains path sub

(* What one tap/cap decided to do.  Decisions are taken under the lock
   (the rng draw must be serialized); sleeping and raising happen
   outside it. *)
type action =
  | Raise of Unix.error
  | Sleep of float
  | Cut of int

let draw plan site path ~want_cut ~len =
  let actions = ref [] in
  List.iter
    (fun ar ->
      if applies ar site path && Random.State.float plan.rng 1.0 < ar.r.prob then begin
        let act =
          match ar.r.fault with
          | Eintr -> Some (Raise Unix.EINTR)
          | Eio -> Some (Raise Unix.EIO)
          | Enospc -> Some (Raise Unix.ENOSPC)
          | Eagain -> Some (Raise Unix.EAGAIN)
          | Delay s -> Some (Sleep s)
          | Short ->
            if want_cut && len > 0 then Some (Cut (Random.State.int plan.rng len))
            else None
          | Short_at n -> if want_cut then Some (Cut (min (max n 0) len)) else None
        in
        match act with
        | Some a ->
          ar.fired <- ar.fired + 1;
          plan.total <- plan.total + 1;
          actions := a :: !actions
        | None -> ()
      end)
    plan.rules;
  List.rev !actions

let decide site ~path ~want_cut ~len =
  Mutex.protect lock (fun () ->
      match !active with
      | None -> []
      | Some plan -> draw plan site path ~want_cut ~len)

(* Delays apply before a raise (the slow failing disk); the first
   raising rule wins; cuts only matter to [cap]. *)
let run_actions site ~path actions =
  List.iter (function Sleep s -> Unix.sleepf s | Raise _ | Cut _ -> ()) actions;
  List.iter
    (function
      | Raise e -> raise (Unix.Unix_error (e, site_name site, path))
      | Sleep _ | Cut _ -> ())
    actions

let tap site ~path =
  if !active <> None then
    run_actions site ~path (decide site ~path ~want_cut:false ~len:0)

let tap_retrying site ~path =
  if !active <> None then begin
    let rec go tries =
      match tap site ~path with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) when tries > 0 ->
        go (tries - 1)
    in
    go 10
  end

let cap site ~path len =
  if !active = None then len
  else begin
    let actions = decide site ~path ~want_cut:true ~len in
    run_actions site ~path actions;
    List.fold_left
      (fun acc a -> match a with Cut n -> min acc n | Raise _ | Sleep _ -> acc)
      len actions
  end
