type t =
  | Parse_error of { line : int; column : int; message : string }
  | Limit_exceeded of { what : string; actual : int; limit : int }
  | Corrupt_synopsis of { line : int; content : string; message : string }
  | Deadline of { stage : string; elapsed : float }
  | Io_error of { path : string; message : string }
  | Worker_crash of { reason : string }

exception Fault of t

let to_string = function
  | Parse_error { line; column; message } ->
    Printf.sprintf "XML parse error at line %d, column %d: %s" line column message
  | Limit_exceeded { what; actual; limit } ->
    Printf.sprintf "resource limit exceeded: %s = %d (limit %d)" what actual limit
  | Corrupt_synopsis { line; content; message } ->
    if line = 0 then Printf.sprintf "corrupt synopsis: %s" message
    else Printf.sprintf "corrupt synopsis at line %d (%S): %s" line content message
  | Deadline { stage; elapsed } ->
    Printf.sprintf "deadline expired during %s after %.3fs" stage elapsed
  | Io_error { path; message } -> Printf.sprintf "cannot read %s: %s" path message
  | Worker_crash { reason } ->
    Printf.sprintf "query worker crashed: %s" reason

let with_path path = function
  | Parse_error r -> Parse_error { r with message = path ^ ": " ^ r.message }
  | Corrupt_synopsis r ->
    Corrupt_synopsis { r with message = path ^ ": " ^ r.message }
  | Limit_exceeded r -> Limit_exceeded { r with what = path ^ ": " ^ r.what }
  | Deadline r -> Deadline { r with stage = r.stage ^ " of " ^ path }
  | Io_error r -> Io_error { r with path }
  | Worker_crash r -> Worker_crash { reason = path ^ ": " ^ r.reason }

let class_name = function
  | Parse_error _ -> "parse"
  | Corrupt_synopsis _ -> "corrupt"
  | Limit_exceeded _ -> "limit"
  | Deadline _ -> "deadline"
  | Io_error _ -> "io"
  | Worker_crash _ -> "worker-crash"

let exit_code = function
  | Parse_error _ -> 1
  | Corrupt_synopsis _ -> 2
  | Limit_exceeded _ -> 3
  | Deadline _ -> 4
  | Io_error _ -> 5
  | Worker_crash _ -> 6

let degraded_exit_code = 10

(* The one exit-code table: the CLI's manual page is rendered from it
   and a regression test checks it against [exit_code]/[class_name], so
   the documentation cannot drift from the codes again. *)
let exit_code_table =
  [
    (0, "ok", "success");
    ( degraded_exit_code,
      "degraded",
      "a budget or deadline tripped; the best-so-far result was emitted" );
    (1, "parse", "XML parse error");
    (2, "corrupt", "corrupt synopsis");
    (3, "limit", "resource limit exceeded");
    (4, "deadline", "deadline expired");
    (5, "io", "I/O error");
    ( 6,
      "worker-crash",
      "an isolated query worker died mid-evaluation (stack overflow, OOM, \
       kill); only that request was lost" );
  ]
