(** A small, dependency-free parser for the element structure of XML.

    The paper's algorithms only look at the label structure of a
    document, so this parser deliberately implements the subset of
    XML 1.0 needed to recover it:

    - elements: [<tag ...>...</tag>] and [<tag ... />];
    - attributes are scanned and discarded;
    - text content, comments, CDATA sections, processing instructions
      and the DOCTYPE declaration are skipped;
    - entities inside text are not expanded (text is discarded anyway).

    A document must have exactly one root element.

    Loading is total: element structure is parsed with an explicit
    stack, so nesting depth is bounded only by [Limits.max_depth] —
    a 100k-deep document parses without [Stack_overflow] — and every
    resource in the supplied {!Limits.t} (bytes, depth, elements,
    deadline) is enforced.  The [*_res] entry points return every
    failure as a structured {!Fault.t}; the legacy entry points raise
    {!Error} on malformed input and [Fault.Fault] on limit/deadline
    violations. *)

exception Error of { line : int; column : int; message : string }
(** Raised on malformed input, with a 1-based source position. *)

val of_string_res : ?limits:Limits.t -> string -> (Tree.t, Fault.t) result
(** Parse a document held in memory.  Never raises: malformed input is
    [Error (Parse_error _)], a violated resource bound is
    [Error (Limit_exceeded _)] or [Error (Deadline _)].
    [limits] defaults to {!Limits.default}. *)

val of_file_res : ?limits:Limits.t -> string -> (Tree.t, Fault.t) result
(** Like {!of_string_res} from a file; an unreadable file is
    [Error (Io_error _)].  The size limit is checked against the file
    length before the contents are read into memory. *)

val of_string : ?limits:Limits.t -> string -> Tree.t
(** Parse a document held in memory.  @raise Error on malformed input,
    [Fault.Fault] on a limit or deadline violation. *)

val of_file : ?limits:Limits.t -> string -> Tree.t
(** Parse a document from a file.  @raise Error on malformed input,
    [Sys_error] if the file cannot be read, [Fault.Fault] on a limit or
    deadline violation. *)

val error_to_string : exn -> string option
(** [error_to_string e] renders [e] if it is an {!Error} or a
    [Fault.Fault], for human-facing diagnostics. *)
