(** Cooperative cancellation for query serving.

    A [Budget.t] is threaded into the evaluation hot loops
    ([Sketch.Eval], [Sketch.Expand], [Sketch.Topdown]) and tick-checked
    there: once the per-request deadline expires or a node/work cap is
    hit, the loops stop expanding and return the partial state built so
    far, flagged {e degraded}, instead of aborting.  This is what lets
    a long-lived server bound every request's latency and answer size
    while still returning a usable approximate answer (the paper's
    answers are approximate anyway — a truncated enumeration merely
    degrades the approximation).

    A budget is single-use and mutable; once stopped it stays stopped,
    so one budget shared across the stages of a request gives a single
    end-to-end cap.  Deadlines are on the {!Limits.now} clock and are
    polled only every few hundred ticks to keep the per-edge cost of
    checking negligible. *)

type stop =
  | Deadline  (** the absolute deadline passed *)
  | Node_cap  (** the answer/tree node cap was reached *)
  | Work_cap  (** the total work (tick) cap was reached *)
  | Heap_cap
      (** the GC-reported heap grew past the configured ceiling — the
          heap-pressure governor of long constructions, which degrades
          the operation instead of letting it OOM *)

type t

val create :
  ?deadline:float ->
  ?max_nodes:int ->
  ?max_work:int ->
  ?max_heap_words:int ->
  unit ->
  t
(** [deadline] is an absolute timestamp on the {!Limits.now} clock;
    [max_nodes] bounds {!take_node} reservations; [max_work] bounds
    {!tick}s; [max_heap_words] is a ceiling on [Gc.quick_stat]'s
    [heap_words], consulted at the same amortized cadence as the
    deadline.  Omitted bounds are unlimited. *)

val unlimited : unit -> t
(** A budget that never stops.  A fresh value each call — budgets are
    mutable. *)

val of_limits : ?max_nodes:int -> ?max_work:int -> ?max_heap_words:int -> Limits.t -> t
(** Adopt the deadline of a {!Limits.t}. *)

val with_timeout : float -> t
(** [with_timeout s] is a budget expiring [s] seconds from now. *)

val tick : t -> bool
(** Charge one unit of work; [true] iff evaluation may continue.
    After the first [false] every subsequent call is [false]. *)

val poll : t -> bool
(** Like {!tick} but always consults the clock — for coarse loops whose
    iterations are individually expensive (e.g. one construction split),
    where waiting {!tick}'s polling period would overshoot the
    deadline. *)

val take_node : t -> bool
(** Reserve one output node; [false] (and the budget stops with
    {!Node_cap}) when the cap is exhausted. *)

val alive : t -> bool
(** [true] iff the budget has not stopped.  Does not charge work or
    consult the clock. *)

val stopped : t -> stop option
(** Why the budget stopped, if it has. *)

val nodes : t -> int
(** Output nodes reserved so far. *)

val elapsed : t -> float
(** Seconds on the {!Limits.now} clock since the budget was created. *)

val stop_to_string : stop -> string
(** ["deadline"], ["nodes"], ["work"] or ["heap"] — the [reason] token
    of the serving protocol's degraded responses. *)
