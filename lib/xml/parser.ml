exception Error of { line : int; column : int; message : string }

(* Hand-rolled scanner over a string.  Position tracking is maintained
   lazily: we record only the byte offset and recover line/column when
   raising.  Element structure is parsed with an explicit stack (not
   recursive descent) so nesting depth is bounded by [Limits.max_depth],
   never by the OCaml call stack. *)

type state = {
  src : string;
  mutable pos : int;
  limits : Limits.t;
  mutable elements : int;
  start : float;
}

let position st upto =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min upto (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = position st st.pos in
  raise (Error { line; column; message })

let limit_fail what actual limit =
  raise (Fault.Fault (Limit_exceeded { what; actual; limit }))

let eof st = st.pos >= String.length st.src

let peek st = st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let expect st c =
  if eof st || peek st <> c then
    fail st (Printf.sprintf "expected %C" c)
  else advance st

let scan_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Skip until the terminator string [stop] is found (inclusive). *)
let skip_until st stop =
  let n = String.length stop in
  let limit = String.length st.src - n in
  let rec search i =
    if i > limit then fail st (Printf.sprintf "unterminated construct, expected %S" stop)
    else if String.sub st.src i n = stop then st.pos <- i + n
    else search (i + 1)
  in
  search st.pos

(* Attributes: name = "value" | name = 'value'.  Values are discarded. *)
let skip_attributes st =
  let rec loop () =
    skip_spaces st;
    if eof st then fail st "unterminated start tag"
    else
      match peek st with
      | '>' | '/' -> ()
      | _ ->
        let _name = scan_name st in
        skip_spaces st;
        if (not (eof st)) && peek st = '=' then begin
          advance st;
          skip_spaces st;
          (match if eof st then '\000' else peek st with
          | ('"' | '\'') as quote ->
            advance st;
            (try
               while peek st <> quote do
                 advance st
               done
             with Invalid_argument _ -> fail st "unterminated attribute value");
            advance st
          | _ -> fail st "expected a quoted attribute value")
        end;
        loop ()
  in
  loop ()

(* Skip non-element content between tags: text, comments, CDATA and
   processing instructions.  Returns when positioned at a '<' that opens
   an element start/end tag, or at end of input.  Iterative: a run of a
   million consecutive comments must not consume stack. *)
let skip_misc st =
  let continue_ = ref true in
  while !continue_ do
    while (not (eof st)) && peek st <> '<' do
      advance st
    done;
    if eof st || st.pos + 1 >= String.length st.src then continue_ := false
    else
      match st.src.[st.pos + 1] with
      | '!' ->
        if
          st.pos + 3 < String.length st.src
          && String.sub st.src st.pos 4 = "<!--"
        then begin
          st.pos <- st.pos + 4;
          skip_until st "-->"
        end
        else if
          st.pos + 8 < String.length st.src
          && String.sub st.src st.pos 9 = "<![CDATA["
        then begin
          st.pos <- st.pos + 9;
          skip_until st "]]>"
        end
        else begin
          (* DOCTYPE or other declaration: skip to the matching '>'.
             Internal subsets in brackets are handled by nesting count. *)
          let depth = ref 0 in
          (try
             while
               not (peek st = '>' && !depth = 0)
             do
               (match peek st with
               | '[' -> incr depth
               | ']' -> decr depth
               | _ -> ());
               advance st
             done
           with Invalid_argument _ -> fail st "unterminated declaration");
          advance st
        end
      | '?' ->
        st.pos <- st.pos + 2;
        skip_until st "?>"
      | _ -> continue_ := false
  done

(* One frame per open element; [children] accumulates in reverse. *)
type frame = {
  name : string;
  mutable children : Tree.t list;
}

let budget_element st =
  st.elements <- st.elements + 1;
  if st.elements > st.limits.Limits.max_elements then
    limit_fail "elements" st.elements st.limits.Limits.max_elements;
  if st.elements land 511 = 0 && Limits.expired st.limits then
    raise
      (Fault.Fault
         (Deadline { stage = "XML parse"; elapsed = Limits.now () -. st.start }))

(* Parse the document's single element tree, positioned at its '<'.
   Explicit-stack loop: the outer iteration consumes one start tag (or
   self-closing element), the inner one pops any run of close tags. *)
let parse_document st =
  let stack = ref [] in
  let depth = ref 0 in
  let finished = ref None in
  let complete tree =
    match !stack with
    | [] -> finished := Some tree
    | f :: _ -> f.children <- tree :: f.children
  in
  while !finished = None do
    (* positioned at the '<' of a start tag *)
    expect st '<';
    let name = scan_name st in
    skip_attributes st;
    if eof st then fail st "unterminated start tag";
    budget_element st;
    if peek st = '/' then begin
      advance st;
      expect st '>';
      complete (Tree.leaf (Label.of_string name))
    end
    else begin
      expect st '>';
      stack := { name; children = [] } :: !stack;
      incr depth;
      if !depth > st.limits.Limits.max_depth then
        limit_fail "depth" !depth st.limits.Limits.max_depth
    end;
    (* pop close tags until the next start tag, or the root closes *)
    let scanning = ref true in
    while !scanning && !finished = None do
      skip_misc st;
      match !stack with
      | [] -> assert false (* [complete] on the root sets [finished] *)
      | f :: rest ->
        if eof st then fail st (Printf.sprintf "missing </%s>" f.name)
        else if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/'
        then begin
          st.pos <- st.pos + 2;
          let close = scan_name st in
          if close <> f.name then
            fail st
              (Printf.sprintf "mismatched tags: <%s> closed by </%s>" f.name close);
          skip_spaces st;
          expect st '>';
          stack := rest;
          decr depth;
          complete (Tree.make (Label.of_string f.name) (List.rev f.children))
        end
        else scanning := false
    done
  done;
  Option.get !finished

let of_string_res ?(limits = Limits.default) src =
  if String.length src > limits.Limits.max_bytes then
    Stdlib.Error
      (Fault.Limit_exceeded
         { what = "bytes"; actual = String.length src; limit = limits.Limits.max_bytes })
  else begin
    let st = { src; pos = 0; limits; elements = 0; start = Limits.now () } in
    match
      skip_misc st;
      if eof st then fail st "no root element";
      let root = parse_document st in
      skip_misc st;
      if not (eof st) then fail st "content after the root element";
      root
    with
    | root -> Ok root
    | exception Error { line; column; message } ->
      Stdlib.Error (Fault.Parse_error { line; column; message })
    | exception Fault.Fault f -> Stdlib.Error f
  end

let raise_fault = function
  | Fault.Parse_error { line; column; message } ->
    raise (Error { line; column; message })
  | f -> raise (Fault.Fault f)

let of_string ?limits src =
  match of_string_res ?limits src with
  | Ok t -> t
  | Stdlib.Error f -> raise_fault f

let of_file_res ?(limits = Limits.default) path =
  match
    Io_fault.tap_retrying Io_fault.Open ~path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > limits.Limits.max_bytes then
          Stdlib.Error
            (Fault.Limit_exceeded
               { what = "bytes"; actual = len; limit = limits.Limits.max_bytes })
        else begin
          Io_fault.tap_retrying Io_fault.Read ~path;
          (* an injected short read truncates the document text, which
             must then fail as a structured parse fault — exactly what
             a file observed mid-write would do *)
          of_string_res ~limits
            (really_input_string ic (Io_fault.cap Io_fault.Read ~path len))
        end)
  with
  | r -> r
  | exception Sys_error message -> Stdlib.Error (Fault.Io_error { path; message })
  | exception End_of_file ->
    Stdlib.Error (Fault.Io_error { path; message = "unexpected end of file" })
  | exception Unix.Unix_error (e, fn, _) ->
    Stdlib.Error
      (Fault.Io_error { path; message = fn ^ ": " ^ Unix.error_message e })

let of_file ?limits path =
  match of_file_res ?limits path with
  | Ok t -> t
  | Stdlib.Error (Fault.Io_error { message; _ }) -> raise (Sys_error message)
  | Stdlib.Error f -> raise_fault f

let error_to_string = function
  | Error { line; column; message } ->
    Some (Fault.to_string (Parse_error { line; column; message }))
  | Fault.Fault f -> Some (Fault.to_string f)
  | _ -> None
