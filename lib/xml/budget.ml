type stop = Deadline | Node_cap | Work_cap

(* Deadline polling period: [Limits.now] costs a system call, so the
   clock is consulted only every [clock_period] ticks.  [clock_due]
   starts saturated so an already-expired deadline is caught on the
   very first tick. *)
let clock_period = 512

type t = {
  deadline : float option;
  max_nodes : int;
  max_work : int;
  mutable nodes : int;
  mutable work : int;
  mutable clock_due : int;
  mutable stopped : stop option;
  started : float;
}

let create ?deadline ?(max_nodes = max_int) ?(max_work = max_int) () =
  {
    deadline;
    max_nodes;
    max_work;
    nodes = 0;
    work = 0;
    clock_due = clock_period;
    stopped = None;
    started = Limits.now ();
  }

let unlimited () = create ()

let of_limits ?max_nodes ?max_work (l : Limits.t) =
  create ?deadline:l.deadline ?max_nodes ?max_work ()

let with_timeout seconds =
  create ~deadline:(Limits.now () +. seconds) ()

let stopped b = b.stopped

let alive b = b.stopped = None

let check_clock b =
  b.clock_due <- 0;
  match b.deadline with
  | Some d when Limits.now () > d -> b.stopped <- Some Deadline
  | _ -> ()

let tick b =
  match b.stopped with
  | Some _ -> false
  | None ->
    b.work <- b.work + 1;
    if b.work > b.max_work then b.stopped <- Some Work_cap
    else begin
      b.clock_due <- b.clock_due + 1;
      if b.clock_due >= clock_period then check_clock b
    end;
    b.stopped = None

let poll b =
  match b.stopped with
  | Some _ -> false
  | None ->
    b.work <- b.work + 1;
    if b.work > b.max_work then b.stopped <- Some Work_cap else check_clock b;
    b.stopped = None

let take_node b =
  match b.stopped with
  | Some _ -> false
  | None ->
    if b.nodes >= b.max_nodes then begin
      b.stopped <- Some Node_cap;
      false
    end
    else begin
      b.nodes <- b.nodes + 1;
      true
    end

let nodes b = b.nodes

let elapsed b = Limits.now () -. b.started

let stop_to_string = function
  | Deadline -> "deadline"
  | Node_cap -> "nodes"
  | Work_cap -> "work"
