type stop = Deadline | Node_cap | Work_cap | Heap_cap

(* Deadline polling period: [Limits.now] costs a system call, so the
   clock is consulted only every [clock_period] ticks.  [clock_due]
   starts saturated so an already-expired deadline is caught on the
   very first tick. *)
let clock_period = 512

type t = {
  deadline : float option;
  max_nodes : int;
  max_work : int;
  max_heap_words : int;
  mutable nodes : int;
  mutable work : int;
  mutable clock_due : int;
  mutable stopped : stop option;
  started : float;
}

let create ?deadline ?(max_nodes = max_int) ?(max_work = max_int)
    ?(max_heap_words = max_int) () =
  {
    deadline;
    max_nodes;
    max_work;
    max_heap_words;
    nodes = 0;
    work = 0;
    clock_due = clock_period;
    stopped = None;
    started = Limits.now ();
  }

let unlimited () = create ()

let of_limits ?max_nodes ?max_work ?max_heap_words (l : Limits.t) =
  create ?deadline:l.deadline ?max_nodes ?max_work ?max_heap_words ()

let with_timeout seconds =
  create ~deadline:(Limits.now () +. seconds) ()

let stopped b = b.stopped

let alive b = b.stopped = None

(* The heap ceiling is checked together with the clock (same amortized
   cadence).  [Gc.quick_stat] reads counters without walking the heap,
   so the combined check stays cheap; major_words approximates live +
   garbage, which is the right signal for "about to OOM" — degradation
   must trigger before collection pressure turns into an allocation
   failure. *)
let check_clock b =
  b.clock_due <- 0;
  (match b.deadline with
  | Some d when Limits.now () > d -> b.stopped <- Some Deadline
  | _ -> ());
  if b.stopped = None && b.max_heap_words < max_int then begin
    let st = Gc.quick_stat () in
    if st.Gc.heap_words > b.max_heap_words then b.stopped <- Some Heap_cap
  end

let tick b =
  match b.stopped with
  | Some _ -> false
  | None ->
    b.work <- b.work + 1;
    if b.work > b.max_work then b.stopped <- Some Work_cap
    else begin
      b.clock_due <- b.clock_due + 1;
      if b.clock_due >= clock_period then check_clock b
    end;
    b.stopped = None

let poll b =
  match b.stopped with
  | Some _ -> false
  | None ->
    b.work <- b.work + 1;
    if b.work > b.max_work then b.stopped <- Some Work_cap else check_clock b;
    b.stopped = None

let take_node b =
  match b.stopped with
  | Some _ -> false
  | None ->
    if b.nodes >= b.max_nodes then begin
      b.stopped <- Some Node_cap;
      false
    end
    else begin
      b.nodes <- b.nodes + 1;
      true
    end

let nodes b = b.nodes

let elapsed b = Limits.now () -. b.started

let stop_to_string = function
  | Deadline -> "deadline"
  | Node_cap -> "nodes"
  | Work_cap -> "work"
  | Heap_cap -> "heap"
