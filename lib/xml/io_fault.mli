(** Deterministic I/O fault injection.

    One seeded, process-global shim over the Unix I/O operations the
    repository funnels its durability through — file opens and reads
    ({!Parser}, {!Sketch.Serialize}, the serving catalog), writes,
    fsyncs and renames ({!Sketch.Serialize.save_atomic}, checkpoint
    journals), and socket accepts (the serving front end).  Production
    code calls {!tap}/{!cap} at each such site; with no plan {!arm}ed
    the calls are a single [ref] read, so the shim costs nothing
    outside tests.

    A plan is a list of {!rule}s: per-{!site} (optionally per-path)
    probabilities of injecting [EINTR], [EIO], [ENOSPC], a short
    read/write, or latency.  Draws come from one [Random.State] seeded
    at {!arm} time, so a failing run is replayed exactly by re-arming
    with the same seed — the substrate behind [test_chaos.ml] and the
    store-crash suites, replacing the per-subsystem truncation loops
    they used to hand-roll. *)

type site =
  | Read  (** reading file or socket bytes *)
  | Write  (** writing file or socket bytes *)
  | Open  (** opening a file or scanning a directory *)
  | Close  (** closing a written file — the last moment a buffered
              write (or a temp-file cleanup) can fail *)
  | Stat  (** fingerprinting a path ([stat]) — what the catalog scan
             and the scrubber walk the directory with *)
  | Accept  (** accepting a socket connection *)
  | Connect  (** initiating a socket connection (the client and the
                replica coordinator dialing a server) *)
  | Fsync  (** flushing written data to disk *)
  | Rename  (** atomically publishing a temp file *)
  | Fork  (** forking a worker process (build jobs, the query pool) *)

val site_name : site -> string

type fault =
  | Eintr  (** transient: well-behaved call sites retry *)
  | Eio  (** hard I/O error *)
  | Enospc  (** disk full; on {!cap}-using write sites the write is
               also cut short first *)
  | Eagain  (** resource exhaustion — what [fork] raises when the
               process table (or memory) is full; supervisors must
               shed load and back off, not crash *)
  | Short  (** short read/write: {!cap} returns a random prefix
              length *)
  | Short_at of int  (** short read/write cut at a fixed byte offset —
                        the deterministic replacement for
                        truncate-at-every-offset test loops *)
  | Delay of float  (** sleep this many seconds, then proceed *)

type rule = {
  site : site;
  fault : fault;
  prob : float;  (** chance per tap/cap, in [0, 1] *)
  limit : int;  (** injections of this rule before it goes inert *)
  path_substring : string option;
      (** only fire when the site's path contains this *)
}

val rule : ?prob:float -> ?limit:int -> ?path:string -> site -> fault -> rule
(** Rule builder: [prob] defaults to [1.0], [limit] to unlimited,
    [path] (a substring filter on the site's path) to none. *)

val arm : ?seed:int -> rule list -> unit
(** Install a plan (replacing any previous one).  [seed] defaults to
    [0]; equal seeds and rule lists replay equal injection sequences
    for equal tap/cap call sequences. *)

val disarm : unit -> unit
(** Remove the plan; all taps become no-ops again. *)

val armed : unit -> bool

val seed : unit -> int option
(** The armed plan's seed, for error messages ("rerun with seed N"). *)

val injected : unit -> int
(** Total faults injected since {!arm} (0 when disarmed). *)

val tap : site -> path:string -> unit
(** The injection point: may raise [Unix.Unix_error] ([EINTR], [EIO],
    [ENOSPC] or [EAGAIN] with the site name as the function field),
    sleep, or return unit.  Thread-safe; never raises when
    disarmed. *)

val tap_retrying : site -> path:string -> unit
(** {!tap}, absorbing injected [EINTR] with a bounded retry loop — the
    standard restart-on-EINTR discipline, for call sites whose real
    syscalls cannot themselves return [EINTR] (buffered channel I/O).
    Sites with their own retry logic (the accept loop) use bare
    {!tap} so injection exercises that logic instead. *)

val cap : site -> path:string -> int -> int
(** [cap site ~path len] is the length an armed [Short]/[Short_at]
    rule cuts an [len]-byte transfer to (in [[0, len]]); [len] when
    nothing fires.  Call sites transfer that many bytes, modelling a
    short read (a torn file observed mid-write) or a short write (a
    tear the crash-safety machinery must keep invisible). *)
