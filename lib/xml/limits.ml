type t = {
  max_bytes : int;
  max_depth : int;
  max_elements : int;
  deadline : float option;
}

let default =
  {
    max_bytes = 256 * 1024 * 1024;
    max_depth = 200_000;
    max_elements = 50_000_000;
    deadline = None;
  }

let unlimited =
  { max_bytes = max_int; max_depth = max_int; max_elements = max_int; deadline = None }

(* Sys.time is processor time: monotone, dependency-free, and immune to
   wall-clock adjustments.  Deadlines guard against runaway computation,
   not calendar scheduling, so CPU seconds are the right unit. *)
let now () = Sys.time ()

let with_timeout seconds l = { l with deadline = Some (now () +. seconds) }

let expired l =
  match l.deadline with None -> false | Some d -> now () > d

(* Shared by the CLI (--budget, --max-bytes) and the bench harness
   (--budgets): one place decides what "10KB" means. *)
let parse_bytes s =
  let s = String.trim s in
  let num, mult =
    let up = String.uppercase_ascii s in
    if Filename.check_suffix up "KB" then
      (String.sub s 0 (String.length s - 2), 1024)
    else if Filename.check_suffix up "MB" then
      (String.sub s 0 (String.length s - 2), 1024 * 1024)
    else if Filename.check_suffix up "GB" then
      (String.sub s 0 (String.length s - 2), 1024 * 1024 * 1024)
    else if Filename.check_suffix up "B" then
      (String.sub s 0 (String.length s - 1), 1)
    else (s, 1)
  in
  match int_of_string_opt (String.trim num) with
  | Some n when n > 0 && n <= max_int / mult -> Ok (n * mult)
  | Some n when n > 0 -> Error (Printf.sprintf "size %S overflows" s)
  | _ -> Error (Printf.sprintf "bad size %S (try 10KB, 2MB or 4096)" s)
