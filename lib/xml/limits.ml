type t = {
  max_bytes : int;
  max_depth : int;
  max_elements : int;
  deadline : float option;
}

let default =
  {
    max_bytes = 256 * 1024 * 1024;
    max_depth = 200_000;
    max_elements = 50_000_000;
    deadline = None;
  }

let unlimited =
  { max_bytes = max_int; max_depth = max_int; max_elements = max_int; deadline = None }

(* Sys.time is processor time: monotone, dependency-free, and immune to
   wall-clock adjustments.  Deadlines guard against runaway computation,
   not calendar scheduling, so CPU seconds are the right unit. *)
let now () = Sys.time ()

let with_timeout seconds l = { l with deadline = Some (now () +. seconds) }

let expired l =
  match l.deadline with None -> false | Some d -> now () > d
