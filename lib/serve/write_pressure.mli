(** Write-side admission control — the ingestion counterpart of the
    {!Overload} brownout controller.

    Folds the write path's leading indicators (WAL bytes outstanding,
    memtable depth, flush/compaction lag) into one pressure number and
    a disk-free watermark check, and degrades in stages:

    - [Ok] — admit unconditionally;
    - [Paced] — admit with an advisory [backpressure=<ms>] pacing hint
      on the ack;
    - [Shedding] — refuse with [error ingest-deferred retry-after=<ms>]
      (nothing retained, so a client retry is safe);
    - [Readonly] — disk free under the hard watermark: refuse every
      mutation while reads, scrub and repair keep working.

    The default disk probe shells out to POSIX [df -P -k] (OCaml's
    Unix module has no statvfs), rate-limited and cached; tests inject
    a deterministic probe via [disk_free]. *)

type state = Ok | Paced | Shedding | Readonly

val state_token : state -> string
(** ["ok" | "paced" | "shedding" | "readonly"] — the token HEALTH/STAT
    report and the coordinator prober parses. *)

type config = {
  wal_bytes_high : int;
      (** WAL bytes outstanding that alone mean pressure 1.0 *)
  depth_high : int;  (** memtable records that alone mean pressure 1.0 *)
  lag_high : float;  (** seconds of flush lag that alone mean 1.0 *)
  pace_at : float;  (** pressure where advisory pacing starts *)
  shed_at : float;  (** pressure where writes are refused *)
  pace_ms : int;  (** base advisory pacing hint, scaled by pressure *)
  retry_after_ms : int;  (** base shed retry-after, scaled by pressure *)
  disk_soft : int;
      (** free bytes under which writes shed; 0 disables the check *)
  disk_hard : int;
      (** free bytes under which all mutations are refused; 0 disables *)
  probe_interval : float;  (** minimum seconds between disk probes *)
}

val default_config : config

type t

val create :
  ?config:config -> ?disk_free:(unit -> int option) -> dir:string -> unit -> t
(** [create ~dir ()] watches the filesystem holding [dir].  [disk_free]
    overrides the probe (tests); a probe returning [None] fails open —
    the watermark cannot trip on a broken probe.
    @raise Invalid_argument on a nonsensical config. *)

val observe : t -> wal_bytes:int -> depth:int -> lag:float -> unit
(** Fold in the current write-path signals (summed across engines) and
    re-derive the state.  The inputs are integrals — they age
    monotonically until a flush drains them — so no smoothing or dwell
    is applied; the state follows the signals directly. *)

val admit : t -> [ `Admit of int option | `Defer of int | `Readonly ]
(** The admission verdict for one mutation: admit (with an optional
    advisory pacing hint in ms), defer (with a retry-after in ms), or
    refuse outright (hard watermark). *)

val retry_hint : t -> int
(** The shed retry-after in ms at the current pressure — what an
    admitted-then-ENOSPC'd append attaches to its [ingest-deferred]
    answer. *)

val state : t -> state

val pressure : t -> float

val disk_free : t -> int option
(** Last probed free bytes (probing now if the cache is stale);
    [None] when both watermarks are disabled or the probe failed. *)

val min_free : t -> int
(** The hard watermark, for sharing with repair's ENOSPC preflight —
    an installation that would push free space under it is deferred. *)

val describe : t -> string
