(* Supervised background TSBUILD jobs.

   One forked worker per job: the child parses the document, runs the
   checkpointed build (journaling into a hidden [.ckpt] file next to
   the catalog), writes the final snapshot atomically into the catalog
   directory — hot-reload publishes it — and exits with a structured
   code.  The parent never blocks on a build: it reaps exits with
   [WNOHANG] during {!poll}, restarts crashed workers from their last
   checkpoint under capped exponential backoff, and renders every
   worker fate as a job state the protocol can report. *)

type config = {
  limits : Xmldoc.Limits.t;
  max_jobs : int;
  max_restarts : int;
  backoff_base : float;
  backoff_cap : float;
  checkpoint_every : int;
  max_heap_words : int;
}

let default_config =
  {
    limits = Xmldoc.Limits.default;
    max_jobs = 4;
    max_restarts = 3;
    backoff_base = 0.25;
    backoff_cap = 5.0;
    checkpoint_every = 64;
    max_heap_words = max_int;
  }

type state =
  | Running of { pid : int; attempt : int }
  | Backoff of { attempt : int; not_before : float; reason : string }
  | Done of { degraded : bool }
  | Failed of { reason : string }
  | Cancelled

(* What the forked worker does: build a synopsis, scrub the catalog
   directory (re-verify every snapshot, publish a report file), or
   compact a synopsis's delta levels into one ({!Ingest.compact}). *)
type kind =
  | Build
  | Scrub
  | Compact

type job = {
  kind : kind;
  name : string;
  xml : string;
  budget : int;
  mutable state : state;
}

type t = {
  config : config;
  dir : string;
  jobs : (string, job) Hashtbl.t;
  log : string -> unit;
  (* All public operations serialize on this lock: the pool-era server
     polls the supervisor from every connection thread concurrently
     (HEALTH and PING included), no longer under one process-wide
     request lock.  Children never touch it — they are forked from
     inside the critical section and run [worker_main] only. *)
  lock : Mutex.t;
}

let create ?(config = default_config) ?(log = prerr_endline) dir =
  { config; dir; jobs = Hashtbl.create 8; log; lock = Mutex.create () }

let log_event t fmt = Printf.ksprintf t.log fmt

let snapshot_path t name = Filename.concat t.dir (name ^ Catalog.snapshot_extension)

(* Hidden and not [.ts]-suffixed: invisible to the catalog scan. *)
let checkpoint_path t name = Filename.concat t.dir ("." ^ name ^ ".ckpt")

let state_token = function
  | Running _ -> "running"
  | Backoff _ -> "backoff"
  | Done { degraded = false } -> "done"
  | Done { degraded = true } -> "done-degraded"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let list_u t =
  List.sort
    (fun a b -> String.compare a.name b.name)
    (Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [])

let running_count_u t =
  Hashtbl.fold
    (fun _ j acc -> match j.state with Running _ -> acc + 1 | _ -> acc)
    t.jobs 0

let find t name = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.jobs name)

let list t = Mutex.protect t.lock (fun () -> list_u t)

let running_count t = Mutex.protect t.lock (fun () -> running_count_u t)

(* Wall clock, not [Limits.now]: backoff schedules real elapsed time,
   and the children burning CPU are other processes anyway. *)
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* The worker (runs in the forked child)                               *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 built, [degraded_exit] built but degraded (budget not
   reached before a limit tripped), 1-5 the [Fault.exit_code] taxonomy.
   Anything else — and any signal — is a crash the supervisor may
   retry. *)
let degraded_exit = Xmldoc.Fault.degraded_exit_code

(* The scrub worker: re-walk the catalog directory, re-verify every
   snapshot end to end, publish the findings atomically as the hidden
   report file.  The parent (which owns the resident catalog) replays
   the report as quarantine decisions on its next poll.  Exit 0 even
   when corruption was found — corruption is the report's payload, not
   a worker failure; only an unscannable directory or an unwritable
   report is a fault. *)
let scrub_worker_main t =
  match Scrub.scan ~limits:t.config.limits t.dir with
  | Error f -> Xmldoc.Fault.exit_code f
  | Ok reports -> (
    match Scrub.write_report t.dir reports with
    | Error f -> Xmldoc.Fault.exit_code f
    | Ok () -> 0)

(* The compaction worker: merge the synopsis's delta levels into one
   compressed level and swap the manifest atomically ({!Ingest.compact}).
   [job.xml] carries the synopsis name, [job.budget] the per-level byte
   budget.  A crashed worker restarts from the compression checkpoint;
   a concurrent flush having consumed the levels makes the whole run a
   clean no-op (exit 0), never a fault. *)
let compact_worker_main t job =
  match
    Ingest.compact ~limits:t.config.limits ~dir:t.dir ~name:job.xml
      ~level_budget:job.budget
      ~checkpoint:(checkpoint_path t job.name)
      ()
  with
  | Error f -> Xmldoc.Fault.exit_code f
  | Ok degraded -> if degraded then degraded_exit else 0

(* Returns the exit code; the caller [_exit]s with it (never [exit]:
   at_exit handlers inherited from the parent must not run). *)
let build_worker_main t job =
  let result =
    match Xmldoc.Parser.of_file_res ~limits:t.config.limits job.xml with
    | Error f -> Error f
    | Ok doc ->
      let stable = Sketch.Stable.build doc in
      let fingerprint = Sketch.Build.Checkpoint.fingerprint stable in
      let ckpt = checkpoint_path t job.name in
      let build_fresh () =
        Sketch.Build.build_checkpointed_res ~limits:t.config.limits
          ~max_heap_words:t.config.max_heap_words
          ~checkpoint_every:t.config.checkpoint_every ~checkpoint:ckpt stable
          ~budget:job.budget
      in
      (* A restarted worker resumes from its predecessor's journal —
         but only a journal provably from the same build (source
         fingerprint and budget both match).  A corrupt, torn or alien
         checkpoint falls back to a fresh build rather than failing:
         the checkpoint is an accelerator, never a dependency. *)
      (match Sketch.Build.Checkpoint.load_res ckpt with
      | Ok { meta; _ }
        when meta.source = fingerprint && meta.budget = job.budget ->
        (match
           Sketch.Build.resume_res ~limits:t.config.limits
             ~max_heap_words:t.config.max_heap_words
             ~checkpoint_every:t.config.checkpoint_every ckpt
         with
        | Ok outcome -> Ok outcome
        | Error _ -> build_fresh ())
      | Ok _ | Error _ -> build_fresh ())
  in
  match result with
  | Error f -> Xmldoc.Fault.exit_code f
  | Ok { Sketch.Build.synopsis; degraded } -> (
    match Sketch.Serialize.save_atomic (snapshot_path t job.name) synopsis with
    | Error f -> Xmldoc.Fault.exit_code f
    | Ok () ->
      (try Sys.remove (checkpoint_path t job.name) with Sys_error _ -> ());
      if degraded then degraded_exit else 0)

let worker_main t job =
  match job.kind with
  | Build -> build_worker_main t job
  | Scrub -> scrub_worker_main t
  | Compact -> compact_worker_main t job

(* Forking can itself fail — a full process table (EAGAIN) or no memory
   for the child (ENOMEM) is exactly the overload a supervisor exists
   to survive.  The failure is returned to the caller (which sheds or
   backs off) instead of escaping as an exception that would tear down
   the request loop.  The {!Xmldoc.Io_fault.Fork} tap lets tests inject
   the failure deterministically. *)
let spawn t job ~attempt =
  match
    Xmldoc.Io_fault.tap Xmldoc.Io_fault.Fork ~path:job.name;
    Unix.fork ()
  with
  | exception Unix.Unix_error (e, _, _) ->
    log_event t "event=job-fork-failed name=%s errno=%s" job.name
      (Unix.error_message e);
    Error e
  | 0 ->
    (* In the child only this thread survives; never touch the parent's
       locks or buffered channels, and leave through [Unix._exit] so no
       inherited at_exit work (channel flushing above all) runs twice. *)
    let code = match worker_main t job with code -> code | exception _ -> 125 in
    Unix._exit code
  | pid ->
    job.state <- Running { pid; attempt };
    log_event t "event=job-start name=%s pid=%d attempt=%d budget=%d xml=%s"
      job.name pid attempt job.budget job.xml;
    Ok ()

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)
(* ------------------------------------------------------------------ *)

let remove_checkpoint t name =
  let path = checkpoint_path t name in
  try
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path;
    Sys.remove path
  with Sys_error _ | Unix.Unix_error _ -> ()

let backoff_delay config attempt =
  Float.min config.backoff_cap (config.backoff_base *. (2. ** float_of_int attempt))

let crash t job ~attempt ~reason =
  if attempt >= t.config.max_restarts then begin
    job.state <-
      Failed
        {
          reason =
            Printf.sprintf "%s (gave up after %d restarts)" reason
              t.config.max_restarts;
        };
    remove_checkpoint t job.name;
    log_event t "event=job-failed name=%s reason=%S" job.name reason
  end
  else begin
    let delay = backoff_delay t.config attempt in
    job.state <-
      Backoff { attempt = attempt + 1; not_before = now () +. delay; reason };
    log_event t "event=job-crash name=%s reason=%S retry_in=%.2fs" job.name
      reason delay
  end

let reap t job =
  match job.state with
  | Running { pid; attempt } -> (
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> ()
    | _, Unix.WEXITED 0 ->
      job.state <- Done { degraded = false };
      log_event t "event=job-done name=%s" job.name
    | _, Unix.WEXITED code when code = degraded_exit ->
      job.state <- Done { degraded = true };
      log_event t "event=job-done name=%s degraded=yes" job.name
    | _, Unix.WEXITED code when code >= 1 && code <= 5 ->
      (* A structured fault is deterministic (bad XML, corrupt input,
         budget overflow): restarting cannot help. *)
      job.state <-
        Failed { reason = Printf.sprintf "worker failed with fault code %d" code };
      remove_checkpoint t job.name;
      log_event t "event=job-failed name=%s code=%d" job.name code
    | _, Unix.WEXITED code ->
      crash t job ~attempt ~reason:(Printf.sprintf "worker exit code %d" code)
    | _, Unix.WSIGNALED signal ->
      crash t job ~attempt ~reason:(Printf.sprintf "worker killed by signal %d" signal)
    | _, Unix.WSTOPPED signal ->
      (* a stopped child is going nowhere; treat as a crash so the
         build makes progress from its checkpoint in a new worker *)
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      crash t job ~attempt ~reason:(Printf.sprintf "worker stopped by signal %d" signal)
    | exception Unix.Unix_error (ECHILD, _, _) ->
      (* someone else reaped it (should not happen): call it a crash *)
      crash t job ~attempt ~reason:"worker vanished"
    | exception Unix.Unix_error (e, _, _) ->
      crash t job ~attempt ~reason:(Unix.error_message e))
  | Backoff { attempt; not_before; _ } ->
    if now () >= not_before && running_count_u t < t.config.max_jobs then (
      match spawn t job ~attempt with
      | Ok () -> ()
      | Error e ->
        (* fork failed under pressure: consume a restart attempt so a
           persistently un-forkable job eventually settles as [Failed]
           instead of backing off forever *)
        crash t job ~attempt ~reason:("fork: " ^ Unix.error_message e))
  | Done _ | Failed _ | Cancelled -> ()

let poll_u t = List.iter (fun job -> reap t job) (list_u t)

let poll t = Mutex.protect t.lock (fun () -> poll_u t)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type submit_error =
  | Busy
  | Overloaded

let submit t ~name ~xml ~budget =
  Mutex.protect t.lock @@ fun () ->
  poll_u t;
  let stale_ok =
    match Hashtbl.find_opt t.jobs name with
    | Some { state = Running _ | Backoff _; _ } -> false
    | Some _ | None -> true
  in
  if not stale_ok then Error Busy
  else if running_count_u t >= t.config.max_jobs then Error Overloaded
  else begin
    let job = { kind = Build; name; xml; budget; state = Cancelled (* placeholder *) } in
    Hashtbl.replace t.jobs name job;
    (* a fresh submission must not resume a previous generation's
       journal for a possibly different document *)
    remove_checkpoint t name;
    match spawn t job ~attempt:0 with
    | Ok () -> Ok job
    | Error _ ->
      (* could not fork: shed the submission as overload — the client
         retries later — and forget the job so a resubmit is fresh *)
      Hashtbl.remove t.jobs name;
      Error Overloaded
  end

(* The reserved scrub-job name.  Dot-prefixed, which
   [Protocol.valid_job_name] rejects, so no client SUBMIT/CANCEL can
   collide with (or kill) the maintenance job. *)
let scrub_name = ".scrub"

let submit_scrub t =
  Mutex.protect t.lock @@ fun () ->
  poll_u t;
  let stale_ok =
    match Hashtbl.find_opt t.jobs scrub_name with
    | Some { state = Running _ | Backoff _; _ } -> false
    | Some _ | None -> true
  in
  if not stale_ok then Error Busy
  else begin
    (* No [max_jobs] gate: the scrubber is supervisor-internal
       maintenance, not client load — a store saturated with builds
       must still detect rot. *)
    let job =
      { kind = Scrub; name = scrub_name; xml = ""; budget = 0; state = Cancelled }
    in
    Hashtbl.replace t.jobs scrub_name job;
    match spawn t job ~attempt:0 with
    | Ok () -> Ok job
    | Error _ ->
      Hashtbl.remove t.jobs scrub_name;
      Error Overloaded
  end

(* Reserved compaction-job names, one per synopsis.  Dot-prefixed like
   {!scrub_name} for the same reasons: clients cannot submit, cancel,
   or even see them. *)
let compact_name name = ".compact-" ^ name

let submit_compact t ~name ~level_budget =
  Mutex.protect t.lock @@ fun () ->
  poll_u t;
  let jname = compact_name name in
  let stale_ok =
    match Hashtbl.find_opt t.jobs jname with
    | Some { state = Running _ | Backoff _; _ } -> false
    | Some _ | None -> true
  in
  if not stale_ok then Error Busy
  else begin
    (* No [max_jobs] gate (like scrub): compaction is maintenance the
       store needs to bound its level stack, not client load.  And
       unlike {!submit}, a stale checkpoint is deliberately KEPT — the
       compression step resumes a journal from a previous server
       generation when its fingerprint still matches the level set. *)
    let job =
      { kind = Compact; name = jname; xml = name; budget = level_budget;
        state = Cancelled }
    in
    Hashtbl.replace t.jobs jname job;
    match spawn t job ~attempt:0 with
    | Ok () -> Ok job
    | Error _ ->
      Hashtbl.remove t.jobs jname;
      Error Overloaded
  end

(* Server drain: running workers are SIGKILLed and reaped so the dying
   process leaves no orphans — but unlike {!cancel}, their checkpoint
   journals are KEPT.  A drain is a restart in progress: a resubmitted
   build on the next server generation resumes from the journal
   instead of starting over. *)
let drain t =
  Mutex.protect t.lock @@ fun () ->
  let killed = ref 0 in
  List.iter
    (fun job ->
      match job.state with
      | Running { pid; _ } ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        incr killed;
        job.state <- Cancelled;
        log_event t "event=job-drain name=%s pid=%d" job.name pid
      | Backoff _ -> job.state <- Cancelled
      | Done _ | Failed _ | Cancelled -> ())
    (list_u t);
  !killed

let cancel t name =
  Mutex.protect t.lock @@ fun () ->
  poll_u t;
  match Hashtbl.find_opt t.jobs name with
  | None -> None
  | Some job ->
    (match job.state with
    | Running { pid; _ } ->
      (* SIGKILL, not SIGTERM: workers are pure computation with only
         atomic writes, so there is nothing graceful to wait for, and
         the reap below must not block on a shutdown handler. *)
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      job.state <- Cancelled;
      remove_checkpoint t name;
      log_event t "event=job-cancel name=%s pid=%d" name pid
    | Backoff _ ->
      job.state <- Cancelled;
      remove_checkpoint t name;
      log_event t "event=job-cancel name=%s" name
    | Done _ | Failed _ | Cancelled -> ());
    Some job
