type config = {
  limits : Xmldoc.Limits.t;
  deadline : float option;
  max_answer_nodes : int;
  max_work : int;
  max_inflight : int;
  auto_reload : bool;
  jobs : Jobs.config;
}

let default_config =
  {
    limits = Xmldoc.Limits.default;
    deadline = Some 5.0;
    max_answer_nodes = 100_000;
    max_work = 10_000_000;
    max_inflight = 8;
    auto_reload = true;
    jobs = Jobs.default_config;
  }

type stats = {
  mutable served : int;
  mutable errors : int;
  mutable degraded : int;
}

type t = {
  config : config;
  catalog : Catalog.t;
  jobs : Jobs.t;
  log : string -> unit;
  stats : stats;
  mutable req_id : int;
}

let stats t = t.stats

let catalog t = t.catalog

let jobs t = t.jobs

let log_event t fmt = Printf.ksprintf t.log fmt

let log_catalog_events t events =
  List.iter
    (fun event ->
      match event with
      | Catalog.Loaded name -> log_event t "event=load name=%s" name
      | Catalog.Reloaded name -> log_event t "event=reload name=%s" name
      | Catalog.Removed name -> log_event t "event=remove name=%s" name
      | Catalog.Quarantined (name, fault) ->
        log_event t "event=quarantine name=%s class=%s msg=%S" name
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault)
      | Catalog.Scan_error fault ->
        log_event t "event=scan-error class=%s msg=%S"
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault))
    events

let create ?(log = prerr_endline) ?(config = default_config) dir =
  let t =
    {
      config;
      catalog = Catalog.create ~limits:config.limits dir;
      jobs = Jobs.create ~config:config.jobs ~log dir;
      log;
      stats = { served = 0; errors = 0; degraded = 0 };
      req_id = 0;
    }
  in
  log_catalog_events t (Catalog.refresh t.catalog);
  t

(* Per-request budget: the request's own [-deadline]/[-max-nodes] can
   tighten the server's caps, never widen them. *)
let budget_for t (opts : Protocol.opts) =
  let relative =
    match (t.config.deadline, opts.deadline) with
    | None, req -> req
    | (Some _ as cfg), None -> cfg
    | Some cfg, Some req -> Some (Float.min cfg req)
  in
  let deadline = Option.map (fun s -> Xmldoc.Limits.now () +. s) relative in
  let max_nodes =
    match opts.max_nodes with
    | Some n -> min n t.config.max_answer_nodes
    | None -> t.config.max_answer_nodes
  in
  Xmldoc.Budget.create ?deadline ~max_nodes ~max_work:t.config.max_work ()

let resolve t name =
  match Catalog.find t.catalog name with
  | Some entry -> Ok entry
  | None -> (
    match Catalog.fault_for t.catalog name with
    | Some fault -> Error (Protocol.fault_line fault)
    | None ->
      Error
        (Protocol.error_line ~cls:"not-found"
           (Printf.sprintf "no synopsis %S in the catalog" name)))

let yes_no b = if b then "yes" else "no"

let handle_request t (req : Protocol.request) =
  match req with
  | Ping -> ("pong", false)
  | Quit -> ("bye", true)
  | List ->
    let names = Catalog.names t.catalog in
    ( Printf.sprintf "ok catalog n=%d names=%s quarantined=%d"
        (List.length names) (String.concat "," names)
        (List.length (Catalog.quarantined t.catalog)),
      false )
  | Reload { force } ->
    let events = Catalog.refresh ~force t.catalog in
    log_catalog_events t events;
    let count p = List.length (List.filter p events) in
    ( Printf.sprintf "ok reload loaded=%d reloaded=%d quarantined=%d removed=%d"
        (count (function Catalog.Loaded _ -> true | _ -> false))
        (count (function Catalog.Reloaded _ -> true | _ -> false))
        (count (function Catalog.Quarantined _ -> true | _ -> false))
        (count (function Catalog.Removed _ -> true | _ -> false)),
      false )
  | Stat name -> (
    (* Quarantine is a reportable condition, not an error: operators
       STAT a name precisely to learn why it is not (or no longer)
       serving fresh data.  A name can be both resident and quarantined
       — the previous good version keeps serving while the latest
       on-disk file is rejected. *)
    let quarantine =
      match Catalog.fault_for t.catalog name with
      | Some fault ->
        Printf.sprintf "quarantined=yes reason=%s" (Xmldoc.Fault.class_name fault)
      | None -> "quarantined=no"
    in
    match Catalog.find t.catalog name with
    | Some entry ->
      let s = entry.synopsis in
      ( Printf.sprintf "ok stat name=%s classes=%d edges=%d bytes=%d stable=%s %s"
          name
          (Sketch.Synopsis.num_nodes s)
          (Sketch.Synopsis.num_edges s)
          (Sketch.Synopsis.size_bytes s)
          (yes_no (Sketch.Synopsis.is_count_stable s))
          quarantine,
        false )
    | None when Catalog.fault_for t.catalog name <> None ->
      (Printf.sprintf "ok stat name=%s resident=no %s" name quarantine, false)
    | None ->
      ( Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no synopsis %S in the catalog" name),
        false ))
  | Query (opts, name, q) -> (
    match resolve t name with
    | Error line -> (line, false)
    | Ok entry ->
      let budget = budget_for t opts in
      let ans = Sketch.Eval.eval ~budget entry.synopsis q in
      let est = Sketch.Selectivity.of_answer q ans in
      if ans.degraded then t.stats.degraded <- t.stats.degraded + 1;
      ( Printf.sprintf "ok query degraded=%s est=%g classes=%d empty=%s"
          (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
          est
          (Sketch.Synopsis.num_nodes ans.synopsis)
          (yes_no ans.empty),
        false ))
  | Answer (opts, name, q) -> (
    match resolve t name with
    | Error line -> (line, false)
    | Ok entry ->
      (* One budget spans evaluation and expansion: the request's caps
         are end-to-end, whichever stage exhausts them. *)
      let budget = budget_for t opts in
      let ans = Sketch.Eval.eval ~budget entry.synopsis q in
      if ans.empty then begin
        if ans.degraded then t.stats.degraded <- t.stats.degraded + 1;
        ( Printf.sprintf "ok answer degraded=%s empty=yes"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget)),
          false )
      end
      else begin
        let p = Sketch.Expand.partial ~budget ans.synopsis in
        let degraded_or_truncated =
          Xmldoc.Budget.stopped budget <> None || p.truncated
        in
        if degraded_or_truncated then t.stats.degraded <- t.stats.degraded + 1;
        ( Printf.sprintf "ok answer degraded=%s truncated=%s nodes=%d tree=%s"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
            (yes_no p.truncated) p.nodes
            (Protocol.one_line (Xmldoc.Printer.to_string p.tree)),
          false )
      end)
  | Build { name; xml; budget } -> (
    match Jobs.submit t.jobs ~name ~xml ~budget with
    | Ok _ -> (Printf.sprintf "ok build name=%s state=running" name, false)
    | Error Jobs.Busy ->
      ( Protocol.error_line ~cls:"busy"
          (Printf.sprintf "job %S is already running" name),
        false )
    | Error Jobs.Overloaded ->
      ( Protocol.error_line ~cls:"overloaded"
          (Printf.sprintf "%d builds already running" (Jobs.running_count t.jobs)),
        false ))
  | Jobs ->
    Jobs.poll t.jobs;
    let jobs = Jobs.list t.jobs in
    let cell (j : Jobs.job) =
      Printf.sprintf " %s=%s" j.name (Jobs.state_token j.state)
    in
    ( Printf.sprintf "ok jobs n=%d%s" (List.length jobs)
        (String.concat "" (List.map cell jobs)),
      false )
  | Cancel name -> (
    match Jobs.cancel t.jobs name with
    | Some job ->
      ( Printf.sprintf "ok cancel name=%s state=%s" name
          (Jobs.state_token job.state),
        false )
    | None ->
      ( Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no job %S" name),
        false ))

(* The supervision boundary: whatever a request does — malformed
   syntax, a missing synopsis, an evaluator invariant violation — the
   server answers with a single structured line and keeps serving.
   Only the channel itself failing ends the loop. *)
let handle_line t line =
  t.req_id <- t.req_id + 1;
  t.stats.served <- t.stats.served + 1;
  (* Advance the build supervisor on every request: reap finished
     workers ([WNOHANG] — never blocks a response) and restart any
     whose backoff has elapsed. *)
  (try Jobs.poll t.jobs with _ -> ());
  match Protocol.parse line with
  | Error reason ->
    t.stats.errors <- t.stats.errors + 1;
    (Protocol.error_line ~cls:"bad-request" reason, false)
  | Ok req -> (
    if
      t.config.auto_reload
      && (match req with Ping | Quit | Reload _ -> false | _ -> true)
    then log_catalog_events t (Catalog.refresh t.catalog);
    match handle_request t req with
    | response -> response
    | exception e ->
      t.stats.errors <- t.stats.errors + 1;
      let msg = Printexc.to_string e in
      log_event t "event=request-error id=%d class=internal msg=%S" t.req_id msg;
      (Protocol.error_line ~cls:"internal" msg, false))

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
      let response, quit = handle_line t line in
      (match
         output_string oc response;
         output_char oc '\n';
         flush oc
       with
      | () -> if not quit then loop ()
      | exception Sys_error _ -> ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

module Admission = struct
  type t = {
    mutex : Mutex.t;
    capacity : int;
    mutable in_flight : int;
  }

  let create capacity = { mutex = Mutex.create (); capacity; in_flight = 0 }

  let try_acquire a =
    Mutex.protect a.mutex (fun () ->
        if a.in_flight >= a.capacity then false
        else begin
          a.in_flight <- a.in_flight + 1;
          true
        end)

  let release a =
    Mutex.protect a.mutex (fun () -> a.in_flight <- max 0 (a.in_flight - 1))

  let in_flight a = Mutex.protect a.mutex (fun () -> a.in_flight)

  let capacity a = a.capacity
end

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let serve_socket ?(backlog = 64) t ~path =
  (* A client that disconnects mid-response must surface as a
     [Sys_error] (EPIPE) on the write — which the per-connection
     handlers catch — not as SIGPIPE, whose default action kills the
     whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  let admission = Admission.create t.config.max_inflight in
  (* Label interning, the catalog tables and the stats record are
     shared mutable state: request processing is serialized under one
     lock; the threads buy overlap of connection I/O, and admission
     control sheds connections beyond [max_inflight] instead of letting
     them queue without bound. *)
  let process_lock = Mutex.create () in
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let connection fd =
    Fun.protect
      ~finally:(fun () ->
        Admission.release admission;
        close_quietly fd)
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | exception Sys_error _ -> ()
          | line ->
            let response, quit =
              Mutex.protect process_lock (fun () -> handle_line t line)
            in
            (match
               output_string oc response;
               output_char oc '\n';
               flush oc
             with
            | () -> if not quit then loop ()
            | exception Sys_error _ -> ())
        in
        loop ())
  in
  log_event t "event=listening socket=%s max_inflight=%d" path
    t.config.max_inflight;
  let rec accept_loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
      (* the connection died before we got it, or a signal landed:
         nothing to serve, keep listening *)
      accept_loop ()
    | exception Unix.Unix_error (((EMFILE | ENFILE | ENOMEM) as e), _, _) ->
      (* fd/memory exhaustion — exactly the overload admission control
         exists for.  Back off briefly so in-flight connections can
         drain and release descriptors, then keep listening. *)
      log_event t "event=accept-error errno=%s" (Unix.error_message e);
      Thread.delay 0.05;
      accept_loop ()
    | fd, _ ->
      if Admission.try_acquire admission then
        ignore (Thread.create connection fd : Thread.t)
      else begin
        (* shed load immediately rather than tying up a worker *)
        let oc = Unix.out_channel_of_descr fd in
        (try
           output_string oc
             (Protocol.error_line ~cls:"overloaded"
                (Printf.sprintf "%d connections already in flight"
                   t.config.max_inflight)
             ^ "\n");
           flush oc
         with Sys_error _ -> ());
        close_quietly fd;
        Mutex.protect process_lock (fun () ->
            t.stats.errors <- t.stats.errors + 1)
      end;
      accept_loop ()
  in
  accept_loop ()
