type config = {
  limits : Xmldoc.Limits.t;
  deadline : float option;
  max_answer_nodes : int;
  max_work : int;
  max_inflight : int;
  auto_reload : bool;
  drain_deadline : float;
  jobs : Jobs.config;
  pool : Pool.config;
  brownout : Overload.config option;
  scrub_interval : float;
      (* seconds between background integrity scrubs; 0 disables the
         scrubber thread (SCRUB stays available on demand) *)
  peers : string list;
      (* socket paths of replica peers to pull repairs from *)
  tmp_sweep_age : float;
      (* minimum age before an orphaned [.tmp] staging file is swept —
         must exceed the longest plausible atomic-write window, since
         live build workers stage under the same naming *)
  repair_timeout : float;  (* per-peer-connection budget of a repair pull *)
  flush_records : int;
      (* memtable records per flushed delta level: an INGEST that fills
         the memtable triggers an inline flush *)
  level_budget : int;
      (* byte budget a delta level (and a compacted level) is
         compressed under *)
  compact_levels : int;
      (* level count that triggers a background compaction job; 0
         disables auto-compaction (flushes still accumulate levels) *)
  write_pressure : Write_pressure.config;
      (* write-side admission control: pacing/shedding thresholds and
         the disk watermarks ([serve --disk-watermark] sets the hard
         one) *)
  disk_free : (unit -> int option) option;
      (* test override of the disk-free probe; [None] uses [df] *)
}

let default_config =
  {
    limits = Xmldoc.Limits.default;
    deadline = Some 5.0;
    max_answer_nodes = 100_000;
    max_work = 10_000_000;
    max_inflight = 8;
    auto_reload = true;
    drain_deadline = 5.0;
    jobs = Jobs.default_config;
    pool = Pool.default_config;
    brownout = None;
    scrub_interval = 0.0;
    peers = [];
    tmp_sweep_age = 60.0;
    repair_timeout = 5.0;
    flush_records = 64;
    level_budget = 4096;
    compact_levels = 4;
    write_pressure = Write_pressure.default_config;
    disk_free = None;
  }

type stats = {
  mutable served : int;
  mutable errors : int;
  mutable degraded : int;
  mutable refused_deadline : int;
      (* requests refused by deadline-aware admission: their remaining
         deadline was below the coarsest-tier latency estimate *)
}

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

module Admission = struct
  type t = {
    mutex : Mutex.t;
    capacity : int;
    mutable in_flight : int;
  }

  let create capacity = { mutex = Mutex.create (); capacity; in_flight = 0 }

  let try_acquire a =
    Mutex.protect a.mutex (fun () ->
        if a.in_flight >= a.capacity then false
        else begin
          a.in_flight <- a.in_flight + 1;
          true
        end)

  let release a =
    Mutex.protect a.mutex (fun () -> a.in_flight <- max 0 (a.in_flight - 1))

  let in_flight a = Mutex.protect a.mutex (fun () -> a.in_flight)

  let capacity a = a.capacity
end

type t = {
  config : config;
  catalog : Catalog.t;
  jobs : Jobs.t;
  pool : Pool.t;
  log : string -> unit;
  stats : stats;
  (* The stats record and [req_id] are bumped from every connection
     thread; nothing else shares this lock. *)
  stats_lock : Mutex.t;
  (* With the pool disabled, QUERY/ANSWER evaluate in-process and are
     serialized under this lock — evaluation is the only work whose
     thread-safety we don't vouch for per-subsystem.  Pool workers need
     no lock at all (separate processes), and no other verb takes it:
     PING/HEALTH/STAT never queue behind a slow query. *)
  eval_lock : Mutex.t;
  mutable req_id : int;
  (* Lifecycle: [draining] is flipped by {!request_drain} (usually from
     a SIGTERM/SIGINT handler) and only ever goes false -> true; the
     accept loop, the channel loops and HEALTH all read it.  A plain
     mutable bool is enough — flag stores are atomic in OCaml, and
     every reader tolerates seeing the flip one iteration late. *)
  mutable draining : bool;
  mutable catalog_ok : bool;
  mutable admission : Admission.t option;
  (* The brownout controller, present iff [config.brownout] is set: the
     read path feeds it latencies and consults its level. *)
  overload : Overload.t option;
  (* Live ingestion engines ({!Ingest}), one per name with INGEST
     state: reopened from on-disk WAL/level state at startup, created
     lazily on first INGEST otherwise.  The lock guards the table only
     — each engine serializes its own operations internally. *)
  engines : (string, Ingest.t) Hashtbl.t;
  engines_lock : Mutex.t;
  (* Write-side admission control ({!Write_pressure}): every mutation
     verb consults it before touching an engine; HEALTH/STAT expose its
     state for routing. *)
  pressure : Write_pressure.t;
}

let stats t = t.stats

let catalog t = t.catalog

let jobs t = t.jobs

let pool t = t.pool

let overload t = t.overload

let write_pressure t = t.pressure

let bump f t = Mutex.protect t.stats_lock (fun () -> f t.stats)

let draining t = t.draining

let log_event t fmt = Printf.ksprintf t.log fmt

let request_drain t =
  if not t.draining then begin
    t.draining <- true;
    log_event t "event=drain-requested"
  end

(* Signal-handler-safe: [request_drain] only stores a flag and calls
   the log callback; the default stderr logger allocates, which OCaml
   handlers permit (they run between bytecode/native safepoints, not
   in async-signal context). *)
let install_drain_signals t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  (try Sys.set_signal Sys.sigterm handle
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint handle
  with Invalid_argument _ | Sys_error _ -> ()

let log_catalog_events t events =
  (* Readiness tracking: any scan error marks the catalog unhealthy
     until a later refresh scans cleanly. *)
  t.catalog_ok <-
    not (List.exists (function Catalog.Scan_error _ -> true | _ -> false) events);
  List.iter
    (fun event ->
      match event with
      | Catalog.Loaded name -> log_event t "event=load name=%s" name
      | Catalog.Reloaded name -> log_event t "event=reload name=%s" name
      | Catalog.Removed name -> log_event t "event=remove name=%s" name
      | Catalog.Quarantined (name, fault) ->
        log_event t "event=quarantine name=%s class=%s msg=%S" name
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault)
      | Catalog.Scan_error fault ->
        log_event t "event=scan-error class=%s msg=%S"
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault))
    events

let create ?(log = prerr_endline) ?(config = default_config) dir =
  (* The pool always follows the server's own caps; only the
     pool-specific knobs (size, watchdog, quarantine, chaos) come from
     [config.pool]. *)
  let pool_config =
    {
      config.pool with
      Pool.limits = config.limits;
      deadline = config.deadline;
      max_answer_nodes = config.max_answer_nodes;
      max_work = config.max_work;
      auto_reload = config.auto_reload;
    }
  in
  let t =
    {
      config;
      catalog = Catalog.create ~limits:config.limits dir;
      jobs = Jobs.create ~config:config.jobs ~log dir;
      pool = Pool.create ~log pool_config dir;
      log;
      stats = { served = 0; errors = 0; degraded = 0; refused_deadline = 0 };
      stats_lock = Mutex.create ();
      eval_lock = Mutex.create ();
      req_id = 0;
      draining = false;
      catalog_ok = true;
      admission = None;
      overload =
        Option.map (fun config -> Overload.create ~config ()) config.brownout;
      engines = Hashtbl.create 8;
      engines_lock = Mutex.create ();
      pressure =
        Write_pressure.create ~config:config.write_pressure
          ?disk_free:config.disk_free ~dir ();
    }
  in
  (* Startup fsck: the initial refresh above already re-validated every
     snapshot end to end (quarantining failures); the sweep clears
     [.tmp] staging files orphaned by a previous generation's crash
     mid-atomic-write.  Age-gated even at startup — another server may
     share the directory and be mid-publish right now. *)
  log_catalog_events t (Catalog.refresh t.catalog);
  List.iter
    (fun file -> log_event t "event=tmp-swept file=%s" file)
    (Scrub.sweep_tmp ~max_age:config.tmp_sweep_age dir);
  (* Ingestion recovery: reopen every name with live WAL/level state
     and immediately flush whatever the WAL replayed — acknowledged
     records must be serveable the moment the restart completes, not
     after [flush_records] more arrivals.  An engine that fails to
     open is logged and skipped; its WAL is untouched on disk, so
     nothing acknowledged is lost — the next restart retries. *)
  List.iter
    (fun name ->
      let root_label =
        Option.map
          (fun (e : Catalog.entry) ->
            Sketch.Synopsis.label e.synopsis e.synopsis.Sketch.Synopsis.root)
          (Catalog.find t.catalog name)
      in
      match
        Ingest.open_ ~limits:config.limits ?root_label ~dir ~name
          ~level_budget:config.level_budget ~flush_records:config.flush_records
          ()
      with
      | Error f ->
        log_event t "event=ingest-open-failed name=%s class=%s msg=%S" name
          (Xmldoc.Fault.class_name f)
          (Xmldoc.Fault.to_string f)
      | Ok eng ->
        if Ingest.replayed_torn eng then
          log_event t "event=wal-torn-tail name=%s" name;
        Hashtbl.replace t.engines name eng;
        if Ingest.depth eng > 0 then (
          match Ingest.flush eng with
          | Ok true ->
            log_event t "event=ingest-replay-flush name=%s flushed=%d" name
              (Ingest.flushed_seq eng)
          | Ok false -> ()
          | Error f ->
            (* records stay in the WAL and memtable; the next flush
               retries *)
            log_event t "event=ingest-flush-failed name=%s class=%s msg=%S"
              name
              (Xmldoc.Fault.class_name f)
              (Xmldoc.Fault.to_string f)))
    (Ingest.discover ~dir);
  if Hashtbl.length t.engines > 0 then
    log_catalog_events t (Catalog.refresh t.catalog);
  t

(* In-process evaluation caps ({!Query_exec.budget_for} merges in the
   request's own options).  No heap ceiling here: a heap cap is only
   meaningful in a sacrificial pool worker whose heap is its own. *)
let caps t =
  {
    Query_exec.deadline = t.config.deadline;
    max_answer_nodes = t.config.max_answer_nodes;
    max_work = t.config.max_work;
    max_heap_words = max_int;
  }

let resolve t name =
  match Catalog.find t.catalog name with
  | Some entry -> Ok entry
  | None -> (
    match Catalog.fault_for t.catalog name with
    | Some fault -> Error (Protocol.fault_line fault)
    | None ->
      Error
        (Protocol.error_line ~cls:"not-found"
           (Printf.sprintf "no synopsis %S in the catalog" name)))

let yes_no b = if b then "yes" else "no"

let find_engine t name =
  Mutex.protect t.engines_lock (fun () -> Hashtbl.find_opt t.engines name)

(* The INGEST path creates engines lazily: the first ingest for a name
   opens (and creates) its WAL.  The delta root label comes from the
   base snapshot when one is resident, so level forests graft under the
   right document root. *)
let engine_for t name =
  Mutex.protect t.engines_lock @@ fun () ->
  match Hashtbl.find_opt t.engines name with
  | Some eng -> Ok eng
  | None -> (
    let root_label =
      Option.map
        (fun (e : Catalog.entry) ->
          Sketch.Synopsis.label e.synopsis e.synopsis.Sketch.Synopsis.root)
        (Catalog.find t.catalog name)
    in
    match
      Ingest.open_ ~limits:t.config.limits ?root_label
        ~dir:(Catalog.dir t.catalog) ~name
        ~level_budget:t.config.level_budget
        ~flush_records:t.config.flush_records ()
    with
    | Error f -> Error f
    | Ok eng ->
      Hashtbl.replace t.engines name eng;
      Ok eng)

let all_engines t =
  Mutex.protect t.engines_lock (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.engines [])

(* Did a pool worker's response carry a partial answer?  The parent
   only sees the rendered line, so it recovers the fact from the
   protocol fields it would have rendered itself. *)
let response_degraded resp =
  let contains needle =
    let nl = String.length needle and hl = String.length resp in
    let rec go i = i + nl <= hl && (String.sub resp i nl = needle || go (i + 1)) in
    go 0
  in
  String.length resp >= 3
  && String.sub resp 0 3 = "ok "
  && ((not (contains " degraded=no")) || contains " truncated=yes")

(* The read path.  [line] is the raw request line — with the pool
   enabled it is forwarded verbatim to a worker (which re-parses it),
   so the two paths cannot disagree about the request's meaning.  The
   parent still resolves the name first: not-found and quarantine
   answers come straight from the resident catalog without consuming a
   worker. *)
let exec_read t ~line kind (opts : Protocol.opts) name q =
  match resolve t name with
  | Error l -> l
  | Ok entry ->
    let level =
      match t.overload with Some o -> Overload.level o | None -> 0
    in
    let refused =
      (* Deadline-aware admission: refuse only a request whose own
         remaining deadline is below the coarsest-tier latency estimate
         — it would burn a slot and still miss.  Requests without a
         deadline are always admitted. *)
      match (t.overload, opts.deadline) with
      | Some o, Some d -> not (Overload.admit o ~deadline:d)
      | _ -> false
    in
    if refused then begin
      bump (fun s -> s.refused_deadline <- s.refused_deadline + 1) t;
      Protocol.error_line ~cls:"overloaded"
        (Printf.sprintf
           "deadline %gs cannot be met even at the coarsest tier"
           (Option.value opts.deadline ~default:0.0))
    end
    else begin
      let queue_depth =
        match t.admission with Some a -> Admission.in_flight a | None -> 0
      in
      let _, tag = Query_exec.select_tier entry opts ~level in
      (* A single-tier entry's only rung IS its coarsest answer, so its
         latencies train the admission estimate too. *)
      let coarsest =
        match tag with None -> true | Some (k, n, _) -> k = n - 1
      in
      (* A name with live-ingested delta levels evaluates IN-PROCESS
         even with the pool enabled: the staleness bound tagged on the
         response is engine state (age of the oldest unflushed WAL
         record) that only the parent holds — a pool worker re-parsing
         the line against its own catalog could serve the levels but
         would have to invent the staleness. *)
      let levels =
        if Array.length entry.Catalog.levels = 0 then None
        else
          let staleness =
            match find_engine t name with
            | Some eng -> Ingest.staleness eng
            | None -> 0.
          in
          Some (entry.Catalog.levels, staleness)
      in
      let started = Xmldoc.Limits.now () in
      let response =
        if Pool.enabled t.pool && Option.is_none levels then begin
          (* Workers re-parse the raw line against their own catalog:
             the parent's degradation level travels in-band. *)
          let line = Protocol.with_tier line ~level in
          let response =
            Pool.exec t.pool ~name
              ~query_key:(Twig.Syntax.to_string q)
              ~opts ~line
          in
          if response_degraded response then
            bump (fun s -> s.degraded <- s.degraded + 1) t;
          response
        end
        else begin
          let budget = Query_exec.budget_for (caps t) opts in
          let synopsis, tier = Query_exec.select_tier entry opts ~level in
          let outcome =
            Mutex.protect t.eval_lock (fun () ->
                Query_exec.run_guarded ?tier ?levels ~budget kind synopsis q)
          in
          if outcome.degraded then
            bump (fun s -> s.degraded <- s.degraded + 1) t;
          outcome.response
        end
      in
      (match t.overload with
      | Some o ->
        Overload.observe ~coarsest o ~queue_depth
          ~latency:(Xmldoc.Limits.now () -. started)
      | None -> ());
      response
    end

(* ------------------------------------------------------------------ *)
(* Anti-entropy: scrub, sweep, repair                                  *)
(* ------------------------------------------------------------------ *)

let sweep_tmp t =
  let dir = Catalog.dir t.catalog in
  (* one age knob governs both: [.tmp] staging orphans and level delta
     files no manifest references *)
  let swept =
    Scrub.sweep_tmp ~max_age:t.config.tmp_sweep_age dir
    @ Scrub.sweep_levels ~max_age:t.config.tmp_sweep_age dir
  in
  List.iter (fun file -> log_event t "event=tmp-swept file=%s" file) swept;
  swept

(* The synchronous scrub (the SCRUB verb): scan, quarantine, sweep, all
   inline.  The background scrubber gets the same verdicts from a
   forked worker's report instead, so the serving threads never pay the
   re-read. *)
let scrub_now t =
  match Scrub.scan ~limits:t.config.limits (Catalog.dir t.catalog) with
  | Error f -> Error f
  | Ok reports ->
    let corrupt =
      List.filter_map
        (fun r ->
          match r.Scrub.f_result with
          | Ok _ -> None
          | Error fault -> Some (r.Scrub.f_name, fault))
        reports
    in
    List.iter
      (fun (name, fault) ->
        Catalog.quarantine_scrub t.catalog name fault;
        log_event t "event=scrub-quarantine name=%s class=%s msg=%S" name
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault))
      corrupt;
    let swept = sweep_tmp t in
    Ok (List.length reports, List.length corrupt, List.length swept)

(* Rehydrate a structured fault from a scrub report's (class, message)
   pair — only the class must round-trip exactly (STAT renders it as
   [reason=scrub-<class>]); positions are gone, the message is kept. *)
let fault_of_reported r_class r_msg =
  match r_class with
  | "parse" -> Xmldoc.Fault.Parse_error { line = 0; column = 0; message = r_msg }
  | "limit" -> Xmldoc.Fault.Limit_exceeded { what = r_msg; actual = 0; limit = 0 }
  | "deadline" -> Xmldoc.Fault.Deadline { stage = r_msg; elapsed = 0.0 }
  | "io" -> Xmldoc.Fault.Io_error { path = ""; message = r_msg }
  | "worker-crash" -> Xmldoc.Fault.Worker_crash { reason = r_msg }
  | _ -> Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message = r_msg }

(* Replay a finished scrub worker's report as quarantine decisions,
   then consume it.  Returns how many names were quarantined. *)
let apply_scrub_report t =
  let dir = Catalog.dir t.catalog in
  match Scrub.read_report dir with
  | None -> 0
  | Some lines ->
    let corrupt =
      List.filter_map
        (function
          | name, Scrub.Report_corrupt { r_class; r_msg } ->
            Some (name, fault_of_reported r_class r_msg)
          | _, Scrub.Report_ok _ -> None)
        lines
    in
    List.iter
      (fun (name, fault) ->
        Catalog.quarantine_scrub t.catalog name fault;
        log_event t "event=scrub-quarantine name=%s class=%s msg=%S" name
          (Xmldoc.Fault.class_name fault)
          (Xmldoc.Fault.to_string fault))
      corrupt;
    Scrub.remove_report dir;
    List.length corrupt

(* One repair pass against the configured peers, then a refresh so a
   freshly installed file (new inode) re-enters the catalog — clearing
   its quarantine — without waiting for the next client request. *)
let repair_now t =
  let outcomes =
    (* the repair preflight learns the same hard disk watermark the
       write path refuses under: an install must not consume the
       headroom the watermark protects *)
    Repair.sync ~limits:t.config.limits
      ~free:(fun () -> Write_pressure.disk_free t.pressure)
      ~min_free:(Write_pressure.min_free t.pressure)
      ~timeout:t.config.repair_timeout
      ~dir:(Catalog.dir t.catalog) ~peers:t.config.peers
      ~local_hashes:(Catalog.hashes t.catalog)
      ~quarantined:
        (List.map (fun q -> q.Catalog.q_name) (Catalog.quarantined t.catalog))
      ()
  in
  List.iter
    (fun outcome ->
      match outcome with
      | Repair.Repaired { name; peer; crc } ->
        log_event t "event=repair name=%s peer=%s crc=%s" name peer crc
      | Repair.Deferred { name; reason } ->
        log_event t "event=repair-deferred name=%s reason=%S" name reason
      | Repair.Failed { name; reason } ->
        log_event t "event=repair-failed name=%s reason=%S" name reason)
    outcomes;
  if outcomes <> [] then log_catalog_events t (Catalog.refresh t.catalog);
  outcomes

(* ------------------------------------------------------------------ *)
(* The write path: admission-controlled mutations                      *)
(* ------------------------------------------------------------------ *)

(* Feed the controller the summed write-path signals — WAL bytes
   outstanding, memtable depth, and the worst flush lag — so its next
   verdict reflects the whole server's backlog, not one engine's. *)
let observe_pressure t =
  let wal_bytes, depth, lag =
    List.fold_left
      (fun (w, d, s) eng ->
        ( w + Ingest.wal_bytes eng,
          d + Ingest.depth eng,
          Float.max s (Ingest.staleness eng) ))
      (0, 0, 0.) (all_engines t)
  in
  Write_pressure.observe t.pressure ~wal_bytes ~depth ~lag

(* After a durable append: inline flush when the memtable is full, then
   background compaction when the level stack is deep — throughput work
   that must never delay or fail the (already durable) ack. *)
let schedule_maintenance t name eng =
  if Ingest.should_flush eng then begin
    (match Ingest.flush eng with
    | Ok true ->
      log_event t "event=ingest-flush name=%s flushed=%d levels=%d" name
        (Ingest.flushed_seq eng) (Ingest.level_count eng)
    | Ok false -> ()
    | Error f ->
      (* records stay in the WAL and memtable; the next flush attempt
         retries *)
      log_event t "event=ingest-flush-failed name=%s class=%s msg=%S" name
        (Xmldoc.Fault.class_name f)
        (Xmldoc.Fault.to_string f));
    if
      t.config.compact_levels > 0
      && Ingest.level_count eng >= t.config.compact_levels
      && not (Ingest.compacting eng)
    then
      match
        Jobs.submit_compact t.jobs ~name ~level_budget:t.config.level_budget
      with
      | Ok _ ->
        (* flushes pause until the job is reaped: the memtable grows and
           staleness rises, but the level set the child is merging stays
           stable *)
        Ingest.set_compacting eng true;
        log_event t "event=compact-start name=%s levels=%d" name
          (Ingest.level_count eng)
      | Error _ -> ()
  end

(* The shared body of INGEST/DELETE/UPDATE: one write-pressure verdict,
   then the engine's durable append, the verb-tagged ack, and
   flush/compaction scheduling.  The deferred answers retain NOTHING —
   the client's resend is safe — which is what licenses the client
   library to honor [retry-after] automatically. *)
let exec_mutation t name verb op =
  observe_pressure t;
  match Write_pressure.admit t.pressure with
  | `Readonly ->
    Protocol.error_line ~cls:"readonly"
      (Printf.sprintf
         "disk free under the hard watermark: mutations refused (%s); reads, \
          scrub and repair still serve"
         (Write_pressure.describe t.pressure))
  | `Defer ms ->
    Protocol.error_line ~cls:"ingest-deferred"
      (Printf.sprintf "retry-after=%d %s" ms
         (Write_pressure.describe t.pressure))
  | `Admit pace -> (
    match engine_for t name with
    | Error f -> Protocol.fault_line f
    | Ok eng -> (
      let result =
        match op with
        | `Ingest xml -> Ingest.ingest eng ~xml
        | `Delete path -> Ingest.delete eng ~path
        | `Update (path, xml) -> Ingest.update eng ~path ~xml
      in
      match result with
      | Error `No_space ->
        (* nothing was retained — the WAL could not grow.  Same answer
           shape as a shed, because the client contract is the same:
           back off [retry-after], then resend. *)
        Protocol.error_line ~cls:"ingest-deferred"
          (Printf.sprintf "retry-after=%d WAL for %S cannot grow (no space)"
             (Write_pressure.retry_hint t.pressure)
             name)
      | Error (`Fault f) -> Protocol.fault_line f
      | Ok (seq, depth) ->
        (* The ack below is already durable (WAL appended and fsynced
           before the engine returned). *)
        let response =
          Printf.sprintf "ok %s name=%s seq=%d wal=%d%s" verb name seq depth
            (match pace with
            | Some ms -> Printf.sprintf " backpressure=%d" ms
            | None -> "")
        in
        schedule_maintenance t name eng;
        response))

let handle_request t ~line (req : Protocol.request) =
  match req with
  | Ping -> ("pong", false)
  | Quit -> ("bye", true)
  | Health ->
    (* Liveness vs readiness: answering at all is liveness; [ready=yes]
       additionally promises this server can take NEW traffic — not
       draining, catalog directory scanning cleanly, job supervisor
       responsive, connection pool not saturated.  A rolling restart
       SIGTERMs one server and waits for the next one's [ready=yes]
       before shifting traffic to it. *)
    let inflight, capacity =
      match t.admission with
      | Some a -> (Admission.in_flight a, Admission.capacity a)
      | None -> (0, t.config.max_inflight)
    in
    let jobs_ok = match Jobs.poll t.jobs with () -> true | exception _ -> false in
    let overloaded = inflight >= capacity in
    let reason =
      if t.draining then Some "draining"
      else if not t.catalog_ok then Some "catalog-scan-failed"
      else if not jobs_ok then Some "jobs-unresponsive"
      else if overloaded then Some "overloaded"
      else None
    in
    let pool_field =
      if Pool.enabled t.pool then begin
        let p = Pool.stats t.pool in
        Printf.sprintf " pool=%d/%d busy=%d kills=%d quarantined_queries=%d"
          p.Pool.live p.Pool.total p.Pool.busy p.Pool.kills p.Pool.quarantined
      end
      else ""
    in
    let load_field =
      (* [load=<level>] is the brownout level a coordinator's probe
         reads to rank browned-out members below Ready-and-cool ones;
         absent when brownout is off (probes treat missing as cool). *)
      match t.overload with
      | Some o -> Printf.sprintf " load=%d" (Overload.level o)
      | None -> ""
    in
    let hash_field =
      (* the group-divergence signal: the coordinator's prober compares
         members' values and marks the odd one out stale *)
      Printf.sprintf " catalog_hash=%s" (Catalog.combined_hash t.catalog)
    in
    let ingest_field =
      (* WAL depth and staleness bound across all engines — what the
         coordinator's prober reads to rank a lagging member below
         fresh ones.  Appended only when nonzero: servers without live
         ingestion keep the exact pre-ingest line. *)
      let depth, staleness =
        List.fold_left
          (fun (d, s) eng ->
            (d + Ingest.depth eng, Float.max s (Ingest.staleness eng)))
          (0, 0.) (all_engines t)
      in
      if depth = 0 then ""
      else Printf.sprintf " wal=%d staleness=%.3f" depth staleness
    in
    let write_field =
      (* Write-pressure state for routing: the coordinator's prober
         prefers members not shedding or readonly for INGEST --target
         suggestions.  Appended only when the server has live
         ingestion state or a disk watermark configured: servers with
         neither keep the exact pre-ingest line. *)
      let engines = all_engines t in
      let c = t.config.write_pressure in
      if
        engines = []
        && c.Write_pressure.disk_soft = 0
        && c.Write_pressure.disk_hard = 0
      then ""
      else begin
        observe_pressure t;
        let wal_bytes =
          List.fold_left (fun w eng -> w + Ingest.wal_bytes eng) 0 engines
        in
        Printf.sprintf " wal_bytes=%d%s write_state=%s" wal_bytes
          (match Write_pressure.disk_free t.pressure with
          | Some free -> Printf.sprintf " disk_free=%d" free
          | None -> "")
          (Write_pressure.state_token (Write_pressure.state t.pressure))
      end
    in
    ( Printf.sprintf
        "ok health live=yes ready=%s draining=%s catalog=%d quarantined=%d \
         inflight=%d/%d jobs=%d%s%s%s%s%s%s"
        (yes_no (reason = None))
        (yes_no t.draining)
        (Catalog.size t.catalog)
        (List.length (Catalog.quarantined t.catalog))
        inflight capacity
        (Jobs.running_count t.jobs)
        load_field pool_field hash_field ingest_field write_field
        (match reason with None -> "" | Some r -> " reason=" ^ r),
      false )
  | List ->
    let names = Catalog.names t.catalog in
    let hashes =
      String.concat ","
        (List.map
           (fun (n, crc, fp) -> Printf.sprintf "%s:%s:%s" n crc fp)
           (Catalog.hashes t.catalog))
    in
    ( Printf.sprintf "ok catalog n=%d names=%s quarantined=%d hashes=%s"
        (List.length names) (String.concat "," names)
        (List.length (Catalog.quarantined t.catalog))
        hashes,
      false )
  | Reload { force } ->
    let swept = sweep_tmp t in
    let events = Catalog.refresh ~force t.catalog in
    log_catalog_events t events;
    let count p = List.length (List.filter p events) in
    ( Printf.sprintf
        "ok reload loaded=%d reloaded=%d quarantined=%d removed=%d swept=%d \
         sweep_age=%g"
        (count (function Catalog.Loaded _ -> true | _ -> false))
        (count (function Catalog.Reloaded _ -> true | _ -> false))
        (count (function Catalog.Quarantined _ -> true | _ -> false))
        (count (function Catalog.Removed _ -> true | _ -> false))
        (List.length swept) t.config.tmp_sweep_age,
      false )
  | Stat name -> (
    (* Quarantine is a reportable condition, not an error: operators
       STAT a name precisely to learn why it is not (or no longer)
       serving fresh data.  A name can be both resident and quarantined
       — the previous good version keeps serving while the latest
       on-disk file is rejected. *)
    let quarantine =
      match Catalog.quarantine_for t.catalog name with
      | Some q ->
        Printf.sprintf "quarantined=yes reason=%s" (Catalog.quarantine_reason q)
      | None -> "quarantined=no"
    in
    (* Live-ingestion visibility: level stack, WAL depth, staleness
       bound.  Engine state wins when an engine is open (the catalog's
       view of [flushed] can lag one refresh behind); empty for names
       without ingestion state, keeping the pre-ingest line exact. *)
    let ingest =
      match find_engine t name with
      | Some eng when Ingest.level_count eng > 0 || Ingest.depth eng > 0 ->
        observe_pressure t;
        Printf.sprintf
          " levels=%d level_records=%d flushed=%d wal=%d staleness=%.3f \
           wal_bytes=%d%s write_state=%s"
          (Ingest.level_count eng) (Ingest.level_records eng)
          (Ingest.flushed_seq eng) (Ingest.depth eng) (Ingest.staleness eng)
          (Ingest.wal_bytes eng)
          (match Write_pressure.disk_free t.pressure with
          | Some free -> Printf.sprintf " disk_free=%d" free
          | None -> "")
          (Write_pressure.state_token (Write_pressure.state t.pressure))
      | Some _ -> ""
      | None -> (
        match Catalog.find t.catalog name with
        | Some e when Array.length e.Catalog.levels > 0 ->
          Printf.sprintf
            " levels=%d level_records=%d flushed=%d wal=0 staleness=0.000"
            (Array.length e.Catalog.levels)
            e.Catalog.level_records e.Catalog.flushed_seq
        | _ -> "")
    in
    match Catalog.find t.catalog name with
    | Some entry ->
      let s = entry.synopsis in
      ( Printf.sprintf
          "ok stat name=%s classes=%d edges=%d bytes=%d stable=%s %s%s" name
          (Sketch.Synopsis.num_nodes s)
          (Sketch.Synopsis.num_edges s)
          (Sketch.Synopsis.size_bytes s)
          (yes_no (Sketch.Synopsis.is_count_stable s))
          quarantine ingest,
        false )
    | None when Catalog.fault_for t.catalog name <> None ->
      ( Printf.sprintf "ok stat name=%s resident=no %s%s" name quarantine ingest,
        false )
    | None ->
      ( Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no synopsis %S in the catalog" name),
        false ))
  | Query (opts, name, q) -> (exec_read t ~line Query_exec.Query opts name q, false)
  | Answer (opts, name, q) ->
    (exec_read t ~line Query_exec.Answer opts name q, false)
  | Build { name; xml; budget } -> (
    match Jobs.submit t.jobs ~name ~xml ~budget with
    | Ok _ -> (Printf.sprintf "ok build name=%s state=running" name, false)
    | Error Jobs.Busy ->
      ( Protocol.error_line ~cls:"busy"
          (Printf.sprintf "job %S is already running" name),
        false )
    | Error Jobs.Overloaded ->
      ( Protocol.error_line ~cls:"overloaded"
          (Printf.sprintf "%d builds already running" (Jobs.running_count t.jobs)),
        false ))
  | Ingest { name; xml } -> (exec_mutation t name "ingest" (`Ingest xml), false)
  | Delete { name; path } ->
    (exec_mutation t name "delete" (`Delete path), false)
  | Update { name; path; xml } ->
    (exec_mutation t name "update" (`Update (path, xml)), false)
  | Jobs ->
    Jobs.poll t.jobs;
    (* dot-prefixed jobs (the reserved scrub job) are supervisor
       housekeeping, not client builds: hidden from the listing, just
       as dot-prefixed files are hidden from the catalog *)
    let jobs =
      List.filter
        (fun (j : Jobs.job) -> j.name = "" || j.name.[0] <> '.')
        (Jobs.list t.jobs)
    in
    let cell (j : Jobs.job) =
      Printf.sprintf " %s=%s" j.name (Jobs.state_token j.state)
    in
    ( Printf.sprintf "ok jobs n=%d%s" (List.length jobs)
        (String.concat "" (List.map cell jobs)),
      false )
  | Cancel name -> (
    match Jobs.cancel t.jobs name with
    | Some job ->
      ( Printf.sprintf "ok cancel name=%s state=%s" name
          (Jobs.state_token job.state),
        false )
    | None ->
      ( Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no job %S" name),
        false ))
  | Scrub -> (
    match scrub_now t with
    | Error f -> (Protocol.fault_line f, false)
    | Ok (checked, corrupt, swept) ->
      ( Printf.sprintf "ok scrub checked=%d corrupt=%d swept=%d" checked corrupt
          swept,
        false ))
  | Fetch name -> (
    let path =
      Filename.concat (Catalog.dir t.catalog) (name ^ Catalog.snapshot_extension)
    in
    if not (Sys.file_exists path) then
      ( Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no snapshot %S in the catalog" name),
        false )
    else
      match Sketch.Serialize.load_raw_res ~limits:t.config.limits path with
      | Error f -> (Protocol.fault_line f, false)
      | Ok text -> (
        (* verify before streaming: a repair source must never hand a
           peer the very rot it is trying to recover from *)
        match Scrub.verify_string ~limits:t.config.limits text with
        | Error f -> (Protocol.fault_line (Xmldoc.Fault.with_path path f), false)
        | Ok _ -> (Repair.render_fetch ~path ~name text, false)))
  | Repair ->
    if t.config.peers = [] then
      ( Protocol.error_line ~cls:"bad-request"
          "no repair peers configured (serve --peer)",
        false )
    else begin
      let outcomes = repair_now t in
      let count p = List.length (List.filter p outcomes) in
      let repaired = count (function Repair.Repaired _ -> true | _ -> false) in
      let deferred = count (function Repair.Deferred _ -> true | _ -> false) in
      let failed = count (function Repair.Failed _ -> true | _ -> false) in
      let counts =
        Printf.sprintf "attempted=%d repaired=%d deferred=%d failed=%d"
          (List.length outcomes) repaired deferred failed
      in
      if deferred > 0 then
        (* disk full: degrade, don't wedge — the clean copies are still
           on the peers, so the repair resumes when space frees up *)
        (Protocol.error_line ~cls:"repair-deferred" counts, false)
      else (Printf.sprintf "ok repair %s" counts, false)
    end

(* After {!Jobs.poll}: every engine whose compaction job reached a
   terminal state re-reads the manifest (the child swapped it — or
   died, or discarded a stale result as a no-op; the manifest is the
   only truth) and resumes flushing. *)
let reap_compactions t =
  List.iter
    (fun eng ->
      if Ingest.compacting eng then begin
        let terminal =
          match Jobs.find t.jobs (Jobs.compact_name (Ingest.name eng)) with
          | Some { Jobs.state = Jobs.Running _ | Jobs.Backoff _; _ } -> false
          | Some _ | None -> true
        in
        if terminal then begin
          (match Ingest.refresh eng with
          | Ok () -> ()
          | Error f ->
            log_event t "event=compact-refresh-failed name=%s class=%s msg=%S"
              (Ingest.name eng)
              (Xmldoc.Fault.class_name f)
              (Xmldoc.Fault.to_string f));
          Ingest.set_compacting eng false;
          log_event t "event=compact-done name=%s levels=%d" (Ingest.name eng)
            (Ingest.level_count eng)
        end
      end)
    (all_engines t)

(* The supervision boundary: whatever a request does — malformed
   syntax, a missing synopsis, an evaluator invariant violation — the
   server answers with a single structured line and keeps serving.
   Only the channel itself failing ends the loop. *)
let handle_line t line =
  let req_id =
    Mutex.protect t.stats_lock (fun () ->
        t.req_id <- t.req_id + 1;
        t.stats.served <- t.stats.served + 1;
        t.req_id)
  in
  (* Advance the build supervisor on every request: reap finished
     workers ([WNOHANG] — never blocks a response) and restart any
     whose backoff has elapsed; finished compactions re-enter their
     engines here too. *)
  (try
     Jobs.poll t.jobs;
     reap_compactions t
   with _ -> ());
  match Protocol.parse line with
  | Error reason ->
    bump (fun s -> s.errors <- s.errors + 1) t;
    (Protocol.error_line ~cls:"bad-request" reason, false)
  | Ok req -> (
    (* HEALTH must stay cheap and answerable even when the catalog
       directory is wedged, so it never triggers a rescan. *)
    if
      t.config.auto_reload
      && (match req with Ping | Health | Quit | Reload _ -> false | _ -> true)
    then log_catalog_events t (Catalog.refresh t.catalog);
    match handle_request t ~line req with
    | response -> response
    | exception e ->
      bump (fun s -> s.errors <- s.errors + 1) t;
      let msg = Printexc.to_string e in
      log_event t "event=request-error id=%d class=internal msg=%S" req_id msg;
      (Protocol.error_line ~cls:"internal" msg, false))

let serve_channels t ic oc =
  let rec loop () =
    if t.draining then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | line ->
        let response, quit = handle_line t line in
        (match
           output_string oc response;
           output_char oc '\n';
           flush oc
         with
        | () -> if not quit then loop ()
        | exception Sys_error _ -> ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The background scrubber                                             *)
(* ------------------------------------------------------------------ *)

(* One anti-entropy period: fork a scrub worker through the job
   supervisor (the re-read happens off the serving threads, in a
   process whose crash cannot take the server down), wait for it,
   replay its report as quarantines, sweep orphaned temp files, and —
   when peers are configured — pull repairs and converge.  Runs until
   drain when [scrub_interval > 0]. *)
let scrub_loop t =
  let interval = t.config.scrub_interval in
  let sleep_until wake =
    while (not t.draining) && Unix.gettimeofday () < wake do
      Thread.delay 0.02
    done
  in
  while not t.draining do
    sleep_until (Unix.gettimeofday () +. interval);
    if not t.draining then begin
      (match Jobs.submit_scrub t.jobs with
      | Error _ -> () (* a previous scrub still runs: skip this period *)
      | Ok job ->
        (* bound the wait so a wedged worker can never wedge the loop —
           an unfinished scrub's report simply isn't there to apply *)
        let give_up = Unix.gettimeofday () +. Float.max 5.0 interval in
        let rec await () =
          Jobs.poll t.jobs;
          match job.Jobs.state with
          | Jobs.Running _ | Jobs.Backoff _ ->
            if (not t.draining) && Unix.gettimeofday () < give_up then begin
              Thread.delay 0.02;
              await ()
            end
          | Jobs.Done _ | Jobs.Failed _ | Jobs.Cancelled -> ()
        in
        await ());
      let corrupt = apply_scrub_report t in
      let swept = sweep_tmp t in
      if corrupt > 0 || swept <> [] then
        log_event t "event=scrub corrupt=%d swept=%d" corrupt (List.length swept);
      if (not t.draining) && t.config.peers <> [] then
        ignore (repair_now t : Repair.outcome list)
    end
  done

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let serve_socket ?(backlog = 64) t ~path =
  (* A client that disconnects mid-response must surface as a
     [Sys_error] (EPIPE) on the write — which the per-connection
     handlers catch — not as SIGPIPE, whose default action kills the
     whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  let admission = Admission.create t.config.max_inflight in
  t.admission <- Some admission;
  (* No server-wide request lock: every shared subsystem (label
     interning, the catalog, the job supervisor, the stats record, the
     pool) carries its own internal lock, and in-process evaluation —
     the one slow operation — is serialized under [t.eval_lock] alone.
     PING/HEALTH/STAT on one connection therefore never queue behind a
     long QUERY on another; admission control still sheds connections
     beyond [max_inflight] instead of letting them pile up. *)
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  (* Registry of live connection fds: drain shuts their receive sides
     down so threads blocked in [input_line] see EOF and exit, while
     responses still in flight go out on the untouched send sides. *)
  let conn_lock = Mutex.create () in
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let register fd = Mutex.protect conn_lock (fun () -> Hashtbl.replace conns fd ()) in
  let unregister fd = Mutex.protect conn_lock (fun () -> Hashtbl.remove conns fd) in
  let live_conns () =
    Mutex.protect conn_lock (fun () ->
        Hashtbl.fold (fun fd () acc -> fd :: acc) conns [])
  in
  let connection fd =
    Fun.protect
      ~finally:(fun () ->
        Admission.release admission;
        unregister fd;
        close_quietly fd)
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let rec loop () =
          match
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Read ~path;
            input_line ic
          with
          | exception End_of_file -> ()
          | exception Sys_error _ -> ()
          | exception Unix.Unix_error _ -> () (* injected I/O fault: drop the connection *)
          | line ->
            let response, quit = handle_line t line in
            (match
               Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Write ~path;
               output_string oc response;
               output_char oc '\n';
               flush oc
             with
            (* a received line is always answered, drain or not; only
               AFTER responding does a draining connection close *)
            | () -> if not quit && not t.draining then loop ()
            | exception Sys_error _ -> ()
            | exception Unix.Unix_error _ -> ())
        in
        loop ())
  in
  let scrubber =
    if t.config.scrub_interval > 0.0 then Some (Thread.create scrub_loop t)
    else None
  in
  log_event t "event=listening socket=%s max_inflight=%d scrub_interval=%gs" path
    t.config.max_inflight t.config.scrub_interval;
  (* [select] with a short timeout rather than a bare blocking [accept]:
     the loop must notice [draining] promptly even when no connection
     ever arrives and no signal happens to land on this thread. *)
  let rec accept_loop () =
    if t.draining then ()
    else
      match
        Xmldoc.Io_fault.tap Xmldoc.Io_fault.Accept ~path;
        Unix.select [ sock ] [] [] 0.2
      with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (e, _, _) ->
        (* injected faults and exotic errnos: log, breathe, keep
           listening — the accept loop must outlive any single error *)
        log_event t "event=accept-error errno=%s" (Unix.error_message e);
        Thread.delay 0.05;
        accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
        (match Unix.accept sock with
        | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
          (* the connection died before we got it, or a signal landed:
             nothing to serve, keep listening *)
          ()
        | exception Unix.Unix_error (((EMFILE | ENFILE | ENOMEM) as e), _, _) ->
          (* fd/memory exhaustion — exactly the overload admission
             control exists for.  Back off briefly so in-flight
             connections can drain and release descriptors. *)
          log_event t "event=accept-error errno=%s" (Unix.error_message e);
          Thread.delay 0.05
        | exception Unix.Unix_error (e, _, _) ->
          log_event t "event=accept-error errno=%s" (Unix.error_message e);
          Thread.delay 0.05
        | fd, _ ->
          if Admission.try_acquire admission then begin
            register fd;
            ignore (Thread.create connection fd : Thread.t)
          end
          else begin
            (* shed load immediately rather than tying up a worker *)
            let oc = Unix.out_channel_of_descr fd in
            (try
               output_string oc
                 (Protocol.error_line ~cls:"overloaded"
                    (Printf.sprintf "%d connections already in flight"
                       t.config.max_inflight)
                 ^ "\n");
               flush oc
             with Sys_error _ -> ());
            close_quietly fd;
            bump (fun s -> s.errors <- s.errors + 1) t
          end);
        accept_loop ()
  in
  accept_loop ();
  (* ---------------- graceful drain ---------------- *)
  (* 1. Stop accepting: close and unlink the listening socket so new
     connects fail fast (clients fail over to the next server). *)
  close_quietly sock;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  log_event t "event=draining inflight=%d deadline=%.1fs"
    (Admission.in_flight admission) t.config.drain_deadline;
  (* 2. Let in-flight work finish: shut down the receive side of every
     live connection — threads parked in [input_line] wake with EOF,
     already-read requests still get their responses on the send side —
     then wait for the pool to empty, bounded by the drain deadline. *)
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (live_conns ());
  let give_up = Unix.gettimeofday () +. t.config.drain_deadline in
  while Admission.in_flight admission > 0 && Unix.gettimeofday () < give_up do
    Thread.delay 0.02
  done;
  (* 3. Past the deadline, sever what remains rather than hang. *)
  let stragglers = live_conns () in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  if stragglers <> [] then Thread.delay 0.1;
  (* 4. Reap build workers (checkpoints are kept: the next server
     generation resumes them) and the query pool (pure readers —
     SIGKILL, nothing to keep), then flush final stats. *)
  (match scrubber with Some thread -> Thread.join thread | None -> ());
  let workers_killed = Jobs.drain t.jobs in
  (* Ingestion engines: best-effort final flush (acknowledged records
     are already durable in their WALs — a failed or skipped flush
     merely leaves them for the next generation's replay), then close
     the fds. *)
  List.iter
    (fun eng ->
      (try ignore (Ingest.flush eng : (bool, Xmldoc.Fault.t) result)
       with _ -> ());
      try Ingest.close eng with _ -> ())
    (all_engines t);
  let pool_killed = Pool.shutdown t.pool in
  t.admission <- None;
  log_event t
    "event=drained served=%d errors=%d degraded=%d connections_severed=%d \
     workers_killed=%d pool_killed=%d"
    t.stats.served t.stats.errors t.stats.degraded (List.length stragglers)
    workers_killed pool_killed
