type tier = {
  t_budget : int;
  t_synopsis : Sketch.Synopsis.t;
}

type entry = {
  name : string;
  path : string;
  synopsis : Sketch.Synopsis.t;
  tiers : tier array;
      (* finest first, never empty; [tiers.(0).t_synopsis == synopsis].
         A plain (non-ladder) snapshot has exactly one tier. *)
  content_crc : string;
  params_fp : string;
  mtime : float;
  size : int;
  ino : int;
  (* The live-update level stack ([.name.levels] + its delta files):
     queries evaluate base + every level and combine.  Deliberately
     excluded from {!hashes}/{!combined_hash} — levels are per-member
     ingestion state, and hashing them would make every replica look
     permanently divergent to the repair machinery. *)
  levels : (Sketch.Synopsis.t * Xmldoc.Label.t list list) array;
      (* ascending generation, each level paired with its manifest
         tombstone paths — newer levels' tombs mask older levels at
         query time *)
  level_records : int;  (* ingested records across the stack *)
  flushed_seq : int;  (* highest WAL seq covered by the stack *)
  synthetic : bool;
      (* no base snapshot: the entry exists only because levels do, and
         [synopsis] is a root-only placeholder for them to extend *)
  l_mtime : float;  (* manifest fingerprint; zeros when absent *)
  l_size : int;
  l_ino : int;
}

let tier_for entry level =
  let n = Array.length entry.tiers in
  entry.tiers.(min level (n - 1))

type quarantined = {
  q_name : string;
  q_path : string;
  fault : Xmldoc.Fault.t;
  q_scrub : bool;
  q_mtime : float;
  q_size : int;
  q_ino : int;
}

(* Protocol rendering of why a name is quarantined.  A scrub-detected
   fault is prefixed so operators can tell load-time rejection (a bad
   publish) from bit-rot found later in place. *)
let quarantine_reason q =
  if q.q_scrub then "scrub-" ^ Xmldoc.Fault.class_name q.fault
  else Xmldoc.Fault.class_name q.fault

type event =
  | Loaded of string
  | Reloaded of string
  | Quarantined of string * Xmldoc.Fault.t
  | Removed of string
  | Scan_error of Xmldoc.Fault.t

type t = {
  dir : string;
  limits : Xmldoc.Limits.t;
  entries : (string, entry) Hashtbl.t;
  quarantine : (string, quarantined) Hashtbl.t;
  (* Every public operation takes this lock: the serving runtime reads
     the catalog from many connection threads while auto-reload
     refreshes it, and the pool-era server no longer serializes request
     handling under one global lock.  A refresh holds the lock for the
     duration of any snapshot loads it performs — readers of a name
     being reloaded briefly queue, readers of a stable catalog do
     not block behind query evaluation (which happens outside). *)
  lock : Mutex.t;
}

(* Single-sourced from the scrubber so the catalog scan and the fsck
   walk can never consider different file sets. *)
let snapshot_extension = Scrub.snapshot_extension

let create ?(limits = Xmldoc.Limits.default) dir =
  {
    dir;
    limits;
    entries = Hashtbl.create 16;
    quarantine = Hashtbl.create 4;
    lock = Mutex.create ();
  }

let dir t = t.dir

let find t name = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.entries name)

let fault_for t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.quarantine name with
      | Some q -> Some q.fault
      | None -> None)

let names t =
  Mutex.protect t.lock (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []))

let quarantined t =
  Mutex.protect t.lock (fun () ->
      List.sort
        (fun a b -> String.compare a.q_name b.q_name)
        (Hashtbl.fold (fun _ q acc -> q :: acc) t.quarantine []))

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

(* A snapshot file is reconsidered when its (mtime, size, inode)
   fingerprint moves.  The inode closes the staleness window a plain
   (mtime, size) pair leaves open: [save_atomic] publishes by renaming
   a fresh temp file over the old one, so a same-second, same-size
   rewrite — invisible to a coarse mtime clock — still lands on a new
   inode.  [force] reconsiders everything regardless: the escape hatch
   for a same-size in-place overwrite of the very same inode, which no
   stat-level fingerprint can see. *)
let changed entry st =
  entry.mtime <> st.Unix.st_mtime
  || entry.size <> st.Unix.st_size
  || entry.ino <> st.Unix.st_ino

let refresh ?(force = false) t =
  Mutex.protect t.lock @@ fun () ->
  let events = ref [] in
  let note e = events := e :: !events in
  match
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path:t.dir;
    Sys.readdir t.dir
  with
  | exception Sys_error message ->
    note (Scan_error (Xmldoc.Fault.Io_error { path = t.dir; message }));
    List.rev !events
  | exception Unix.Unix_error (e, fn, _) ->
    note
      (Scan_error
         (Xmldoc.Fault.Io_error
            { path = t.dir; message = fn ^ ": " ^ Unix.error_message e }));
    List.rev !events
  | files ->
    let seen = Hashtbl.create 16 in
    Array.sort String.compare files;
    Array.iter
      (fun file ->
        if Filename.check_suffix file snapshot_extension then begin
          let name = Filename.chop_suffix file snapshot_extension in
          let path = Filename.concat t.dir file in
          match
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
            Unix.stat path
          with
          | exception Unix.Unix_error _ -> () (* deleted between readdir and stat *)
          | st when st.Unix.st_kind <> Unix.S_REG -> ()
          | st ->
            Hashtbl.replace seen name ();
            let known = Hashtbl.find_opt t.entries name in
            let needs_load =
              force
              ||
              match Hashtbl.find_opt t.quarantine name with
              | Some q ->
                (* a quarantined file is retried only once its
                   fingerprint moves: unconditional retry would re-read
                   and re-parse a persistently corrupt file on every
                   refresh.  RELOAD -force stays the escape hatch for
                   in-place rewrites the fingerprint cannot see. *)
                q.q_mtime <> st.Unix.st_mtime
                || q.q_size <> st.Unix.st_size
                || q.q_ino <> st.Unix.st_ino
              | None -> (
                match known with None -> true | Some e -> changed e st)
            in
            if needs_load then begin
              (* Raw bytes first, then parse the same bytes: the content
                 hash must cover exactly what was validated, so a replica
                 group can compare hashes to detect divergence. *)
              let load_result =
                match Sketch.Serialize.load_raw_res ~limits:t.limits path with
                | Error fault -> Error fault
                | Ok raw -> (
                  match Sketch.Serialize.of_any_string_res ~limits:t.limits raw with
                  | Error fault -> Error (Xmldoc.Fault.with_path path fault)
                  | Ok loaded -> Ok (raw, loaded))
              in
              match load_result with
              | Ok (raw, loaded) ->
                let tiers =
                  match loaded with
                  | Sketch.Serialize.Single s ->
                    [| { t_budget = Sketch.Synopsis.size_bytes s; t_synopsis = s } |]
                  | Sketch.Serialize.Ladder tiers ->
                    Array.map
                      (fun (t_budget, t_synopsis) -> { t_budget; t_synopsis })
                      tiers
                in
                (* base reload preserves the attached level stack; the
                   manifest pass below re-syncs it if it moved too *)
                let levels, level_records, flushed_seq, l_mtime, l_size, l_ino =
                  match known with
                  | Some e ->
                    (e.levels, e.level_records, e.flushed_seq, e.l_mtime, e.l_size, e.l_ino)
                  | None -> ([||], 0, 0, 0., 0, 0)
                in
                Hashtbl.replace t.entries name
                  {
                    name;
                    path;
                    synopsis = tiers.(0).t_synopsis;
                    tiers;
                    content_crc = Sketch.Crc32.to_hex (Sketch.Crc32.string raw);
                    params_fp = Scrub.fingerprint loaded;
                    mtime = st.Unix.st_mtime;
                    size = st.Unix.st_size;
                    ino = st.Unix.st_ino;
                    levels;
                    level_records;
                    flushed_seq;
                    synthetic = false;
                    l_mtime;
                    l_size;
                    l_ino;
                  };
                Hashtbl.remove t.quarantine name;
                note (if known = None then Loaded name else Reloaded name)
              | Error fault ->
                (* Quarantine the file; a previously resident version
                   keeps serving (stale beats absent — the synopsis is
                   approximate either way). *)
                Hashtbl.replace t.quarantine name
                  {
                    q_name = name;
                    q_path = path;
                    fault;
                    q_scrub = false;
                    q_mtime = st.Unix.st_mtime;
                    q_size = st.Unix.st_size;
                    q_ino = st.Unix.st_ino;
                  };
                note (Quarantined (name, fault))
            end
        end)
      files;
    (* Second pass: level manifests.  Runs after the snapshot pass so a
       base reload and a manifest swap landing in the same refresh
       compose.  A manifest is re-read when its own (mtime, size, ino)
       fingerprint moves — a flush or compaction swap renames a fresh
       temp file over it, so the inode always changes. *)
    let have_manifest = Hashtbl.create 4 in
    Array.iter
      (fun file ->
        match Ingest.manifest_name file with
        | None -> ()
        | Some name -> (
          let path = Filename.concat t.dir file in
          match
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
            Unix.stat path
          with
          | exception Unix.Unix_error _ -> ()
          | st when st.Unix.st_kind <> Unix.S_REG -> ()
          | st -> (
            Hashtbl.replace have_manifest name ();
            let known = Hashtbl.find_opt t.entries name in
            let needs_load =
              force
              ||
              match known with
              | Some e ->
                e.l_mtime <> st.Unix.st_mtime
                || e.l_size <> st.Unix.st_size
                || e.l_ino <> st.Unix.st_ino
              | None -> true
            in
            if needs_load then begin
              let load_result =
                match Ingest.read_manifest ~limits:t.limits ~dir:t.dir ~name () with
                | Error fault -> Error fault
                | Ok m -> (
                  let rec load acc = function
                    | [] -> Ok (List.rev acc)
                    | info :: rest -> (
                      match Ingest.load_level ~limits:t.limits ~dir:t.dir info with
                      | Error fault -> Error fault
                      | Ok s -> load ((s, Ingest.tomb_paths info) :: acc) rest)
                  in
                  match load [] m.Ingest.entries with
                  | Error fault -> Error fault
                  | Ok levels -> Ok (m, Array.of_list levels))
              in
              match load_result with
              | Ok (m, levels) -> (
                let level_records =
                  List.fold_left
                    (fun acc e -> acc + e.Ingest.records)
                    0 m.Ingest.entries
                in
                let fingerprint e =
                  {
                    e with
                    levels;
                    level_records;
                    flushed_seq = m.Ingest.flushed;
                    l_mtime = st.Unix.st_mtime;
                    l_size = st.Unix.st_size;
                    l_ino = st.Unix.st_ino;
                  }
                in
                match known with
                | Some e ->
                  Hashtbl.replace t.entries name (fingerprint e);
                  note (Reloaded name)
                | None when Array.length levels = 0 ->
                  (* an empty manifest with no base names nothing yet *)
                  ()
                | None ->
                  (* ingest-only name: serve the level stack over a
                     root-only placeholder base until a BUILD or a
                     snapshot publish gives it a real one *)
                  let root_label =
                    let s, _ = levels.(0) in
                    Sketch.Synopsis.label s s.Sketch.Synopsis.root
                  in
                  let base =
                    Sketch.Synopsis.make ~root:0
                      [| { Sketch.Synopsis.label = root_label; count = 1.0; edges = [||] } |]
                  in
                  Hashtbl.replace t.entries name
                    (fingerprint
                       {
                         name;
                         path;
                         synopsis = base;
                         tiers =
                           [|
                             {
                               t_budget = Sketch.Synopsis.size_bytes base;
                               t_synopsis = base;
                             };
                           |];
                         content_crc = "-";
                         params_fp = "-";
                         mtime = 0.;
                         size = 0;
                         ino = 0;
                         levels = [||];
                         level_records = 0;
                         flushed_seq = 0;
                         synthetic = true;
                         l_mtime = 0.;
                         l_size = 0;
                         l_ino = 0;
                       });
                  note (Loaded name))
              | Error fault ->
                (* same keep-resident discipline as a corrupt base: the
                   previously loaded stack keeps serving, the rotten
                   manifest is quarantined until its fingerprint moves *)
                Hashtbl.replace t.quarantine name
                  {
                    q_name = name;
                    q_path = path;
                    fault;
                    q_scrub = false;
                    q_mtime = st.Unix.st_mtime;
                    q_size = st.Unix.st_size;
                    q_ino = st.Unix.st_ino;
                  };
                note (Quarantined (name, fault))
            end)))
      files;
    (* a manifest that vanished takes its level stack with it *)
    Hashtbl.iter
      (fun name e ->
        if
          (not (Hashtbl.mem have_manifest name))
          && (Array.length e.levels > 0 || e.l_ino <> 0)
          && not e.synthetic
        then
          Hashtbl.replace t.entries name
            {
              e with
              levels = [||];
              level_records = 0;
              flushed_seq = 0;
              l_mtime = 0.;
              l_size = 0;
              l_ino = 0;
            })
      (Hashtbl.copy t.entries);
    let keep name =
      Hashtbl.mem seen name
      || (Hashtbl.mem have_manifest name
         &&
         match Hashtbl.find_opt t.entries name with
         | Some e -> e.synthetic
         | None -> false)
    in
    let gone =
      Hashtbl.fold
        (fun name _ acc -> if keep name then acc else name :: acc)
        t.entries []
    in
    List.iter
      (fun name ->
        Hashtbl.remove t.entries name;
        note (Removed name))
      (List.sort String.compare gone);
    Hashtbl.iter
      (fun name q ->
        if not (Sys.file_exists q.q_path) then Hashtbl.remove t.quarantine name)
      (Hashtbl.copy t.quarantine);
    List.rev !events

let quarantine_for t name =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.quarantine name)

(* Scrub verdict application.  The resident (in-memory) version keeps
   serving — it was loaded from bytes that verified clean; what rotted
   is the file.  The quarantine fingerprint is the rotten file's
   current stat, so the repair path's atomic install (new inode) is
   retried by the very next refresh, while the rotten file itself is
   not re-parsed every period. *)
let quarantine_scrub t name fault =
  Mutex.protect t.lock @@ fun () ->
  let path = Filename.concat t.dir (name ^ snapshot_extension) in
  let q_mtime, q_size, q_ino =
    match Unix.stat path with
    | st -> (st.Unix.st_mtime, st.Unix.st_size, st.Unix.st_ino)
    | exception Unix.Unix_error _ -> (0., 0, 0)
  in
  Hashtbl.replace t.quarantine name
    { q_name = name; q_path = path; fault; q_scrub = true; q_mtime; q_size; q_ino }

let hashes t =
  Mutex.protect t.lock (fun () ->
      List.sort
        (fun (a, _, _) (b, _, _) -> String.compare a b)
        (Hashtbl.fold
           (fun name e acc ->
             (* synthetic (ingest-only) entries have no base snapshot to
                compare or repair, and levels are per-member state: both
                stay out of the group's content identity, or the
                divergence detector would flag — and REPAIR would chase
                — every replica forever *)
             if e.synthetic then acc
             else (name, e.content_crc, e.params_fp) :: acc)
           t.entries []))

(* One hash for the whole resident set: equal iff two members hold
   byte-identical snapshots built with identical parameters under
   identical names.  What HEALTH advertises and the coordinator's
   divergence detector compares. *)
let combined_hash t =
  let line (name, crc, fp) = name ^ ":" ^ crc ^ ":" ^ fp in
  Sketch.Crc32.to_hex
    (Sketch.Crc32.string (String.concat ";" (List.map line (hashes t))))
