(** Per-synopsis write-ahead log — the durability floor of the INGEST
    verb.

    One hidden file per synopsis ([.<name>.wal]), holding CRC-framed
    records.  Inserts use the original (v1) frame; an insert-only log
    is byte-identical to what earlier servers wrote, and old logs
    replay unchanged:

    {v
    rec <seq> <ts> <len> <8-hex crc32>\n
    <len payload bytes>\n
    v}

    Deletions and updates (v2) use a sibling header carrying the
    operation kind:

    {v
    mut <seq> <ts> <del|upd> <len> <8-hex crc32>\n
    <len payload bytes>\n
    v}

    The contract with the ingest engine:

    - {!append} does not return [Ok] until the frame is written and
      fsynced (both steps threaded through {!Xmldoc.Io_fault}), so an
      acknowledged record survives any subsequent kill.
    - {!open_} replays the log and truncates a torn tail — a partial
      frame left by a crash mid-append — back to the last intact
      record.  The intact prefix is never touched.
    - Sequence numbers must be strictly increasing; a regression is
      treated as a tear, so corruption can never replay stale records.
    - Disk exhaustion during {!append} (ENOSPC, or a short write that
      would otherwise tear the log) rolls the file back to its
      pre-append length and reports {!No_space} so the server can
      answer [error ingest-deferred] instead of acking a record it
      cannot make durable.  The rolled-back record's sequence number is
      not consumed — the engine reuses it on the retry, so replay never
      sees a gap. *)

type op =
  | Insert  (** append an XML fragment (the original v1 record) *)
  | Delete  (** payload is a slash-joined label path predicate *)
  | Update
      (** payload is ["<path> <xml>"] — delete the matching subtrees,
          then insert the replacement, atomically at one sequence
          number *)

type record = {
  seq : int;  (** caller-assigned, strictly increasing *)
  ts : float;  (** arrival wall-clock; feeds the staleness bound *)
  op : op;
  payload : string;  (** opaque — fragment, path-pred, or both *)
}

type t
(** An open log, positioned for appending. *)

val path : dir:string -> name:string -> string
(** [path ~dir ~name] is [dir/.<name>.wal]. *)

val wal_name : string -> string option
(** [wal_name file] is [Some name] iff base name [file] is a WAL file
    ([.<name>.wal]) — how the server discovers engines at startup. *)

val open_ :
  ?limits:Xmldoc.Limits.t ->
  dir:string ->
  name:string ->
  unit ->
  (t * record list * bool, Xmldoc.Fault.t) result
(** Open (creating if missing) and replay.  Returns the open log, the
    intact records in sequence order, and whether a torn tail was
    truncated.  Only an unreadable or oversized file is an [Error]. *)

val append : t -> record -> (unit, [ `No_space | `Fault of Xmldoc.Fault.t ]) result
(** Durably append one record (write + fsync).  On [`No_space] the log
    is rolled back to its previous length — nothing partial remains.
    If the pre-append length cannot be established the append fails
    fast without writing (a rollback to a guessed length could destroy
    acknowledged records). *)

val rewrite : t -> record list -> (unit, Xmldoc.Fault.t) result
(** Atomically replace the log's contents with exactly [records] — the
    post-flush trim.  Crash-safe via {!Sketch.Serialize.write_atomic}:
    a kill leaves either the old log or the new one, never a tear. *)

val scan :
  ?limits:Xmldoc.Limits.t -> string -> (record list * bool, Xmldoc.Fault.t) result
(** Read-only verification for the scrubber and [treesketch verify]:
    intact records plus a torn-tail flag, without repairing the file.
    A missing file reads as [([], false)]. *)

val bytes : t -> int
(** Bytes of intact log currently on disk — the write-pressure
    controller's "WAL outstanding" signal. *)

val wal_path : t -> string

val close : t -> unit
