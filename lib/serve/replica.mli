(** A registry of identical replicas of one synopsis catalog, with the
    health bookkeeping a scatter-gather coordinator routes by.

    {2 Health-gated routing}

    Each member carries a small state machine fed by two observation
    streams — live-traffic outcomes ({!note_success}/{!note_failure})
    and background [HEALTH] probes ({!note_probe}):

    - {e Ready}: answering and [ready=yes] — the primary tier.
    - {e Suspect}: recent consecutive failures, below the ejection
      threshold; still routable, deprioritized.
    - {e Draining}: alive but answering [ready=no] (a rolling restart
      in progress) — routed only when nothing healthier exists.
    - {e Ejected}: [eject_threshold] consecutive failures; not routed
      until a jittered cooldown elapses ({e outlier ejection}).
    - {e Probation}: cooldown elapsed — re-admitted, but one more
      failure re-ejects immediately (jittered again), so a flapping
      replica costs one probe per cooldown, not a storm.

    {!rank} orders the whole group healthiest-first and {e fails open}:
    with every member ejected it still returns them all (soonest
    re-admission first) — trying a probably-dead server beats refusing
    the request outright.  The Ready tier rotates under a cursor so
    primaries spread across the group.

    All operations are thread-safe (connection threads and the prober
    feed the same registry); jitter comes from one seeded rng, so tests
    replay exactly. *)

type config = {
  eject_threshold : int;
      (** consecutive failures before a member is ejected, >= 1 *)
  eject_cooldown : float;  (** seconds ejected, before jitter *)
  readmit_jitter : float;
      (** cooldowns are scaled by [1 + uniform(0, readmit_jitter)] *)
  seed : int;  (** seeds the jitter rng *)
}

val default_config : config
(** 3 strikes, 2 s cooldown, up to +50% jitter, seed 0. *)

type state = Ready | Draining | Suspect | Probation | Ejected

val state_name : state -> string

type replica

type t

val create : ?config:config -> string list -> t
(** [create paths] registers one member per socket path, all Ready.
    Raises [Invalid_argument] on an empty list. *)

val size : t -> int

val members : t -> replica list
(** Registration order, regardless of health. *)

val path : replica -> string

val state : t -> replica -> state

val note_success : t -> replica -> unit
(** A live request got a definitive answer: reset strikes, clear any
    ejection or probation. *)

val note_failure : t -> replica -> unit
(** A live request failed at the transport (connect refused, EOF,
    timeout) or with a retryable server error: one strike.  At
    [eject_threshold] strikes — or a single strike on probation — the
    member is ejected for a jittered cooldown. *)

val note_probe :
  ?load:int ->
  ?staleness:float ->
  ?write_state:string ->
  ?catalog_hash:string ->
  t ->
  replica ->
  [ `Ready | `Not_ready | `Failed ] ->
  unit
(** Feed a background HEALTH probe result: [`Ready] fully heals the
    member, [`Not_ready] marks it Draining (deprioritized, {e not}
    ejected — it answered), [`Failed] counts like {!note_failure}.
    [load] is the probed brownout level ([load=<n>] in the HEALTH
    line, default 0): recorded on [`Ready]/[`Not_ready] so {!rank} can
    prefer cool members and {!all_browned_out} can gate hedging.
    [staleness] is the probed ingestion staleness bound
    ([staleness=<s>] in the HEALTH line, default 0): recorded the same
    way so {!rank} prefers members whose live-ingested data is
    freshest.  [write_state] is the probed write-pressure token
    ([write_state=<s>] in the HEALTH line, default ["ok"]): recorded
    the same way so write-aware ranking ({!rank} [~writes:true])
    avoids members that would shed or refuse a mutation.
    [catalog_hash] is the probed content-identity hash
    ([catalog_hash=<hex>] in the HEALTH line): recorded on
    [`Ready]/[`Not_ready] and fed to {!mark_divergent}. *)

val load : replica -> int
(** The member's last-probed brownout level; 0 = cool. *)

val staleness : replica -> float
(** The member's last-probed ingestion staleness bound, seconds;
    0 = fully flushed (or no live ingestion). *)

val write_state : replica -> string
(** The member's last-probed write-pressure state token
    ([ok|paced|shedding|readonly]); ["ok"] when never probed or probed
    by a server that does not report one. *)

val write_penalty : replica -> int
(** How costly routing a mutation at this member would be: 0 for
    [ok]/[paced] (admitted), 1 for [shedding] (deferred), 2 for
    [readonly] (refused). *)

val catalog_hash : replica -> string
(** The member's last-probed catalog content hash; [""] = never
    probed (or probed by an older server that does not report one). *)

val stale : replica -> bool
(** The member's catalog diverged from the group's modal hash — it is
    serving {e different} content than its peers.  A stale member
    reads as Suspect in {!rank}: routable when nothing healthier
    exists (a stale approximate answer beats no answer), deprioritized
    otherwise, and expected to heal itself via anti-entropy repair. *)

val mark_divergent : t -> unit
(** Recompute staleness from the latest probed hashes: the modal hash
    with support from at least {e two} members is the group truth;
    members holding a different (known) hash are marked stale, members
    matching it are cleared.  With no two members agreeing — a 1-member
    group, a 1:1 split, nothing probed yet — {e everyone} is cleared:
    divergence is only declared on corroborated evidence, never
    latched.  The coordinator's prober calls this after each sweep. *)

val stale_count : t -> int
(** Members currently marked stale, for HEALTH reporting. *)

val all_browned_out : t -> bool
(** Every member's last-known brownout level is above 0 — the whole
    group is saturated.  A coordinator suppresses hedges then: racing
    a second copy of a request against a uniformly overloaded group
    is a retry storm, not a tail-latency fix. *)

val rank : ?writes:bool -> t -> replica list
(** Every member, healthiest first: Ready (rotating), Probation,
    Draining, Suspect (fewest strikes first), Ejected (soonest
    re-admission first).  Within a state tier, cooler (lower {!load})
    members come first, then fresher (lower {!staleness}) ones.
    Never empty.  [~writes:true] ranks for a MUTATION target: members
    whose probed {!write_state} is [shedding] (would defer the write)
    or [readonly] (would refuse it) sort below everyone else,
    regardless of read health — how INGEST [--target] suggestions
    avoid servers that cannot take the write. *)

val ready_count : t -> int
(** Members currently in the Ready or Probation tiers — what a
    coordinator's own readiness gates on. *)

val ejected_count : t -> int

val describe : t -> string list
(** One [path=state served=n failed=n] token per member, for logs. *)

(** {2 Per-group retry budget}

    A token bucket capping hedges + retries as a fraction of primary
    traffic: each primary request deposits [ratio] tokens (bucket
    capped at [burst], and {e starting} at [burst] so cold-start
    failover is never refused); each hedge or retry withdraws one.
    When the whole group is sick every request wants retries — the
    bucket runs dry and amplification is bounded at [ratio] instead of
    multiplying a brownout into a connect storm.  Thread-safe. *)
module Budget : sig
  type t

  val create : ratio:float -> burst:float -> t
  (** [ratio >= 0], [burst >= 1] (checked). *)

  val note_request : t -> unit
  (** A primary request happened: deposit [ratio] tokens. *)

  val try_take : t -> bool
  (** Withdraw one token for a hedge/retry; [false] (and counted in
      {!denied}) when the bucket is dry — the caller must skip the
      hedge, not queue for it. *)

  val tokens : t -> float

  val spent : t -> int
  (** Hedges + retries admitted so far. *)

  val denied : t -> int
  (** Hedges + retries refused so far — the anti-storm counter chaos
      tests assert on. *)

  val ratio : t -> float

  val burst : t -> float
end
