(** A resilient client for the [treesketch serve] line protocol.

    The client owns every failure mode a caller would otherwise have to
    hand-roll: connect timeouts, per-request deadlines, capped
    exponential backoff with seeded jitter, automatic reconnection, and
    failover across a list of server sockets (the other half of a
    rolling restart — when one server drains, requests move to its
    replacement).

    {2 Retry policy and idempotency}

    A request is retried only when doing so cannot duplicate a side
    effect:

    - {e Read-only verbs} (PING, HEALTH, LIST, STAT, QUERY, ANSWER,
      JOBS, RELOAD) are idempotent and always retried on transport
      failure, on timeout, and on an [error overloaded ...] response.
    - {e Mutating verbs} (BUILD, CANCEL, QUIT and anything
      unrecognized) are retried only while the failure provably
      happened {e before} the request was written (connect failure);
      after the bytes may have reached a server, the error is surfaced
      instead — unless the caller opts in with [retry_unsafe].
    - {e Write-pressure sheds} are the one exception for mutations: an
      [error ingest-deferred retry-after=<ms> ...] response to INGEST,
      DELETE or UPDATE means the server shed the mutation {e without
      retaining anything}, so the resend cannot duplicate it.  The
      client honors [retry-after] with upward jitter (falling back to
      its own backoff when the token is absent) and retries {e the same
      endpoint} without rotating the failover cursor — a mutation
      targets one server's WAL, and failing over would write
      elsewhere.

    {2 Results}

    [request] returns [Ok line] for {e any} well-formed response line
    the server delivered — including the server's own
    [error <class> ...] lines: the protocol round-trip succeeded, and
    interpreting the response is the caller's business.  [Error _] is
    reserved for client-side faults: the deadline expired, or transport
    kept failing after every configured attempt. *)

type config = {
  connect_timeout : float;  (** seconds to wait for a connect to land *)
  request_timeout : float;
      (** per-attempt deadline, seconds, covering send + receive *)
  attempts : int;  (** total tries per request (first + retries), >= 1 *)
  backoff_base : float;  (** delay before the 2nd attempt, seconds *)
  backoff_cap : float;  (** backoff ceiling, seconds *)
  jitter_seed : int;
      (** seeds the backoff jitter — same seed, same delays *)
  retry_unsafe : bool;
      (** retry non-idempotent verbs (BUILD/CANCEL) too; off by
          default because a retried BUILD can restart a build *)
  breaker_threshold : int;
      (** consecutive worker-crash/deadline failures on one synopsis
          before its circuit breaker opens; [0] disables breakers *)
  breaker_cooldown : float;
      (** seconds an open breaker fails fast before admitting one
          half-open probe (jittered up to 1.5x from [jitter_seed]) *)
}

val default_config : config
(** 1 s connect, 5 s request, 4 attempts, 50 ms backoff doubling to a
    1 s cap, seed 0, unsafe retries off, breaker opening after 5
    failures for a 2 s cooldown. *)

type t

val create : ?config:config -> string list -> t
(** [create paths] targets the Unix-socket servers at [paths], in
    preference order: the client sticks with a working socket and
    fails over to the next (wrapping around) when it stops answering.
    Sets SIGPIPE to ignored process-wide (a dead server must surface
    as a retryable EPIPE, not kill the client).  Raises
    [Invalid_argument] on an empty list. *)

type error =
  | Deadline of string  (** the per-request deadline expired *)
  | Io of string  (** transport kept failing through every attempt *)
  | Bad_response of string
      (** the server broke the line protocol (e.g. EOF mid-line) and
          retries were exhausted or not permitted *)
  | Breaker_open of string
      (** failed fast without contacting the server: this synopsis's
          circuit breaker is open (see {!section-breaker}) *)

val error_to_string : error -> string

val error_to_fault : error -> Xmldoc.Fault.t
(** Map a client error onto the {!Xmldoc.Fault} taxonomy so the CLI
    exits with the documented code: [Deadline _] → exit 4,
    [Io _]/[Bad_response _]/[Breaker_open _] → exit 5. *)

(** {2:breaker Per-(endpoint, synopsis) circuit breaker}

    A synopsis whose queries keep crashing pool workers ([error
    worker-crash ...] responses) or timing out client-side is expensive
    to keep probing: each attempt costs the server a worker and this
    client a full request timeout.  After [breaker_threshold]
    consecutive such failures on one synopsis {e at one endpoint}, that
    breaker {e opens}: QUERY/ANSWER requests for the synopsis that
    would dial that endpoint return [Error (Breaker_open _)]
    immediately, without touching the network.  After a jittered
    [breaker_cooldown] one {e half-open} probe is admitted — success
    closes the breaker, failure re-opens it.  Any definitive response
    (including server-side errors like [not-found]) resets the count;
    transport failures are the failover loop's concern and never trip
    a breaker.  Other verbs are never gated.

    Breakers are keyed by [(endpoint, synopsis)], not synopsis alone:
    in a failover client, one member's crashing workers say nothing
    about the identical synopsis on its healthy replicas, so an open
    breaker there must not fail-fast requests the rest of the group
    can answer.  The gate consults the endpoint the request will dial
    first (the live connection, else the failover cursor); the outcome
    is attributed to the endpoint of the final attempt. *)

val breaker_state :
  ?endpoint:string -> t -> string -> [ `Closed | `Open | `Half_open ] option
(** The breaker for synopsis [name] at [endpoint] (default: the
    endpoint the next request would dial first), if any failure or
    success has ever been recorded for it — exposed for tests and
    diagnostics. *)

val idempotent : string -> bool
(** [idempotent line] — is the request's verb safe to retry after it
    may have reached a server?  Case-insensitive; unknown verbs are
    not. *)

val is_deferred_response : string -> bool
(** Is this response line an [error ingest-deferred ...] write-pressure
    shed?  (The server retained nothing: resending the mutation is
    safe.) *)

val retry_after_ms : string -> int option
(** The [retry-after=<ms>] token of a deferred response, if present and
    well-formed. *)

val request : t -> string -> (string, error) result
(** One request line (without the newline) in, one response line out,
    after at most [config.attempts] tries across the configured
    sockets.  Never raises; never hangs past
    [attempts * (connect_timeout + request_timeout + backoff)].

    A [-deadline=D] option on the line is {e propagated, not copied}:
    each attempt forwards [D] minus the wall-clock time this client has
    already burned on the request (connect timeouts, backoff sleeps,
    failed attempts), so a downstream server is never granted more
    budget than the caller has left
    ({!Protocol.with_remaining_deadline}). *)

val close : t -> unit
(** Drop the current connection (if any).  The client remains usable —
    the next {!request} reconnects. *)
