type opts = {
  deadline : float option;
  max_nodes : int option;
  tier : int option;
}

let no_opts = { deadline = None; max_nodes = None; tier = None }

type request =
  | Ping
  | Health
  | List
  | Reload of { force : bool }
  | Stat of string
  | Query of opts * string * Twig.Syntax.t
  | Answer of opts * string * Twig.Syntax.t
  | Build of { name : string; xml : string; budget : int }
  | Ingest of { name : string; xml : string }
  | Delete of { name : string; path : string }
  | Update of { name : string; path : string; xml : string }
  | Jobs
  | Cancel of string
  | Scrub
  | Fetch of string
  | Repair
  | Quit

(* One request per line: an upper-case verb, then [-key=value] options,
   then operands.  Parsing is total; every rejection names its cause. *)

let split_words line =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))

let parse_opt opts tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "malformed option %S (want -key=value)" tok)
  | Some eq ->
    let key = String.sub tok 1 (eq - 1) in
    let value = String.sub tok (eq + 1) (String.length tok - eq - 1) in
    (match key with
    | "deadline" -> (
      match float_of_string_opt value with
      | Some s when Float.is_finite s ->
        Ok { opts with deadline = Some s }
      | _ -> Error (Printf.sprintf "bad deadline %S (want seconds)" value))
    | "max-nodes" -> (
      match int_of_string_opt value with
      | Some n when n >= 1 -> Ok { opts with max_nodes = Some n }
      | _ -> Error (Printf.sprintf "bad max-nodes %S (want a positive integer)" value)
      )
    | "tier" -> (
      (* minimum degradation tier: 0 = finest; a server clamps it to
         the coarsest rung the target actually has *)
      match int_of_string_opt value with
      | Some n when n >= 0 -> Ok { opts with tier = Some n }
      | _ -> Error (Printf.sprintf "bad tier %S (want a non-negative integer)" value))
    | _ -> Error (Printf.sprintf "unknown option -%s" key))

let rec parse_opts opts = function
  | tok :: rest when String.length tok > 1 && tok.[0] = '-' -> (
    match parse_opt opts tok with
    | Ok opts -> parse_opts opts rest
    | Error msg -> Error msg)
  | rest -> Ok (opts, rest)

let parse_query_text text =
  match Twig.Parse.query text with
  | q -> Ok q
  | exception e -> (
    match Twig.Parse.error_to_string e with
    | Some msg -> Error (Printf.sprintf "bad query %S: %s" text msg)
    | None -> Error (Printf.sprintf "bad query %S" text))

let parse_targeted verb make words =
  match parse_opts no_opts words with
  | Error msg -> Error msg
  | Ok (_, []) -> Error (Printf.sprintf "%s needs a synopsis name and a query" verb)
  | Ok (_, [ _ ]) -> Error (Printf.sprintf "%s needs a query after the name" verb)
  | Ok (opts, name :: query_words) ->
    Result.map
      (fun q -> make opts name q)
      (parse_query_text (String.concat " " query_words))

(* Job names become catalog file names ([<name>.ts]): keep them to a
   filename-safe alphabet so a request can never escape the catalog
   directory or collide with the hidden checkpoint journals. *)
let valid_job_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
       name

let parse_build words =
  match words with
  | [ name; xml; budget ] ->
    if not (valid_job_name name) then
      Error
        (Printf.sprintf "bad job name %S (want [A-Za-z0-9_-]+)" name)
    else (
      match Xmldoc.Limits.parse_bytes budget with
      | Ok b when b > 0 -> Ok (Build { name; xml; budget = b })
      | Ok _ -> Error (Printf.sprintf "bad budget %S (must be positive)" budget)
      | Error msg -> Error (Printf.sprintf "bad budget %S: %s" budget msg))
  | _ -> Error "BUILD takes a job name, an XML path and a byte budget"

let parse line =
  match split_words line with
  | [] -> Error "empty request"
  | verb :: rest -> (
    match (String.uppercase_ascii verb, rest) with
    | "PING", [] -> Ok Ping
    | "HEALTH", [] -> Ok Health
    | "LIST", [] -> Ok List
    | "QUIT", [] -> Ok Quit
    | "RELOAD", [] -> Ok (Reload { force = false })
    | "RELOAD", [ "-force" ] -> Ok (Reload { force = true })
    | "STAT", [ name ] -> Ok (Stat name)
    | "STAT", _ -> Error "STAT takes exactly one synopsis name"
    | "QUERY", words -> parse_targeted "QUERY" (fun o n q -> Query (o, n, q)) words
    | "ANSWER", words -> parse_targeted "ANSWER" (fun o n q -> Answer (o, n, q)) words
    | "BUILD", words -> parse_build words
    | "INGEST", name :: (_ :: _ as xml_words) ->
      (* same filename-safe alphabet as BUILD: the name becomes hidden
         WAL/level/manifest file names next to the catalog *)
      if not (valid_job_name name) then
        Error (Printf.sprintf "bad job name %S (want [A-Za-z0-9_-]+)" name)
      else Ok (Ingest { name; xml = String.concat " " xml_words })
    | "INGEST", _ -> Error "INGEST takes a synopsis name and an XML fragment"
    | "DELETE", [ name; path ] ->
      if not (valid_job_name name) then
        Error (Printf.sprintf "bad job name %S (want [A-Za-z0-9_-]+)" name)
      else if not (Ingest.valid_path path) then
        Error
          (Printf.sprintf
             "bad path predicate %S (want slash-joined [A-Za-z0-9_-] segments)"
             path)
      else Ok (Delete { name; path })
    | "DELETE", _ -> Error "DELETE takes a synopsis name and a path predicate"
    | "UPDATE", name :: path :: (_ :: _ as xml_words) ->
      if not (valid_job_name name) then
        Error (Printf.sprintf "bad job name %S (want [A-Za-z0-9_-]+)" name)
      else if not (Ingest.valid_path path) then
        Error
          (Printf.sprintf
             "bad path predicate %S (want slash-joined [A-Za-z0-9_-] segments)"
             path)
      else Ok (Update { name; path; xml = String.concat " " xml_words })
    | "UPDATE", _ ->
      Error "UPDATE takes a synopsis name, a path predicate and an XML fragment"
    | "JOBS", [] -> Ok Jobs
    | "CANCEL", [ name ] -> Ok (Cancel name)
    | "CANCEL", _ -> Error "CANCEL takes exactly one job name"
    | "SCRUB", [] -> Ok Scrub
    | "REPAIR", [] -> Ok Repair
    | "FETCH", [ name ] ->
      (* same filename-safe alphabet as BUILD: a fetch must never be
         able to name a path outside the catalog directory *)
      if valid_job_name name then Ok (Fetch name)
      else Error (Printf.sprintf "bad snapshot name %S (want [A-Za-z0-9_-]+)" name)
    | "FETCH", _ -> Error "FETCH takes exactly one synopsis name"
    | ("PING" | "HEALTH" | "LIST" | "QUIT" | "RELOAD" | "JOBS" | "SCRUB" | "REPAIR"), _
      ->
      Error (Printf.sprintf "%s takes no operands" (String.uppercase_ascii verb))
    | v, _ ->
      Error
        (Printf.sprintf
           "unknown verb %S (want PING, HEALTH, LIST, RELOAD, STAT, QUERY, \
            ANSWER, BUILD, INGEST, DELETE, UPDATE, JOBS, CANCEL, SCRUB, \
            FETCH, REPAIR or QUIT)" v))

(* Deadline propagation.  A relay (the retrying client, the replica
   coordinator) that burned wall-clock connecting, backing off or
   queueing must forward the caller's [-deadline] MINUS that elapsed
   time — forwarding it verbatim would grant a downstream server more
   budget than the caller has left.  Rewriting only touches tokens in
   the option zone (between the verb and the first operand), so a
   query that happens to contain the substring is never mangled. *)

let deadline_prefix = "-deadline="

let is_deadline_opt tok =
  String.length tok > String.length deadline_prefix
  && String.sub tok 0 (String.length deadline_prefix) = deadline_prefix

let request_deadline line =
  match split_words line with
  | [] -> None
  | _verb :: rest ->
    let rec scan = function
      | tok :: rest when String.length tok > 1 && tok.[0] = '-' ->
        if is_deadline_opt tok then (
          let v =
            String.sub tok (String.length deadline_prefix)
              (String.length tok - String.length deadline_prefix)
          in
          match float_of_string_opt v with
          | Some d when Float.is_finite d -> Some d
          | _ -> None)
        else scan rest
      | _ -> None
    in
    scan rest

let with_remaining_deadline line ~elapsed =
  if elapsed <= 0.0 then line
  else
    match split_words line with
    | [] -> line
    | verb :: rest ->
      let changed = ref false in
      (* rewrite only inside the leading option zone *)
      let rec go in_opts = function
        | [] -> []
        | tok :: rest when in_opts && String.length tok > 1 && tok.[0] = '-' ->
          let tok' =
            if is_deadline_opt tok then
              let v =
                String.sub tok (String.length deadline_prefix)
                  (String.length tok - String.length deadline_prefix)
              in
              match float_of_string_opt v with
              | Some d when Float.is_finite d ->
                changed := true;
                (* clamp at zero: a relay that already burned the whole
                   budget forwards "no time left", never a negative
                   deadline (whose meaning is the receiver's to define)
                   — and the flag itself is always preserved *)
                Printf.sprintf "%s%g" deadline_prefix
                  (Float.max 0. (d -. elapsed))
              | _ -> tok
            else tok
          in
          tok' :: go true rest
        | tok :: rest -> tok :: go false rest
      in
      let rewritten = go true rest in
      if !changed then String.concat " " (verb :: rewritten) else line

(* Degradation-level propagation.  A browned-out server answers from a
   coarser ladder tier; pool workers re-parse the raw forwarded line
   against their own catalog copy, so the parent's current level must
   travel in-band: [-tier=<n>] is raised to (never lowered below) the
   server level, inserted into the option zone when absent.  Same
   option-zone-only discipline as the deadline rewrite. *)

let tier_prefix = "-tier="

let is_tier_opt tok =
  String.length tok > String.length tier_prefix
  && String.sub tok 0 (String.length tier_prefix) = tier_prefix

let with_tier line ~level =
  if level <= 0 then line
  else
    match split_words line with
    | [] -> line
    | verb :: rest when
        (match String.uppercase_ascii verb with
        | "QUERY" | "ANSWER" -> true
        | _ -> false) ->
      let seen = ref false in
      let rec go in_opts = function
        | [] -> []
        | tok :: rest when in_opts && String.length tok > 1 && tok.[0] = '-' ->
          let tok' =
            if is_tier_opt tok then (
              seen := true;
              let v =
                String.sub tok (String.length tier_prefix)
                  (String.length tok - String.length tier_prefix)
              in
              match int_of_string_opt v with
              | Some t when t >= level -> tok
              | Some _ -> Printf.sprintf "%s%d" tier_prefix level
              | None -> tok)
            else tok
          in
          tok' :: go true rest
        | tok :: rest -> tok :: go false rest
      in
      let rewritten = go true rest in
      let rewritten =
        if !seen then rewritten
        else Printf.sprintf "%s%d" tier_prefix level :: rewritten
      in
      String.concat " " (verb :: rewritten)
    | _ -> line

(* Verbs whose effect is bound to ONE server: a build runs on the
   machine that accepted it, RELOAD rescans one catalog directory,
   CANCEL kills one server's job, JOBS lists them, QUIT hangs up one
   connection.  The anti-entropy verbs are equally single-target:
   SCRUB fscks one catalog directory, REPAIR pulls into one member,
   and FETCH streams one member's snapshot file (and is multi-line —
   the scatter-gather machinery assumes one response line).  A replica
   group must not spray these across members — the coordinator refuses
   them, and a replica-mode client requires an explicit target. *)
let single_target line =
  match split_words line with
  | [] -> false
  | verb :: _ -> (
    match String.uppercase_ascii verb with
    | "BUILD" | "INGEST" | "DELETE" | "UPDATE" | "RELOAD" | "CANCEL" | "JOBS"
    | "QUIT" | "SCRUB" | "FETCH" | "REPAIR" ->
      true
    | _ -> false)

let query_target line =
  match split_words line with
  | verb :: rest
    when (match String.uppercase_ascii verb with
         | "QUERY" | "ANSWER" -> true
         | _ -> false) -> (
    match parse_opts no_opts rest with
    | Ok (_, name :: _) -> Some name
    | _ -> None)
  | _ -> None

(* Responses are single lines too; anything woven into one (fault
   messages above all) is flattened first. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let error_line ~cls message =
  Printf.sprintf "error %s %s" cls (one_line message)

let fault_line fault =
  error_line ~cls:(Xmldoc.Fault.class_name fault) (Xmldoc.Fault.to_string fault)

let degraded_token = function
  | None -> "no"
  | Some stop -> Xmldoc.Budget.stop_to_string stop
