(* The write-side admission controller: the ingestion counterpart of
   the {!Overload} brownout controller.

   Reads degrade by answering coarser; writes degrade by arriving
   later.  The controller folds the write path's leading indicators —
   WAL bytes outstanding, memtable depth, flush/compaction lag (the
   staleness of the oldest unflushed record) — into one dimensionless
   pressure

     pressure = max (wal_bytes / wal_bytes_high)
                    (depth     / depth_high)
                    (lag       / lag_high)

   and degrades in stages:

   - [Ok]       pressure below [pace_at]: admit unconditionally.
   - [Paced]    pressure in [pace_at, shed_at): admit, but attach an
                advisory [backpressure=<ms>] hint to the ack so a
                well-behaved client spaces its next write.
   - [Shedding] pressure at or past [shed_at], or disk free under the
                soft watermark: refuse with [retry-after=<ms>] — the
                client backs off with jitter and retries; nothing was
                retained, so the retry is safe.
   - [Readonly] disk free under the HARD watermark: refuse every
                mutation outright while reads, scrub and repair keep
                working.  Writes resume by themselves once compaction
                or an operator frees space.

   Unlike serving latency, the inputs here are integrals (bytes and
   records outstanding age monotonically until a flush drains them), so
   no EWMA smoothing or dwell hysteresis is needed — the state follows
   the signals directly and un-flaps as the flush catches up.

   The disk watermark needs a free-space probe.  OCaml's Unix module
   has no statvfs, so the default probe shells out to POSIX
   [df -P -k <dir>] — rate-limited to one probe per [probe_interval]
   seconds and cached in between — and tests inject a deterministic
   probe instead. *)

type state = Ok | Paced | Shedding | Readonly

let state_token = function
  | Ok -> "ok"
  | Paced -> "paced"
  | Shedding -> "shedding"
  | Readonly -> "readonly"

type config = {
  wal_bytes_high : int;  (* WAL bytes outstanding at pressure 1.0 *)
  depth_high : int;  (* memtable records at pressure 1.0 *)
  lag_high : float;  (* seconds of flush lag at pressure 1.0 *)
  pace_at : float;  (* pressure where advisory pacing starts *)
  shed_at : float;  (* pressure where writes are refused *)
  pace_ms : int;  (* base advisory pacing hint *)
  retry_after_ms : int;  (* base shed retry-after *)
  disk_soft : int;  (* free bytes under which writes shed; 0 = off *)
  disk_hard : int;  (* free bytes under which writes refuse; 0 = off *)
  probe_interval : float;  (* min seconds between disk probes *)
}

let default_config =
  {
    wal_bytes_high = 8 * 1024 * 1024;
    depth_high = 4096;
    lag_high = 30.0;
    pace_at = 0.5;
    shed_at = 1.0;
    pace_ms = 50;
    retry_after_ms = 250;
    disk_soft = 0;
    disk_hard = 0;
    probe_interval = 0.25;
  }

type t = {
  config : config;
  probe : unit -> int option;
  lock : Mutex.t;
  mutable pressure : float;
  mutable state : state;
  mutable cached_free : int option;
  mutable probed_at : float;
}

(* POSIX [df -P -k]: one header line, then one line per filesystem with
   the available KiB in the fourth column.  Any parse or process
   failure reads as "unknown" — the watermark then simply cannot trip,
   which fails open (admitting) rather than wedging writes on a broken
   probe. *)
let df_free dir () =
  let cmd = Printf.sprintf "df -P -k %s 2>/dev/null" (Filename.quote dir) in
  match Unix.open_process_in cmd with
  | exception _ -> None
  | ic ->
    let last = ref None in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then last := Some line
       done
     with End_of_file -> ());
    let status = try Unix.close_process_in ic with _ -> Unix.WEXITED 1 in
    (match (status, !last) with
    | Unix.WEXITED 0, Some line -> (
      match
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      with
      | _fs :: _blocks :: _used :: avail :: _ ->
        Option.map (fun kb -> kb * 1024) (int_of_string_opt avail)
      | _ -> None)
    | _ -> None)

let create ?(config = default_config) ?disk_free ~dir () =
  if config.wal_bytes_high < 1 then
    invalid_arg "Write_pressure: wal_bytes_high must be >= 1";
  if config.depth_high < 1 then
    invalid_arg "Write_pressure: depth_high must be >= 1";
  if config.lag_high <= 0.0 then
    invalid_arg "Write_pressure: lag_high must be positive";
  if not (config.pace_at < config.shed_at) then
    invalid_arg "Write_pressure: pace_at must be below shed_at";
  if config.pace_ms < 0 || config.retry_after_ms < 1 then
    invalid_arg "Write_pressure: bad pacing/retry-after";
  if config.disk_soft < 0 || config.disk_hard < 0 then
    invalid_arg "Write_pressure: watermarks must be >= 0";
  let probe =
    match disk_free with Some f -> f | None -> df_free dir
  in
  {
    config;
    probe;
    lock = Mutex.create ();
    pressure = 0.0;
    state = Ok;
    cached_free = None;
    probed_at = neg_infinity;
  }

(* Must be called with the lock held. *)
let probe_locked t =
  if t.config.disk_soft = 0 && t.config.disk_hard = 0 then None
  else begin
    let now = Xmldoc.Limits.now () in
    if now -. t.probed_at >= t.config.probe_interval then begin
      t.cached_free <- t.probe ();
      t.probed_at <- now
    end;
    t.cached_free
  end

let observe t ~wal_bytes ~depth ~lag =
  let c = t.config in
  Mutex.protect t.lock @@ fun () ->
  t.pressure <-
    Float.max
      (float_of_int wal_bytes /. float_of_int c.wal_bytes_high)
      (Float.max
         (float_of_int depth /. float_of_int c.depth_high)
         (lag /. c.lag_high));
  let free = probe_locked t in
  t.state <-
    (match free with
    | Some free when c.disk_hard > 0 && free < c.disk_hard -> Readonly
    | Some free when c.disk_soft > 0 && free < c.disk_soft -> Shedding
    | _ ->
      if t.pressure >= c.shed_at then Shedding
      else if t.pressure >= c.pace_at then Paced
      else Ok)

(* Scale the hints by how far past the threshold we are, capped so a
   pathological pressure spike cannot park clients for minutes. *)
let scaled base pressure = int_of_float (float_of_int base *. Float.min 8.0 (Float.max 1.0 pressure))

let admit t =
  Mutex.protect t.lock @@ fun () ->
  match t.state with
  | Ok -> `Admit None
  | Paced -> `Admit (Some (scaled t.config.pace_ms t.pressure))
  | Shedding -> `Defer (scaled t.config.retry_after_ms t.pressure)
  | Readonly -> `Readonly

let retry_hint t =
  Mutex.protect t.lock @@ fun () -> scaled t.config.retry_after_ms t.pressure

let state t = Mutex.protect t.lock (fun () -> t.state)

let pressure t = Mutex.protect t.lock (fun () -> t.pressure)

let disk_free t = Mutex.protect t.lock (fun () -> probe_locked t)

let min_free t = t.config.disk_hard

let describe t =
  Mutex.protect t.lock @@ fun () ->
  Printf.sprintf "write_state=%s pressure=%.2f%s" (state_token t.state)
    t.pressure
    (match t.cached_free with
    | Some free -> Printf.sprintf " disk_free=%d" free
    | None -> "")
