type caps = {
  deadline : float option;
  max_answer_nodes : int;
  max_work : int;
  max_heap_words : int;
}

(* Per-request budget: the request's own [-deadline]/[-max-nodes] can
   tighten the caps, never widen them. *)
let budget_for caps (opts : Protocol.opts) =
  let relative =
    match (caps.deadline, opts.deadline) with
    | None, req -> req
    | (Some _ as cfg), None -> cfg
    | Some cfg, Some req -> Some (Float.min cfg req)
  in
  let deadline = Option.map (fun s -> Xmldoc.Limits.now () +. s) relative in
  let max_nodes =
    match opts.max_nodes with
    | Some n -> min n caps.max_answer_nodes
    | None -> caps.max_answer_nodes
  in
  let max_heap_words =
    if caps.max_heap_words = max_int then None else Some caps.max_heap_words
  in
  Xmldoc.Budget.create ?deadline ~max_nodes ~max_work:caps.max_work
    ?max_heap_words ()

type kind =
  | Query
  | Answer

type outcome = {
  response : string;
  degraded : bool;
}

let yes_no b = if b then "yes" else "no"

(* Which ladder rung serves this request: the coarser of the request's
   own [-tier] ask and the server's degradation level, clamped to the
   rungs the entry actually has.  Plain single-tier entries never get a
   tag, keeping their responses byte-identical to earlier versions. *)
let select_tier (entry : Catalog.entry) (opts : Protocol.opts) ~level =
  let n = Array.length entry.Catalog.tiers in
  let requested = match opts.Protocol.tier with Some k -> k | None -> 0 in
  let k = min (max requested (max level 0)) (n - 1) in
  let t = Catalog.tier_for entry k in
  let tag = if n > 1 then Some (k, n, t.Catalog.t_budget) else None in
  (t.Catalog.t_synopsis, tag)

let run ?tier ?levels ~budget kind synopsis q =
  let tier_tag =
    match tier with
    | None -> ""
    | Some (k, n, bytes) -> Printf.sprintf " tier=%d/%d budget=%d" k n bytes
  in
  (* The live-update level stack: base plus every delta TreeSketch,
     each evaluated independently under the ONE request budget and
     combined (extents across levels are disjoint sub-forests of the
     same document, so selectivities add and result forests
     concatenate).  Deletion subtracts here: each level is masked by
     the union of every STRICTLY NEWER level's tombstone paths
     ({!Sketch.Build.prune_paths}) before evaluation — a deleted
     subtree's contribution vanishes from the answer the moment its
     tombstone's batch flushes, while compaction reclaims it physically
     later.  The base is never masked (deletion addresses live-ingested
     data; a level's own content is already net of its own tombs).
     Entries without levels take the exact single-synopsis path — their
     responses stay byte-identical. *)
  let stack, level_tag =
    match levels with
    | None -> ([ synopsis ], "")
    | Some (ls, _) when Array.length ls = 0 -> ([ synopsis ], "")
    | Some (ls, staleness) ->
      let n = Array.length ls in
      let masked =
        List.init n (fun i ->
            let s, _ = ls.(i) in
            let newer_tombs =
              List.concat
                (List.init (n - i - 1) (fun j -> snd ls.(i + 1 + j)))
            in
            if newer_tombs = [] then s
            else Sketch.Build.prune_paths s newer_tombs)
      in
      ( synopsis :: masked,
        Printf.sprintf " levels=%d staleness=%.3f" n staleness )
  in
  let tier_tag = tier_tag ^ level_tag in
  match kind with
  | Query ->
    let answers = List.map (fun s -> Sketch.Eval.eval ~budget s q) stack in
    let est =
      List.fold_left
        (fun acc (ans : Sketch.Eval.answer) ->
          acc +. Sketch.Selectivity.of_answer q ans)
        0. answers
    in
    {
      response =
        Printf.sprintf "ok query degraded=%s%s est=%g classes=%d empty=%s"
          (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
          tier_tag est
          (List.fold_left
             (fun acc (ans : Sketch.Eval.answer) ->
               acc + Sketch.Synopsis.num_nodes ans.synopsis)
             0 answers)
          (yes_no (List.for_all (fun (a : Sketch.Eval.answer) -> a.empty) answers));
      degraded = List.exists (fun (a : Sketch.Eval.answer) -> a.degraded) answers;
    }
  | Answer ->
    (* One budget spans evaluation and expansion: the request's caps
       are end-to-end, whichever stage exhausts them. *)
    let answers = List.map (fun s -> Sketch.Eval.eval ~budget s q) stack in
    if List.for_all (fun (a : Sketch.Eval.answer) -> a.empty) answers then
      {
        response =
          Printf.sprintf "ok answer degraded=%s%s empty=yes"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
            tier_tag;
        degraded = List.exists (fun (a : Sketch.Eval.answer) -> a.degraded) answers;
      }
    else begin
      let parts =
        List.filter_map
          (fun (ans : Sketch.Eval.answer) ->
            if ans.empty then None
            else Some (Sketch.Expand.partial ~budget ans.synopsis))
          answers
      in
      let tree, nodes, truncated =
        match parts with
        | [ p ] -> (p.Sketch.Expand.tree, p.nodes, p.truncated)
        | ps ->
          (* per-level forests share the document root: concatenate
             their children under one root node *)
          let root = (List.hd ps).Sketch.Expand.tree.Xmldoc.Tree.label in
          let merged =
            Xmldoc.Tree.make root
              (List.concat_map
                 (fun p ->
                   Array.to_list p.Sketch.Expand.tree.Xmldoc.Tree.children)
                 ps)
          in
          ( merged,
            Xmldoc.Tree.size merged,
            List.exists (fun p -> p.Sketch.Expand.truncated) ps )
      in
      {
        response =
          Printf.sprintf "ok answer degraded=%s%s truncated=%s nodes=%d tree=%s"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
            tier_tag (yes_no truncated) nodes
            (Protocol.one_line (Xmldoc.Printer.to_string tree));
        degraded = Xmldoc.Budget.stopped budget <> None || truncated;
      }
    end

(* The last line of defense on the read path.  [Stack_overflow] and
   [Out_of_memory] are the two asynchronous-ish failures a hostile or
   pathological query can provoke that the cooperative budget cannot
   always intercept (a single allocation or recursion step overshoots
   before the next tick).  In a pool worker this turns a would-be
   worker death into a structured response; with the pool disabled it
   keeps the connection loop alive.  On OOM a compaction runs first so
   the error path itself has room to allocate the response. *)
let guard f =
  match f () with
  | outcome -> outcome
  | exception Stack_overflow ->
    {
      response =
        Protocol.fault_line
          (Xmldoc.Fault.Worker_crash
             { reason = "stack overflow during evaluation (contained)" });
      degraded = false;
    }
  | exception Out_of_memory ->
    Gc.compact ();
    {
      response =
        Protocol.fault_line
          (Xmldoc.Fault.Worker_crash
             { reason = "out of memory during evaluation (contained)" });
      degraded = false;
    }

let run_guarded ?tier ?levels ~budget kind synopsis q =
  guard (fun () -> run ?tier ?levels ~budget kind synopsis q)
