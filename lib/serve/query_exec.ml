type caps = {
  deadline : float option;
  max_answer_nodes : int;
  max_work : int;
  max_heap_words : int;
}

(* Per-request budget: the request's own [-deadline]/[-max-nodes] can
   tighten the caps, never widen them. *)
let budget_for caps (opts : Protocol.opts) =
  let relative =
    match (caps.deadline, opts.deadline) with
    | None, req -> req
    | (Some _ as cfg), None -> cfg
    | Some cfg, Some req -> Some (Float.min cfg req)
  in
  let deadline = Option.map (fun s -> Xmldoc.Limits.now () +. s) relative in
  let max_nodes =
    match opts.max_nodes with
    | Some n -> min n caps.max_answer_nodes
    | None -> caps.max_answer_nodes
  in
  let max_heap_words =
    if caps.max_heap_words = max_int then None else Some caps.max_heap_words
  in
  Xmldoc.Budget.create ?deadline ~max_nodes ~max_work:caps.max_work
    ?max_heap_words ()

type kind =
  | Query
  | Answer

type outcome = {
  response : string;
  degraded : bool;
}

let yes_no b = if b then "yes" else "no"

(* Which ladder rung serves this request: the coarser of the request's
   own [-tier] ask and the server's degradation level, clamped to the
   rungs the entry actually has.  Plain single-tier entries never get a
   tag, keeping their responses byte-identical to earlier versions. *)
let select_tier (entry : Catalog.entry) (opts : Protocol.opts) ~level =
  let n = Array.length entry.Catalog.tiers in
  let requested = match opts.Protocol.tier with Some k -> k | None -> 0 in
  let k = min (max requested (max level 0)) (n - 1) in
  let t = Catalog.tier_for entry k in
  let tag = if n > 1 then Some (k, n, t.Catalog.t_budget) else None in
  (t.Catalog.t_synopsis, tag)

let run ?tier ~budget kind synopsis q =
  let tier_tag =
    match tier with
    | None -> ""
    | Some (k, n, bytes) -> Printf.sprintf " tier=%d/%d budget=%d" k n bytes
  in
  match kind with
  | Query ->
    let ans = Sketch.Eval.eval ~budget synopsis q in
    let est = Sketch.Selectivity.of_answer q ans in
    {
      response =
        Printf.sprintf "ok query degraded=%s%s est=%g classes=%d empty=%s"
          (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
          tier_tag est
          (Sketch.Synopsis.num_nodes ans.synopsis)
          (yes_no ans.empty);
      degraded = ans.degraded;
    }
  | Answer ->
    (* One budget spans evaluation and expansion: the request's caps
       are end-to-end, whichever stage exhausts them. *)
    let ans = Sketch.Eval.eval ~budget synopsis q in
    if ans.empty then
      {
        response =
          Printf.sprintf "ok answer degraded=%s%s empty=yes"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
            tier_tag;
        degraded = ans.degraded;
      }
    else begin
      let p = Sketch.Expand.partial ~budget ans.synopsis in
      {
        response =
          Printf.sprintf "ok answer degraded=%s%s truncated=%s nodes=%d tree=%s"
            (Protocol.degraded_token (Xmldoc.Budget.stopped budget))
            tier_tag (yes_no p.truncated) p.nodes
            (Protocol.one_line (Xmldoc.Printer.to_string p.tree));
        degraded = Xmldoc.Budget.stopped budget <> None || p.truncated;
      }
    end

(* The last line of defense on the read path.  [Stack_overflow] and
   [Out_of_memory] are the two asynchronous-ish failures a hostile or
   pathological query can provoke that the cooperative budget cannot
   always intercept (a single allocation or recursion step overshoots
   before the next tick).  In a pool worker this turns a would-be
   worker death into a structured response; with the pool disabled it
   keeps the connection loop alive.  On OOM a compaction runs first so
   the error path itself has room to allocate the response. *)
let guard f =
  match f () with
  | outcome -> outcome
  | exception Stack_overflow ->
    {
      response =
        Protocol.fault_line
          (Xmldoc.Fault.Worker_crash
             { reason = "stack overflow during evaluation (contained)" });
      degraded = false;
    }
  | exception Out_of_memory ->
    Gc.compact ();
    {
      response =
        Protocol.fault_line
          (Xmldoc.Fault.Worker_crash
             { reason = "out of memory during evaluation (contained)" });
      degraded = false;
    }

let run_guarded ?tier ~budget kind synopsis q =
  guard (fun () -> run ?tier ~budget kind synopsis q)
